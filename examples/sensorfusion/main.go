// Sensor fusion example: the paper's Figure 2a — multiple sensor input
// streams fused by a dependency-driven task DAG, with bounded per-update
// latency while several fusion windows pipeline through the cluster (R1,
// R5). Also demonstrates the profiling tools (R7): the run ends by printing
// the reconstructed per-function timeline from the control plane's event
// log.
//
//	go run ./examples/sensorfusion
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sensor"
	"repro/internal/types"
)

func main() {
	reg := core.NewRegistry()
	sensor.RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	cfg := sensor.Default(99)
	cfg.Windows = 20
	cfg.Interval = 5 * time.Millisecond // sensors tick every 5ms

	fmt.Printf("fusing %d sensor streams over %d windows (preprocess %v+, fuse %v, %d windows in flight)\n",
		cfg.Streams, cfg.Windows, cfg.PreprocessCost, cfg.FuseCost, cfg.MaxInFlight)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := sensor.Run(ctx, c.Driver(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d windows in %v\n", rep.Windows, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("per-window latency: p50=%v p99=%v max=%v\n",
		rep.Latency.Percentile(50).Round(time.Microsecond),
		rep.Latency.Percentile(99).Round(time.Microsecond),
		rep.Latency.Max().Round(time.Microsecond))
	fmt.Printf("first estimates: ")
	for i := 0; i < 5 && i < len(rep.Estimates); i++ {
		fmt.Printf("%.4f ", rep.Estimates[i])
	}
	fmt.Println()

	// R7: reconstruct the execution profile from the control plane alone.
	fmt.Println("\nprofile (from the centralized control plane):")
	profile.Build(c.Ctrl).RenderText(os.Stdout)
}
