// Hyperparameter search example: Section 4.2 notes the RL workload "would
// typically be used as a subroutine of a more sophisticated (non-BSP)
// workload ... run the entire workload nested within a larger adaptive
// hyperparameter search". This example does exactly that: trial tasks each
// run a full (small) RL training loop as nested tasks, and the driver uses
// wait to implement successive halving — killing off the weakest trials as
// soon as enough results arrive, without waiting for stragglers.
//
//	go run ./examples/hyperparam
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// trialResult is what one hyperparameter trial reports.
type trialResult struct {
	LR          float64
	FinalReturn float64
}

func main() {
	reg := core.NewRegistry()

	// One rollout episode with the given policy weights; a nested task.
	episode := core.Register2(reg, "episode", func(tc *core.TaskContext, seed uint64, w []float64) (sim.RolloutStats, error) {
		cfg := sim.DefaultEnvConfig(seed)
		cfg.StepCost = 2 * time.Millisecond
		env := sim.NewEnv(cfg)
		policy := sim.NewPolicy(cfg.ObsDim, cfg.NumActions, 0)
		copy(policy.W, w)
		var stats sim.RolloutStats
		obs := env.Observe()
		for {
			action := policy.Act([]sim.Obs{obs})[0]
			next, reward, done := env.Step(action)
			stats.Record(obs, action, reward, cfg.ObsDim, cfg.NumActions)
			obs = next
			if done {
				return stats, nil
			}
		}
	})

	// A trial: trains with its own learning rate by spawning episode tasks
	// (nested parallelism, R3) and returns the final mean return.
	trial := core.Register1(reg, "trial", func(tc *core.TaskContext, lr float64) (trialResult, error) {
		cfg := sim.DefaultEnvConfig(7)
		policy := sim.NewPolicy(cfg.ObsDim, cfg.NumActions, 0)
		const iters, episodes = 3, 4
		final := 0.0
		for it := 0; it < iters; it++ {
			var refs []core.Ref[sim.RolloutStats]
			for e := 0; e < episodes; e++ {
				ref, err := episode.Remote(tc, uint64(100+e), policy.W)
				if err != nil {
					return trialResult{}, err
				}
				refs = append(refs, ref)
			}
			var merged sim.RolloutStats
			for _, r := range refs {
				st, err := core.TaskGet(tc, r)
				if err != nil {
					return trialResult{}, err
				}
				merged.Merge(st)
			}
			policy.Update(merged.Gradient(), lr)
			final = merged.Return / episodes
		}
		return trialResult{LR: lr, FinalReturn: final}, nil
	})

	c, err := cluster.New(cluster.Config{Nodes: 2, NodeResources: types.CPU(8), Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	driver := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Launch one trial per candidate learning rate.
	lrs := []float64{0.01, 0.05, 0.1, 0.5, 1.0, 2.0}
	fmt.Printf("adaptive search over learning rates %v\n", lrs)
	inflight := make(map[types.ObjectID]float64, len(lrs))
	var refs []core.ObjectRef
	start := time.Now()
	for _, lr := range lrs {
		ref, err := trial.Remote(driver, lr)
		if err != nil {
			log.Fatal(err)
		}
		inflight[ref.Untyped().ID] = lr
		refs = append(refs, ref.Untyped())
	}

	// Successive halving via wait: take the first half of trials to finish,
	// keep only the best — stragglers are abandoned, exactly the latency
	// control the wait primitive exists for (R1).
	half := len(refs)/2 + 1
	ready, pending, err := driver.Wait(ctx, refs, half, 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d trials finished after %v (%d still running, abandoned)\n",
		len(ready), time.Since(start).Round(time.Millisecond), len(pending))

	var results []trialResult
	for _, r := range ready {
		raw, err := driver.Get(ctx, r)
		if err != nil {
			log.Fatal(err)
		}
		res, err := codec.DecodeAs[trialResult](raw)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].FinalReturn > results[j].FinalReturn })
	fmt.Println("completed trials, best first:")
	for _, r := range results {
		fmt.Printf("  lr=%-5.2f final mean return %.4f\n", r.LR, r.FinalReturn)
	}
	fmt.Printf("winner: lr=%.2f\n", results[0].LR)
}
