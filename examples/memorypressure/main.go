// Memorypressure: the object lifetime subsystem end to end. A
// capacity-limited store is driven far past its memory budget: referenced
// objects spill to disk instead of failing with ErrStoreFull, Gets restore
// them transparently, releasing the driver's references reclaims every
// byte, and a node crash shows spill and lineage reconstruction repairing
// the same working set together.
//
//	go run ./examples/memorypressure
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/types"
)

const (
	capacity = 256 << 10 // per-node object store memory
	blobSize = 64 << 10  // each task output
	numBlobs = 24        // 24 * 64 KiB = 6x one node's memory
)

func main() {
	reg := core.NewRegistry()
	blob := core.Register2(reg, "blob", func(tc *core.TaskContext, seed, size int) ([]byte, error) {
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(seed * (i + 1))
		}
		return out, nil
	})

	spillDir, err := os.MkdirTemp("", "memorypressure-spill-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(spillDir)

	c, err := cluster.New(cluster.Config{
		Nodes:         2,
		NodeResources: types.CPU(4),
		StoreCapacity: capacity,
		SpillDir:      spillDir,
		Registry:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()     // attached to node 0
	d1 := c.DriverOn(1) // attached to node 1: its submissions are born there
	ctx := context.Background()

	// 1. Create a live working set 6x one node's memory, half born on each
	//    node. Every output is referenced by a driver, so nothing may be
	//    dropped — without the spill tier this workload dies with
	//    ErrStoreFull.
	fmt.Printf("working set: %d blobs x %d KiB against %d KiB of memory/node\n",
		numBlobs, blobSize>>10, capacity>>10)
	refs := make([]core.Ref[[]byte], numBlobs)
	for i := range refs {
		owner := d
		if i%2 == 1 {
			owner = d1
		}
		if refs[i], err = blob.Remote(owner, i+1, blobSize, core.WithResources(types.CPU(0.1))); err != nil {
			log.Fatal(err)
		}
	}
	// Wait for the whole set (wait never forces a transfer), then read the
	// node-0 half: those Gets exercise transparent spill/restore locally.
	raw := make([]core.ObjectRef, len(refs))
	for i, r := range refs {
		raw[i] = r.Untyped()
	}
	if _, _, err := d.Wait(ctx, raw, len(raw), time.Minute); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < numBlobs; i += 2 {
		data, err := core.Get(ctx, d, refs[i])
		if err != nil {
			log.Fatalf("get blob %d: %v", i, err)
		}
		if len(data) != blobSize {
			log.Fatalf("blob %d truncated: %d bytes", i, len(data))
		}
	}
	report := func(when string) {
		for i := 0; i < c.NumNodes(); i++ {
			st := c.Node(i).Store().Stats()
			st.Reclaimed = c.Node(i).Lifetime().Reclaimed()
			fmt.Printf("%s: node %d: %3d KiB in memory, %3d KiB spilled, %d spills, %d restores, %d reclaimed\n",
				when, i, st.UsedBytes>>10, st.SpilledBytes>>10, st.Spills, st.Restores, st.Reclaimed)
		}
	}
	report("after gets")

	// 2. Crash node 1: the only copies of its half — memory and spill
	//    files alike — are gone. Re-reading the full set forces lineage
	//    replay of the lost blobs onto the survivor, which must spill
	//    again to absorb them: reconstruction and the spill tier
	//    cooperating on one working set.
	c.KillNode(1)
	fmt.Println("killed node 1; re-reading the full working set")
	for i, r := range refs {
		data, err := core.Get(ctx, d, r)
		if err != nil {
			log.Fatalf("get blob %d after crash: %v", i, err)
		}
		if data[blobSize-1] != byte((i+1)*blobSize) {
			log.Fatalf("blob %d corrupted after reconstruction", i)
		}
	}
	report("after crash")

	// 3. Drop every reference (each driver releases the futures it
	//    created): the distributed refcounts hit zero and the lifetime GC
	//    reclaims memory and disk on every surviving node.
	for i, r := range refs {
		if i%2 == 1 {
			d1.Release(r.Untyped())
		} else {
			d.Release(r.Untyped())
		}
	}
	deadline := time.After(10 * time.Second)
	store := c.Node(0).Store()
	for store.Used() != 0 || store.SpilledBytes() != 0 {
		select {
		case <-deadline:
			log.Fatalf("reclamation stalled: used=%d spilled=%d", store.Used(), store.SpilledBytes())
		case <-time.After(10 * time.Millisecond):
		}
	}
	report("after release")

	// 4. Export the merged trace: task-table spans plus the data-plane
	//    spans (spill, restore, pull chunks, GCS RPCs) every node shipped
	//    via heartbeats, stitched to their owning tasks. Load the file in
	//    chrome://tracing or ui.perfetto.dev.
	time.Sleep(100 * time.Millisecond) // let the last heartbeat ship spans
	tracePath := "memorypressure-trace.json"
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	tl := profile.BuildFull(c.API)
	if err := tl.ExportChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d task spans + %d data-plane spans -> %s\n",
		len(tl.Spans), len(tl.Data), tracePath)
	fmt.Println("ok: oversized working set served via spill/restore, survived a crash, and was fully reclaimed")
}
