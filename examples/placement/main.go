// Placement-group example: the Section 4.2 RL shape — a learner plus its
// simulators — gang-scheduled through the task-options API. The learner
// actor and every simulator task pin to bundles of one placement group, so
// the scheduler admits the whole set atomically (STRICT_SPREAD: every
// bundle on a distinct node). Killing a member node rolls the entire
// placement back and re-places the bundle set as a unit on the surviving
// capacity; removing the group fails late submissions with a typed error.
//
//	go run ./examples/placement
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/types"
)

const (
	simBundles = 2
	rounds     = 3
)

func main() {
	reg := core.NewRegistry()
	rollout := core.Register2(reg, "placement.rollout",
		func(tc *core.TaskContext, weights float64, seed int) (float64, error) {
			// A toy simulator: pretend to run an episode under the weights.
			time.Sleep(5 * time.Millisecond)
			return math.Sin(weights+float64(seed)) + 1, nil
		})
	learnerInit := core.RegisterActorInit(reg, "placement.learner",
		func(tc *core.TaskContext) (float64, error) { return 0.1, nil })
	core.RegisterActorMethod(reg, "placement.train",
		func(tc *core.TaskContext, weights float64, returns []float64) (float64, float64, error) {
			mean := 0.0
			for _, r := range returns {
				mean += r
			}
			mean /= float64(len(returns))
			return weights + 0.05*mean, mean, nil
		})

	// Four nodes, three of which the group needs: the spare is what makes
	// atomic re-placement after a member-node kill possible.
	c, err := cluster.New(cluster.Config{
		Nodes:         4,
		NodeResources: types.CPU(4),
		Registry:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	// One bundle for the learner, one per simulator pool, spread across
	// distinct nodes.
	bundles := []types.Resources{types.CPU(2)}
	for i := 0; i < simBundles; i++ {
		bundles = append(bundles, types.CPU(2))
	}
	pg, err := d.CreatePlacementGroup("rl-gang", types.StrategyStrictSpread, bundles)
	if err != nil {
		log.Fatal(err)
	}
	if err := pg.WaitReady(ctx, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement group ready: %d bundles on %v\n", pg.NumBundles(), groupNodes(c, pg))

	// The learner actor pins to bundle 0 for its whole method chain.
	learner, err := core.NewActorWith(d, learnerInit, []core.Option{pg.Bundle(0)})
	if err != nil {
		log.Fatal(err)
	}

	train := func(round int) {
		var refs []core.Ref[float64]
		for s := 0; s < 2*simBundles; s++ {
			// Each simulator joins a sim bundle through the fluent options
			// pipeline — resources, retries, and co-placement per call.
			ref, err := rollout.Options(
				pg.Bundle(1+s%simBundles),
				core.WithResources(types.CPU(1)),
				core.WithMaxRetries(2),
			).Remote(d, 0.1*float64(round), s)
			if err != nil {
				log.Fatal(err)
			}
			refs = append(refs, ref)
		}
		var returns []float64
		for _, r := range refs {
			v, err := core.Get(ctx, d, r)
			if err != nil {
				log.Fatal(err)
			}
			returns = append(returns, v)
		}
		resRef, err := learner.Call("placement.train", core.Val(returns))
		if err != nil {
			log.Fatal(err)
		}
		raw, err := d.Get(ctx, resRef)
		if err != nil {
			log.Fatal(err)
		}
		mean, _ := codec.DecodeAs[float64](raw)
		fmt.Printf("round %d: %d rollouts, mean return %.3f\n", round, len(returns), mean)
	}

	for r := 0; r < rounds; r++ {
		train(r)
	}

	// Kill a member node (never node 0 — the driver lives there). The gang
	// pass releases every bundle reservation and re-places the whole set
	// atomically on the remaining capacity.
	victim := pickVictim(c, pg)
	dead := c.Node(victim).ID()
	fmt.Printf("\nkilling member node %v ...\n", dead)
	c.KillNode(victim)
	// Wait for the rollback + atomic re-placement: Placed again, with the
	// dead node out of every bundle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, ok := c.API.GetPlacementGroup(pg.ID)
		if ok && info.State == types.GroupPlaced && !holds(info.BundleNodes, dead) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("group not re-placed off %v in time", dead)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("group re-placed atomically on %v\n", groupNodes(c, pg))
	train(rounds)

	// Removal is terminal: reservations release and member submissions
	// fail with the typed error instead of hanging.
	if err := pg.Remove(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	_, err = rollout.Options(pg.Bundle(1)).Remote(d, 0, 0)
	fmt.Printf("\nafter removal, submit fails typed: %v (is ErrGroupRemoved: %v)\n",
		err, errors.Is(err, core.ErrGroupRemoved))
}

func holds(nodes []types.NodeID, id types.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}

// groupNodes renders the bundle→node assignment.
func groupNodes(c *cluster.Cluster, pg *core.PlacementGroup) []string {
	info, ok := c.API.GetPlacementGroup(pg.ID)
	if !ok {
		return nil
	}
	out := make([]string, len(info.BundleNodes))
	for i, n := range info.BundleNodes {
		out[i] = n.String()
	}
	return out
}

// pickVictim finds a cluster index holding one of the group's bundles,
// skipping node 0 (the driver's backend).
func pickVictim(c *cluster.Cluster, pg *core.PlacementGroup) int {
	info, ok := c.API.GetPlacementGroup(pg.ID)
	if !ok {
		log.Fatal("placement group vanished")
	}
	members := map[types.NodeID]bool{}
	for _, n := range info.BundleNodes {
		members[n] = true
	}
	for i := 1; i < c.NumNodes(); i++ {
		if members[c.Node(i).ID()] {
			return i
		}
	}
	log.Fatal("no killable member node")
	return -1
}
