// MCTS example: the paper's Figure 2b — Monte Carlo tree search whose task
// graph is constructed dynamically, with more simulation tasks launched in
// the subtrees that look most promising (R3).
//
//	go run ./examples/mcts
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mcts"
	"repro/internal/types"
)

func main() {
	reg := core.NewRegistry()
	mcts.RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	cfg := mcts.Default(2026)
	cfg.Budget = 512
	cfg.Parallelism = 8
	cfg.SimCost = 2 * time.Millisecond

	fmt.Printf("planning: %d actions, depth %d, %d simulations of %v each\n",
		cfg.NumActions, cfg.MaxDepth, cfg.Budget, cfg.SimCost)

	serial := mcts.SearchSerial(cfg)
	fmt.Printf("serial search:   best action %d (value %.3f) in %v, tree %d nodes\n",
		serial.BestAction, serial.BestValue, serial.Elapsed.Round(time.Millisecond), serial.TreeNodes)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	par, err := mcts.Search(ctx, c.Driver(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel search: best action %d (value %.3f) in %v, tree %d nodes\n",
		par.BestAction, par.BestValue, par.Elapsed.Round(time.Millisecond), par.TreeNodes)
	fmt.Printf("speedup %.1fx from dynamically-spawned simulation tasks\n",
		float64(serial.Elapsed)/float64(par.Elapsed))
	if par.BestAction == serial.BestAction {
		fmt.Println("both searches agree on the best first action")
	}
}
