// Quickstart: the paper's Section 3.1 API in one file — remote functions,
// futures, dataflow dependencies, nested tasks, and the wait primitive.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/types"
)

func main() {
	// 1. Register remote functions. Any Go function becomes a remote task
	//    (R4: arbitrary execution kernels).
	reg := core.NewRegistry()
	square := core.Register1(reg, "square", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})
	add := core.Register2(reg, "add", func(tc *core.TaskContext, a, b int) (int, error) {
		return a + b, nil
	})
	slowEcho := core.Register1(reg, "slowEcho", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	// A task that spawns its own subtasks (R3: dynamic task creation).
	sumSquares := core.Register1(reg, "sumSquares", func(tc *core.TaskContext, n int) (int, error) {
		var refs []core.Ref[int]
		for i := 1; i <= n; i++ {
			ref, err := square.Remote(tc, i)
			if err != nil {
				return 0, err
			}
			refs = append(refs, ref)
		}
		total := 0
		for _, r := range refs {
			v, err := core.TaskGet(tc, r)
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	})

	// 2. Boot an in-process cluster: 2 nodes x 4 CPUs, a sharded control
	//    plane, and a global scheduler (the whole Figure 3).
	c, err := cluster.New(cluster.Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	driver := c.Driver()
	ctx := context.Background()

	// 3. Task creation is non-blocking and returns a future immediately.
	fut, err := square.Remote(driver, 7)
	if err != nil {
		log.Fatal(err)
	}
	v, err := core.Get(ctx, driver, fut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("square(7)                      = %d\n", v)

	// 4. Futures as arguments build dataflow DAGs (R5): the add task runs
	//    only when both squares have finished, wherever they ran.
	a, _ := square.Remote(driver, 3)
	b, _ := square.Remote(driver, 4)
	sum, err := add.RemoteRefs(driver, a, b)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = core.Get(ctx, driver, sum)
	fmt.Printf("add(square(3), square(4))      = %d\n", v)

	// 5. Nested tasks: sumSquares fans out subtasks from inside a task.
	nested, err := sumSquares.Remote(driver, 10)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = core.Get(ctx, driver, nested)
	fmt.Printf("sumSquares(10)                 = %d (want 385)\n", v)

	// 6. The wait primitive (Section 3.1 item 5): take the first result and
	//    leave the straggler running — this is how applications bound
	//    latency (R1) despite heterogeneous task durations (R4).
	fast, _ := slowEcho.Remote(driver, 10)
	slow, _ := slowEcho.Remote(driver, 3000)
	ready, pending, err := driver.Wait(ctx,
		[]core.ObjectRef{fast.Untyped(), slow.Untyped()}, 1, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wait(1 of 2, 1s timeout)       = %d ready, %d pending (straggler tolerated)\n",
		len(ready), len(pending))

	// 7. Put shares a value without a producing task.
	weights, _ := core.PutTyped(driver, []float64{0.1, 0.2})
	w, _ := core.Get(ctx, driver, weights)
	fmt.Printf("get(put([0.1 0.2]))            = %v\n", w)
}
