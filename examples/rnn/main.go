// RNN example: the paper's Figure 2c — a recurrent neural network unrolled
// into a task graph with heterogeneous per-layer costs (R4) and
// fine-grained dependencies (R5). Cell (l, t) needs only (l, t-1) and
// (l-1, t), so a diagonal wavefront of cells can run concurrently; a
// BSP-style driver that barriers on every timestep forfeits exactly that
// parallelism. Both drivers (and the serial reference) produce bit-identical
// outputs.
//
//	go run ./examples/rnn
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rnn"
	"repro/internal/types"
)

func main() {
	reg := core.NewRegistry()
	rnn.RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	cfg := rnn.Default(77)
	cfg.Timesteps = 12
	fmt.Printf("RNN: %d layers x %d timesteps, layer costs %v..%v (heterogeneous, R4)\n",
		cfg.Layers, cfg.Timesteps, cfg.LayerCost(0), cfg.LayerCost(cfg.Layers-1))

	serial := rnn.RunSerial(cfg)
	fmt.Printf("%-34s %8v  (%d cell tasks)\n", "serial:", serial.Elapsed.Round(time.Millisecond), serial.Tasks)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	flow, err := rnn.RunDataflow(ctx, c.Driver(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8v  (wavefront parallelism from fine deps, R5)\n",
		"dataflow:", flow.Elapsed.Round(time.Millisecond))

	barrier, err := rnn.RunBarriered(ctx, c.Driver(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %8v  (BSP-style per-timestep barrier)\n",
		"barriered:", barrier.Elapsed.Round(time.Millisecond))

	fmt.Printf("\ndataflow beats the barrier by %.2fx; outputs identical: %v\n",
		float64(barrier.Elapsed)/float64(flow.Elapsed),
		equal(flow.Output, barrier.Output) && equal(flow.Output, serial.Output))
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
