// Fault-tolerance example: the paper's Section 3.2.1 recovery story (R6),
// live. A workload runs across three nodes; one node is killed; objects
// whose only copies died transition to LOST in the control plane; Gets
// transparently replay the producing tasks from lineage. Then the actor
// extension shows stateful computation surviving the same failure.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

func main() {
	reg := core.NewRegistry()
	square := core.Register1(reg, "square", func(tc *core.TaskContext, x int) (int, error) {
		time.Sleep(2 * time.Millisecond) // visible work
		return x * x, nil
	})
	counterInit := core.RegisterActorInit(reg, "counter.init", func(tc *core.TaskContext) (int, error) {
		return 0, nil
	})
	counterAdd := core.RegisterActorMethod(reg, "counter.add", func(tc *core.TaskContext, state, x int) (int, int, error) {
		return state + x, state + x, nil
	})

	c, err := cluster.New(cluster.Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: cluster.SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{}, // spread work over all nodes
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Phase 1: compute 18 values across the cluster.
	fmt.Println("phase 1: computing square(0..17) across 3 nodes")
	var refs []core.Ref[int]
	raw := make([]core.ObjectRef, 0, 18)
	for i := 0; i < 18; i++ {
		r, err := square.Remote(d, i)
		if err != nil {
			log.Fatal(err)
		}
		refs = append(refs, r)
		raw = append(raw, r.Untyped())
	}
	if _, _, err := d.Wait(ctx, raw, len(raw), time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  all %d tasks finished; objects spread over the cluster\n", len(refs))

	// An actor accumulating state, also spread across the cluster.
	actor, err := core.NewActor(d, counterInit)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := actor.Call(counterAdd, core.Val(i)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := d.Get(ctx, actor.StateRef()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  actor state materialized (sum 1..5 = 15)")

	// Phase 2: kill a node. Sole copies on it are now LOST.
	fmt.Println("\nphase 2: killing node 2 (a third of the cluster)")
	c.KillNode(2)
	lost := 0
	for _, o := range c.Ctrl.Objects() {
		if o.State == types.ObjectLost {
			lost++
		}
	}
	fmt.Printf("  control plane reports %d objects LOST\n", lost)

	// Phase 3: every value is still retrievable — lineage replay.
	fmt.Println("\nphase 3: reading every value back (replays happen transparently)")
	start := time.Now()
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			log.Fatalf("get %d: %v", i, err)
		}
		if v != i*i {
			log.Fatalf("value %d = %d, want %d", i, v, i*i)
		}
	}
	fmt.Printf("  18/18 values correct in %v\n", time.Since(start).Round(time.Millisecond))

	rawState, err := d.Get(ctx, actor.StateRef())
	if err != nil {
		log.Fatal(err)
	}
	sum, _ := codec.DecodeAs[int](rawState)
	fmt.Printf("  actor state reconstructed from its method lineage: %d (want 15)\n", sum)

	// Show the replay evidence from the event log (R7).
	replays := 0
	for _, ev := range c.Ctrl.Events() {
		if ev.Kind == "reconstruct" {
			replays++
		}
	}
	fmt.Printf("\nevent log recorded %d reconstruct events (R6 via the R7 tooling)\n", replays)
}
