// Multitenant: the job subsystem end to end (DESIGN.md §14). Two jobs
// share a small cluster as noisy neighbors — a weight-3 "production"
// tenant and a weight-1 "background" tenant flood the same dispatch queue
// and the global scheduler's deficit round-robin splits throughput 3:1. A
// third tenant runs into its admission quota and fails fast. Finally the
// background job is stopped mid-flight: its live tasks are buried, its
// objects reclaimed, and after the grace period its records are
// tombstoned, leaving only the Stopped job record to fence late
// submissions.
//
//	go run ./examples/multitenant
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

const (
	prodTasks = 120
	// The noisy neighbor queues 3x more work than production, so the two
	// jobs contend for dispatch for production's entire run.
	bgTasks = 360
)

func main() {
	reg := core.NewRegistry()
	work := core.Register1(reg, "work", func(tc *core.TaskContext, n int) (int, error) {
		time.Sleep(15 * time.Millisecond)
		return n, nil
	})

	c, err := cluster.New(cluster.Config{
		Nodes:         2,
		NodeResources: types.CPU(2),
		Registry:      reg,
		// Spill threshold 0 sends every task through the global scheduler's
		// fair queue — the contended dispatch path where weights matter.
		SpillThreshold: cluster.SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
		JobGrace:       300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	// 1. Weighted fair share: both tenants flood the queue at once; the
	//    deficit round-robin hands production three dispatch slots for every
	//    one background gets.
	background, err := d.CreateJob("background", 1, types.JobQuota{})
	if err != nil {
		log.Fatal(err)
	}
	production, err := d.CreateJob("production", 3, types.JobQuota{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy neighbor: background floods %d tasks at weight 1, production runs %d at weight 3\n",
		bgTasks, prodTasks)
	for i := 0; i < bgTasks; i++ {
		if _, err := work.Options(background.Option()).Remote(d, i); err != nil {
			log.Fatal(err)
		}
		if i < prodTasks {
			if _, err := work.Options(production.Option()).Remote(d, i); err != nil {
				log.Fatal(err)
			}
		}
	}

	finished := func(job types.JobID) int {
		n := 0
		for _, t := range c.Ctrl.Tasks() {
			if t.Spec.Job == job && t.Status == types.TaskFinished {
				n++
			}
		}
		return n
	}
	// While both jobs stay backlogged the finished counts track dispatch
	// share directly. Measure at production's 75% mark — past that its fair
	// queue ring drains and the work-conserving scheduler hands the idle
	// share back to the neighbor, diluting the ratio.
	const measureAt = prodTasks * 3 / 4
	var prodSnap, bgSnap int
	for i := 0; ; i++ {
		prod := finished(production.ID)
		bg := finished(background.ID)
		if i%6 == 0 {
			fmt.Printf("  finished: production %3d/%d  background %3d/%d\n", prod, prodTasks, bg, bgTasks)
		}
		if prodSnap == 0 && prod >= measureAt {
			prodSnap, bgSnap = prod, bg
		}
		if prod >= prodTasks {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	ratio := float64(prodSnap) / float64(max(bgSnap, 1))
	fmt.Printf("at production's %d-task mark the noisy neighbor had finished %d — observed share ≈ %.1f:1 (want ~3:1)\n\n",
		prodSnap, bgSnap, ratio)

	// 2. Admission quotas: a capped tenant fails fast instead of flooding.
	capped, err := d.CreateJob("capped", 1, types.JobQuota{MaxLiveTasks: 4})
	if err != nil {
		log.Fatal(err)
	}
	var quotaErr error
	admitted := 0
	for i := 0; i < 32 && quotaErr == nil; i++ {
		if _, err := work.Options(capped.Option()).Remote(d, i); err != nil {
			quotaErr = err
		} else {
			admitted++
		}
	}
	if !errors.Is(quotaErr, core.ErrJobQuota) {
		log.Fatalf("expected ErrJobQuota, got %v", quotaErr)
	}
	fmt.Printf("capped tenant (MaxLiveTasks=4): %d submissions admitted, then: %v\n\n", admitted, quotaErr)

	// 3. Bulk reclamation: stop the background tenant mid-flood — it still
	//    has hundreds of tasks queued or running. The reclaim pass drops its
	//    fair-queue backlog, buries whatever is live, force-releases the
	//    job's objects, and after the grace period tombstones every record.
	remaining := bgTasks - finished(background.ID)
	if err := background.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped the background tenant with ~%d tasks still in flight or queued...\n", remaining)
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, ok := c.Ctrl.GetJob(background.ID)
		if ok && info.PurgedNs != 0 {
			tasks, _ := c.Ctrl.JobTasks(background.ID)
			fmt.Printf("background job: state=%s, task records left=%d (tombstoned after %s grace)\n",
				info.State, len(tasks), 300*time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("background job never purged")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if _, err := work.Options(background.Option()).Remote(d, 0); errors.Is(err, core.ErrJobTerminated) {
		fmt.Printf("late submission against the tombstone: %v\n", err)
	} else {
		log.Fatalf("tombstone did not fence: %v", err)
	}
}
