// RL pipeline example: the paper's Section 4.2 workload, all four ways —
// single-threaded, BSP with a Spark-like driver bottleneck, this system
// with the same BSP-shaped dataflow, and the wait-pipelined refinement.
// Learning statistics are identical across implementations for one seed;
// wall-clock is what differs.
//
//	go run ./examples/rlpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bsp"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/types"
)

func main() {
	cfg := rl.Default()
	cfg.Iters = 3
	fmt.Printf("RL training: %d simulators x %d steps x %d iterations (step %v, GPU eval %v)\n\n",
		cfg.NumSims, cfg.StepsPerIter, cfg.Iters, cfg.StepCost, cfg.EvalCost)

	serial := rl.RunSerial(cfg)
	show("single-thread", serial, serial)

	engine := bsp.New(bsp.Config{Executors: cfg.NumSims, DriverOverhead: bsp.DefaultDriverOverhead})
	bspRep := rl.RunBSP(cfg, engine)
	show("BSP / Spark stand-in", bspRep, serial)

	reg := core.NewRegistry()
	rl.RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{
		Nodes:         1,
		NodeResources: types.Resources{types.ResCPU: float64(cfg.NumSims), types.ResGPU: 1},
		Registry:      reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	coreRep, err := rl.RunCore(ctx, cfg, c.Driver())
	if err != nil {
		log.Fatal(err)
	}
	show("this system (futures)", coreRep, serial)

	// Stragglers on: every 4th simulator runs 3x slower. The wait-based
	// variant pipelines GPU work with the stragglers' simulation.
	cfg.StragglerEvery = 4
	slowBarrier, err := rl.RunCore(ctx, cfg, c.Driver())
	if err != nil {
		log.Fatal(err)
	}
	slowPipelined, err := rl.RunPipelined(ctx, cfg, c.Driver(), cfg.NumSims/4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith stragglers (every 4th sim 3x slower):\n")
	fmt.Printf("  %-28s %10v\n", "per-step barrier:", slowBarrier.Elapsed.Round(time.Millisecond))
	fmt.Printf("  %-28s %10v  (%.2fx, same learning result: %.4f == %.4f)\n",
		"wait-pipelined (Sec 4.2):", slowPipelined.Elapsed.Round(time.Millisecond),
		float64(slowBarrier.Elapsed)/float64(slowPipelined.Elapsed),
		slowPipelined.FinalReturn(), slowBarrier.FinalReturn())
}

func show(name string, rep, serial rl.Report) {
	fmt.Printf("%-28s %10v   speedup vs serial %5.1fx   returns/iter %v\n",
		name+":", rep.Elapsed.Round(time.Millisecond),
		float64(serial.Elapsed)/float64(rep.Elapsed), fmtReturns(rep.MeanReturnPerIter))
}

func fmtReturns(rs []float64) string {
	out := "["
	for i, r := range rs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", r)
	}
	return out + "]"
}
