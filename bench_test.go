// Package repro's top-level benchmarks regenerate the paper's quantitative
// artifacts under `go test -bench` (the table-formatted equivalents live in
// cmd/raybench; see DESIGN.md §5 for the experiment index and EXPERIMENTS.md
// for recorded results).
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/kv"
	"repro/internal/lifetime"
	"repro/internal/mcts"
	"repro/internal/objectstore"
	"repro/internal/rl"
	"repro/internal/rnn"
	"repro/internal/scheduler"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/types"
)

func noopRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.Register("noop", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return [][]byte{nil}, nil
	})
	return reg
}

func noopCall() core.Call {
	return core.Call{Function: "noop", Resources: types.CPU(0.0001)}
}

func mustCluster(b *testing.B, cfg cluster.Config) *cluster.Cluster {
	b.Helper()
	c, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Shutdown)
	return c
}

// --- E1: §4.1 task creation (paper ~35µs) ---

func BenchmarkSubmitLatency(b *testing.B) {
	c := mustCluster(b, cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: true})
	d := c.Driver()
	ctx := context.Background()
	b.ResetTimer()
	var pending []core.ObjectRef
	for i := 0; i < b.N; i++ {
		ref, err := d.Submit1(noopCall())
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, ref)
		// Drain periodically (untimed) so the measurement reflects submit
		// latency rather than contention with an ever-growing backlog.
		if len(pending) >= 256 {
			b.StopTimer()
			if _, _, err := d.Wait(ctx, pending, len(pending), time.Minute); err != nil {
				b.Fatal(err)
			}
			pending = pending[:0]
			b.StartTimer()
		}
	}
}

// --- E2: §4.1 result retrieval (paper ~110µs) ---

func BenchmarkGetLatency(b *testing.B) {
	c := mustCluster(b, cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: true})
	d := c.Driver()
	ctx := context.Background()
	// A bounded pool of finished objects, cycled: objects are immutable, so
	// repeated Gets are representative, and the pool keeps setup O(1) in
	// b.N.
	pool := 512
	if pool > b.N {
		pool = b.N
	}
	refs := make([]core.ObjectRef, pool)
	for i := range refs {
		ref, err := d.Submit1(noopCall())
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	if _, _, err := d.Wait(ctx, refs, len(refs), 5*time.Minute); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(ctx, refs[i%pool]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: §4.1 end-to-end local (paper ~290µs) ---

func BenchmarkEndToEndLocal(b *testing.B) {
	c := mustCluster(b, cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: true})
	d := c.Driver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := d.Submit1(noopCall())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Get(ctx, ref); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: §4.1 end-to-end remote (paper ~1ms) ---

func BenchmarkEndToEndRemote(b *testing.B) {
	c := mustCluster(b, cluster.Config{
		Nodes: 2,
		PerNodeResources: []types.Resources{
			types.CPU(4),
			{types.ResCPU: 4, types.ResGPU: 1},
		},
		Registry:        noopRegistry(),
		HopLatency:      100 * time.Microsecond,
		DisableEventLog: true,
	})
	d := c.Driver()
	ctx := context.Background()
	call := core.Call{Function: "noop", Resources: types.Resources{types.ResGPU: 0.001}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := d.Submit1(call)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Get(ctx, ref); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: §4.2 RL comparison (paper: Spark 9x slower, ours 7x faster, 63x) ---

func rlBenchConfig() rl.Config {
	cfg := rl.Default()
	cfg.StepsPerIter = 5
	cfg.Iters = 1
	return cfg
}

func BenchmarkRLComparison(b *testing.B) {
	cfg := rlBenchConfig()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rl.RunSerial(cfg)
		}
	})
	b.Run("bsp-spark-standin", func(b *testing.B) {
		engine := bsp.New(bsp.Config{Executors: cfg.NumSims, DriverOverhead: bsp.DefaultDriverOverhead})
		for i := 0; i < b.N; i++ {
			rl.RunBSP(cfg, engine)
		}
	})
	b.Run("this-system", func(b *testing.B) {
		reg := core.NewRegistry()
		rl.RegisterFuncs(reg)
		c := mustCluster(b, cluster.Config{
			Nodes:           1,
			NodeResources:   types.Resources{types.ResCPU: float64(cfg.NumSims), types.ResGPU: 1},
			Registry:        reg,
			DisableEventLog: true,
		})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rl.RunCore(ctx, cfg, c.Driver()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: §4.2 wait-pipelining under stragglers ---

func BenchmarkWaitPipelining(b *testing.B) {
	cfg := rlBenchConfig()
	cfg.StragglerEvery = 4
	newCluster := func(b *testing.B) *cluster.Cluster {
		reg := core.NewRegistry()
		rl.RegisterFuncs(reg)
		return mustCluster(b, cluster.Config{
			Nodes:           1,
			NodeResources:   types.Resources{types.ResCPU: float64(cfg.NumSims), types.ResGPU: 1},
			Registry:        reg,
			DisableEventLog: true,
		})
	}
	b.Run("per-step-barrier", func(b *testing.B) {
		c := newCluster(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rl.RunCore(ctx, cfg, c.Driver()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wait-pipelined", func(b *testing.B) {
		c := newCluster(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rl.RunPipelined(ctx, cfg, c.Driver(), cfg.NumSims/4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: §3.2.1 control-plane sharding + task throughput ---

func BenchmarkControlPlaneShards(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			store := kv.New(shards)
			const workers = 8
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						key := fmt.Sprintf("task:%d:%d", w, i)
						store.Put(key, []byte("x"))
						store.Get(key)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func BenchmarkTaskThroughput(b *testing.B) {
	c := mustCluster(b, cluster.Config{Nodes: 4, NodeResources: types.CPU(4), Registry: noopRegistry(), DisableEventLog: true})
	d := c.Driver()
	ctx := context.Background()
	const window = 200 // steady-state pipelining, not one giant burst
	runWindow := func(k int) {
		refs := make([]core.ObjectRef, k)
		for i := 0; i < k; i++ {
			ref, err := d.Submit1(noopCall())
			if err != nil {
				b.Fatal(err)
			}
			refs[i] = ref
		}
		if _, _, err := d.Wait(ctx, refs, k, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	// Warm up before the clock starts: worker pools, per-peer connections,
	// and subscription streams all come up lazily on the first windows. At
	// short -benchtime runs those cold windows dominated the measurement
	// and under-reported steady state badly.
	for w := 0; w < 3; w++ {
		runWindow(window)
	}
	b.ResetTimer()
	start := time.Now()
	for done := 0; done < b.N; done += window {
		k := window
		if b.N-done < k {
			k = b.N - done
		}
		runWindow(k)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "tasks/sec")
}

// BenchmarkOwnerTransferLatency measures the owner-death transfer protocol
// (E24, DESIGN.md §13) end to end: a burst of in-flight tasks is spread
// across the cluster, one non-driver node is crash-failed while it owns
// live tenures, and the timed window runs from the kill to every result
// being back in the driver's hands — death verdict, the global scheduler's
// transfer pass (follower scan, tenure-release CAS, re-place), successor
// claims, and re-execution. The transfers/op metric reports how many
// tenures the dead owner actually held, so ms/op can be read against real
// transfer work rather than an empty kill.
func BenchmarkOwnerTransferLatency(b *testing.B) {
	reg := core.NewRegistry()
	reg.Register("transfer.sleep", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		time.Sleep(10 * time.Millisecond)
		return [][]byte{nil}, nil
	})
	ctx := context.Background()
	var transfers int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := cluster.New(cluster.Config{
			Nodes: 3, NodeResources: types.CPU(4), Registry: reg,
			SpillThreshold: cluster.SpillThresholdOf(0),
			GlobalPolicy:   &scheduler.RoundRobinPolicy{},
		})
		if err != nil {
			b.Fatal(err)
		}
		d := c.Driver()
		const tasks = 24
		refs := make([]core.ObjectRef, tasks)
		for k := 0; k < tasks; k++ {
			ref, err := d.Submit1(core.Call{Function: "transfer.sleep", Resources: types.CPU(1)})
			if err != nil {
				b.Fatal(err)
			}
			refs[k] = ref
		}
		time.Sleep(5 * time.Millisecond) // let tenures land on the victim
		b.StartTimer()
		c.KillNode(2)
		if _, _, err := d.Wait(ctx, refs, tasks, time.Minute); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, ev := range c.Ctrl.Events() {
			if ev.Kind == "owner-transfer" {
				transfers++
			}
		}
		c.Shutdown()
		b.StartTimer()
	}
	b.ReportMetric(float64(transfers)/float64(b.N), "transfers/op")
}

// BenchmarkParkToScheduledLatency measures the dependency-resolution hot
// path (E23): a consumer parks on deps dependencies of which deps-1 are
// already ready and exactly one is a gated producer that finishes last, in
// both arms. The reported metric is the task-table-stamped latency from
// the gated producer's FINISHED to the consumer's SCHEDULED, so both arms
// time the same single wake chain (last dep ready → resolver → dispatch)
// and differ only in the dependency count the park edge has to book-keep:
// the borrow retains, the ledger flush, the resolver set, and the task
// record size. Per-dependency refcount round trips on either edge would
// show up as growth in the deps-16 arm; with the ledger-batched borrows
// the whole dependency set rides one flush, so the arms should be flat.
func BenchmarkParkToScheduledLatency(b *testing.B) {
	for _, deps := range []int{1, 16} {
		b.Run(fmt.Sprintf("deps-%d", deps), func(b *testing.B) {
			var mu sync.Mutex
			gate := make(chan struct{})
			reg := noopRegistry()
			reg.Register("gated", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
				mu.Lock()
				g := gate
				mu.Unlock()
				<-g
				return [][]byte{nil}, nil
			})
			c := mustCluster(b, cluster.Config{Nodes: 1, NodeResources: types.CPU(2), Registry: reg, DisableEventLog: true})
			d := c.Driver()
			ctx := context.Background()
			var resolveNs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mu.Lock()
				gate = make(chan struct{})
				g := gate
				mu.Unlock()
				args := make([]types.Arg, deps)
				// deps-1 dependencies are ready before the consumer parks:
				// their resolvers clear instantly and only the gated one
				// holds the task in waiting.
				for j := 0; j < deps-1; j++ {
					ref, err := d.Submit1(core.Call{Function: "noop", Resources: types.CPU(0.0001)})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := d.Get(ctx, ref); err != nil {
						b.Fatal(err)
					}
					args[j] = types.RefArg(ref.ID)
				}
				gatedRef, err := d.Submit1(core.Call{Function: "gated", Resources: types.CPU(1)})
				if err != nil {
					b.Fatal(err)
				}
				args[deps-1] = types.RefArg(gatedRef.ID)
				consumer, err := d.Submit1(core.Call{Function: "noop", Resources: types.CPU(0.0001), Args: args})
				if err != nil {
					b.Fatal(err)
				}
				// Let the consumer park with its resolvers attached before
				// the gate opens, so the timed section is purely
				// last-dep-ready → scheduled → done.
				time.Sleep(2 * time.Millisecond)
				b.StartTimer()
				close(g)
				if _, err := d.Get(ctx, consumer); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Isolate the scheduler's resolve path from the producer's
				// own completion cost using the task-table stamps: gated
				// producer finished → consumer scheduled.
				ginfo, _ := c.Ctrl.GetObject(gatedRef.ID)
				gst, _ := c.Ctrl.GetTask(ginfo.Producer)
				cinfo, _ := c.Ctrl.GetObject(consumer.ID)
				if st, ok := c.Ctrl.GetTask(cinfo.Producer); ok {
					// Signed: the consumer can legitimately be scheduled
					// before the producer's FINISHED stamp lands (the
					// ready publication precedes the stamp), and clamping
					// would bias the mean.
					resolveNs += st.ScheduledNs - gst.FinishedNs
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(resolveNs)/float64(b.N), "park-to-scheduled-ns")
		})
	}
}

// --- E8: §3.2.2 hybrid vs central-only ablation ---

func BenchmarkAblationHybrid(b *testing.B) {
	benchScheduling(b, 1<<20) // local fast path effectively always
}

func BenchmarkAblationCentralOnly(b *testing.B) {
	benchScheduling(b, scheduler.SpillAlways)
}

func benchScheduling(b *testing.B, spill int) {
	c := mustCluster(b, cluster.Config{
		Nodes:           2,
		NodeResources:   types.CPU(8),
		Registry:        noopRegistry(),
		SpillThreshold:  &spill,
		HopLatency:      50 * time.Microsecond,
		DisableEventLog: true,
	})
	d := c.Driver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := d.Submit1(noopCall())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Get(ctx, ref); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: §3.2.1 lineage reconstruction (R6) ---

func BenchmarkReconstruction(b *testing.B) {
	reg := core.NewRegistry()
	square := core.Register1(reg, "sq", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := cluster.New(cluster.Config{
			Nodes:          3,
			NodeResources:  types.CPU(2),
			Registry:       reg,
			SpillThreshold: cluster.SpillThresholdOf(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		d := c.Driver()
		const n = 12
		refs := make([]core.Ref[int], n)
		raw := make([]core.ObjectRef, n)
		for j := range refs {
			refs[j], err = square.Remote(d, j)
			if err != nil {
				b.Fatal(err)
			}
			raw[j] = refs[j].Untyped()
		}
		if _, _, err := d.Wait(ctx, raw, n, time.Minute); err != nil {
			b.Fatal(err)
		}
		c.KillNode(2)
		b.StartTimer()
		for j, r := range refs {
			v, err := core.Get(ctx, d, r)
			if err != nil {
				b.Fatal(err)
			}
			if v != j*j {
				b.Fatalf("reconstructed %d != %d", v, j*j)
			}
		}
		b.StopTimer()
		c.Shutdown()
		b.StartTimer()
	}
}

// --- E10: Fig 2b MCTS (R3) ---

func BenchmarkMCTS(b *testing.B) {
	cfg := mcts.Default(7)
	cfg.Budget = 128
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mcts.SearchSerial(cfg)
		}
	})
	b.Run("parallel-dynamic", func(b *testing.B) {
		reg := core.NewRegistry()
		mcts.RegisterFuncs(reg)
		c := mustCluster(b, cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg, DisableEventLog: true})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mcts.Search(ctx, c.Driver(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E11: Fig 2c RNN graph (R4/R5) ---

func BenchmarkRNNGraph(b *testing.B) {
	cfg := rnn.Default(5)
	newCluster := func(b *testing.B) *cluster.Cluster {
		reg := core.NewRegistry()
		rnn.RegisterFuncs(reg)
		return mustCluster(b, cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg, DisableEventLog: true})
	}
	b.Run("dataflow", func(b *testing.B) {
		c := newCluster(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rnn.RunDataflow(ctx, c.Driver(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-step-barrier", func(b *testing.B) {
		c := newCluster(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rnn.RunBarriered(ctx, c.Driver(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E12: Fig 2a sensor fusion (R1/R5) ---

func BenchmarkSensorFusion(b *testing.B) {
	cfg := sensor.Default(3)
	cfg.Windows = 8
	reg := core.NewRegistry()
	sensor.RegisterFuncs(reg)
	c := mustCluster(b, cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg, DisableEventLog: true})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sensor.Run(ctx, c.Driver(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Latency.Percentile(99))/1e6, "p99-window-ms")
		}
	}
}

// --- E13: R7 event-log overhead ---

func BenchmarkEventLogOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"enabled", false}, {"disabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := mustCluster(b, cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: mode.disable})
			d := c.Driver()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := d.Submit1(noopCall())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Get(ctx, ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E14: lifetime spill/restore hot path ---

func BenchmarkSpillRestore(b *testing.B) {
	ctrl := gcs.NewStore(4)
	tier, err := lifetime.NewDiskSpiller(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	const objSize = 768 << 10
	store := objectstore.New(types.NodeID(types.DeriveTaskID(types.NilTaskID, 1)), ctrl, 1<<20)
	store.SetSpillTier(tier)
	store.SetRefChecker(func(types.ObjectID) bool { return true })
	x := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 2), 0)
	y := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 3), 0)
	payload := make([]byte, objSize)
	if err := store.Put(x, payload); err != nil {
		b.Fatal(err)
	}
	if err := store.Put(y, payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(objSize)
	b.ResetTimer()
	// x and y cannot coexist in memory: each Get restores one and spills
	// the other — one full spill+restore cycle per iteration.
	for i := 0; i < b.N; i++ {
		id := x
		if i%2 == 1 {
			id = y
		}
		if _, ok := store.Get(id); !ok {
			b.Fatal("object lost during spill cycling")
		}
	}
}

// --- E15: chunked pull vs single-shot transfer ---

func BenchmarkChunkedPull(b *testing.B) {
	const objSize = 64 << 20
	run := func(b *testing.B, peers int, cfg lifetime.PullConfig) {
		ctrl := gcs.NewStore(4)
		// 100µs hop latency + 1 GB/s per-stream bandwidth: the regime where
		// parallel chunk streams beat one serial whole-object transfer.
		nw := transport.NewInprocBandwidth(100*time.Microsecond, 1<<30)
		payload := make([]byte, objSize)
		addrs := make(map[types.NodeID]string)
		var locs []types.NodeID
		id := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 7), 0)
		for i := 0; i < peers; i++ {
			src := objectstore.New(types.NodeID(types.DeriveTaskID(types.NilTaskID, uint64(10+i))), ctrl, 0)
			srv := transport.NewServer()
			objectstore.RegisterPullHandler(srv, src)
			addr := fmt.Sprintf("src-%d", i)
			if _, err := nw.Listen(addr, srv); err != nil {
				b.Fatal(err)
			}
			if err := src.Put(id, payload); err != nil {
				b.Fatal(err)
			}
			addrs[src.Node()] = addr
			locs = append(locs, src.Node())
		}
		dst := objectstore.New(types.NodeID(types.DeriveTaskID(types.NilTaskID, 9)), ctrl, 0)
		pm := lifetime.NewPullManager(dst, ctrl, nw, func(n types.NodeID) (string, bool) {
			a, ok := addrs[n]
			return a, ok
		}, cfg)
		defer pm.Close()
		ctx := context.Background()
		b.SetBytes(objSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pm.Fetch(ctx, id, locs); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			dst.Delete(id)
			b.StartTimer()
		}
	}
	b.Run("single-shot", func(b *testing.B) {
		run(b, 1, lifetime.PullConfig{ChunkSize: objSize + 1})
	})
	b.Run("chunked-1peer", func(b *testing.B) {
		run(b, 1, lifetime.PullConfig{ChunkSize: 4 << 20})
	})
	b.Run("chunked-2peer", func(b *testing.B) {
		run(b, 2, lifetime.PullConfig{ChunkSize: 4 << 20})
	})
}

// --- E26: inline trampoline dispatch for tiny tasks (DESIGN.md §15) ---

// BenchmarkInlineDispatch measures the tiny-task round trip — submit one
// no-op, get its result — with the inline fast path on and off on an
// otherwise identical single-node cluster. The queued leg pays the full
// queue → dispatch loop → worker goroutine → completion-wakeup chain per
// task; the inline leg runs the task on the submitting goroutine. Run the
// A/B interleaved (-count) for EXPERIMENTS.md E26.
func BenchmarkInlineDispatch(b *testing.B) {
	for _, mode := range []struct {
		name   string
		inline bool
	}{{"inline", true}, {"queued", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := mustCluster(b, cluster.Config{
				Nodes:           1,
				Registry:        noopRegistry(),
				DisableEventLog: true,
				InlineDispatch:  mode.inline,
			})
			d := c.Driver()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := d.Submit1(noopCall())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Get(ctx, ref); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode.inline && c.Node(0).Scheduler().Inlined() == 0 {
				b.Fatal("inline mode never took the fast path")
			}
		})
	}
}

// BenchmarkInlineDispatchScheduler isolates the tier the fast path
// actually removes: one scheduler.Local with a no-op executor, measuring
// Enqueue → execution-complete per task. Admission — the one synchronous
// AddTask a locally-born task pays, plus ledger adoption — is identical in
// both legs and is done untimed in setup, exactly the state an executor
// retry re-enters Enqueue with. The timed region is then purely the
// dispatch tier: the queued leg pays runnable-queue push → dispatch-loop
// wakeup → per-task goroutine + cancel-watcher → completion signal; the
// inline leg executes during Enqueue. Both legs drain the same completion
// channel so the measured work differs only in the dispatch path.
func BenchmarkInlineDispatchScheduler(b *testing.B) {
	for _, mode := range []struct {
		name   string
		inline bool
	}{{"inline", true}, {"queued", false}} {
		b.Run(mode.name, func(b *testing.B) {
			ctrl := gcs.NewStore(1)
			ctrl.SetEventLogging(false)
			nid := types.NodeID(types.DeriveTaskID(types.NilTaskID, 7001))
			ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "bench", Total: types.CPU(4)})
			store := objectstore.New(nid, ctrl, 0)
			// Batched async ledger, as the real node wires it — without it,
			// every transition is a synchronous encoded table write and the
			// control plane, not the dispatch path, dominates both legs.
			led := lifetime.NewTaskLedger(ctrl)
			led.SetNode(nid)
			led.Start()
			b.Cleanup(led.Stop)
			l := scheduler.NewLocal(scheduler.LocalConfig{
				Node:           nid,
				Total:          types.CPU(4),
				Ctrl:           ctrl,
				Store:          store,
				Ledger:         led,
				SpillThreshold: -1,
				InlineDispatch: mode.inline,
			})
			done := make(chan struct{}, 1)
			exec := func(ctx context.Context, spec types.TaskSpec, args [][]byte) {
				done <- struct{}{}
			}
			l.SetExec(exec)
			l.SetExecInline(exec)
			l.Start()
			b.Cleanup(l.Stop)
			specs := make([]types.TaskSpec, b.N)
			for i := range specs {
				specs[i] = types.TaskSpec{
					ID:        types.DeriveTaskID(types.NilTaskID, uint64(i)+1_000_000),
					Function:  "noop",
					Resources: types.CPU(1),
				}
				// Untimed admission, mirroring Local.record for a
				// locally-born task: table row owned from birth, ledger
				// adopted so the timed transitions take the batched path.
				ctrl.AddTask(types.TaskState{
					Spec: specs[i], Status: types.TaskPending, Node: nid, Owner: nid,
				})
				led.Adopt(specs[i].ID, 0, types.TaskPending)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Enqueue(specs[i]); err != nil {
					b.Fatal(err)
				}
				<-done
			}
			b.StopTimer()
			if mode.inline && l.Inlined() == 0 {
				b.Fatal("inline mode never took the fast path")
			}
		})
	}
}

// BenchmarkInlineTaskThroughput is the tiny-task variant of
// BenchmarkTaskThroughput: one node, zero-dep sub-microsecond bodies,
// windowed steady-state pipelining, inline on vs off. Unlike the
// per-task benchmarks above it keeps the full driver-side submit cost in
// the timed region, so the speedup it reports is what a real tiny-task
// workload sees end to end, with per-submit admission amortized across
// the window rather than removed.
func BenchmarkInlineTaskThroughput(b *testing.B) {
	for _, mode := range []struct {
		name   string
		inline bool
	}{{"inline", true}, {"queued", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := mustCluster(b, cluster.Config{
				Nodes:           1,
				NodeResources:   types.CPU(4),
				Registry:        noopRegistry(),
				DisableEventLog: true,
				InlineDispatch:  mode.inline,
			})
			d := c.Driver()
			ctx := context.Background()
			const window = 200
			runWindow := func(k int) {
				refs := make([]core.ObjectRef, k)
				for i := 0; i < k; i++ {
					ref, err := d.Submit1(noopCall())
					if err != nil {
						b.Fatal(err)
					}
					refs[i] = ref
				}
				if _, _, err := d.Wait(ctx, refs, k, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
			for w := 0; w < 3; w++ {
				runWindow(window)
			}
			b.ResetTimer()
			start := time.Now()
			for done := 0; done < b.N; done += window {
				k := window
				if b.N-done < k {
					k = b.N - done
				}
				runWindow(k)
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "tasks/sec")
			b.StopTimer()
			if mode.inline && c.Node(0).Scheduler().Inlined() == 0 {
				b.Fatal("inline mode never took the fast path")
			}
		})
	}
}
