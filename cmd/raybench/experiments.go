package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/mcts"
	"repro/internal/rl"
	"repro/internal/rnn"
	"repro/internal/scheduler"
	"repro/internal/sensor"
	"repro/internal/stats"
	"repro/internal/types"
)

// noopRegistry registers the empty task used by the latency micros.
func noopRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.Register("noop", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return [][]byte{nil}, nil
	})
	return reg
}

func mustCluster(cfg cluster.Config) *cluster.Cluster {
	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raybench: %v\n", err)
		os.Exit(1)
	}
	return c
}

func noopCall() core.Call {
	return core.Call{Function: "noop", Resources: types.CPU(0.0001)}
}

func iters(quick bool, full, reduced int) int {
	if quick {
		return reduced
	}
	return full
}

// --- E1 ---

func expSubmitLatency(quick bool) {
	c := mustCluster(cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: true})
	defer c.Shutdown()
	d := c.Driver()
	n := iters(quick, 5000, 500)
	sample := stats.NewSample(n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := d.Submit1(noopCall()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		sample.Add(time.Since(start))
	}
	tbl := stats.Table{Header: []string{"metric", "paper", "measured (p50)", "mean", "p99"}}
	tbl.AddRow("task creation", "~35µs", sample.Percentile(50).Round(time.Microsecond),
		sample.Mean().Round(time.Microsecond), sample.Percentile(99).Round(time.Microsecond))
	tbl.Render(os.Stdout)
	fmt.Println("(p50 is the representative figure; the mean absorbs GC pauses on the 1-core host)")
}

// --- E2 ---

func expGetLatency(quick bool) {
	c := mustCluster(cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: true})
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()
	n := iters(quick, 2000, 200)
	sample := stats.NewSample(n)
	for i := 0; i < n; i++ {
		ref, _ := d.Submit1(noopCall())
		// Ensure the task has finished before timing the retrieval.
		if _, _, err := d.Wait(ctx, []core.ObjectRef{ref}, 1, 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		start := time.Now()
		if _, err := d.Get(ctx, ref); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		sample.Add(time.Since(start))
	}
	tbl := stats.Table{Header: []string{"metric", "paper", "measured (mean)", "p50", "p99"}}
	tbl.AddRow("result retrieval", "~110µs", sample.Mean(), sample.Percentile(50), sample.Percentile(99))
	tbl.Render(os.Stdout)
	fmt.Println("(the paper's 110µs is an IPC round trip to a separate store process; workers here")
	fmt.Println(" share the node's address space, so retrieval of a local object is a map lookup)")
}

// --- E3 / E4 ---

func e2eSample(d *core.Client, call core.Call, n int) (*stats.Sample, error) {
	ctx := context.Background()
	sample := stats.NewSample(n)
	for i := 0; i < n; i++ {
		start := time.Now()
		ref, err := d.Submit1(call)
		if err != nil {
			return nil, err
		}
		if _, err := d.Get(ctx, ref); err != nil {
			return nil, err
		}
		sample.Add(time.Since(start))
	}
	return sample, nil
}

func expEndToEndLocal(quick bool) {
	c := mustCluster(cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: true})
	defer c.Shutdown()
	sample, err := e2eSample(c.Driver(), noopCall(), iters(quick, 2000, 200))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tbl := stats.Table{Header: []string{"metric", "paper", "measured (mean)", "p50", "p99"}}
	tbl.AddRow("end-to-end local", "~290µs", sample.Mean().Round(time.Microsecond),
		sample.Percentile(50).Round(time.Microsecond), sample.Percentile(99).Round(time.Microsecond))
	tbl.Render(os.Stdout)
}

func expEndToEndRemote(quick bool) {
	// Two nodes; the task demands a GPU that only the remote node has,
	// forcing spill -> global placement -> remote execution -> result
	// transfer back. Hop latency is zero so the measurement isolates the
	// extra software round trips; on a real network each of the four hops
	// adds one propagation delay on top (the paper's gap to ~1ms).
	c := mustCluster(cluster.Config{
		Nodes: 2,
		PerNodeResources: []types.Resources{
			types.CPU(4),
			{types.ResCPU: 4, types.ResGPU: 1},
		},
		Registry:        noopRegistry(),
		DisableEventLog: true,
	})
	defer c.Shutdown()
	local, err := e2eSample(c.Driver(), noopCall(), iters(quick, 1000, 100))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	remoteCall := core.Call{Function: "noop", Resources: types.Resources{types.ResGPU: 0.001}}
	remote, err := e2eSample(c.Driver(), remoteCall, iters(quick, 500, 50))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	ratio := float64(remote.Mean()) / float64(local.Mean())
	tbl := stats.Table{Header: []string{"metric", "paper", "measured (mean)", "p50"}}
	tbl.AddRow("end-to-end local", "~290µs", local.Mean().Round(time.Microsecond), local.Percentile(50).Round(time.Microsecond))
	tbl.AddRow("end-to-end remote", "~1ms", remote.Mean().Round(time.Microsecond), remote.Percentile(50).Round(time.Microsecond))
	tbl.AddRow("remote/local ratio", "~3.4x", fmt.Sprintf("%.1fx", ratio), "")
	tbl.Render(os.Stdout)
}

// --- E5 ---

func expRLComparison(quick bool) {
	cfg := rl.Default()
	if quick {
		cfg.StepsPerIter = 4
		cfg.Iters = 1
	}
	fmt.Printf("workload: %d sims x %d steps x %d iters, step=%v, gpu-eval=%v\n",
		cfg.NumSims, cfg.StepsPerIter, cfg.Iters, cfg.StepCost, cfg.EvalCost)
	fmt.Printf("BSP driver overhead (Spark stand-in, calibrated): %v/task\n", bsp.DefaultDriverOverhead)

	serial := rl.RunSerial(cfg)
	engine := bsp.New(bsp.Config{Executors: cfg.NumSims, DriverOverhead: bsp.DefaultDriverOverhead})
	bspRep := rl.RunBSP(cfg, engine)

	reg := core.NewRegistry()
	rl.RegisterFuncs(reg)
	c := mustCluster(cluster.Config{
		Nodes:           1,
		NodeResources:   types.Resources{types.ResCPU: float64(cfg.NumSims), types.ResGPU: 1},
		Registry:        reg,
		DisableEventLog: true,
	})
	defer c.Shutdown()
	coreRep, err := rl.RunCore(context.Background(), cfg, c.Driver())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}

	vsSerial := func(d time.Duration) string {
		return fmt.Sprintf("%.1fx", float64(serial.Elapsed)/float64(d))
	}
	tbl := stats.Table{Header: []string{"implementation", "elapsed", "speedup vs serial", "final return"}}
	tbl.AddRow("single-thread", serial.Elapsed.Round(time.Millisecond), "1.0x", fmt.Sprintf("%.4f", serial.FinalReturn()))
	tbl.AddRow("BSP (Spark stand-in)", bspRep.Elapsed.Round(time.Millisecond), vsSerial(bspRep.Elapsed), fmt.Sprintf("%.4f", bspRep.FinalReturn()))
	tbl.AddRow("this system", coreRep.Elapsed.Round(time.Millisecond), vsSerial(coreRep.Elapsed), fmt.Sprintf("%.4f", coreRep.FinalReturn()))
	tbl.Render(os.Stdout)
	fmt.Printf("paper: Spark 9x slower than serial; ours 7x faster than serial; ours 63x faster than Spark\n")
	fmt.Printf("measured: BSP %.1fx slower than serial; ours %.1fx faster; ours %.1fx faster than BSP\n",
		float64(bspRep.Elapsed)/float64(serial.Elapsed),
		float64(serial.Elapsed)/float64(coreRep.Elapsed),
		float64(bspRep.Elapsed)/float64(coreRep.Elapsed))
}

// --- E6 ---

func expWaitPipelining(quick bool) {
	cfg := rl.Default()
	// Heavy-tailed step durations: ~1 in 3 steps of any simulator runs 4x
	// longer. A per-step barrier pays the max over all simulators every
	// step; wait-pipelining lets each simulator chain run at its own pace.
	cfg.StepJitterEvery = 3
	cfg.StepJitterFactor = 4
	if quick {
		cfg.StepsPerIter = 4
		cfg.Iters = 1
	}
	fmt.Printf("heavy-tail model: 1-in-%d steps cost %dx (per-sim deterministic)\n",
		cfg.StepJitterEvery, cfg.StepJitterFactor)
	reg := core.NewRegistry()
	rl.RegisterFuncs(reg)
	c := mustCluster(cluster.Config{
		Nodes:           1,
		NodeResources:   types.Resources{types.ResCPU: float64(cfg.NumSims), types.ResGPU: 1},
		Registry:        reg,
		DisableEventLog: true,
	})
	defer c.Shutdown()
	ctx := context.Background()
	barriered, err := rl.RunCore(ctx, cfg, c.Driver())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	pipelined, err := rl.RunPipelined(ctx, cfg, c.Driver(), cfg.NumSims/4)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tbl := stats.Table{Header: []string{"variant", "elapsed", "final return"}}
	tbl.AddRow("per-step barrier (BSP-shaped)", barriered.Elapsed.Round(time.Millisecond), fmt.Sprintf("%.4f", barriered.FinalReturn()))
	tbl.AddRow("wait-pipelined (Sec 4.2)", pipelined.Elapsed.Round(time.Millisecond), fmt.Sprintf("%.4f", pipelined.FinalReturn()))
	tbl.Render(os.Stdout)
	fmt.Printf("speedup from wait-pipelining under stragglers: %.2fx (identical learning results)\n",
		float64(barriered.Elapsed)/float64(pipelined.Elapsed))
}

// --- E7 ---

func expThroughput(quick bool) {
	// Control-plane scaling: concurrent mixed put/get against the sharded
	// kv store, sweeping shard counts.
	ops := iters(quick, 200000, 20000)
	workers := 16
	tbl := stats.Table{Header: []string{"kv shards", "ops/sec"}}
	var base float64
	for _, shards := range []int{1, 2, 4, 8, 16} {
		store := kv.New(shards)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < ops/workers; i++ {
					key := fmt.Sprintf("task:%d:%d", w, i)
					store.Put(key, []byte("x"))
					store.Get(key)
				}
			}(w)
		}
		wg.Wait()
		rate := stats.Rate(ops*2, time.Since(start))
		if shards == 1 {
			base = rate
		}
		tbl.AddRow(shards, fmt.Sprintf("%.0f (%.1fx)", rate, rate/base))
	}
	tbl.Render(os.Stdout)

	// End-to-end task throughput through the full stack, measured in the
	// steady state: submissions flow in bounded windows so the runnable
	// queues stay at production depth instead of absorbing one giant burst.
	reg := noopRegistry()
	c := mustCluster(cluster.Config{Nodes: 4, NodeResources: types.CPU(4), Registry: reg, DisableEventLog: true})
	defer c.Shutdown()
	d := c.Driver()
	n := iters(quick, 20000, 2000)
	window := 500
	ctx := context.Background()
	start := time.Now()
	for done := 0; done < n; done += window {
		k := window
		if n-done < k {
			k = n - done
		}
		refs := make([]core.ObjectRef, k)
		for i := 0; i < k; i++ {
			ref, err := d.Submit1(noopCall())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			refs[i] = ref
		}
		if _, _, err := d.Wait(ctx, refs, k, time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	total := time.Since(start)
	fmt.Printf("task throughput (4 nodes, windows of %d): %.0f tasks/s completed (n=%d)\n",
		window, stats.Rate(n, total), n)
	fmt.Printf("paper targets millions of tasks/s cluster-wide via sharding + bottom-up scheduling;\n")
	fmt.Printf("the shard sweep above shows the scaling mechanism (flat on this single-core host,\n")
	fmt.Printf("where independent shard locks cannot run concurrently anyway).\n")
}

// --- E8 ---

func expHybridAblation(quick bool) {
	n := iters(quick, 3000, 300)
	run := func(spill int) (*stats.Sample, time.Duration) {
		c := mustCluster(cluster.Config{
			Nodes:           2,
			NodeResources:   types.CPU(8),
			Registry:        noopRegistry(),
			SpillThreshold:  &spill,
			HopLatency:      50 * time.Microsecond,
			DisableEventLog: true,
		})
		defer c.Shutdown()
		d := c.Driver()
		ctx := context.Background()
		sample := stats.NewSample(n)
		start := time.Now()
		for i := 0; i < n; i++ {
			s := time.Now()
			ref, _ := d.Submit1(noopCall())
			if _, err := d.Get(ctx, ref); err != nil {
				fmt.Fprintln(os.Stderr, err)
				break
			}
			sample.Add(time.Since(s))
		}
		return sample, time.Since(start)
	}
	hybrid, hybridTotal := run(1 << 20) // effectively never spill: local fast path
	central, centralTotal := run(scheduler.SpillAlways)
	tbl := stats.Table{Header: []string{"scheduling", "e2e mean", "e2e p99", "tasks/sec"}}
	tbl.AddRow("hybrid (local fast path)", hybrid.Mean().Round(time.Microsecond), hybrid.Percentile(99).Round(time.Microsecond), fmt.Sprintf("%.0f", stats.Rate(n, hybridTotal)))
	tbl.AddRow("central-only (ablation)", central.Mean().Round(time.Microsecond), central.Percentile(99).Round(time.Microsecond), fmt.Sprintf("%.0f", stats.Rate(n, centralTotal)))
	tbl.Render(os.Stdout)
	fmt.Printf("hybrid advantage: %.1fx lower mean latency — the Section 3.2.2 argument\n",
		float64(central.Mean())/float64(hybrid.Mean()))
}

// --- E9 ---

func expReconstruction(quick bool) {
	reg := core.NewRegistry()
	square := core.Register1(reg, "sq", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})
	c := mustCluster(cluster.Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: cluster.SpillThresholdOf(0),
		// Round-robin placement guarantees every node produces objects, so
		// the kill below is certain to lose sole copies.
		GlobalPolicy: &scheduler.RoundRobinPolicy{},
	})
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()
	n := iters(quick, 24, 9)
	refs := make([]core.Ref[int], n)
	raw := make([]core.ObjectRef, n)
	for i := range refs {
		r, err := square.Remote(d, i)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		refs[i] = r
		raw[i] = r.Untyped()
	}
	if _, _, err := d.Wait(ctx, raw, n, time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	// Materialize only the first half on the driver, so the second half's
	// sole copies stay on their producing nodes; killing a node then forces
	// genuine lineage replay for whatever lived there.
	normalStart := time.Now()
	for _, r := range refs[:n/2] {
		if _, err := core.Get(ctx, d, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	normal := time.Since(normalStart)

	lostBefore := countLost(c)
	c.KillNode(2) // lose a third of the cluster and its objects
	lost := countLost(c) - lostBefore
	recoverStart := time.Now()
	correct := 0
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		if v == i*i {
			correct++
		}
	}
	recovery := time.Since(recoverStart)
	tbl := stats.Table{Header: []string{"phase", "elapsed", "values correct"}}
	tbl.AddRow(fmt.Sprintf("get %d values (no failure)", n/2), normal.Round(time.Millisecond), fmt.Sprintf("%d/%d", n/2, n/2))
	tbl.AddRow(fmt.Sprintf("get all %d after node kill (%d objects LOST, replayed)", n, lost), recovery.Round(time.Millisecond), fmt.Sprintf("%d/%d", correct, n))
	tbl.Render(os.Stdout)
	fmt.Printf("paper: components restart + lineage replay recovers lost data transparently (R6)\n")
}

// countLost counts control-plane objects in the LOST state.
func countLost(c *cluster.Cluster) int {
	lost := 0
	for _, o := range c.Ctrl.Objects() {
		if o.State == types.ObjectLost {
			lost++
		}
	}
	return lost
}

// --- E10 ---

func expMCTS(quick bool) {
	cfg := mcts.Default(7)
	cfg.Budget = iters(quick, 512, 128)
	cfg.Parallelism = 8
	serial := mcts.SearchSerial(cfg)
	reg := core.NewRegistry()
	mcts.RegisterFuncs(reg)
	c := mustCluster(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg, DisableEventLog: true})
	defer c.Shutdown()
	par, err := mcts.Search(context.Background(), c.Driver(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tbl := stats.Table{Header: []string{"search", "elapsed", "sims", "tree nodes", "best action"}}
	tbl.AddRow("serial", serial.Elapsed.Round(time.Millisecond), serial.Simulations, serial.TreeNodes, serial.BestAction)
	tbl.AddRow("parallel (dynamic tasks)", par.Elapsed.Round(time.Millisecond), par.Simulations, par.TreeNodes, par.BestAction)
	tbl.Render(os.Stdout)
	fmt.Printf("speedup %.1fx with adaptive task spawning (R3); both found action %d\n",
		float64(serial.Elapsed)/float64(par.Elapsed), par.BestAction)
}

// --- E11 ---

func expRNN(quick bool) {
	cfg := rnn.Default(5)
	if quick {
		cfg.Timesteps = 4
	}
	reg := core.NewRegistry()
	rnn.RegisterFuncs(reg)
	c := mustCluster(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg, DisableEventLog: true})
	defer c.Shutdown()
	ctx := context.Background()
	serial := rnn.RunSerial(cfg)
	flow, err := rnn.RunDataflow(ctx, c.Driver(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	barrier, err := rnn.RunBarriered(ctx, c.Driver(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tbl := stats.Table{Header: []string{"driver", "elapsed", "tasks"}}
	tbl.AddRow("serial", serial.Elapsed.Round(time.Millisecond), serial.Tasks)
	tbl.AddRow("dataflow (fine deps, R5)", flow.Elapsed.Round(time.Millisecond), flow.Tasks)
	tbl.AddRow("per-timestep barrier (BSP-ish)", barrier.Elapsed.Round(time.Millisecond), barrier.Tasks)
	tbl.Render(os.Stdout)
	fmt.Printf("dataflow vs barrier: %.2fx; heterogeneous layer costs %v..%v (R4)\n",
		float64(barrier.Elapsed)/float64(flow.Elapsed), cfg.LayerCost(0), cfg.LayerCost(cfg.Layers-1))
}

// --- E12 ---

func expSensor(quick bool) {
	cfg := sensor.Default(3)
	cfg.Windows = iters(quick, 30, 8)
	reg := core.NewRegistry()
	sensor.RegisterFuncs(reg)
	c := mustCluster(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg, DisableEventLog: true})
	defer c.Shutdown()
	rep, err := sensor.Run(context.Background(), c.Driver(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tbl := stats.Table{Header: []string{"metric", "value"}}
	tbl.AddRow("streams", cfg.Streams)
	tbl.AddRow("windows processed", rep.Windows)
	tbl.AddRow("per-window latency p50", rep.Latency.Percentile(50).Round(time.Microsecond))
	tbl.AddRow("per-window latency p99", rep.Latency.Percentile(99).Round(time.Microsecond))
	tbl.AddRow("total elapsed", rep.Elapsed.Round(time.Millisecond))
	tbl.Render(os.Stdout)
	fmt.Printf("bounded per-update latency while %d windows pipeline (R1, Fig 2a)\n", cfg.MaxInFlight)
}

// --- E13 ---

func expEventLogOverhead(quick bool) {
	n := iters(quick, 5000, 500)
	run := func(disable bool) time.Duration {
		c := mustCluster(cluster.Config{Nodes: 1, Registry: noopRegistry(), DisableEventLog: disable})
		defer c.Shutdown()
		d := c.Driver()
		refs := make([]core.ObjectRef, n)
		start := time.Now()
		for i := range refs {
			refs[i], _ = d.Submit1(noopCall())
		}
		if _, _, err := d.Wait(context.Background(), refs, n, 2*time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		return time.Since(start)
	}
	withLog := run(false)
	withoutLog := run(true)
	tbl := stats.Table{Header: []string{"event log", "elapsed", "tasks/sec"}}
	tbl.AddRow("enabled", withLog.Round(time.Millisecond), fmt.Sprintf("%.0f", stats.Rate(n, withLog)))
	tbl.AddRow("disabled", withoutLog.Round(time.Millisecond), fmt.Sprintf("%.0f", stats.Rate(n, withoutLog)))
	tbl.Render(os.Stdout)
	fmt.Printf("profiling overhead: %.1f%% — the R7 tooling is effectively free\n",
		(float64(withLog)/float64(withoutLog)-1)*100)
}
