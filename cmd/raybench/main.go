// Command raybench regenerates every quantitative artifact of the paper
// (see DESIGN.md §5 for the experiment index E1–E13). Each experiment
// prints a paper-style table together with the paper's claimed value, so
// the output can be pasted into EXPERIMENTS.md.
//
//	raybench            # run everything
//	raybench -exp E5    # one experiment
//	raybench -quick     # smaller parameters (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one reproducible artifact.
type experiment struct {
	id    string
	title string
	run   func(quick bool)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (E1..E13 or all)")
	quick := flag.Bool("quick", false, "reduced parameters for fast runs")
	flag.Parse()

	experiments := []experiment{
		{"E1", "§4.1 task creation latency (paper: ~35µs)", expSubmitLatency},
		{"E2", "§4.1 result retrieval latency (paper: ~110µs)", expGetLatency},
		{"E3", "§4.1 end-to-end, local (paper: ~290µs)", expEndToEndLocal},
		{"E4", "§4.1 end-to-end, remote (paper: ~1ms, ~3.4x local)", expEndToEndRemote},
		{"E5", "§4.2 RL workload: serial vs BSP(Spark) vs ours (paper: Spark 9x slower than serial, ours 7x faster, 63x vs Spark)", expRLComparison},
		{"E6", "§4.2 wait-based pipelining under stragglers", expWaitPipelining},
		{"E7", "§3.2.1 control-plane sharding + task throughput (R2)", expThroughput},
		{"E8", "§3.2.2 hybrid vs central-only scheduling ablation", expHybridAblation},
		{"E9", "§3.2.1 fault tolerance: lineage reconstruction (R6)", expReconstruction},
		{"E10", "Fig 2b MCTS: dynamic task graph speedup (R3)", expMCTS},
		{"E11", "Fig 2c RNN: dataflow vs per-step barriers (R4/R5)", expRNN},
		{"E12", "Fig 2a sensor fusion: streaming latency (R1/R5)", expSensor},
		{"E13", "R7 event-log overhead", expEventLogOverhead},
	}

	want := strings.ToUpper(*exp)
	ran := 0
	sort.SliceStable(experiments, func(i, j int) bool { return numOf(experiments[i].id) < numOf(experiments[j].id) })
	for _, e := range experiments {
		if want != "ALL" && e.id != want {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		e.run(*quick)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "raybench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func numOf(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}
