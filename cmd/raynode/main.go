// Command raynode runs one cluster node as an OS process, over real TCP —
// the multi-process deployment of the architecture in the paper's Figure 3.
//
// Head node (control plane + global scheduler + one worker node + web
// dashboard):
//
//	raynode -head -gcs 127.0.0.1:6380 -listen 127.0.0.1:6381 -http :8265
//
// Sharded, fault-tolerant control plane (N supervised shard services with
// per-shard WAL + snapshot on ports 6381..638N after the map service; a
// killed shard restarts from disk automatically):
//
//	raynode -head -gcs 127.0.0.1:6380 -gcs-shards 3 -gcs-data /var/ray/gcs -listen 127.0.0.1:6390
//
// Additional worker nodes (any number, any machine that can reach the
// head; the worker auto-detects whether the head is sharded):
//
//	raynode -join 127.0.0.1:6380 -listen 127.0.0.1:6382 -cpu 8 -gpu 1
//
// Demo driver (runs a small workload against the cluster from the head):
//
//	raynode -head -gcs :6380 -listen 127.0.0.1:6381 -demo
//
// Every raynode carries the same built-in function registry (Go cannot ship
// closures at runtime, so functions are compiled in — the registry is the
// analogue of the paper prototype's preloaded worker code).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/autoscale"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/gcs"
	"repro/internal/mcts"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/rl"
	"repro/internal/rnn"
	"repro/internal/scheduler"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	var (
		head     = flag.Bool("head", false, "run the head node (control plane + global scheduler)")
		gcsAddr  = flag.String("gcs", "127.0.0.1:6380", "control-plane service address (serve when -head, dial when -join)")
		join     = flag.String("join", "", "head control-plane address to join as a worker node")
		listen   = flag.String("listen", "127.0.0.1:6381", "this node's transport address")
		httpAdr  = flag.String("http", "", "dashboard HTTP address (head only), e.g. :8265")
		cpu      = flag.Float64("cpu", 8, "CPU capacity of this node")
		gpu      = flag.Float64("gpu", 0, "GPU capacity of this node")
		shards   = flag.Int("shards", 8, "control-plane kv striping per store/shard (head only)")
		gcsNum   = flag.Int("gcs-shards", 0, "run the control plane as N supervised shard services with per-shard WAL/snapshot (head only; 0 = single in-memory service)")
		gcsData  = flag.String("gcs-data", "raynode-data/gcs", "data directory for control-plane shard WALs and snapshots (sharded mode)")
		spill    = flag.Int("spill", 16, "local scheduler spill threshold")
		inline   = flag.Bool("inline-dispatch", false, "run eligible tiny tasks inline on the submitting goroutine (trampoline dispatch)")
		storeCap = flag.Int64("store-cap", 0, "object store memory capacity in bytes (0 = unlimited)")
		spillDir = flag.String("spill-dir", "", "directory for the object store's disk spill tier (empty = disabled)")
		spillCap = flag.Int64("spill-budget", 0, "disk budget for the spill tier in bytes (0 = unlimited)")
		autoMax  = flag.Int("autoscale-max", 0, "enable the autoscaler (head only): grow up to N nodes total by booting extra in-process worker nodes on ports derived from -listen (+1000..), and drain idle ones back down (0 = disabled)")
		demo     = flag.Bool("demo", false, "run the demo workload after boot (head only)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the dashboard mux (head with -http only)")
	)
	flag.Parse()

	if !*head && *join == "" {
		fmt.Fprintln(os.Stderr, "raynode: need -head or -join <addr>")
		os.Exit(2)
	}

	reg := builtinRegistry()
	// One process-wide metrics registry: the node instruments into it, and
	// on a sharded head the GCS supervisor's WAL histograms join it, so
	// everything ships together in the node's heartbeat telemetry.
	procMetrics := metrics.NewRegistry()
	res := types.Resources{types.ResCPU: *cpu}
	if *gpu > 0 {
		res[types.ResGPU] = *gpu
	}

	var ctrl gcs.API
	var super *gcs.Supervisor
	if *head {
		if *gcsNum > 0 {
			// Sharded control plane: N supervised shard services, each with
			// its own WAL + snapshot, on consecutive ports after the map
			// service. A crashed shard is restarted from disk automatically.
			shardAddrs, err := derivePortAddrs(*gcsAddr, *gcsNum)
			if err != nil {
				log.Fatalf("raynode: shard addresses: %v", err)
			}
			for _, a := range shardAddrs {
				if a == *listen {
					log.Fatalf("raynode: -listen %s collides with control-plane shard address %s "+
						"(shards occupy the %d ports after -gcs %s); pick a -listen outside that range",
						*listen, a, *gcsNum, *gcsAddr)
				}
			}
			super, err = gcs.NewSupervisor(gcs.SupervisorConfig{
				Shards:      *gcsNum,
				Network:     transport.TCP{},
				MapAddr:     *gcsAddr,
				ShardAddrs:  shardAddrs,
				DataDir:     *gcsData,
				SubShards:   *shards,
				AutoRestart: 200 * time.Millisecond,
				Metrics:     procMetrics,
			})
			if err != nil {
				log.Fatalf("raynode: start sharded control plane: %v", err)
			}
			defer super.Close()
			sh, err := gcs.NewSharded(gcs.ShardedConfig{Network: transport.TCP{}, MapAddr: *gcsAddr})
			if err != nil {
				log.Fatalf("raynode: connect sharded control plane: %v", err)
			}
			defer sh.Close()
			ctrl = sh
			log.Printf("sharded control plane: map on %s, %d shards on %v (data in %s)",
				*gcsAddr, *gcsNum, shardAddrs, *gcsData)
		} else {
			localStore := gcs.NewStore(*shards)
			ctrl = localStore
			srv := transport.NewServer()
			gcs.RegisterService(srv, localStore)
			l, err := (transport.TCP{}).Listen(*gcsAddr, srv)
			if err != nil {
				log.Fatalf("raynode: serve control plane: %v", err)
			}
			defer l.Close()
			log.Printf("control plane serving on %s (%d shards)", *gcsAddr, *shards)
		}
	} else {
		// Probe for a sharded head first: the map fetch succeeds only when
		// the address serves MethodShardMap; otherwise fall back to the
		// single-service protocol.
		if sh, err := gcs.NewSharded(gcs.ShardedConfig{Network: transport.TCP{}, MapAddr: *join}); err == nil {
			defer sh.Close()
			ctrl = sh
			log.Printf("joined sharded control plane at %s (%d shards)", *join, sh.Map().NumShards())
		} else {
			client, err := (transport.TCP{}).Dial(*join)
			if err != nil {
				log.Fatalf("raynode: join %s: %v", *join, err)
			}
			defer client.Close()
			ctrl = gcs.NewRemote(client)
			log.Printf("joined control plane at %s", *join)
		}
	}

	n, err := node.New(node.Config{
		Resources:         res,
		StoreCapacity:     *storeCap,
		SpillDir:          *spillDir,
		SpillBudget:       *spillCap,
		Network:           transport.TCP{},
		ListenAddr:        *listen,
		Ctrl:              ctrl,
		Registry:          reg,
		SpillThreshold:    *spill,
		InlineDispatch:    *inline,
		HeartbeatInterval: 100 * time.Millisecond,
		Metrics:           procMetrics,
	})
	if err != nil {
		log.Fatalf("raynode: start node: %v", err)
	}
	defer n.Shutdown()
	log.Printf("node %v up at %s with %v", n.ID(), *listen, res)

	if *head {
		calls := newTCPCaller()
		g := scheduler.NewGlobal(scheduler.GlobalConfig{
			Ctrl:   ctrl,
			Policy: scheduler.LocalityPolicy{},
			Assign: func(nid types.NodeID, addr string, spec types.TaskSpec) error {
				return calls.call(addr, node.AssignMethod, codec.MustEncode(spec))
			},
			Reserve: func(nid types.NodeID, addr string, group types.PlacementGroupID, bundle int, res types.Resources) error {
				return calls.call(addr, node.ReserveMethod, codec.MustEncode(node.ReserveReq{Group: group, Bundle: bundle, Res: res}))
			},
			ReleaseGroup: func(nid types.NodeID, addr string, group types.PlacementGroupID, removed bool) error {
				return calls.call(addr, node.GroupReleaseMethod, codec.MustEncode(node.GroupReleaseReq{Group: group, Removed: removed}))
			},
			FailTask: func(nid types.NodeID, addr string, spec types.TaskSpec, reason string) error {
				return calls.call(addr, node.FailTaskMethod, codec.MustEncode(node.FailTaskReq{Spec: spec, Reason: reason}))
			},
		})
		g.Start()
		defer g.Stop()
		log.Printf("global scheduler running (policy: locality)")

		var as *autoscale.Autoscaler
		if *autoMax > 0 {
			prov := &localProvisioner{
				base:     *listen,
				network:  transport.TCP{},
				ctrl:     ctrl,
				registry: reg,
				res:      res,
				spill:    *spill,
				inline:   *inline,
				storeCap: *storeCap,
			}
			defer prov.shutdownAll()
			headID := n.ID()
			as = autoscale.New(autoscale.Config{
				Ctrl:        ctrl,
				Provisioner: prov,
				Metrics:     procMetrics,
				Policy: autoscale.Policy{
					MaxNodes:  *autoMax,
					Protected: func(id types.NodeID) bool { return id == headID },
				},
			})
			as.Start()
			defer as.Stop()
			log.Printf("autoscaler enabled (up to %d nodes)", *autoMax)
		}

		if *httpAdr != "" {
			var opts []dashboard.Option
			if super != nil {
				opts = append(opts, dashboard.WithShardStats(super.Stats))
			}
			if as != nil {
				opts = append(opts, dashboard.WithAutoscaler(as.Status))
			}
			if *pprofOn {
				opts = append(opts, dashboard.WithPprof())
			}
			handler := dashboard.Handler(ctrl, opts...)
			go func() {
				log.Printf("dashboard on http://%s", *httpAdr)
				if err := http.ListenAndServe(*httpAdr, handler); err != nil {
					log.Printf("dashboard: %v", err)
				}
			}()
		}
		if *demo {
			runDemo(n)
			return
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}

// localProvisioner implements autoscale.NodeProvisioner for raynode: each
// scale-up boots one more worker node inside this process, listening on a
// port derived from the head's -listen (+1000, +1001, …). Drained nodes
// deregister and shut themselves down; the provisioner only tracks
// handles so process exit stops any survivors.
type localProvisioner struct {
	base     string
	network  transport.Network
	ctrl     gcs.API
	registry *core.Registry
	res      types.Resources
	spill    int
	inline   bool
	storeCap int64

	mu    sync.Mutex
	next  int
	nodes []*node.Node
}

func (p *localProvisioner) ProvisionNode() error {
	p.mu.Lock()
	idx := p.next
	p.next++
	p.mu.Unlock()
	addr, err := derivePortAddr(p.base, 1000+idx)
	if err != nil {
		return err
	}
	w, err := node.New(node.Config{
		Resources:         p.res.Clone(),
		StoreCapacity:     p.storeCap,
		Network:           p.network,
		ListenAddr:        addr,
		Ctrl:              p.ctrl,
		Registry:          p.registry,
		SpillThreshold:    p.spill,
		InlineDispatch:    p.inline,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.nodes = append(p.nodes, w)
	p.mu.Unlock()
	log.Printf("autoscaler: provisioned node %v at %s", w.ID(), addr)
	return nil
}

func (p *localProvisioner) shutdownAll() {
	p.mu.Lock()
	nodes := append([]*node.Node(nil), p.nodes...)
	p.mu.Unlock()
	for _, w := range nodes {
		w.Shutdown()
	}
}

// derivePortAddr returns base's address shifted by off ports.
func derivePortAddr(base string, off int) (string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return "", err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", err
	}
	return net.JoinHostPort(host, strconv.Itoa(port+off)), nil
}

// derivePortAddrs returns n addresses on consecutive ports after base
// (host:p -> host:p+1 … host:p+n), the shard services' listen addresses.
func derivePortAddrs(base string, n int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		out[i] = net.JoinHostPort(host, strconv.Itoa(port+1+i))
	}
	return out, nil
}

// tcpCaller delivers global-scheduler RPCs (placements, gang reservations,
// releases, fail requests) over TCP with connection caching.
type tcpCaller struct {
	mu    sync.Mutex
	conns map[string]transport.Client
}

func newTCPCaller() *tcpCaller {
	return &tcpCaller{conns: make(map[string]transport.Client)}
}

func (t *tcpCaller) call(addr, method string, payload []byte) error {
	t.mu.Lock()
	client, ok := t.conns[addr]
	if !ok {
		var err error
		client, err = (transport.TCP{}).Dial(addr)
		if err != nil {
			t.mu.Unlock()
			return err
		}
		t.conns[addr] = client
	}
	t.mu.Unlock()
	if _, err := client.Call(method, payload); err != nil {
		t.mu.Lock()
		if t.conns[addr] == client {
			client.Close()
			delete(t.conns, addr)
		}
		t.mu.Unlock()
		return err
	}
	return nil
}

// builtinRegistry holds the functions every raynode can execute: the demo
// primitives plus all workload functions, so any node can serve any
// experiment.
func builtinRegistry() *core.Registry {
	reg := core.NewRegistry()
	core.Register1(reg, "demo.square", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})
	core.Register2(reg, "demo.add", func(tc *core.TaskContext, a, b int) (int, error) {
		return a + b, nil
	})
	core.Register1(reg, "demo.sleep", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	rl.RegisterFuncs(reg)
	mcts.RegisterFuncs(reg)
	rnn.RegisterFuncs(reg)
	sensor.RegisterFuncs(reg)
	return reg
}

// runDemo exercises the cluster: a fan-out of squares, a dependent add, and
// a wait over heterogeneous sleeps.
func runDemo(n *node.Node) {
	d := core.NewClient(n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	log.Printf("demo: submitting 16 squares")
	var refs []core.ObjectRef
	for i := 0; i < 16; i++ {
		ref, err := d.Submit1(core.Call{Function: "demo.square", Args: []types.Arg{core.Val(i)}})
		if err != nil {
			log.Fatalf("demo: %v", err)
		}
		refs = append(refs, ref)
	}
	sum := 0
	for _, r := range refs {
		raw, err := d.Get(ctx, r)
		if err != nil {
			log.Fatalf("demo get: %v", err)
		}
		v, _ := codec.DecodeAs[int](raw)
		sum += v
	}
	log.Printf("demo: sum of squares 0..15 = %d (want 1240)", sum)

	a, _ := d.Submit1(core.Call{Function: "demo.square", Args: []types.Arg{core.Val(6)}})
	b, _ := d.Submit1(core.Call{Function: "demo.square", Args: []types.Arg{core.Val(8)}})
	c, err := d.Submit1(core.Call{Function: "demo.add", Args: []types.Arg{core.RefOf(a), core.RefOf(b)}})
	if err != nil {
		log.Fatalf("demo: %v", err)
	}
	raw, err := d.Get(ctx, c)
	if err != nil {
		log.Fatalf("demo: %v", err)
	}
	v, _ := codec.DecodeAs[int](raw)
	log.Printf("demo: add(square(6), square(8)) = %d (want 100)", v)

	fast, _ := d.Submit1(core.Call{Function: "demo.sleep", Args: []types.Arg{core.Val(10)}})
	slow, _ := d.Submit1(core.Call{Function: "demo.sleep", Args: []types.Arg{core.Val(2000)}})
	ready, pending, err := d.Wait(ctx, []core.ObjectRef{fast, slow}, 1, 5*time.Second)
	if err != nil {
		log.Fatalf("demo: %v", err)
	}
	log.Printf("demo: wait(1 of 2): %d ready, %d still pending (straggler tolerated)", len(ready), len(pending))
	log.Printf("demo: done")
}
