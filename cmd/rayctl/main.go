// Command rayctl inspects a running cluster through the head node's
// dashboard endpoints — the "Debugging Tools / Profiling Tools" of the
// paper's Figure 3 (R7). Because all state lives in the centralized control
// plane, rayctl needs nothing but the dashboard URL.
//
//	rayctl -addr http://127.0.0.1:8265 overview
//	rayctl -addr http://127.0.0.1:8265 nodes
//	rayctl -addr http://127.0.0.1:8265 tasks [task-id-hex]
//	rayctl -addr http://127.0.0.1:8265 objects
//	rayctl -addr http://127.0.0.1:8265 groups
//	rayctl -addr http://127.0.0.1:8265 autoscale
//	rayctl -addr http://127.0.0.1:8265 jobs
//	rayctl -addr http://127.0.0.1:8265 stop-job <job-id-hex>
//	rayctl -addr http://127.0.0.1:8265 drain <node-id-hex>
//	rayctl -addr http://127.0.0.1:8265 profile
//	rayctl -addr http://127.0.0.1:8265 trace -o trace.json   # chrome://tracing
//	rayctl -addr http://127.0.0.1:8265 metrics [filter]      # one-shot metric dump
//	rayctl -addr http://127.0.0.1:8265 top                   # live cluster view (ctrl-C to exit)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8265", "dashboard base URL")
	out := flag.String("o", "", "output file (trace subcommand)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval (top subcommand)")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "overview"
	}

	switch cmd {
	case "overview":
		body := fetch(*addr + "/")
		os.Stdout.Write(body)
	case "nodes":
		printNodes(fetch(*addr + "/api/nodes"))
	case "tasks":
		if id := flag.Arg(1); id != "" {
			printTaskDetail(fetch(*addr + "/api/tasks?id=" + id))
		} else {
			printTasks(fetch(*addr + "/api/tasks"))
		}
	case "objects":
		printObjects(fetch(*addr + "/api/objects"))
	case "shards":
		printShards(fetch(*addr + "/api/shards"))
	case "groups":
		printGroups(fetch(*addr + "/api/placement"))
	case "autoscale":
		printAutoscale(fetch(*addr + "/api/autoscale"))
	case "jobs":
		printJobs(fetch(*addr + "/api/jobs"))
	case "stop-job":
		id := flag.Arg(1)
		if id == "" {
			fatal(fmt.Errorf("usage: rayctl stop-job <job-id-hex> (full hex; see `rayctl jobs`)"))
		}
		stopJob(*addr, id)
	case "drain":
		id := flag.Arg(1)
		if id == "" {
			fatal(fmt.Errorf("usage: rayctl drain <node-id-hex> (full hex; see `rayctl nodes`)"))
		}
		drainNode(*addr, id)
	case "functions":
		os.Stdout.Write(fetch(*addr + "/api/functions"))
	case "events":
		os.Stdout.Write(fetch(*addr + "/api/events"))
	case "profile":
		printProfile(fetch(*addr + "/api/profile"))
	case "metrics":
		printMetrics(fetch(*addr + "/api/metrics?filter=" + flag.Arg(1)))
	case "top":
		runTop(*addr, *interval)
	case "trace":
		body := fetch(*addr + "/api/trace")
		if *out == "" {
			os.Stdout.Write(body)
			return
		}
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s (open via chrome://tracing)\n", len(body), *out)
	default:
		fmt.Fprintf(os.Stderr, "rayctl: unknown command %q\n", cmd)
		os.Exit(2)
	}
}

func fetch(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != 200 {
		fatal(fmt.Errorf("%s: HTTP %d", url, resp.StatusCode))
	}
	return body
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rayctl: %v\n", err)
	os.Exit(1)
}

func printNodes(body []byte) {
	var nodes []struct {
		ID        string             `json:"id"`
		IDHex     string             `json:"id_hex"`
		Addr      string             `json:"addr"`
		Alive     bool               `json:"alive"`
		State     string             `json:"state"`
		Total     map[string]float64 `json:"total"`
		Available map[string]float64 `json:"available"`
		QueueLen  int                `json:"queue_len"`
	}
	must(json.Unmarshal(body, &nodes))
	tbl := stats.Table{Header: []string{"node", "addr", "alive", "state", "cpu", "gpu", "avail-cpu", "queue", "id-hex"}}
	for _, n := range nodes {
		tbl.AddRow(n.ID, n.Addr, n.Alive, n.State, n.Total["CPU"], n.Total["GPU"], n.Available["CPU"], n.QueueLen, n.IDHex)
	}
	tbl.Render(os.Stdout)
}

func printAutoscale(body []byte) {
	var st struct {
		Nodes      int    `json:"nodes"`
		Active     int    `json:"active"`
		Draining   int    `json:"draining"`
		Backlog    int    `json:"backlog"`
		Idle       bool   `json:"idle"`
		ScaleUps   int64  `json:"scale_ups"`
		Drains     int64  `json:"drains_started"`
		Drained    int64  `json:"drains_completed"`
		RolledBack int64  `json:"drains_rolled_back"`
		LastAction string `json:"last_action"`
	}
	must(json.Unmarshal(body, &st))
	fmt.Printf("nodes: %d (%d active, %d draining)  backlog: %d  idle: %v\n",
		st.Nodes, st.Active, st.Draining, st.Backlog, st.Idle)
	fmt.Printf("scale-ups: %d  drains: %d started, %d completed, %d rolled back\n",
		st.ScaleUps, st.Drains, st.Drained, st.RolledBack)
	if st.LastAction != "" {
		fmt.Printf("last action: %s\n", st.LastAction)
	}
}

// printJobs renders the job table: durable record plus live footprint and
// quota headroom (headroom -1 = that dimension is unlimited).
func printJobs(body []byte) {
	var rows []struct {
		ID          string `json:"id"`
		IDHex       string `json:"id_hex"`
		Name        string `json:"name"`
		State       string `json:"state"`
		Weight      int    `json:"weight"`
		LiveTasks   int    `json:"live_tasks"`
		QueueDepth  int    `json:"queue_depth"`
		ObjectBytes int64  `json:"object_bytes"`
		TotalTasks  int    `json:"total_tasks"`
		LiveHead    int    `json:"live_headroom"`
		QueueHead   int    `json:"queue_headroom"`
		BytesHead   int64  `json:"bytes_headroom"`
	}
	must(json.Unmarshal(body, &rows))
	if len(rows) == 0 {
		fmt.Println("no jobs")
		return
	}
	head := func(n int64) string {
		if n < 0 {
			return "∞"
		}
		return fmt.Sprintf("%d", n)
	}
	tbl := stats.Table{Header: []string{"job", "name", "state", "weight", "live", "queued", "obj-bytes", "tasks", "headroom(live/queue/bytes)", "id-hex"}}
	for _, j := range rows {
		tbl.AddRow(j.ID, j.Name, j.State, j.Weight, j.LiveTasks, j.QueueDepth,
			j.ObjectBytes, j.TotalTasks,
			head(int64(j.LiveHead))+"/"+head(int64(j.QueueHead))+"/"+head(j.BytesHead),
			j.IDHex)
	}
	tbl.Render(os.Stdout)
}

// stopJob POSTs the stop request; the global scheduler's reclaim pass
// buries the job's tasks, drains its objects, and tombstones its records.
func stopJob(addr, idHex string) {
	resp, err := http.Post(addr+"/api/stopjob?job="+idHex, "application/json", nil)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != 200 {
		fatal(fmt.Errorf("stop-job: HTTP %d: %s", resp.StatusCode, body))
	}
	var out struct {
		OK bool `json:"ok"`
	}
	must(json.Unmarshal(body, &out))
	if !out.OK {
		fatal(fmt.Errorf("stop-job CAS lost: job not Running (already stopping, stopped, or unknown)"))
	}
	fmt.Printf("job %s marked STOPPING; the cluster will bury its tasks and reclaim its objects\n", idHex)
}

// drainNode POSTs the drain request; the node runs the protocol itself.
func drainNode(addr, idHex string) {
	resp, err := http.Post(addr+"/api/drain?node="+idHex, "application/json", nil)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != 200 {
		fatal(fmt.Errorf("drain: HTTP %d: %s", resp.StatusCode, body))
	}
	var out struct {
		OK bool `json:"ok"`
	}
	must(json.Unmarshal(body, &out))
	if !out.OK {
		fatal(fmt.Errorf("drain CAS lost: node not Active (already draining, drained, or unknown)"))
	}
	fmt.Printf("node %s marked DRAINING; it will migrate its objects and deregister\n", idHex)
}

// taskRow mirrors dashboard.TaskView.
type taskRow struct {
	ID       string  `json:"id"`
	IDHex    string  `json:"id_hex"`
	Function string  `json:"function"`
	Status   string  `json:"status"`
	Node     string  `json:"node"`
	Owner    string  `json:"owner"`
	OwnerSeq uint64  `json:"owner_seq"`
	Error    string  `json:"error"`
	Retries  int     `json:"retries"`
	E2EMs    float64 `json:"e2e_ms"`
	AgeMs    float64 `json:"last_transition_age_ms"`
}

func printTasks(body []byte) {
	var tasks []taskRow
	must(json.Unmarshal(body, &tasks))
	tbl := stats.Table{Header: []string{"task", "function", "status", "owner", "retries", "age-ms", "e2e-ms", "error", "id-hex"}}
	for _, t := range tasks {
		tbl.AddRow(t.ID, t.Function, t.Status, t.Owner, t.Retries,
			fmt.Sprintf("%.1f", t.AgeMs), fmt.Sprintf("%.3f", t.E2EMs), t.Error, t.IDHex)
	}
	tbl.Render(os.Stdout)
}

// printTaskDetail renders `rayctl tasks <id-hex>`: one task's row plus its
// full transition timeline, from /api/tasks?id=.
func printTaskDetail(body []byte) {
	var d struct {
		taskRow
		Parent      string `json:"parent"`
		Worker      string `json:"worker"`
		MaxRetries  int    `json:"max_retries"`
		SubmittedNs int64  `json:"submitted_ns"`
		ScheduledNs int64  `json:"scheduled_ns"`
		StartedNs   int64  `json:"started_ns"`
		FinishedNs  int64  `json:"finished_ns"`
	}
	must(json.Unmarshal(body, &d))
	fmt.Printf("task %s (%s)\n", d.ID, d.IDHex)
	fmt.Printf("function: %s  status: %s  node: %s\n", d.Function, d.Status, d.Node)
	fmt.Printf("owner: %s  owner-seq: %d  retries: %d/%d  in state for: %.1fms\n",
		d.Owner, d.OwnerSeq, d.Retries, d.MaxRetries, d.AgeMs)
	if d.Parent != "" {
		fmt.Printf("parent: %s\n", d.Parent)
	}
	if d.Worker != "" {
		fmt.Printf("worker: %s\n", d.Worker)
	}
	stamp := func(label string, ns int64) {
		if ns > 0 {
			fmt.Printf("%-10s %d ns\n", label+":", ns)
		}
	}
	stamp("submitted", d.SubmittedNs)
	stamp("scheduled", d.ScheduledNs)
	stamp("started", d.StartedNs)
	stamp("finished", d.FinishedNs)
	if d.Error != "" {
		fmt.Printf("error: %s\n", d.Error)
	}
}

func printObjects(body []byte) {
	var objs []struct {
		ID        string   `json:"id"`
		Size      int64    `json:"size"`
		State     string   `json:"state"`
		Locations []string `json:"locations"`
	}
	must(json.Unmarshal(body, &objs))
	tbl := stats.Table{Header: []string{"object", "size", "state", "copies"}}
	for _, o := range objs {
		tbl.AddRow(o.ID, o.Size, o.State, len(o.Locations))
	}
	tbl.Render(os.Stdout)
}

func printShards(body []byte) {
	var shards []struct {
		Index       int    `json:"index"`
		Addr        string `json:"addr"`
		Alive       bool   `json:"alive"`
		Incarnation int64  `json:"incarnation"`
		Restarts    int64  `json:"restarts"`
		Ops         int64  `json:"kv_ops"`
		WALBytes    int64  `json:"wal_bytes"`
	}
	must(json.Unmarshal(body, &shards))
	if len(shards) == 0 {
		fmt.Println("control plane is a single store (no shard services)")
		return
	}
	tbl := stats.Table{Header: []string{"shard", "addr", "alive", "incarnation", "restarts", "kv-ops", "wal-bytes"}}
	for _, s := range shards {
		tbl.AddRow(s.Index, s.Addr, s.Alive, s.Incarnation, s.Restarts, s.Ops, s.WALBytes)
	}
	tbl.Render(os.Stdout)
}

func printGroups(body []byte) {
	var groups []struct {
		ID       string               `json:"id"`
		Name     string               `json:"name"`
		Strategy string               `json:"strategy"`
		State    string               `json:"state"`
		Bundles  []map[string]float64 `json:"bundles"`
		Nodes    []string             `json:"nodes"`
	}
	must(json.Unmarshal(body, &groups))
	if len(groups) == 0 {
		fmt.Println("no placement groups")
		return
	}
	tbl := stats.Table{Header: []string{"group", "name", "strategy", "state", "bundles", "nodes"}}
	for _, g := range groups {
		tbl.AddRow(g.ID, g.Name, g.Strategy, g.State, len(g.Bundles), fmt.Sprintf("%v", g.Nodes))
	}
	tbl.Render(os.Stdout)
}

func printProfile(body []byte) {
	var sums []struct {
		Function  string `json:"Function"`
		Count     int    `json:"Count"`
		Failed    int    `json:"Failed"`
		MeanExec  int64  `json:"MeanExec"`
		MeanE2E   int64  `json:"MeanE2E"`
		MeanQueue int64  `json:"MeanQueue"`
	}
	must(json.Unmarshal(body, &sums))
	tbl := stats.Table{Header: []string{"function", "count", "failed", "exec-ms", "queue-ms", "e2e-ms"}}
	for _, s := range sums {
		tbl.AddRow(s.Function, s.Count, s.Failed,
			fmt.Sprintf("%.3f", float64(s.MeanExec)/1e6),
			fmt.Sprintf("%.3f", float64(s.MeanQueue)/1e6),
			fmt.Sprintf("%.3f", float64(s.MeanE2E)/1e6))
	}
	tbl.Render(os.Stdout)
}

// metricRow mirrors dashboard.MetricRow.
type metricRow struct {
	Node  string `json:"node"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	Hist  bool   `json:"hist"`
}

func printMetrics(body []byte) {
	var rows []metricRow
	must(json.Unmarshal(body, &rows))
	if len(rows) == 0 {
		fmt.Println("no metrics (telemetry disabled, or no heartbeat yet)")
		return
	}
	tbl := stats.Table{Header: []string{"node", "metric", "value", "p50", "p99"}}
	for _, r := range rows {
		p50, p99 := "", ""
		if r.Hist {
			p50 = time.Duration(r.P50Ns).String()
			p99 = time.Duration(r.P99Ns).String()
		}
		tbl.AddRow(r.Node, r.Name, r.Value, p50, p99)
	}
	tbl.Render(os.Stdout)
}

// runTop polls the dashboard and redraws a compact cluster view: node
// table plus the hottest per-node scheduler/store/transfer counters.
func runTop(addr string, interval time.Duration) {
	for {
		fmt.Print("\033[H\033[2J") // clear screen, cursor home
		fmt.Printf("rayctl top — %s — %s (ctrl-C to exit)\n\n", addr, time.Now().Format("15:04:05"))
		os.Stdout.Write(fetch(addr + "/"))
		fmt.Println()
		printNodes(fetch(addr + "/api/nodes"))
		fmt.Println()
		var rows []metricRow
		must(json.Unmarshal(fetch(addr+"/api/metrics"), &rows))
		topSet := map[string]bool{
			"scheduler.tasks.dispatched":    true,
			"scheduler.tasks.spilled":       true,
			"objectstore.puts":              true,
			"objectstore.spill.bytes":       true,
			"lifetime.pull.bytes":           true,
			"lifetime.migrated.objects":     true,
			"transport.messages":            true,
			"worker.exec.ns":                true,
			"scheduler.dispatch.latency.ns": true,
		}
		tbl := stats.Table{Header: []string{"node", "metric", "value", "p50", "p99"}}
		shown := 0
		for _, r := range rows {
			if !topSet[r.Name] {
				continue
			}
			p50, p99 := "", ""
			if r.Hist {
				p50 = time.Duration(r.P50Ns).String()
				p99 = time.Duration(r.P99Ns).String()
			}
			tbl.AddRow(r.Node, r.Name, r.Value, p50, p99)
			shown++
		}
		if shown > 0 {
			tbl.Render(os.Stdout)
		} else {
			fmt.Println("(no telemetry yet)")
		}
		time.Sleep(interval)
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}
