package types

import (
	"testing"
	"testing/quick"
)

func TestDeriveTaskIDDeterministic(t *testing.T) {
	parent := DeriveTaskID(NilTaskID, 7)
	a := DeriveTaskID(parent, 3)
	b := DeriveTaskID(parent, 3)
	if a != b {
		t.Fatalf("same inputs produced different IDs: %v vs %v", a, b)
	}
	c := DeriveTaskID(parent, 4)
	if a == c {
		t.Fatalf("different indices produced identical IDs")
	}
}

func TestDeriveTaskIDDistinctFromParent(t *testing.T) {
	parent := DeriveTaskID(NilTaskID, 0)
	child := DeriveTaskID(parent, 0)
	if child == parent {
		t.Fatal("child ID equals parent ID")
	}
}

// Property: task-ID derivation is injective over (parent index, child index)
// pairs within the tested domain — no collisions.
func TestTaskIDCollisionFreedom(t *testing.T) {
	seen := make(map[TaskID][2]uint64)
	for p := uint64(0); p < 50; p++ {
		parent := DeriveTaskID(NilTaskID, p)
		for c := uint64(0); c < 50; c++ {
			id := DeriveTaskID(parent, c)
			if prev, ok := seen[id]; ok {
				t.Fatalf("collision: (%d,%d) and (%d,%d)", prev[0], prev[1], p, c)
			}
			seen[id] = [2]uint64{p, c}
		}
	}
}

func TestObjectIDForReturnDistinct(t *testing.T) {
	task := DeriveTaskID(NilTaskID, 1)
	seen := make(map[ObjectID]bool)
	for i := 0; i < 100; i++ {
		id := ObjectIDForReturn(task, i)
		if seen[id] {
			t.Fatalf("duplicate object ID at return index %d", i)
		}
		seen[id] = true
	}
	if seen[PutObjectID(task, 0)] {
		t.Fatal("put ID collided with return ID")
	}
}

// Property: derivation is a pure function of its inputs.
func TestDerivationPure(t *testing.T) {
	f := func(parentSeed, idx uint64) bool {
		p := DeriveTaskID(NilTaskID, parentSeed)
		return DeriveTaskID(p, idx) == DeriveTaskID(p, idx) &&
			ObjectIDForReturn(p, int(idx%16)) == ObjectIDForReturn(p, int(idx%16))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	task := DeriveTaskID(NilTaskID, 42)
	got, err := ParseTaskID(task.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if got != task {
		t.Fatalf("round trip changed ID: %v vs %v", got, task)
	}
	obj := ObjectIDForReturn(task, 0)
	gotObj, err := ParseObjectID(obj.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if gotObj != obj {
		t.Fatal("object ID round trip mismatch")
	}
	if _, err := ParseTaskID("zz"); err == nil {
		t.Fatal("expected error for bad hex")
	}
	if _, err := ParseObjectID("abcd"); err == nil {
		t.Fatal("expected error for short hex")
	}
}

func TestTaskSpecReturnIDsAndDeps(t *testing.T) {
	id := DeriveTaskID(NilTaskID, 0)
	dep := ObjectIDForReturn(DeriveTaskID(NilTaskID, 9), 0)
	spec := TaskSpec{
		ID:         id,
		Function:   "f",
		NumReturns: 2,
		Args:       []Arg{ValueArg([]byte("x")), RefArg(dep)},
	}
	if spec.ReturnID(0) == spec.ReturnID(1) {
		t.Fatal("distinct return indices share an ID")
	}
	deps := spec.Deps()
	if len(deps) != 1 || deps[0] != dep {
		t.Fatalf("Deps = %v, want [%v]", deps, dep)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ReturnID out of range did not panic")
		}
	}()
	spec.ReturnID(2)
}

func TestTaskSpecValidate(t *testing.T) {
	id := DeriveTaskID(NilTaskID, 0)
	cases := []struct {
		name    string
		spec    TaskSpec
		wantErr bool
	}{
		{"ok", TaskSpec{ID: id, Function: "f", NumReturns: 1}, false},
		{"nil id", TaskSpec{Function: "f"}, true},
		{"no function", TaskSpec{ID: id}, true},
		{"negative returns", TaskSpec{ID: id, Function: "f", NumReturns: -1}, true},
		{"bad resources", TaskSpec{ID: id, Function: "f", Resources: Resources{"CPU": -1}}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	if TaskFinished.String() != "FINISHED" || TaskPending.String() != "PENDING" {
		t.Fatal("unexpected task status strings")
	}
	if !TaskFinished.Terminal() || !TaskFailed.Terminal() || TaskRunning.Terminal() {
		t.Fatal("Terminal misclassifies statuses")
	}
	if ObjectLost.String() != "LOST" {
		t.Fatal("unexpected object state string")
	}
	if TaskStatus(99).String() == "" || ObjectState(99).String() == "" {
		t.Fatal("out-of-range statuses should still render")
	}
}

func TestObjectInfoHasLocation(t *testing.T) {
	n1 := NodeID(DeriveTaskID(NilTaskID, 1))
	n2 := NodeID(DeriveTaskID(NilTaskID, 2))
	info := ObjectInfo{Locations: []NodeID{n1}}
	if !info.HasLocation(n1) || info.HasLocation(n2) {
		t.Fatal("HasLocation wrong")
	}
}
