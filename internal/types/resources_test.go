package types

import (
	"testing"
	"testing/quick"
)

func TestResourcesFits(t *testing.T) {
	avail := Resources{ResCPU: 4, ResGPU: 1}
	cases := []struct {
		demand Resources
		want   bool
	}{
		{nil, true},
		{Resources{}, true},
		{CPU(1), true},
		{CPU(4), true},
		{CPU(4.5), false},
		{GPU(1, 1), true},
		{GPU(1, 2), false},
		{Resources{"TPU": 1}, false},
		{Resources{ResCPU: 0}, true},
	}
	for i, tc := range cases {
		if got := tc.demand.Fits(avail); got != tc.want {
			t.Errorf("case %d: Fits(%v, %v) = %v, want %v", i, tc.demand, avail, got, tc.want)
		}
	}
}

func TestResourcesSubAdd(t *testing.T) {
	r := Resources{ResCPU: 4, ResGPU: 2}
	r.Sub(CPU(1))
	if r[ResCPU] != 3 {
		t.Fatalf("after Sub, CPU = %v", r[ResCPU])
	}
	r.Add(CPU(2))
	if r[ResCPU] != 5 {
		t.Fatalf("after Add, CPU = %v", r[ResCPU])
	}
}

func TestResourcesSubNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub below zero did not panic")
		}
	}()
	r := CPU(1)
	r.Sub(CPU(2))
}

func TestResourcesCloneIndependent(t *testing.T) {
	r := CPU(2)
	c := r.Clone()
	c[ResCPU] = 99
	if r[ResCPU] != 2 {
		t.Fatal("Clone aliases the original map")
	}
	if Resources(nil).Clone() != nil {
		t.Fatal("Clone of nil should stay nil")
	}
}

func TestResourcesValidate(t *testing.T) {
	if err := (Resources{ResCPU: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Resources{"": 1}).Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := (Resources{ResCPU: -0.5}).Validate(); err == nil {
		t.Fatal("negative quantity accepted")
	}
}

func TestResourcesString(t *testing.T) {
	r := Resources{ResGPU: 1, ResCPU: 2}
	if got := r.String(); got != "{CPU:2 GPU:1}" {
		t.Fatalf("String = %q", got)
	}
	if (Resources{}).String() != "{}" {
		t.Fatal("empty String wrong")
	}
}

// Property: Add then Sub of the same demand restores the original value,
// and resource accounting never dips negative along the way.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(cpu, gpu uint8) bool {
		base := Resources{ResCPU: float64(cpu), ResGPU: float64(gpu)}
		demand := Resources{ResCPU: float64(cpu) / 2, ResGPU: float64(gpu) / 2}
		r := base.Clone()
		r.Sub(demand)
		for _, v := range r {
			if v < 0 {
				return false
			}
		}
		r.Add(demand)
		return r[ResCPU] == base[ResCPU] && r[ResGPU] == base[ResGPU]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesIsZero(t *testing.T) {
	if !(Resources{}).IsZero() || !(Resources{ResCPU: 0}).IsZero() {
		t.Fatal("zero resources misreported")
	}
	if CPU(1).IsZero() {
		t.Fatal("non-zero resources misreported")
	}
}
