package types

import "testing"

func TestPlacementGroupSpecValidate(t *testing.T) {
	var id PlacementGroupID
	id[0] = 1
	good := PlacementGroupSpec{ID: id, Strategy: StrategyStrictSpread,
		Bundles: []Bundle{{Resources: CPU(2)}, {Resources: GPU(1, 1)}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []PlacementGroupSpec{
		{Strategy: StrategyPack, Bundles: []Bundle{{Resources: CPU(1)}}}, // nil ID
		{ID: id}, // no bundles
		{ID: id, Bundles: []Bundle{{Resources: Resources{}}}},          // empty bundle
		{ID: id, Bundles: []Bundle{{Resources: Resources{"CPU": -1}}}}, // negative
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestPlacementIDRoundTrip(t *testing.T) {
	var id PlacementGroupID
	id[5] = 0xAB
	parsed, err := ParsePlacementGroupID(id.Hex())
	if err != nil || parsed != id {
		t.Fatalf("round trip: %v %v", parsed, err)
	}
	if _, err := ParsePlacementGroupID("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if !NilPlacementGroupID.IsNil() || id.IsNil() {
		t.Fatal("IsNil wrong")
	}
}

func TestTaskSpecGroupValidation(t *testing.T) {
	base := TaskSpec{ID: DeriveTaskID(NilTaskID, 1), Function: "f", Resources: CPU(1)}

	spec := base
	spec.Bundle = 2 // bundle without group
	if err := spec.Validate(); err == nil {
		t.Error("bundle index without group accepted")
	}
	spec = base
	spec.Group[0] = 1
	spec.Bundle = -1
	if err := spec.Validate(); err == nil {
		t.Error("negative bundle index accepted")
	}
	spec = base
	spec.Group[0] = 1
	spec.Bundle = 3
	if err := spec.Validate(); err != nil {
		t.Errorf("valid grouped spec rejected: %v", err)
	}
	if !spec.InGroup() || base.InGroup() {
		t.Error("InGroup wrong")
	}
}

func TestStrategyAndStateStrings(t *testing.T) {
	if StrategyPack.String() != "PACK" || StrategyStrictSpread.String() != "STRICT_SPREAD" {
		t.Error("strategy names wrong")
	}
	if GroupPending.String() != "PENDING" || GroupPlacing.String() != "PLACING" ||
		GroupPlaced.String() != "PLACED" || GroupRemoved.String() != "REMOVED" {
		t.Error("state names wrong")
	}
	if PlacementStrategy(9).String() == "" || PlacementGroupState(9).String() == "" {
		t.Error("out-of-range must render")
	}
}
