package types

import "fmt"

// Arg is a task argument: either an inline encoded value or a reference to
// an object produced by another task. Reference arguments are what create
// dataflow edges (paper R5).
type Arg struct {
	// IsRef marks the argument as a future/object reference.
	IsRef bool
	// Ref is the referenced object (valid iff IsRef).
	Ref ObjectID
	// Value is the inline encoded value (valid iff !IsRef).
	Value []byte
}

// RefArg builds a reference argument.
func RefArg(id ObjectID) Arg { return Arg{IsRef: true, Ref: id} }

// ValueArg builds an inline argument.
func ValueArg(b []byte) Arg { return Arg{Value: b} }

// TaskSpec fully describes a task submission. The spec is stored in the
// control plane's task table and doubles as the lineage record: replaying a
// spec reproduces its outputs (DESIGN.md §4.1).
type TaskSpec struct {
	ID          TaskID
	Function    string
	Args        []Arg
	NumReturns  int
	Resources   Resources
	Parent      TaskID // task (or driver root) that submitted this task
	SubmitIndex uint64 // index of this submission within the parent
	MaxRetries  int    // retries on worker failure before Failed
	// Locality is a soft placement hint: the scheduler prefers this node
	// when it is alive and feasible, and falls back silently otherwise.
	Locality NodeID
	// Group pins the task to a placement group's bundle: the task runs only
	// on the node holding the reservation for Bundle, drawing resources
	// from the reservation instead of the node's general pool.
	Group  PlacementGroupID
	Bundle int // bundle index within Group (valid iff Group is set)
	// TraceID is the trace context: assigned once per driver session and
	// inherited by every descendant task, so the profiler can stitch a
	// whole computation — including data-plane spans recorded far from the
	// task table — into one trace (R7). Zero means untraced.
	TraceID uint64
	// Job attributes the task to a tenant job (DESIGN.md §14): fair-share
	// dispatch weighs it by the job's weight, admission quotas meter it,
	// and a job stop buries it and reclaims its records. Nil means jobless
	// (the default weight-1 share, never bulk-reclaimed).
	Job JobID
	// Actor marks the task as an actor method (or constructor): its
	// execution order against the actor's other methods matters, so inline
	// dispatch (DESIGN.md §15) must never run it on the submitting
	// goroutine ahead of methods already queued.
	Actor bool
}

// InGroup reports whether the task is pinned to a placement-group bundle.
func (s *TaskSpec) InGroup() bool { return !s.Group.IsNil() }

// ReturnID is the object ID of the i-th return value.
func (s *TaskSpec) ReturnID(i int) ObjectID {
	if i < 0 || i >= s.NumReturns {
		panic(fmt.Sprintf("types: return index %d out of range [0,%d)", i, s.NumReturns))
	}
	return ObjectIDForReturn(s.ID, i)
}

// Deps returns the object IDs this task depends on (its reference args).
func (s *TaskSpec) Deps() []ObjectID {
	var deps []ObjectID
	for _, a := range s.Args {
		if a.IsRef {
			deps = append(deps, a.Ref)
		}
	}
	return deps
}

// Validate checks the spec for structural errors before submission.
func (s *TaskSpec) Validate() error {
	if s.ID.IsNil() {
		return fmt.Errorf("types: task has nil ID")
	}
	if s.Function == "" {
		return fmt.Errorf("types: task %s has empty function name", s.ID)
	}
	if s.NumReturns < 0 {
		return fmt.Errorf("types: task %s has negative NumReturns", s.ID)
	}
	if err := s.Resources.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", s.ID, err)
	}
	if s.Group.IsNil() && s.Bundle != 0 {
		return fmt.Errorf("types: task %s has bundle index %d without a placement group", s.ID, s.Bundle)
	}
	if !s.Group.IsNil() && s.Bundle < 0 {
		return fmt.Errorf("types: task %s has negative bundle index %d", s.ID, s.Bundle)
	}
	return nil
}

// TaskStatus is the lifecycle state recorded in the task table.
type TaskStatus int

// Task lifecycle. Queued means a specific node's local scheduler owns the
// task (claimed via CAS, so concurrent global schedulers converge on one
// owner); Lost means the task finished but its outputs were lost to a
// failure and it may be replayed; Failed is a terminal application error.
const (
	TaskPending TaskStatus = iota
	TaskQueued
	TaskScheduled
	TaskRunning
	TaskFinished
	TaskLost
	TaskFailed
)

var taskStatusNames = [...]string{"PENDING", "QUEUED", "SCHEDULED", "RUNNING", "FINISHED", "LOST", "FAILED"}

func (s TaskStatus) String() string {
	if s < 0 || int(s) >= len(taskStatusNames) {
		return fmt.Sprintf("TaskStatus(%d)", int(s))
	}
	return taskStatusNames[s]
}

// Terminal reports whether no further transitions are expected.
func (s TaskStatus) Terminal() bool { return s == TaskFinished || s == TaskFailed }

// TaskState is the task-table record: spec + mutable execution state.
type TaskState struct {
	Spec    TaskSpec
	Status  TaskStatus
	Node    NodeID
	Worker  WorkerID
	Error   string
	Retries int
	// Timestamps in nanoseconds since the cluster epoch, for profiling (R7).
	SubmittedNs int64
	ScheduledNs int64
	StartedNs   int64
	FinishedNs  int64
	// LastTransitionNs is stamped on every status change, including ones
	// (like the retry path's reset to PENDING) that touch no per-phase
	// timestamp. The global scheduler's pending-task sweep ages tasks from
	// it, so a freshly-reset task gets its full grace period instead of
	// being measured from the original submit.
	LastTransitionNs int64
	// MutOps remembers recent non-idempotent-mutation operation tokens (a
	// small ring), mirroring ObjectInfo.RefOps: a CAS claim or retry-count
	// increment whose commit survived a shard crash but whose response did
	// not is recognized when redelivered — a CAS retry is reported as won
	// instead of losing to its own commit (stranding the task claimed but
	// never enqueued), and a retry-count redelivery does not burn an extra
	// attempt.
	MutOps []uint64
	// Owner is the node whose task ledger holds authority over this record
	// (DESIGN.md §13): transitions arrive as batched async deltas from the
	// owner, and the table is a follower. Set by AddTask to the submitting
	// node, transferred by the placed-claim CAS, and cleared (nil) when the
	// task sits unowned in the global spill queue or after an owner-death
	// transfer.
	Owner NodeID
	// OwnerSeq is the owner's per-task transition sequence number last
	// applied to this record. A delta applies only if it carries the
	// record's current Owner and a strictly newer sequence, so a stale
	// owner's late flush (or an out-of-order redelivery) can never regress
	// the follower past an ownership change.
	OwnerSeq uint64
}

// TaskStateDelta is one owner-ledger entry in a batched ModifyTaskStates
// flush (DESIGN.md §13). It carries the owner's full latest view of the
// mutable execution state — not an increment — so transitions that
// coalesced inside one flush interval (QUEUED→SCHEDULED→RUNNING→FINISHED
// for a sub-millisecond task) land as a single delta, and redelivery under
// the batch token is naturally idempotent.
type TaskStateDelta struct {
	ID    TaskID
	Owner NodeID // the ledger's node; must match the record's Owner to apply
	Seq   uint64 // owner's transition sequence; must exceed the record's OwnerSeq

	Status  TaskStatus
	Node    NodeID
	Worker  WorkerID
	Error   string
	Retries int

	SubmittedNs      int64
	ScheduledNs      int64
	StartedNs        int64
	FinishedNs       int64
	LastTransitionNs int64
}

// TaskLedgerBatch is the wire record of one ModifyTaskStates flush: a
// node's coalesced task-state deltas bound to one idempotency token. It is
// a hot record on the steady-state control path, so the codec gives it a
// reflection-free binary fast path like the table records.
type TaskLedgerBatch struct {
	Node   NodeID
	Deltas []TaskStateDelta
	Op     uint64
}

// ObjectState is the lifecycle of an entry in the object table.
type ObjectState int

// Object lifecycle.
const (
	ObjectPending ObjectState = iota // producer not yet finished
	ObjectReady                      // at least one live location
	ObjectLost                       // all locations failed; reconstructable
)

var objectStateNames = [...]string{"PENDING", "READY", "LOST"}

func (s ObjectState) String() string {
	if s < 0 || int(s) >= len(objectStateNames) {
		return fmt.Sprintf("ObjectState(%d)", int(s))
	}
	return objectStateNames[s]
}

// ObjectInfo is the object-table record.
type ObjectInfo struct {
	ID        ObjectID
	Size      int64
	Producer  TaskID // task whose execution created the object (lineage edge)
	State     ObjectState
	Locations []NodeID
	// RefCount is the cluster-wide number of live references: driver and
	// task handles created at submit/put time plus scheduler borrows for
	// queued task arguments (see internal/lifetime). Objects that no tracker
	// ever retained stay at zero and are never garbage-collected, which
	// preserves the pre-lifetime behaviour.
	RefCount int64
	// EverRetained records that RefCount was ever positive. Together with
	// RefCount == 0 it marks the object GC-eligible — durable state that
	// lets a recovered control-plane shard republish GC notifications a
	// crash may have dropped (never-retained objects stay ineligible, as
	// before the lifetime subsystem).
	EverRetained bool
	// RefOps remembers the most recent refcount-mutation operation tokens
	// applied to this record (a small ring). A client retrying a delta
	// whose response was lost — e.g. the owning GCS shard died between
	// committing the mutation and answering — resends the same token, and
	// the (possibly restarted) shard recognizes it instead of applying the
	// delta twice. Durable with the record, so dedup survives failover.
	RefOps []uint64
	// Holders attributes RefCount to the nodes whose ledger flushes
	// contributed it (DESIGN.md §12). When a node dies without releasing,
	// the owner-death sweep subtracts its attributed share instead of
	// leaking the count forever. Deltas flushed without a node identity
	// (legacy single-ID path, direct API users) are attributed to the zero
	// NodeID and stay unswept — the pre-ownership conservative behaviour.
	Holders map[NodeID]int64
	// SpilledOn lists the subset of Locations where the copy lives on the
	// node's disk spill tier rather than in memory. Pulling from a memory
	// location is cheaper, so placement and transfer both prefer them.
	SpilledOn []NodeID
}

// HasLocation reports whether node holds a copy.
func (o *ObjectInfo) HasLocation(node NodeID) bool {
	for _, n := range o.Locations {
		if n == node {
			return true
		}
	}
	return false
}

// IsSpilledOn reports whether node's copy is on its disk spill tier.
func (o *ObjectInfo) IsSpilledOn(node NodeID) bool {
	for _, n := range o.SpilledOn {
		if n == node {
			return true
		}
	}
	return false
}

// StoreStats is a node's object-store usage snapshot. Nodes publish it with
// heartbeats so dashboards and placement see memory pressure without asking
// the node (the control plane stays the single source of truth, R7).
type StoreStats struct {
	UsedBytes    int64 // memory-resident payload bytes
	SpilledBytes int64 // bytes currently on the disk spill tier
	Objects      int   // resident objects, memory + spilled
	Spills       int64 // cumulative spill-to-disk operations
	Restores     int64 // cumulative restores from disk
	Reclaimed    int64 // cumulative objects reclaimed by lifetime GC
	TierEvicted  int64 // cumulative spill files reclaimed by disk-budget pressure
}

// NodeState is the drain state machine of a node-table record (DESIGN.md
// §10). It is orthogonal to Alive: a node is Alive until it crashes or
// deregisters, while State tracks the administrative drain protocol the
// autoscaler (or `rayctl drain`) drives.
type NodeState int

// Node drain lifecycle. Active nodes admit tasks and receive placements.
// Draining nodes are fenced: the local scheduler refuses admissions, the
// global scheduler stops placing there, gang reservations are re-placed as
// a unit, and the node spill-migrates every referenced object to peers.
// Drained is terminal for the incarnation: migration finished and the node
// deregisters. A drain that cannot complete (no capacity anywhere, or an
// operator abort) rolls back Draining→Active and the node resumes.
const (
	NodeActive NodeState = iota
	NodeDraining
	NodeDrained
)

var nodeStateNames = [...]string{"ACTIVE", "DRAINING", "DRAINED"}

func (s NodeState) String() string {
	if s < 0 || int(s) >= len(nodeStateNames) {
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
	return nodeStateNames[s]
}

// NodeInfo is the node-table record.
type NodeInfo struct {
	ID       NodeID
	Addr     string // transport address of the node's server
	Total    Resources
	Alive    bool
	LastSeen int64 // heartbeat, ns since cluster epoch
	// State is the drain state machine (Active/Draining/Drained), WAL'd
	// with the record and transitioned only through CASNodeState so
	// concurrent autoscalers converge on one drain decision.
	State NodeState
	// DrainNs is stamped when the node entered Draining (cleared on
	// rollback); the autoscaler's drain-timeout watchdog ages from it.
	DrainNs int64
	// Load snapshot published with heartbeats; the global scheduler's
	// placement policy consumes these.
	QueueLen  int
	Available Resources
	// Store is the object-store usage published with heartbeats.
	Store StoreStats
	// MutOps remembers recent state-CAS operation tokens (a small ring),
	// mirroring TaskState.MutOps: a drain CAS retried across a control-
	// plane shard crash is recognized and reported won instead of losing
	// to its own earlier commit.
	MutOps []uint64
}

// Schedulable reports whether new work may be placed on the node: it must
// be alive and not in (or past) drain.
func (n *NodeInfo) Schedulable() bool { return n.Alive && n.State == NodeActive }

// Event is one entry in the event log (paper R7: profiling and debugging).
type Event struct {
	TimeNs int64
	Kind   string // e.g. "submit", "schedule", "start", "finish", "spill"
	Task   TaskID
	Object ObjectID
	Node   NodeID
	Worker WorkerID
	Detail string
}
