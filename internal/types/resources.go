package types

import (
	"fmt"
	"sort"
	"strings"
)

// Standard resource names. Arbitrary custom names are also permitted
// (paper R4: explicit system support for heterogeneous resources).
const (
	ResCPU = "CPU"
	ResGPU = "GPU"
)

// Resources maps a resource name to a quantity. Quantities are fractional
// (a task may demand half a CPU). The zero value (nil map) means "no
// resources required" for demands and "no capacity" for capacities.
type Resources map[string]float64

// CPU is shorthand for a CPU-only demand.
func CPU(n float64) Resources { return Resources{ResCPU: n} }

// GPU is shorthand for a demand of one GPU plus n CPUs.
func GPU(cpus, gpus float64) Resources { return Resources{ResCPU: cpus, ResGPU: gpus} }

// Clone returns a deep copy.
func (r Resources) Clone() Resources {
	if r == nil {
		return nil
	}
	out := make(Resources, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Fits reports whether demand r can be satisfied by the available capacity.
func (r Resources) Fits(avail Resources) bool {
	for k, v := range r {
		if v <= 0 {
			continue
		}
		if avail[k] < v-1e-9 {
			return false
		}
	}
	return true
}

// FeasibleOn reports whether demand r could ever run on a node with the
// given total capacity (ignoring current usage). Infeasible tasks must be
// spilled to the global scheduler (paper Section 3.2.2).
func (r Resources) FeasibleOn(total Resources) bool { return r.Fits(total) }

// Sub subtracts demand d from r in place. It panics if the result would be
// negative beyond rounding error: resource accounting going negative is a
// scheduler bug, and the property tests rely on this invariant.
func (r Resources) Sub(d Resources) {
	for k, v := range d {
		if v == 0 {
			continue
		}
		nv := r[k] - v
		if nv < -1e-6 {
			panic(fmt.Sprintf("types: resource %s would go negative: %v - %v", k, r[k], v))
		}
		if nv < 0 {
			nv = 0
		}
		r[k] = nv
	}
}

// Add adds d to r in place.
func (r Resources) Add(d Resources) {
	for k, v := range d {
		r[k] += v
	}
}

// IsZero reports whether no resource has a positive quantity.
func (r Resources) IsZero() bool {
	for _, v := range r {
		if v > 0 {
			return false
		}
	}
	return true
}

// Validate rejects negative quantities and empty names.
func (r Resources) Validate() error {
	for k, v := range r {
		if k == "" {
			return fmt.Errorf("types: empty resource name")
		}
		if v < 0 {
			return fmt.Errorf("types: negative quantity %v for resource %s", v, k)
		}
	}
	return nil
}

// String renders resources deterministically (sorted by name).
func (r Resources) String() string {
	if len(r) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%g", k, r[k])
	}
	b.WriteByte('}')
	return b.String()
}
