// Package types defines the identifiers, task specifications, resource
// descriptions, and control-state records shared by every subsystem in the
// framework. It corresponds to the vocabulary of the paper's Section 3:
// tasks, futures (object IDs), resources, and the control-plane tables.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// IDSize is the length in bytes of every identifier in the system.
const IDSize = 16

// ObjectID names an immutable object (the value behind a future).
type ObjectID [IDSize]byte

// TaskID names a task submission.
type TaskID [IDSize]byte

// NodeID names a node (one local scheduler + object store + worker pool).
type NodeID [IDSize]byte

// WorkerID names a single worker within a node.
type WorkerID [IDSize]byte

// Nil IDs are the zero values; they mark "no parent" / "unassigned".
var (
	NilObjectID ObjectID
	NilTaskID   TaskID
	NilNodeID   NodeID
	NilWorkerID WorkerID
)

func shortHex(b []byte) string { return hex.EncodeToString(b[:6]) }

func (id ObjectID) String() string { return "obj-" + shortHex(id[:]) }
func (id TaskID) String() string   { return "task-" + shortHex(id[:]) }
func (id NodeID) String() string   { return "node-" + shortHex(id[:]) }
func (id WorkerID) String() string { return "worker-" + shortHex(id[:]) }

// Hex returns the full hexadecimal form, used as a control-plane key.
func (id ObjectID) Hex() string { return hex.EncodeToString(id[:]) }

// Hex returns the full hexadecimal form, used as a control-plane key.
func (id TaskID) Hex() string { return hex.EncodeToString(id[:]) }

// Hex returns the full hexadecimal form, used as a control-plane key.
func (id NodeID) Hex() string { return hex.EncodeToString(id[:]) }

// Hex returns the full hexadecimal form, used as a control-plane key.
func (id WorkerID) Hex() string { return hex.EncodeToString(id[:]) }

// IsNil reports whether the ID is the zero value.
func (id ObjectID) IsNil() bool { return id == NilObjectID }

// IsNil reports whether the ID is the zero value.
func (id TaskID) IsNil() bool { return id == NilTaskID }

// IsNil reports whether the ID is the zero value.
func (id NodeID) IsNil() bool { return id == NilNodeID }

// IsNil reports whether the ID is the zero value.
func (id WorkerID) IsNil() bool { return id == NilWorkerID }

// ParseObjectID parses the full hexadecimal form produced by Hex.
func ParseObjectID(s string) (ObjectID, error) {
	var id ObjectID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != IDSize {
		return id, fmt.Errorf("types: bad object id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// ParseTaskID parses the full hexadecimal form produced by Hex.
func ParseTaskID(s string) (TaskID, error) {
	var id TaskID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != IDSize {
		return id, fmt.Errorf("types: bad task id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// ParseNodeID parses the full hexadecimal form produced by Hex.
func ParseNodeID(s string) (NodeID, error) {
	var id NodeID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != IDSize {
		return id, fmt.Errorf("types: bad node id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// DeriveTaskID deterministically derives the ID of the index-th task
// submitted by parent. Determinism is what makes lineage replay idempotent
// (DESIGN.md §4.1): re-executing a parent produces byte-identical child IDs,
// so a reconstructed task resolves to the same objects as the original.
func DeriveTaskID(parent TaskID, index uint64) TaskID {
	h := sha256.New()
	h.Write([]byte("task"))
	h.Write(parent[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], index)
	h.Write(buf[:])
	var id TaskID
	copy(id[:], h.Sum(nil))
	return id
}

// ObjectIDForReturn derives the ID of the i-th return value of a task.
func ObjectIDForReturn(task TaskID, i int) ObjectID {
	h := sha256.New()
	h.Write([]byte("ret"))
	h.Write(task[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	h.Write(buf[:])
	var id ObjectID
	copy(id[:], h.Sum(nil))
	return id
}

// PutObjectID derives the ID for the i-th object Put directly (not returned
// by a task) by the given task or driver.
func PutObjectID(owner TaskID, i uint64) ObjectID {
	h := sha256.New()
	h.Write([]byte("put"))
	h.Write(owner[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], i)
	h.Write(buf[:])
	var id ObjectID
	copy(id[:], h.Sum(nil))
	return id
}
