package types

import "context"

// Inline-dispatch depth threading (DESIGN.md §15). A task executed inline
// on its submitter's goroutine may itself submit tasks; the depth rides the
// task's context so the scheduler can bounce deep inline chains back to the
// queue (the trampoline) instead of growing the stack without bound. The
// helpers live here — the one package every layer already imports — so the
// scheduler, worker, and core API can share the key without a cycle.

type inlineDepthKey struct{}

// WithInlineDepth returns a context recording that the bearer is executing
// at the given inline-dispatch depth.
func WithInlineDepth(ctx context.Context, depth int) context.Context {
	return context.WithValue(ctx, inlineDepthKey{}, depth)
}

// InlineDepthFrom reports the inline-dispatch depth recorded in ctx, zero
// for contexts outside any inline execution (drivers, queued tasks).
func InlineDepthFrom(ctx context.Context) int {
	if v, ok := ctx.Value(inlineDepthKey{}).(int); ok {
		return v
	}
	return 0
}
