package types

import (
	"encoding/hex"
	"fmt"
)

// PlacementGroupID names a placement group: a gang-scheduled set of
// resource bundles reserved atomically across the cluster.
type PlacementGroupID [IDSize]byte

// NilPlacementGroupID is the zero value; a TaskSpec carrying it belongs to
// no group.
var NilPlacementGroupID PlacementGroupID

func (id PlacementGroupID) String() string { return "pg-" + shortHex(id[:]) }

// Hex returns the full hexadecimal form, used as a control-plane key.
func (id PlacementGroupID) Hex() string { return hex.EncodeToString(id[:]) }

// IsNil reports whether the ID is the zero value.
func (id PlacementGroupID) IsNil() bool { return id == NilPlacementGroupID }

// ParsePlacementGroupID parses the full hexadecimal form produced by Hex.
func ParsePlacementGroupID(s string) (PlacementGroupID, error) {
	var id PlacementGroupID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != IDSize {
		return id, fmt.Errorf("types: bad placement group id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// PlacementStrategy selects how a group's bundles map onto nodes.
type PlacementStrategy int

const (
	// StrategyPack places bundles on as few nodes as possible (co-location:
	// a learner next to its simulators minimizes object transfer).
	StrategyPack PlacementStrategy = iota
	// StrategyStrictSpread places every bundle on a distinct node
	// (fault isolation: one node death loses at most one bundle).
	StrategyStrictSpread
)

var strategyNames = [...]string{"PACK", "STRICT_SPREAD"}

func (s PlacementStrategy) String() string {
	if s < 0 || int(s) >= len(strategyNames) {
		return fmt.Sprintf("PlacementStrategy(%d)", int(s))
	}
	return strategyNames[s]
}

// Bundle is one unit of a placement group: a resource reservation that
// member tasks draw from. Bundles are indexed by position in the spec.
type Bundle struct {
	Resources Resources
}

// PlacementGroupSpec is the immutable half of a placement-group record.
type PlacementGroupSpec struct {
	ID       PlacementGroupID
	Name     string // human label for dashboards; not a key
	Strategy PlacementStrategy
	Bundles  []Bundle
}

// Validate checks the spec for structural errors before creation.
func (s *PlacementGroupSpec) Validate() error {
	if s.ID.IsNil() {
		return fmt.Errorf("types: placement group has nil ID")
	}
	if len(s.Bundles) == 0 {
		return fmt.Errorf("types: placement group %s has no bundles", s.ID)
	}
	for i, b := range s.Bundles {
		if err := b.Resources.Validate(); err != nil {
			return fmt.Errorf("placement group %s bundle %d: %w", s.ID, i, err)
		}
		if b.Resources.IsZero() {
			return fmt.Errorf("types: placement group %s bundle %d reserves nothing", s.ID, i)
		}
	}
	return nil
}

// PlacementGroupState is the lifecycle state of a group record.
type PlacementGroupState int

// Group lifecycle. Placing marks a global scheduler's claim while it issues
// bundle reservations (the CAS Pending→Placing makes exactly one scheduler
// reserve); a claim that dies mid-placement is swept back to Pending after
// its reservations are rolled back. Removed is terminal.
const (
	GroupPending PlacementGroupState = iota
	GroupPlacing
	GroupPlaced
	GroupRemoved
)

var groupStateNames = [...]string{"PENDING", "PLACING", "PLACED", "REMOVED"}

func (s PlacementGroupState) String() string {
	if s < 0 || int(s) >= len(groupStateNames) {
		return fmt.Sprintf("PlacementGroupState(%d)", int(s))
	}
	return groupStateNames[s]
}

// PlacementGroupInfo is the placement-group table record: spec plus mutable
// gang-scheduling state. It is durable like every other control-plane
// record (WAL + snapshot on a sharded deployment).
type PlacementGroupInfo struct {
	Spec  PlacementGroupSpec
	State PlacementGroupState
	// BundleNodes[i] is the node holding bundle i's reservation; valid only
	// in GroupPlaced (cleared when placement rolls back to Pending).
	BundleNodes []NodeID
	// Timestamps in nanoseconds since the cluster epoch.
	CreatedNs        int64
	PlacedNs         int64
	RemovedNs        int64
	LastTransitionNs int64
	// MutOps remembers recent state-CAS operation tokens (a small ring),
	// mirroring TaskState.MutOps: a retried CAS whose commit survived a
	// shard crash is recognized and reported won instead of losing to its
	// own earlier commit.
	MutOps []uint64
	// ClaimToken identifies which scheduler holds the Placing claim: set by
	// the Pending→Placing CAS, required to match at the Placing→Placed
	// commit, and cleared on every rollback to Pending. It closes the
	// stale-claimant hole the sweep alone could not: a claimant stalled
	// past the stale-claim sweep cannot commit over a successor's claim,
	// because the successor's claim rewrote the token (mirrors the MutOps
	// idempotency rings; see gcs.Store.CASPlacementGroupStateClaim).
	ClaimToken uint64
}

// NodeFor returns the node holding bundle's reservation, or nil ID when the
// group is not placed or the index is out of range.
func (g *PlacementGroupInfo) NodeFor(bundle int) NodeID {
	if g.State != GroupPlaced || bundle < 0 || bundle >= len(g.BundleNodes) {
		return NilNodeID
	}
	return g.BundleNodes[bundle]
}

// ReasonGroupRemoved prefixes the failure message stored into the return
// objects of member tasks whose placement group was removed; the core layer
// recognizes it and surfaces a typed error from Get.
const ReasonGroupRemoved = "placement-group-removed: "
