package types

import (
	"encoding/hex"
	"fmt"
)

// JobID names a job: one tenant's workload — a driver session, a batch
// submission, a service — whose tasks are scheduled, metered, and reclaimed
// as a unit (DESIGN.md §14).
type JobID [IDSize]byte

// NilJobID is the zero value; a TaskSpec carrying it belongs to no job and
// is scheduled under the default (weight-1) share.
var NilJobID JobID

func (id JobID) String() string { return "job-" + shortHex(id[:]) }

// Hex returns the full hexadecimal form, used as a control-plane key.
func (id JobID) Hex() string { return hex.EncodeToString(id[:]) }

// IsNil reports whether the ID is the zero value.
func (id JobID) IsNil() bool { return id == NilJobID }

// ParseJobID parses the full hexadecimal form produced by Hex.
func ParseJobID(s string) (JobID, error) {
	var id JobID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != IDSize {
		return id, fmt.Errorf("types: bad job id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// JobQuota is a job's admission ceiling. Zero fields are unlimited; a
// submission that would exceed any non-zero ceiling fails fast at submit
// time with a typed error instead of entering the queues.
type JobQuota struct {
	// MaxLiveTasks caps the job's concurrently live (non-terminal) tasks.
	MaxLiveTasks int
	// MaxQueueDepth caps the job's tasks sitting unscheduled (PENDING or
	// QUEUED) across the cluster.
	MaxQueueDepth int
	// MaxObjectBytes caps the bytes of undrained objects produced by the
	// job's tasks, as attributed through the object table's Producer edges.
	MaxObjectBytes int64
}

// Validate checks the quota for structural errors.
func (q *JobQuota) Validate() error {
	if q.MaxLiveTasks < 0 || q.MaxQueueDepth < 0 || q.MaxObjectBytes < 0 {
		return fmt.Errorf("types: job quota fields must be non-negative")
	}
	return nil
}

// JobSpec is the immutable half of a job record.
type JobSpec struct {
	ID   JobID
	Name string // human label for dashboards; not a key
	// Weight is the job's fair-share weight: when the global scheduler's
	// dispatch queue is contended, jobs receive dispatch slots in proportion
	// to their weights (deficit round-robin). Zero selects 1.
	Weight int
	// Quota is the job's admission ceiling (zero fields unlimited).
	Quota JobQuota
}

// FairWeight returns the effective scheduling weight (zero selects 1).
func (s *JobSpec) FairWeight() int {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// Validate checks the spec for structural errors before creation.
func (s *JobSpec) Validate() error {
	if s.ID.IsNil() {
		return fmt.Errorf("types: job has nil ID")
	}
	if s.Weight < 0 {
		return fmt.Errorf("types: job %s has negative weight %d", s.ID, s.Weight)
	}
	if err := s.Quota.Validate(); err != nil {
		return fmt.Errorf("job %s: %w", s.ID, err)
	}
	return nil
}

// JobState is the lifecycle state of a job record.
type JobState int

// Job lifecycle. Running admits submissions. Stopping marks a reclaim in
// progress: submissions are fenced, the job's live tasks are failed with
// ReasonJobStopped, and its object refs are force-released. Stopped is
// terminal — reached only once every live task is buried and every ref
// dropped; after a grace period the job's task and object records are
// purged, leaving the Stopped job record itself as the durable tombstone
// (so replayed submissions against the dead job keep failing typed).
const (
	JobRunning JobState = iota
	JobStopping
	JobStopped
)

var jobStateNames = [...]string{"RUNNING", "STOPPING", "STOPPED"}

func (s JobState) String() string {
	if s < 0 || int(s) >= len(jobStateNames) {
		return fmt.Sprintf("JobState(%d)", int(s))
	}
	return jobStateNames[s]
}

// Terminal reports whether no further transitions are expected.
func (s JobState) Terminal() bool { return s == JobStopped }

// JobInfo is the job-table record: spec plus mutable lifecycle state. It is
// durable like every other control-plane record (WAL + snapshot on a
// sharded deployment) and survives its own workload: the Stopped record is
// the tombstone that outlives the purged task/object records.
type JobInfo struct {
	Spec  JobSpec
	State JobState
	// Timestamps in nanoseconds since the cluster epoch.
	CreatedNs        int64
	StoppingNs       int64
	StoppedNs        int64
	LastTransitionNs int64
	// PurgedNs is stamped once the job's task and object records have been
	// tombstoned after the post-stop grace period; zero means reclamation
	// of records is still pending (or the job is live).
	PurgedNs int64
	// MutOps remembers recent state-CAS operation tokens (a small ring),
	// mirroring TaskState.MutOps: a retried CAS whose commit survived a
	// shard crash is recognized and reported won instead of losing to its
	// own earlier commit.
	MutOps []uint64
}

// Stopped reports whether the job reached its terminal state.
func (j *JobInfo) Stopped() bool { return j.State == JobStopped }

// ReasonJobStopped prefixes the failure message stored into the return
// objects of tasks buried by a job stop; the core layer recognizes it and
// surfaces a typed error from Get.
const ReasonJobStopped = "job-stopped: "
