// Package sensor implements the paper's Figure 2a workload: online
// processing of streaming sensory data to model the environment. N sensor
// streams (video, LIDAR, ...) produce readings continuously; for every
// fusion window the system runs one preprocossing task per stream, fuses
// the cleaned readings pairwise up a reduction tree, and emits an
// environment estimate. The per-window end-to-end latency distribution is
// the metric (R1: the robot is controlled in real time).
package sensor

import (
	"context"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/types"
)

// Remote function names.
const (
	FuncPreprocess = "sensor.preprocess"
	FuncFuse       = "sensor.fuse"
	FuncEstimate   = "sensor.estimate"
)

// Config shapes the streaming workload.
type Config struct {
	// Streams is the sensor count.
	Streams int
	// Windows is how many fusion windows to process.
	Windows int
	// Dim is each reading's feature dimension.
	Dim int
	// PreprocessCost is the per-stream cleaning kernel duration; stream i
	// costs PreprocessCost*(1+i*Skew) — heterogeneous sensors (R4).
	PreprocessCost time.Duration
	Skew           float64
	// FuseCost is each pairwise-fusion kernel's duration.
	FuseCost time.Duration
	// Interval is the window arrival period (0 = process back to back).
	Interval time.Duration
	// MaxInFlight bounds concurrently processed windows (pipelining depth).
	MaxInFlight int
	// Seed derives deterministic readings.
	Seed uint64
}

// Default returns a modest eight-sensor configuration.
func Default(seed uint64) Config {
	return Config{
		Streams:        8,
		Windows:        10,
		Dim:            8,
		PreprocessCost: 2 * time.Millisecond,
		Skew:           0.25,
		FuseCost:       time.Millisecond,
		MaxInFlight:    4,
		Seed:           seed,
	}
}

// reading is one sensor sample on the wire.
type reading struct {
	Stream int
	Window int
	Data   []float64
}

// kernelArg carries a kernel's cost through task args.
type kernelArg struct{ CostNs int64 }

// RegisterFuncs installs the preprocessing, fusion, and estimate functions.
func RegisterFuncs(reg *core.Registry) {
	// FuncPreprocess: [gob(kernelArg), gob(reading)] -> gob(reading).
	reg.Register(FuncPreprocess, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("sensor.preprocess expects 2 args")
		}
		k, err := codec.DecodeAs[kernelArg](args[0])
		if err != nil {
			return nil, err
		}
		r, err := codec.DecodeAs[reading](args[1])
		if err != nil {
			return nil, err
		}
		sim.Compute(time.Duration(k.CostNs))
		for i := range r.Data { // denoise: clamp outliers
			if r.Data[i] > 1 {
				r.Data[i] = 1
			}
			if r.Data[i] < -1 {
				r.Data[i] = -1
			}
		}
		enc, err := codec.Encode(r)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})

	// FuncFuse: [gob(kernelArg), gob(reading), gob(reading)] -> gob(reading).
	reg.Register(FuncFuse, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("sensor.fuse expects 3 args")
		}
		k, err := codec.DecodeAs[kernelArg](args[0])
		if err != nil {
			return nil, err
		}
		a, err := codec.DecodeAs[reading](args[1])
		if err != nil {
			return nil, err
		}
		b, err := codec.DecodeAs[reading](args[2])
		if err != nil {
			return nil, err
		}
		sim.Compute(time.Duration(k.CostNs))
		out := reading{Window: a.Window, Data: make([]float64, len(a.Data))}
		for i := range out.Data {
			var bv float64
			if i < len(b.Data) {
				bv = b.Data[i]
			}
			out.Data[i] = (a.Data[i] + bv) / 2
		}
		enc, err := codec.Encode(out)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})

	// FuncEstimate: [gob(reading)] -> gob(float64): the scalar environment
	// estimate controlling the actuator.
	reg.Register(FuncEstimate, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("sensor.estimate expects 1 arg")
		}
		r, err := codec.DecodeAs[reading](args[0])
		if err != nil {
			return nil, err
		}
		s := 0.0
		for _, v := range r.Data {
			s += v
		}
		enc, err := codec.Encode(s / float64(len(r.Data)+1))
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
}

// sample synthesizes stream s's reading for window w.
func (c Config) sample(s, w int) reading {
	data := make([]float64, c.Dim)
	for i := range data {
		v := c.Seed ^ uint64(s)<<40 ^ uint64(w)<<20 ^ uint64(i)
		v ^= v >> 12
		v ^= v << 25
		v ^= v >> 27
		data[i] = (float64((v*0x2545f4914f6cdd1d)>>11)/float64(1<<53))*4 - 2
	}
	return reading{Stream: s, Window: w, Data: data}
}

// Report is a completed streaming run.
type Report struct {
	Windows   int
	Latency   *stats.Sample // per-window submit -> estimate latency
	Estimates []float64
	Elapsed   time.Duration
}

// Run processes cfg.Windows fusion windows, keeping up to MaxInFlight
// windows in flight (the streaming pipeline). Per window it builds the
// Fig 2a DAG: Streams preprocess tasks, a pairwise fusion tree, one
// estimate task.
func Run(ctx context.Context, driver *core.Client, cfg Config) (Report, error) {
	start := time.Now()
	rep := Report{Latency: stats.NewSample(cfg.Windows), Estimates: make([]float64, cfg.Windows)}

	type flight struct {
		window  int
		ref     core.ObjectRef
		started time.Time
	}
	var inflight []flight

	harvest := func(block bool) error {
		if len(inflight) == 0 {
			return nil
		}
		need := 0 // poll
		if block || len(inflight) >= cfg.MaxInFlight {
			need = 1
		}
		refs := make([]core.ObjectRef, len(inflight))
		for i, f := range inflight {
			refs[i] = f.ref
		}
		timeout := time.Duration(-1)
		if need == 0 {
			timeout = 0
		}
		ready, _, err := driver.Wait(ctx, refs, max(need, 0), timeout)
		if err != nil {
			return err
		}
		readySet := make(map[types.ObjectID]bool, len(ready))
		for _, r := range ready {
			readySet[r.ID] = true
		}
		keep := inflight[:0]
		for _, f := range inflight {
			if !readySet[f.ref.ID] {
				keep = append(keep, f)
				continue
			}
			raw, err := driver.Get(ctx, f.ref)
			if err != nil {
				return err
			}
			est, err := codec.DecodeAs[float64](raw)
			if err != nil {
				return err
			}
			rep.Estimates[f.window] = est
			rep.Latency.Add(time.Since(f.started))
			rep.Windows++
		}
		inflight = keep
		return nil
	}

	for w := 0; w < cfg.Windows; w++ {
		if cfg.Interval > 0 {
			time.Sleep(cfg.Interval)
		}
		for len(inflight) >= cfg.MaxInFlight {
			if err := harvest(true); err != nil {
				return rep, err
			}
		}
		began := time.Now()
		ref, err := submitWindow(driver, cfg, w)
		if err != nil {
			return rep, err
		}
		inflight = append(inflight, flight{window: w, ref: ref, started: began})
		if err := harvest(false); err != nil {
			return rep, err
		}
	}
	for len(inflight) > 0 {
		if err := harvest(true); err != nil {
			return rep, err
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// submitWindow builds one window's DAG and returns the estimate future.
func submitWindow(driver *core.Client, cfg Config, w int) (core.ObjectRef, error) {
	level := make([]core.ObjectRef, 0, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		cost := time.Duration(float64(cfg.PreprocessCost) * (1 + float64(s)*cfg.Skew))
		ref, err := driver.Submit1(core.Call{
			Function:  FuncPreprocess,
			Args:      []types.Arg{core.Val(kernelArg{CostNs: int64(cost)}), core.Val(cfg.sample(s, w))},
			Resources: types.CPU(1),
		})
		if err != nil {
			return core.ObjectRef{}, err
		}
		level = append(level, ref)
	}
	// Pairwise fusion tree.
	for len(level) > 1 {
		var next []core.ObjectRef
		for i := 0; i+1 < len(level); i += 2 {
			ref, err := driver.Submit1(core.Call{
				Function:  FuncFuse,
				Args:      []types.Arg{core.Val(kernelArg{CostNs: int64(cfg.FuseCost)}), core.RefOf(level[i]), core.RefOf(level[i+1])},
				Resources: types.CPU(1),
			})
			if err != nil {
				return core.ObjectRef{}, err
			}
			next = append(next, ref)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return driver.Submit1(core.Call{
		Function:  FuncEstimate,
		Args:      []types.Arg{core.RefOf(level[0])},
		Resources: types.CPU(1),
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
