package sensor

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/types"
)

func fastConfig(seed uint64) Config {
	cfg := Default(seed)
	cfg.Windows = 5
	cfg.PreprocessCost = 200 * time.Microsecond
	cfg.FuseCost = 100 * time.Microsecond
	return cfg
}

func sensorCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	reg := core.NewRegistry()
	RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestRunProcessesAllWindows(t *testing.T) {
	cfg := fastConfig(1)
	c := sensorCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != cfg.Windows {
		t.Fatalf("processed %d/%d windows", rep.Windows, cfg.Windows)
	}
	if rep.Latency.N() != cfg.Windows {
		t.Fatalf("latency samples = %d", rep.Latency.N())
	}
	if rep.Latency.Max() <= 0 {
		t.Fatal("latencies not measured")
	}
}

func TestEstimatesDeterministic(t *testing.T) {
	cfg := fastConfig(2)
	c := sensorCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	a, err := Run(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("window %d estimate diverged: %v vs %v", i, a.Estimates[i], b.Estimates[i])
		}
	}
}

func TestEstimatesBounded(t *testing.T) {
	// Preprocessing clamps to [-1, 1]; the fused mean must stay within.
	cfg := fastConfig(3)
	c := sensorCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, est := range rep.Estimates {
		if est < -1 || est > 1 {
			t.Fatalf("window %d estimate %v escaped clamp", i, est)
		}
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	cfg := fastConfig(4)
	a := cfg.sample(0, 0)
	b := cfg.sample(0, 0)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("sample not deterministic")
		}
	}
	c := cfg.sample(1, 0)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different streams produced identical readings")
	}
}

func TestPipeliningKeepsMultipleWindowsInFlight(t *testing.T) {
	cfg := fastConfig(5)
	cfg.Windows = 8
	cfg.MaxInFlight = 4
	c := sensorCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != cfg.Windows {
		t.Fatalf("processed %d windows", rep.Windows)
	}
	// With 4-deep pipelining the total must be well under sequential sum of
	// window latencies.
	var seqSum time.Duration
	for i := 0; i < rep.Latency.N(); i++ {
		seqSum += rep.Latency.Mean()
	}
	if rep.Elapsed > seqSum {
		t.Fatalf("no pipelining visible: elapsed %v vs sequential %v", rep.Elapsed, seqSum)
	}
}
