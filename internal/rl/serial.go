package rl

import (
	"time"

	"repro/internal/sim"
)

// RunSerial executes the workload on a single thread: every simulation step
// of every simulator runs sequentially, with one policy evaluation per
// step batch. This is the paper's single-threaded reference point.
func RunSerial(cfg Config) Report {
	start := time.Now()
	policy := sim.NewPolicy(cfg.ObsDim, cfg.NumActions, cfg.EvalCost)
	carries := initialCarries(cfg)
	report := Report{Impl: "serial"}

	for iter := 0; iter < cfg.Iters; iter++ {
		// Actions reset each iteration (the policy just changed); every
		// implementation shares this convention so trajectories match.
		actions := make([]int, cfg.NumSims)
		for step := 0; step < cfg.StepsPerIter; step++ {
			// Simulation stage: every simulator steps, one after another.
			for i := range carries {
				carries[i] = stepSim(carries[i], actions[i])
				report.TotalSteps++
			}
			// Action-computation stage: one batched policy evaluation.
			obs := make([]sim.Obs, len(carries))
			for i := range carries {
				obs[i] = carries[i].Obs
			}
			actions = policy.Act(obs)
		}
		report.MeanReturnPerIter = append(report.MeanReturnPerIter, iterUpdate(policy, carries, cfg.LR))
	}
	report.Elapsed = time.Since(start)
	return report
}
