package rl

import (
	"context"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/types"

	"repro/internal/sim"
)

// RunPipelined is the Section 4.2 refinement: "using the wait primitive, we
// can adapt the example to process the simulation tasks in the order that
// they finish so as to better pipeline the simulation execution with the
// action computations on the GPU". Instead of a global per-step barrier,
// the driver waits for any `chunk` simulations to complete, immediately
// dispatches a GPU action task for just that chunk, and advances those
// simulators — so a straggler simulation stalls only itself (R1, R4).
//
// With uniform step costs this matches RunCore; with a heavy-tailed
// straggler distribution (Config.StragglerEvery) it wins, which is
// experiment E6.
func RunPipelined(ctx context.Context, cfg Config, driver *core.Client, chunk int) (Report, error) {
	if chunk <= 0 {
		chunk = cfg.NumSims / 4
		if chunk < 1 {
			chunk = 1
		}
	}
	start := time.Now()
	policy := sim.NewPolicy(cfg.ObsDim, cfg.NumActions, cfg.EvalCost)
	carries := initialCarries(cfg)
	report := Report{Impl: "pipelined"}

	type readyCarry struct {
		sim int
		ref core.ObjectRef
	}

	for iter := 0; iter < cfg.Iters; iter++ {
		stepsDone := make([]int, cfg.NumSims)
		inflight := make(map[types.ObjectID]int)
		finalRefs := make([]core.ObjectRef, cfg.NumSims)

		// Launch step 1 of every simulator (no actions yet).
		for i := 0; i < cfg.NumSims; i++ {
			ref, err := submitStep(driver, core.Val(carries[i]), emptyActions(), -1)
			if err != nil {
				return report, err
			}
			inflight[ref.ID] = i
			report.TotalSteps++
		}

		var pool []readyCarry
		for len(inflight) > 0 {
			refs := make([]core.ObjectRef, 0, len(inflight))
			for id := range inflight {
				refs = append(refs, core.ObjectRef{ID: id})
			}
			k := chunk
			if k > len(refs) {
				k = len(refs)
			}
			ready, _, err := driver.Wait(ctx, refs, k, -1)
			if err != nil {
				return report, err
			}
			for _, r := range ready {
				simIdx := inflight[r.ID]
				delete(inflight, r.ID)
				stepsDone[simIdx]++
				if stepsDone[simIdx] >= cfg.StepsPerIter {
					finalRefs[simIdx] = r
				} else {
					pool = append(pool, readyCarry{sim: simIdx, ref: r})
				}
			}
			if len(pool) == 0 {
				continue
			}
			// Pipeline: GPU action task for exactly this chunk, then the
			// chunk's next simulation steps — while stragglers keep running.
			carryRefs := make([]core.ObjectRef, len(pool))
			for i, e := range pool {
				carryRefs[i] = e.ref
			}
			actRef, err := submitAct(driver, policy, carryRefs)
			if err != nil {
				return report, err
			}
			for pos, e := range pool {
				ref, err := submitStep(driver, core.RefOf(e.ref), core.RefOf(actRef), pos)
				if err != nil {
					return report, err
				}
				inflight[ref.ID] = e.sim
				report.TotalSteps++
			}
			pool = nil
		}

		for i, ref := range finalRefs {
			raw, err := driver.Get(ctx, ref)
			if err != nil {
				return report, err
			}
			c, err := codec.DecodeAs[carry](raw)
			if err != nil {
				return report, err
			}
			carries[i] = c
		}
		report.MeanReturnPerIter = append(report.MeanReturnPerIter, iterUpdate(policy, carries, cfg.LR))
	}
	report.Elapsed = time.Since(start)
	return report, nil
}
