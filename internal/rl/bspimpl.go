package rl

import (
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/sim"
)

// bspStepIn is the closure input shipped to each BSP simulation task.
type bspStepIn struct {
	Carry  carry
	Action int
}

// RunBSP executes the workload on the BSP engine — the Spark stand-in.
// Each simulation stage dispatches NumSims tasks through the centralized
// driver (paying its per-task overhead); a global barrier separates it from
// the action-computation stage. Following the paper's footnote 2, the GPU
// policy evaluation is charged as if perfectly parallelized with no
// overhead: it runs on the driver at kernel cost only.
func RunBSP(cfg Config, engine *bsp.Engine) Report {
	start := time.Now()
	policy := sim.NewPolicy(cfg.ObsDim, cfg.NumActions, cfg.EvalCost)
	carries := initialCarries(cfg)
	report := Report{Impl: "bsp"}

	simTask := func(input []byte) []byte {
		in, err := codec.DecodeAs[bspStepIn](input)
		if err != nil {
			panic(err)
		}
		out := stepSim(in.Carry, in.Action)
		return codec.MustEncode(out)
	}

	for iter := 0; iter < cfg.Iters; iter++ {
		actions := make([]int, cfg.NumSims)
		for step := 0; step < cfg.StepsPerIter; step++ {
			inputs := make([][]byte, cfg.NumSims)
			for i := range carries {
				inputs[i] = codec.MustEncode(bspStepIn{Carry: carries[i], Action: actions[i]})
			}
			outputs := engine.RunStage([]bsp.Task{simTask}, inputs)
			obs := make([]sim.Obs, cfg.NumSims)
			for i, raw := range outputs {
				c, err := codec.DecodeAs[carry](raw)
				if err != nil {
					panic(err)
				}
				carries[i] = c
				obs[i] = c.Obs
				report.TotalSteps++
			}
			actions = policy.Act(obs) // footnote-2 treatment: no overhead
		}
		report.MeanReturnPerIter = append(report.MeanReturnPerIter, iterUpdate(policy, carries, cfg.LR))
	}
	report.Elapsed = time.Since(start)
	return report
}
