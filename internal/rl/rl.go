// Package rl implements the representative reinforcement-learning workload
// of the paper's Section 4.2: training alternates between stages in which
// actions are taken in parallel simulations (CPU tasks of ~7ms) and stages
// in which actions are computed for batches of observations (GPU kernels).
//
// Four implementations of the identical computation exist, one per column
// of the paper's comparison (experiment E5) plus the wait-based extension
// (E6):
//
//   - RunSerial     — the single-threaded baseline.
//   - RunBSP        — the Spark stand-in (internal/bsp): stage barriers and
//     a centralized driver with per-task overhead.
//   - RunCore       — this system, same BSP-shaped dataflow expressed with
//     futures ("despite the BSP nature of the example").
//   - RunPipelined  — the Section 4.2 refinement: using wait to process
//     simulations in completion order, pipelining simulation with action
//     computation so stragglers do not stall the iteration.
//
// All four produce the same learning statistics for the same seed, which
// the equivalence tests check.
package rl

import (
	"time"

	"repro/internal/sim"
)

// Config shapes the workload (defaults mirror Section 4.2).
type Config struct {
	// NumSims is the parallel simulation count.
	NumSims int
	// StepsPerIter is how many simulate/compute alternations per training
	// iteration.
	StepsPerIter int
	// Iters is the training iteration count (policy updates).
	Iters int
	// StepCost is each simulation step's compute (paper: ~7ms).
	StepCost time.Duration
	// EvalCost is the GPU action-computation kernel duration per batch.
	EvalCost time.Duration
	// StragglerEvery makes every k-th simulator's steps StragglerFactor
	// slower (0 = uniform); the pipelining experiment (E6) uses this.
	StragglerEvery  int
	StragglerFactor int
	// StepJitterEvery/StepJitterFactor add deterministic heavy-tail jitter:
	// roughly 1-in-JitterEvery steps of any simulator costs JitterFactor
	// times more. This is the per-step variance that makes barriers pay the
	// max over simulators every step while wait-pipelining pays each
	// chain's own average (E6).
	StepJitterEvery  int
	StepJitterFactor int
	// Seed drives every simulator (sim i uses Seed+i).
	Seed uint64
	// LR is the policy learning rate.
	LR float64
	// ObsDim / NumActions shape the environment and policy.
	ObsDim     int
	NumActions int
}

// Default returns the Section 4.2 workload shape. Sixteen parallel
// simulators matches the parallelism implied by the paper's "7x faster
// than the single-threaded implementation".
func Default() Config {
	return Config{
		NumSims:         16,
		StepsPerIter:    10,
		Iters:           2,
		StepCost:        7 * time.Millisecond,
		EvalCost:        3 * time.Millisecond,
		Seed:            1,
		LR:              0.5,
		ObsDim:          16,
		NumActions:      4,
		StragglerFactor: 3,
	}
}

// stepCostFor applies the straggler model for simulator i.
func (c Config) stepCostFor(i int) time.Duration {
	if c.StragglerEvery > 0 && i%c.StragglerEvery == c.StragglerEvery-1 {
		f := c.StragglerFactor
		if f <= 1 {
			f = 3
		}
		return c.StepCost * time.Duration(f)
	}
	return c.StepCost
}

func (c Config) envConfig(i int) sim.EnvConfig {
	return sim.EnvConfig{
		Seed:         c.Seed + uint64(i),
		ObsDim:       c.ObsDim,
		NumActions:   c.NumActions,
		StepCost:     c.stepCostFor(i),
		MinSteps:     c.StepsPerIter * c.Iters,
		MaxSteps:     c.StepsPerIter * c.Iters,
		JitterEvery:  c.StepJitterEvery,
		JitterFactor: c.StepJitterFactor,
	}
}

// Report is a run's outcome: wall time plus learning statistics that let
// the equivalence tests verify all implementations compute the same thing.
type Report struct {
	Impl       string
	Elapsed    time.Duration
	TotalSteps int
	// MeanReturnPerIter is the per-iteration mean episode return; it should
	// trend upward (the policy is learning) and match across impls.
	MeanReturnPerIter []float64
}

// FinalReturn is the last iteration's mean return.
func (r Report) FinalReturn() float64 {
	if len(r.MeanReturnPerIter) == 0 {
		return 0
	}
	return r.MeanReturnPerIter[len(r.MeanReturnPerIter)-1]
}

// carry is the per-simulator state threaded through steps.
type carry struct {
	Env    sim.EnvState
	Obs    sim.Obs
	Reward float64
	Stats  sim.RolloutStats
	Done   bool
}

// initialCarries builds each simulator's starting state.
func initialCarries(cfg Config) []carry {
	out := make([]carry, cfg.NumSims)
	for i := range out {
		env := sim.NewEnv(cfg.envConfig(i))
		out[i] = carry{Env: env.State(), Obs: env.Observe()}
	}
	return out
}

// stepSim advances one simulator by one action (the ~7ms task body shared
// by every implementation). All shaping parameters travel inside the carry,
// so the same body serves local closures and remote tasks.
func stepSim(c carry, action int) carry {
	env := sim.RestoreEnv(c.Env)
	obs, reward, done := env.Step(action)
	c.Stats.Record(c.Obs, action, reward, c.Env.Cfg.ObsDim, c.Env.Cfg.NumActions)
	c.Env = env.State()
	c.Obs = obs
	c.Reward = reward
	c.Done = done
	return c
}

// iterUpdate folds rollout stats into the policy at iteration end and
// returns the iteration's mean return.
func iterUpdate(policy *sim.Policy, carries []carry, lr float64) float64 {
	var merged sim.RolloutStats
	total := 0.0
	for i := range carries {
		merged.Merge(carries[i].Stats)
		total += carries[i].Stats.Return
		carries[i].Stats = sim.RolloutStats{}
	}
	policy.Update(merged.Gradient(), lr)
	return total / float64(len(carries))
}
