package rl

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/types"
)

func testConfig() Config {
	cfg := Default()
	cfg.NumSims = 4
	cfg.StepsPerIter = 3
	cfg.Iters = 2
	cfg.StepCost = time.Millisecond
	cfg.EvalCost = 500 * time.Microsecond
	return cfg
}

func testCluster(t *testing.T, cfg Config) *cluster.Cluster {
	t.Helper()
	reg := core.NewRegistry()
	RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{
		Nodes:         1,
		NodeResources: types.Resources{types.ResCPU: float64(cfg.NumSims), types.ResGPU: 1},
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestSerialProducesLearningSignal(t *testing.T) {
	cfg := testConfig()
	rep := RunSerial(cfg)
	if rep.TotalSteps != cfg.NumSims*cfg.StepsPerIter*cfg.Iters {
		t.Fatalf("TotalSteps = %d", rep.TotalSteps)
	}
	if len(rep.MeanReturnPerIter) != cfg.Iters {
		t.Fatalf("iters recorded = %d", len(rep.MeanReturnPerIter))
	}
	if rep.FinalReturn() <= 0 {
		t.Fatalf("no reward signal: %v", rep.MeanReturnPerIter)
	}
}

func TestSerialDeterministic(t *testing.T) {
	cfg := testConfig()
	a, b := RunSerial(cfg), RunSerial(cfg)
	if !almostEqual(a.MeanReturnPerIter, b.MeanReturnPerIter) {
		t.Fatalf("same seed diverged: %v vs %v", a.MeanReturnPerIter, b.MeanReturnPerIter)
	}
}

func TestBSPMatchesSerial(t *testing.T) {
	cfg := testConfig()
	serial := RunSerial(cfg)
	engine := bsp.New(bsp.Config{Executors: cfg.NumSims, DriverOverhead: 0})
	bspRep := RunBSP(cfg, engine)
	if !almostEqual(serial.MeanReturnPerIter, bspRep.MeanReturnPerIter) {
		t.Fatalf("BSP learning stats diverge: %v vs %v", bspRep.MeanReturnPerIter, serial.MeanReturnPerIter)
	}
	if engine.TasksRun() != int64(cfg.NumSims*cfg.StepsPerIter*cfg.Iters) {
		t.Fatalf("BSP ran %d tasks", engine.TasksRun())
	}
	if engine.StagesRun() != int64(cfg.StepsPerIter*cfg.Iters) {
		t.Fatalf("BSP ran %d stages", engine.StagesRun())
	}
	if engine.BytesShipped() == 0 {
		t.Fatal("driver shipped no bytes — serialization path dead")
	}
}

func TestCoreMatchesSerial(t *testing.T) {
	cfg := testConfig()
	serial := RunSerial(cfg)
	c := testCluster(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunCore(ctx, cfg, c.Driver())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(serial.MeanReturnPerIter, rep.MeanReturnPerIter) {
		t.Fatalf("core learning stats diverge: %v vs %v", rep.MeanReturnPerIter, serial.MeanReturnPerIter)
	}
}

func TestPipelinedMatchesSerial(t *testing.T) {
	cfg := testConfig()
	serial := RunSerial(cfg)
	c := testCluster(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunPipelined(ctx, cfg, c.Driver(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(serial.MeanReturnPerIter, rep.MeanReturnPerIter) {
		t.Fatalf("pipelined learning stats diverge: %v vs %v", rep.MeanReturnPerIter, serial.MeanReturnPerIter)
	}
}

func TestPipelinedWithStragglersMatchesSerial(t *testing.T) {
	cfg := testConfig()
	cfg.StragglerEvery = 2
	cfg.StragglerFactor = 3
	serial := RunSerial(cfg)
	c := testCluster(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunPipelined(ctx, cfg, c.Driver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(serial.MeanReturnPerIter, rep.MeanReturnPerIter) {
		t.Fatalf("straggler pipelined diverges: %v vs %v", rep.MeanReturnPerIter, serial.MeanReturnPerIter)
	}
}

func TestStragglerCostModel(t *testing.T) {
	cfg := testConfig()
	cfg.StragglerEvery = 2
	cfg.StragglerFactor = 5
	if got := cfg.stepCostFor(0); got != cfg.StepCost {
		t.Fatalf("sim 0 cost = %v", got)
	}
	if got := cfg.stepCostFor(1); got != 5*cfg.StepCost {
		t.Fatalf("sim 1 cost = %v", got)
	}
}

func TestBSPOverheadSlowsDriver(t *testing.T) {
	cfg := testConfig()
	cfg.Iters = 1
	cfg.StepsPerIter = 2
	fast := bsp.New(bsp.Config{Executors: cfg.NumSims, DriverOverhead: 0})
	slow := bsp.New(bsp.Config{Executors: cfg.NumSims, DriverOverhead: 5 * time.Millisecond})
	fastRep := RunBSP(cfg, fast)
	slowRep := RunBSP(cfg, slow)
	// 8 tasks * 5ms = 40ms of injected driver cost minimum.
	if slowRep.Elapsed < fastRep.Elapsed+30*time.Millisecond {
		t.Fatalf("overhead not visible: fast=%v slow=%v", fastRep.Elapsed, slowRep.Elapsed)
	}
}
