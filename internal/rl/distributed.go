package rl

import (
	"context"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// Remote function names.
const (
	FuncStep = "rl.step"
	FuncAct  = "rl.act"
)

// policyWire is the serialized policy passed to FuncAct.
type policyWire struct {
	W          []float64
	ObsDim     int
	NumActions int
	EvalCostNs int64
}

func wirePolicy(p *sim.Policy) policyWire {
	return policyWire{W: append([]float64(nil), p.W...), ObsDim: p.ObsDim, NumActions: p.NumActions, EvalCostNs: int64(p.EvalCost)}
}

func (pw policyWire) policy() *sim.Policy {
	return &sim.Policy{W: pw.W, ObsDim: pw.ObsDim, NumActions: pw.NumActions, EvalCost: time.Duration(pw.EvalCostNs)}
}

// RegisterFuncs installs the RL remote functions into a registry. Call once
// per registry before building the cluster.
func RegisterFuncs(reg *core.Registry) {
	// FuncStep: args = [gob(carry), gob([]int actions, may be nil),
	// gob(int chunk index)] -> gob(carry). The carry and actions arguments
	// are usually futures (outputs of the previous step and of the action
	// task), which is what builds the dataflow of Fig. 1b. A CPU task of
	// ~StepCost — the paper's ~7ms simulation.
	reg.Register(FuncStep, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("rl.step expects 3 args, got %d", len(args))
		}
		c, err := codec.DecodeAs[carry](args[0])
		if err != nil {
			return nil, fmt.Errorf("rl.step carry: %w", err)
		}
		var actions []int
		if err := codec.Decode(args[1], &actions); err != nil {
			return nil, fmt.Errorf("rl.step actions: %w", err)
		}
		idx, err := codec.DecodeAs[int](args[2])
		if err != nil {
			return nil, fmt.Errorf("rl.step index: %w", err)
		}
		action := 0
		if idx >= 0 && idx < len(actions) {
			action = actions[idx]
		}
		out := stepSim(c, action)
		enc, err := codec.Encode(out)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})

	// FuncAct: args = [gob(policyWire), gob(carry)...] -> gob([]int): one
	// action per carry, in argument order. A GPU kernel (paper: actions
	// computed "in parallel on GPUs").
	reg.Register(FuncAct, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("rl.act expects policy + >=1 carry")
		}
		pw, err := codec.DecodeAs[policyWire](args[0])
		if err != nil {
			return nil, err
		}
		policy := pw.policy()
		obs := make([]sim.Obs, 0, len(args)-1)
		for _, raw := range args[1:] {
			c, err := codec.DecodeAs[carry](raw)
			if err != nil {
				return nil, err
			}
			obs = append(obs, c.Obs)
		}
		actions := policy.Act(obs)
		enc, err := codec.Encode(actions)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
}

// actResources is the GPU demand of FuncAct tasks.
func actResources() types.Resources { return types.Resources{types.ResGPU: 1} }

// emptyActions is the inline "no actions yet" batch for a step's first use.
func emptyActions() types.Arg { return core.Val([]int(nil)) }

// submitStep submits one simulation-step task.
func submitStep(s core.Submitter, carryArg, actionsArg types.Arg, chunkIdx int) (core.ObjectRef, error) {
	return submit1(s, core.Call{
		Function:  FuncStep,
		Args:      []types.Arg{carryArg, actionsArg, core.Val(chunkIdx)},
		Resources: types.CPU(1),
	})
}

// submitAct submits one GPU action-computation task over carry futures.
func submitAct(s core.Submitter, policy *sim.Policy, carryRefs []core.ObjectRef) (core.ObjectRef, error) {
	args := make([]types.Arg, 0, len(carryRefs)+1)
	args = append(args, core.Val(wirePolicy(policy)))
	for _, r := range carryRefs {
		args = append(args, core.RefOf(r))
	}
	return submit1(s, core.Call{Function: FuncAct, Args: args, Resources: actResources()})
}

func submit1(s core.Submitter, call core.Call) (core.ObjectRef, error) {
	call.NumReturns = 1
	refs, err := s.Submit(call)
	if err != nil {
		return core.ObjectRef{}, err
	}
	return refs[0], nil
}

// RunCore executes the workload on this system with the same BSP-shaped
// dataflow as RunBSP — per step, NumSims simulation tasks then one GPU
// action task — expressed as futures. The speedup over RunBSP comes purely
// from system overheads ("despite the BSP nature of the example"), which is
// the paper's Section 4.2 point.
func RunCore(ctx context.Context, cfg Config, driver *core.Client) (Report, error) {
	start := time.Now()
	policy := sim.NewPolicy(cfg.ObsDim, cfg.NumActions, cfg.EvalCost)
	carries := initialCarries(cfg)
	report := Report{Impl: "core"}

	// The driver keeps a small window of steps in flight rather than
	// submitting the whole iteration graph at once: graph construction is
	// still asynchronous (Section 3.1 item 1), but the number of parked
	// dependency watchers stays bounded — the same reason real drivers
	// throttle with wait.
	const submitWindow = 2
	for iter := 0; iter < cfg.Iters; iter++ {
		carryRefs := make([]core.ObjectRef, cfg.NumSims)
		actionsArg := emptyActions()
		var actRefs []core.ObjectRef
		for step := 0; step < cfg.StepsPerIter; step++ {
			for i := 0; i < cfg.NumSims; i++ {
				carryArg := core.Val(carries[i])
				if step > 0 {
					carryArg = core.RefOf(carryRefs[i])
				}
				ref, err := submitStep(driver, carryArg, actionsArg, i)
				if err != nil {
					return report, err
				}
				carryRefs[i] = ref
				report.TotalSteps++
			}
			actRef, err := submitAct(driver, policy, carryRefs)
			if err != nil {
				return report, err
			}
			actionsArg = core.RefOf(actRef)
			actRefs = append(actRefs, actRef)
			if lag := step - submitWindow; lag >= 0 {
				if _, _, err := driver.Wait(ctx, []core.ObjectRef{actRefs[lag]}, 1, -1); err != nil {
					return report, err
				}
			}
		}
		// Iteration barrier: collect final carries, update the policy.
		for i, ref := range carryRefs {
			raw, err := driver.Get(ctx, ref)
			if err != nil {
				return report, err
			}
			c, err := codec.DecodeAs[carry](raw)
			if err != nil {
				return report, err
			}
			carries[i] = c
		}
		report.MeanReturnPerIter = append(report.MeanReturnPerIter, iterUpdate(policy, carries, cfg.LR))
	}
	report.Elapsed = time.Since(start)
	return report, nil
}
