package lifetime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/objectstore"
	"repro/internal/transport"
	"repro/internal/types"
)

// PullConfig tunes the chunked pull protocol. The zero value selects
// defaults.
type PullConfig struct {
	// ChunkSize is the transfer granularity; objects at or below it move in
	// one round trip. Default 256 KiB.
	ChunkSize int64
	// PerPeerWindow bounds concurrent chunk requests to one peer — the
	// backpressure that keeps a puller from flooding a single source node.
	// Default 4.
	PerPeerWindow int
	// MaxConcurrent bounds concurrent chunk requests across all peers of one
	// pull. Default 16.
	MaxConcurrent int
}

func (c PullConfig) withDefaults() PullConfig {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	}
	if c.PerPeerWindow <= 0 {
		c.PerPeerWindow = 4
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	return c
}

// PullManager pulls remote objects into the local store. It replaces the
// original single-shot fetcher: large objects transfer as parallel chunk
// streams spread over every peer holding a copy (memory copies preferred
// over spilled ones), small objects still take one round trip. Concurrent
// fetches of the same object collapse into a single pull, and peer
// connections are cached.
type PullManager struct {
	store *objectstore.Store
	ctrl  gcs.API
	net   transport.Network
	// resolveAddr maps a node to its transport address (node-table lookup).
	resolveAddr func(types.NodeID) (string, bool)
	cfg         PullConfig

	mu       sync.Mutex
	inflight map[types.ObjectID]chan error
	conns    map[string]transport.Client
	windows  map[string]chan struct{}
	// stop gates new connections after Close; baseCtx cancels background
	// prefetches: fire-and-forget pulls must not outlive the node,
	// re-dial peers, and register locations for a store that is shutting
	// down.
	stop       chan struct{}
	stopOnce   sync.Once
	baseCtx    context.Context
	baseCancel context.CancelFunc

	objects    atomic.Int64
	chunks     atomic.Int64
	bytes      atomic.Int64
	prefetched atomic.Int64

	// obs holds pre-resolved instruments (SetObservability); all nil-safe.
	obs pullObs
}

// pullObs bundles the pull manager's instruments and tracer. The migrator
// shares the tracer for its drain-migration spans.
type pullObs struct {
	objects    *metrics.Counter
	chunks     *metrics.Counter
	bytes      *metrics.Counter
	prefetches *metrics.Counter
	migrated   *metrics.Counter
	pullNs     *metrics.Histogram
	chunkNs    *metrics.Histogram
	tracer     *metrics.Tracer
}

// NewPullManager wires a pull manager to the local store and cluster
// network.
func NewPullManager(store *objectstore.Store, ctrl gcs.API, net transport.Network, resolveAddr func(types.NodeID) (string, bool), cfg PullConfig) *PullManager {
	baseCtx, baseCancel := context.WithCancel(context.Background())
	return &PullManager{
		baseCtx:     baseCtx,
		baseCancel:  baseCancel,
		store:       store,
		ctrl:        ctrl,
		net:         net,
		resolveAddr: resolveAddr,
		cfg:         cfg.withDefaults(),
		inflight:    make(map[types.ObjectID]chan error),
		conns:       make(map[string]transport.Client),
		windows:     make(map[string]chan struct{}),
		stop:        make(chan struct{}),
	}
}

// SetObservability attaches a metrics registry and span tracer (either
// may be nil). Call before the manager serves traffic. The node's
// Migrator records its drain-migration spans through the same tracer.
func (p *PullManager) SetObservability(reg *metrics.Registry, tracer *metrics.Tracer) {
	p.obs = pullObs{
		objects:    reg.Counter("lifetime.pull.objects"),
		chunks:     reg.Counter("lifetime.pull.chunks"),
		bytes:      reg.Counter("lifetime.pull.bytes"),
		prefetches: reg.Counter("lifetime.prefetches"),
		migrated:   reg.Counter("lifetime.migrated.objects"),
		pullNs:     reg.Histogram("lifetime.pull.ns"),
		chunkNs:    reg.Histogram("lifetime.pull.chunk.ns"),
		tracer:     tracer,
	}
}

// Stats returns cumulative (objects, chunks, bytes) pulled.
func (p *PullManager) Stats() (objects, chunks, bytes int64) {
	return p.objects.Load(), p.chunks.Load(), p.bytes.Load()
}

// Prefetched returns how many background pulls Prefetch has started.
func (p *PullManager) Prefetched() int64 { return p.prefetched.Load() }

// prefetchTimeout bounds one background pull. Generous: a prefetch is a
// head start, not a guarantee — on expiry the parked task's resolver
// still drives the dependency to residency.
const prefetchTimeout = 30 * time.Second

// Prefetch starts overlapping background pulls for every id that is
// already Ready somewhere but not locally resident. The local scheduler
// calls it with a parked task's full missing-dependency set, so chunked
// pulls for the whole set begin immediately — before the per-dependency
// resolver goroutines have attached their readiness subscriptions, which
// on a sharded control plane each cost a stream round trip (E19).
// Dependencies still Pending are skipped; their resolvers fetch on the
// ready edge as before. Concurrent fetches of the same object collapse
// into one pull via the in-flight table, so prefetch and resolver never
// transfer twice.
func (p *PullManager) Prefetch(ids []types.ObjectID) {
	for _, id := range ids {
		if p.store.Contains(id) {
			continue
		}
		// An in-flight pull (an earlier prefetch, or a resolver already
		// fetching) makes the lookup redundant — a re-enqueued task must
		// not re-pay a control RPC per dependency.
		p.mu.Lock()
		_, pulling := p.inflight[id]
		p.mu.Unlock()
		if pulling {
			continue
		}
		// Fully asynchronous: even the control-plane readiness lookup runs
		// off the caller's (scheduler enqueue) path. The pull context
		// derives from the manager's base context, so Close (node
		// shutdown) aborts it.
		go func(id types.ObjectID) {
			if p.baseCtx.Err() != nil {
				return
			}
			info, ok := p.ctrl.GetObject(id)
			if !ok || info.State != types.ObjectReady || len(info.Locations) == 0 {
				return
			}
			p.prefetched.Add(1)
			p.obs.prefetches.Inc()
			ctx, cancel := context.WithTimeout(p.baseCtx, prefetchTimeout)
			defer cancel()
			_ = p.Fetch(ctx, id, info.Locations) // best effort; resolvers are the backstop
		}(id)
	}
}

// Fetch ensures id is locally resident, pulling from the given candidate
// locations. Concurrent fetches of one object collapse into a single pull.
func (p *PullManager) Fetch(ctx context.Context, id types.ObjectID, locations []types.NodeID) error {
	if p.store.Contains(id) {
		return nil
	}
	p.mu.Lock()
	if ch, ok := p.inflight[id]; ok {
		p.mu.Unlock()
		select {
		case err := <-ch:
			// Propagate and re-arm for any other waiters.
			ch <- err
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ch := make(chan error, 1)
	p.inflight[id] = ch
	p.mu.Unlock()

	sp := p.obs.tracer.Begin("pull", "lifetime.pull")
	start := time.Now()
	err := p.pull(ctx, id, locations)
	p.mu.Lock()
	delete(p.inflight, id)
	p.mu.Unlock()
	ch <- err
	if err == nil {
		p.objects.Add(1)
		p.obs.objects.Inc()
		p.obs.pullNs.Observe(time.Since(start).Nanoseconds())
		sp.Object = id.Hex()
		sp.End()
	}
	return err
}

// peer is one resolved source for a pull.
type peer struct {
	node    types.NodeID
	addr    string
	spilled bool // this peer's copy is on its disk tier
}

// resolvePeers maps candidate locations to dialable peers, memory-resident
// copies first (restoring from a peer's disk costs that peer a spill-tier
// read, so memory copies are strictly cheaper sources).
func (p *PullManager) resolvePeers(id types.ObjectID, locations []types.NodeID, info types.ObjectInfo, haveInfo bool) []peer {
	var mem, disk []peer
	for _, loc := range locations {
		if loc == p.store.Node() {
			continue // stale self-location; the object is gone locally
		}
		addr, ok := p.resolveAddr(loc)
		if !ok {
			continue
		}
		pr := peer{node: loc, addr: addr}
		if haveInfo && info.IsSpilledOn(loc) {
			pr.spilled = true
			disk = append(disk, pr)
		} else {
			mem = append(mem, pr)
		}
	}
	return append(mem, disk...)
}

func (p *PullManager) pull(ctx context.Context, id types.ObjectID, locations []types.NodeID) error {
	info, haveInfo := p.ctrl.GetObject(id)
	peers := p.resolvePeers(id, locations, info, haveInfo)
	if len(peers) == 0 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("lifetime: no reachable locations for %v", id)
	}
	size := int64(0)
	if haveInfo {
		size = info.Size
	}
	if size <= p.cfg.ChunkSize {
		return p.pullWhole(ctx, id, peers)
	}
	return p.pullChunked(ctx, id, size, peers)
}

// pullWhole is the small-object fast path: one round trip to the first
// peer that answers.
func (p *PullManager) pullWhole(ctx context.Context, id types.ObjectID, peers []peer) error {
	var lastErr error
	for _, pr := range peers {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		client, err := p.conn(pr.addr)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := client.Call(objectstore.PullMethod, id[:])
		if err != nil {
			lastErr = err
			p.dropConn(pr.addr) // peer may be dead; redial next time
			continue
		}
		p.chunks.Add(1)
		p.bytes.Add(int64(len(data)))
		p.obs.chunks.Inc()
		p.obs.bytes.Add(int64(len(data)))
		return p.store.Put(id, data)
	}
	return lastErr
}

// pullChunked transfers a large object as bounded-concurrency chunks. Each
// chunk starts on a peer picked round-robin and falls back to the
// remaining peers on error; a per-peer window provides backpressure and a
// global semaphore bounds the pull's total parallelism.
func (p *PullManager) pullChunked(ctx context.Context, id types.ObjectID, size int64, peers []peer) error {
	buf := make([]byte, size)
	nchunks := int((size + p.cfg.ChunkSize - 1) / p.cfg.ChunkSize)
	slots := make(chan struct{}, p.cfg.MaxConcurrent)

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	for c := 0; c < nchunks; c++ {
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			fail(ctx.Err())
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() { <-slots }()
			offset := int64(c) * p.cfg.ChunkSize
			length := p.cfg.ChunkSize
			if offset+length > size {
				length = size - offset
			}
			if err := p.pullChunk(ctx, id, buf[offset:offset+length], offset, length, peers, c); err != nil {
				fail(err)
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	p.bytes.Add(size)
	p.obs.bytes.Add(size)
	return p.store.Put(id, buf)
}

// pullChunk fetches one byte range into dst, trying each peer at most once
// starting from the round-robin choice for chunk c.
func (p *PullManager) pullChunk(ctx context.Context, id types.ObjectID, dst []byte, offset, length int64, peers []peer, c int) error {
	req := objectstore.EncodeChunkRequest(id, offset, length)
	sp := p.obs.tracer.Begin("pull", "lifetime.pull.chunk")
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < len(peers); attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		pr := peers[(c+attempt)%len(peers)]
		client, err := p.conn(pr.addr)
		if err != nil {
			lastErr = err
			continue
		}
		win := p.window(pr.addr)
		select {
		case win <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		resp, err := client.Call(objectstore.PullChunkMethod, req)
		<-win
		if err != nil {
			lastErr = err
			p.dropConn(pr.addr)
			continue
		}
		if int64(len(resp)) != length {
			lastErr = fmt.Errorf("lifetime: chunk at %d of %v: got %d bytes, want %d", offset, id, len(resp), length)
			continue
		}
		copy(dst, resp)
		p.chunks.Add(1)
		p.obs.chunks.Inc()
		p.obs.chunkNs.Observe(time.Since(start).Nanoseconds())
		sp.Object = id.Hex()
		sp.Detail = fmt.Sprintf("chunk %d @%d+%d from %s", c, offset, length, pr.node)
		sp.End()
		return nil
	}
	return lastErr
}

func (p *PullManager) conn(addr string) (transport.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Refuse new connections once closed: a background prefetch racing
	// Close would otherwise dial and cache a client after the map was
	// drained, leaking the connection (Close's drain and this insert are
	// serialized on p.mu, so the check is race-free).
	select {
	case <-p.stop:
		return nil, fmt.Errorf("lifetime: pull manager closed")
	default:
	}
	if c, ok := p.conns[addr]; ok {
		return c, nil
	}
	c, err := p.net.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.conns[addr] = c
	return c, nil
}

func (p *PullManager) dropConn(addr string) {
	p.mu.Lock()
	if c, ok := p.conns[addr]; ok {
		delete(p.conns, addr)
		c.Close()
	}
	p.mu.Unlock()
}

// window returns the per-peer backpressure semaphore for addr.
func (p *PullManager) window(addr string) chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	win, ok := p.windows[addr]
	if !ok {
		win = make(chan struct{}, p.cfg.PerPeerWindow)
		p.windows[addr] = win
	}
	return win
}

// Close aborts background prefetches and releases cached connections.
func (p *PullManager) Close() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.baseCancel()
	})
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, c := range p.conns {
		c.Close()
		delete(p.conns, addr)
	}
}
