package lifetime

import (
	"sync"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// TaskLedger is one node's task-state ledger — the ownership protocol of
// DESIGN.md §12 applied to the task table (§13). The node that submits a
// task (or claims a placed one) owns its lifecycle: every status
// transition, retry bump, and lineage edge is stamped into this in-process
// ledger and the owner's components read their own writes immediately.
// The GCS task table becomes a follower: it learns of transitions through
// batched ModifyTaskStates flushes and serves observability, the stale
// pending sweep, and reconstruction after the owner dies.
//
// Fencing: every owned task carries the owner's transition sequence,
// seeded by the AddTask/ClaimTask that established the tenure. The store
// applies a delta only when the record's Owner matches and the delta's
// sequence exceeds the record's — so once ownership moves (spill-away
// steal, owner-death transfer re-claiming the task), a dead tenure's
// straggler deltas are consumed without effect rather than clobbering the
// successor's writes.
//
// Flush mechanics mirror Tracker: batched async deltas (one per task per
// flush, carrying the owner's full latest view), an idempotency token per
// batch recorded in the tasks' MutOps rings, FIFO redelivery of parked
// batches under their original tokens, and flushMu serializing flushes so
// one task's deltas land in ledger order. Lineage edges (return object →
// producing task) ride the same flusher as batched EnsureObjects calls,
// delivered ahead of the task deltas they justify.
type TaskLedger struct {
	ctrl gcs.API

	mu      sync.Mutex
	node    types.NodeID
	tasks   map[types.TaskID]*ownedTask
	dirty   map[types.TaskID]struct{}
	ensures map[types.ObjectID]types.TaskID
	retry   []taskBatch
	watch   map[types.TaskID][]chan struct{}
	async   bool
	// dead latches after Abandon: the ledger belongs to a "crashed" node
	// and must never reach the control plane again.
	dead bool

	// flushMu serializes flush RPCs; two concurrent flushes could deliver
	// one task's deltas out of sequence order, and the store consumes (not
	// fails) out-of-order deltas — the newer state would be lost.
	flushMu sync.Mutex

	clockOnce  sync.Once
	clockBoot  int64
	clockStart time.Time

	stop     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	kick     chan struct{}
}

// ownedTask is the authoritative record for one task this node owns.
type ownedTask struct {
	seq      uint64 // owner's transition sequence, > the tenure's claim base
	status   types.TaskStatus
	worker   types.WorkerID
	errMsg   string
	retries  int
	schedNs  int64
	startNs  int64
	finishNs int64
	lastNs   int64
}

// taskBatch is one flush that could not be delivered: its deltas and the
// idempotency token the delivery attempt carried (fixed for all retries).
type taskBatch struct {
	op     uint64
	deltas []types.TaskStateDelta
}

// NewTaskLedger creates an empty ledger publishing into ctrl, in
// synchronous mode: every transition flushes inline (per-call behaviour
// for store-level tests). Call SetNode and Start for batched async mode.
func NewTaskLedger(ctrl gcs.API) *TaskLedger {
	return &TaskLedger{
		ctrl:    ctrl,
		tasks:   make(map[types.TaskID]*ownedTask),
		dirty:   make(map[types.TaskID]struct{}),
		ensures: make(map[types.ObjectID]types.TaskID),
		watch:   make(map[types.TaskID][]chan struct{}),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
}

// SetNode attributes this ledger's flushes to node — the Owner the store's
// fencing guard matches deltas against. Call before Start.
func (l *TaskLedger) SetNode(node types.NodeID) {
	l.mu.Lock()
	l.node = node
	l.mu.Unlock()
}

// Node returns the owner identity this ledger stamps into its tasks.
func (l *TaskLedger) Node() types.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.node
}

// Start switches the ledger to batched mode and launches the background
// flusher (same cadence as the refcount Tracker).
func (l *TaskLedger) Start() {
	l.mu.Lock()
	if l.async {
		l.mu.Unlock()
		return
	}
	l.async = true
	l.mu.Unlock()
	go l.flusher()
}

// Stop halts the flusher after one final synchronous flush, so a graceful
// shutdown leaves the follower table current. Safe to call multiple times
// and on a ledger never started.
func (l *TaskLedger) Stop() {
	l.stopOnce.Do(func() {
		close(l.stop)
		l.mu.Lock()
		wasAsync := l.async
		l.async = false
		l.mu.Unlock()
		if wasAsync {
			<-l.stopped
		}
		l.Flush()
	})
}

// Abandon halts the flusher WITHOUT flushing, discarding dirty state and
// the retry queue — the crash-simulation path (Node.Kill). The follower
// table keeps whatever was already flushed; the owner-death transfer is
// what re-owns the remainder, exactly as for a real crash.
func (l *TaskLedger) Abandon() {
	l.stopOnce.Do(func() {
		close(l.stop)
		l.mu.Lock()
		wasAsync := l.async
		l.async = false
		l.dead = true
		l.dirty = make(map[types.TaskID]struct{})
		l.ensures = make(map[types.ObjectID]types.TaskID)
		l.retry = nil
		l.mu.Unlock()
		if wasAsync {
			<-l.stopped
		}
	})
}

func (l *TaskLedger) flusher() {
	defer close(l.stopped)
	tick := time.NewTicker(defaultFlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			l.Flush()
		case <-l.kick:
			l.Flush()
		case <-l.stop:
			return
		}
	}
}

// now returns cluster-epoch nanoseconds: one control-plane NowNs at first
// use plus the local monotonic offset, so ledger timestamps line up with
// server-stamped ones without a per-transition RPC.
func (l *TaskLedger) now() int64 {
	l.clockOnce.Do(func() {
		l.clockBoot = l.ctrl.NowNs()
		l.clockStart = time.Now()
		if l.clockBoot == 0 { // control plane unreachable: local clock
			l.clockBoot = time.Now().UnixNano()
		}
	})
	return l.clockBoot + time.Since(l.clockStart).Nanoseconds()
}

// Adopt registers a task this node owns. baseSeq is the tenure's fence
// base: 0 for a locally-born task (AddTask wrote Owner with OwnerSeq 0),
// or the sequence returned by ClaimTask for a placed task. status is the
// state the control plane already holds synchronously (PENDING after
// AddTask, QUEUED after a claim) — it is not re-flushed.
func (l *TaskLedger) Adopt(id types.TaskID, baseSeq uint64, status types.TaskStatus) {
	if id.IsNil() {
		return
	}
	l.mu.Lock()
	if t := l.tasks[id]; t == nil || t.seq <= baseSeq {
		l.tasks[id] = &ownedTask{seq: baseSeq, status: status, lastNs: 0}
	}
	l.mu.Unlock()
}

// Owns reports whether id is in this ledger (terminal records linger until
// their final delta is acked, then fall away).
func (l *TaskLedger) Owns(id types.TaskID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tasks[id] != nil
}

// ClockNs exposes the ledger's cluster clock (one boot-time NowNs plus the
// local monotonic offset) so callers can capture transition instants —
// the executor stamps a task's finish before storing its outputs.
func (l *TaskLedger) ClockNs() int64 { return l.now() }

// Transition stamps a status change into the ledger: pure in-process in
// batched mode, no control-plane round trip. worker and errMsg ride along
// when non-zero. Returns false when the task is not owned here (authority
// moved; the caller's stamp is stale and must not reach the table).
func (l *TaskLedger) Transition(id types.TaskID, status types.TaskStatus, worker types.WorkerID, errMsg string) bool {
	return l.TransitionAt(id, status, worker, errMsg, 0)
}

// TransitionAt is Transition with an explicit cluster-clock instant
// (from ClockNs); atNs <= 0 stamps the current clock.
func (l *TaskLedger) TransitionAt(id types.TaskID, status types.TaskStatus, worker types.WorkerID, errMsg string, atNs int64) bool {
	if atNs <= 0 {
		atNs = l.now()
	}
	l.mu.Lock()
	t := l.tasks[id]
	if t == nil {
		l.mu.Unlock()
		return false
	}
	l.stampLocked(id, t, status, worker, errMsg, atNs)
	grown := len(l.dirty) >= flushKickThreshold
	sync := !l.async
	l.mu.Unlock()
	if sync {
		l.Flush()
	} else if grown {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return true
}

// TransitionRetry folds the retry bookkeeping into ONE ledger transition:
// the retry count bump and the reset to PENDING land atomically in a
// single sequenced delta, closing the crash window the old two-RPC
// sequence (RecordTaskRetry, then SetTaskStatus) left open — a node dying
// between the two burned a retry attempt without ever rescheduling the
// task. When the bump exhausts maxRetries the reset is skipped (the
// caller stamps the terminal failure next; the count rides that delta).
// Returns the new count and whether the task should retry, or (-1, false)
// when the task is not owned here.
func (l *TaskLedger) TransitionRetry(id types.TaskID, maxRetries int) (int, bool) {
	atNs := l.now()
	l.mu.Lock()
	t := l.tasks[id]
	if t == nil {
		l.mu.Unlock()
		return -1, false
	}
	t.retries++
	n := t.retries
	if n > maxRetries {
		l.mu.Unlock()
		return n, false
	}
	l.stampLocked(id, t, types.TaskPending, types.WorkerID{}, "", atNs)
	sync := !l.async
	l.mu.Unlock()
	if sync {
		l.Flush()
	}
	return n, true
}

// Disown drops local authority over id without a terminal transition —
// the task left this node (spill-away, drain eviction, burial by a group
// removal, an observed ownership transfer). Unflushed deltas for it are
// discarded (the fence would consume them anyway) and terminal watchers
// wake so owner-side waiters fall back to the follower table.
func (l *TaskLedger) Disown(id types.TaskID) {
	l.mu.Lock()
	if l.tasks[id] != nil {
		delete(l.tasks, id)
		delete(l.dirty, id)
		for _, ch := range l.watch[id] {
			close(ch)
		}
		delete(l.watch, id)
	}
	l.mu.Unlock()
}

// stampLocked applies one transition under l.mu: bumps the sequence,
// stamps the per-phase timestamp, marks the task dirty, and wakes terminal
// watchers.
func (l *TaskLedger) stampLocked(id types.TaskID, t *ownedTask, status types.TaskStatus, worker types.WorkerID, errMsg string, nowNs int64) {
	t.seq++
	t.status = status
	t.worker = worker
	if errMsg != "" {
		t.errMsg = errMsg
	}
	t.lastNs = nowNs
	switch status {
	case types.TaskScheduled:
		t.schedNs = nowNs
	case types.TaskRunning:
		t.startNs = nowNs
	case types.TaskFinished, types.TaskLost, types.TaskFailed:
		t.finishNs = nowNs
	}
	l.dirty[id] = struct{}{}
	if status.Terminal() {
		for _, ch := range l.watch[id] {
			close(ch)
		}
		delete(l.watch, id)
	}
}

// EnsureLineage records return-object → producer edges in the ledger.
// They flush as one batched EnsureObjects ahead of the task deltas, and
// callers that hand an edge to another node (spill bridge, gang
// re-placement, drain migration) call Flush first — flush-before-handoff,
// same as refcount borrows.
func (l *TaskLedger) EnsureLineage(producer types.TaskID, returns ...types.ObjectID) {
	l.mu.Lock()
	if !l.dead {
		for _, id := range returns {
			if !id.IsNil() {
				l.ensures[id] = producer
			}
		}
	}
	sync := !l.async
	l.mu.Unlock()
	if sync {
		l.Flush()
	}
}

// Lookup returns the owner's authoritative view of id, shaped as the
// table record the follower will eventually hold. Owner-side readers
// (driver wait loops, the reconstructor) consult this before the table.
func (l *TaskLedger) Lookup(id types.TaskID) (types.TaskState, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.tasks[id]
	if t == nil {
		return types.TaskState{}, false
	}
	return types.TaskState{
		Status: t.status, Node: l.node, Worker: t.worker, Error: t.errMsg,
		Retries: t.retries, ScheduledNs: t.schedNs, StartedNs: t.startNs,
		FinishedNs: t.finishNs, LastTransitionNs: t.lastNs,
		Owner: l.node, OwnerSeq: t.seq,
	}, true
}

// WatchTerminal returns a channel closed when id reaches a terminal
// state. Already-terminal and not-owned tasks get an already-closed
// channel — "nothing more to wait for here, re-check the table".
func (l *TaskLedger) WatchTerminal(id types.TaskID) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.tasks[id]
	if t == nil || t.status.Terminal() {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	ch := make(chan struct{})
	l.watch[id] = append(l.watch[id], ch)
	return ch
}

// UnflushedTasks snapshots the tasks whose latest state the follower table
// has not acked: dirty ledger entries plus every parked batch. The chaos
// suites' task-conservation checker samples this — the follower's view
// plus unflushed deltas must eventually converge on the owners' views.
func (l *TaskLedger) UnflushedTasks() []types.TaskID {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[types.TaskID]struct{}, len(l.dirty))
	for id := range l.dirty {
		seen[id] = struct{}{}
	}
	for _, b := range l.retry {
		for _, d := range b.deltas {
			seen[d.ID] = struct{}{}
		}
	}
	out := make([]types.TaskID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

// Flush pushes the ledger to the control plane: parked batches first in
// FIFO order (under their original tokens), then pending lineage ensures,
// then the accumulated transitions as one fresh batch — one delta per
// task carrying its full latest view, so coalesced intermediate states
// cost nothing. Returns true when the ledger fully drained; false parks
// the remainder for the next flush. Callers needing a happens-before edge
// (spill bridge publishing a spec another node will run) call this inline.
func (l *TaskLedger) Flush() bool {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return true // abandoned: a crashed node's ledger never flushes again
	}
	l.mu.Unlock()

	// Redeliver parked batches first: per-task ordering requires older
	// deltas to land before newer ones, and a batch keeps its token so a
	// shard that committed it before crashing dedups the redelivery.
	for {
		l.mu.Lock()
		if len(l.retry) == 0 {
			l.mu.Unlock()
			break
		}
		b := l.retry[0]
		node := l.node
		l.mu.Unlock()
		failed := l.ctrl.ModifyTaskStates(node, b.deltas, b.op)
		l.mu.Lock()
		l.retry = l.retry[1:]
		if len(failed) > 0 {
			fset := make(map[types.TaskID]struct{}, len(failed))
			for _, id := range failed {
				fset[id] = struct{}{}
			}
			var sub []types.TaskStateDelta
			for _, d := range b.deltas {
				if _, ok := fset[d.ID]; ok {
					sub = append(sub, d)
				}
			}
			l.retry = append([]taskBatch{{op: b.op, deltas: sub}}, l.retry...)
			l.mu.Unlock()
			return false
		}
		l.markAckedLocked(b.deltas)
		l.mu.Unlock()
	}

	// Lineage ensures ride ahead of the task deltas that reference them:
	// a FINISHED record whose return objects lack a producer would strand
	// the reconstructor. Ensure is idempotent, so failures just re-pend.
	l.mu.Lock()
	var ensures map[types.ObjectID]types.TaskID
	if len(l.ensures) > 0 {
		ensures = l.ensures
		l.ensures = make(map[types.ObjectID]types.TaskID)
	}
	l.mu.Unlock()
	ensuresOK := true
	if len(ensures) > 0 {
		if failed := l.ctrl.EnsureObjects(ensures); len(failed) > 0 {
			ensuresOK = false
			l.mu.Lock()
			if !l.dead {
				for _, id := range failed {
					if _, ok := l.ensures[id]; !ok {
						l.ensures[id] = ensures[id]
					}
				}
			}
			l.mu.Unlock()
		}
	}

	l.mu.Lock()
	if len(l.dirty) == 0 {
		l.mu.Unlock()
		return ensuresOK
	}
	deltas := make([]types.TaskStateDelta, 0, len(l.dirty))
	for id := range l.dirty {
		t := l.tasks[id]
		if t == nil {
			continue
		}
		deltas = append(deltas, types.TaskStateDelta{
			ID: id, Owner: l.node, Seq: t.seq,
			Status: t.status, Node: l.node, Worker: t.worker,
			Error: t.errMsg, Retries: t.retries,
			ScheduledNs: t.schedNs, StartedNs: t.startNs,
			FinishedNs: t.finishNs, LastTransitionNs: t.lastNs,
		})
	}
	l.dirty = make(map[types.TaskID]struct{})
	node := l.node
	l.mu.Unlock()

	op := newRefToken()
	failed := l.ctrl.ModifyTaskStates(node, deltas, op)
	if len(failed) > 0 {
		fset := make(map[types.TaskID]struct{}, len(failed))
		for _, id := range failed {
			fset[id] = struct{}{}
		}
		var sub []types.TaskStateDelta
		var acked []types.TaskStateDelta
		for _, d := range deltas {
			if _, ok := fset[d.ID]; ok {
				sub = append(sub, d)
			} else {
				acked = append(acked, d)
			}
		}
		l.mu.Lock()
		l.retry = append(l.retry, taskBatch{op: op, deltas: sub})
		l.markAckedLocked(acked)
		l.mu.Unlock()
		return false
	}
	l.mu.Lock()
	l.markAckedLocked(deltas)
	l.mu.Unlock()
	return ensuresOK
}

// FlushTask synchronously pushes ONE task's unflushed state — its lineage
// ensures and its dirty delta, if any — ahead of an ownership handoff
// (spill bridge, drain migration). The handoff invariant only concerns the
// task changing hands, so draining the whole ledger inline here would put
// a full ModifyTaskStates round trip on every spill; a spill-heavy submit
// burst would serialize each task behind every other task's batch — the
// per-task sync write this design exists to remove. Falls back to a full
// Flush when parked batches exist, preserving per-task FIFO delivery.
func (l *TaskLedger) FlushTask(id types.TaskID) {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return
	}
	if len(l.retry) > 0 {
		// A parked batch may hold an older delta for this task; shipping a
		// fresh one around it is exactly the reorder flushMu exists to
		// prevent. Rare (a shard was just down) — take the slow path.
		l.mu.Unlock()
		l.Flush()
		return
	}
	var ensures map[types.ObjectID]types.TaskID
	for oid, tid := range l.ensures {
		if tid == id {
			if ensures == nil {
				ensures = make(map[types.ObjectID]types.TaskID)
			}
			ensures[oid] = tid
			delete(l.ensures, oid)
		}
	}
	var deltas []types.TaskStateDelta
	if _, dirty := l.dirty[id]; dirty {
		if t := l.tasks[id]; t != nil {
			deltas = append(deltas, types.TaskStateDelta{
				ID: id, Owner: l.node, Seq: t.seq,
				Status: t.status, Node: l.node, Worker: t.worker,
				Error: t.errMsg, Retries: t.retries,
				ScheduledNs: t.schedNs, StartedNs: t.startNs,
				FinishedNs: t.finishNs, LastTransitionNs: t.lastNs,
			})
		}
		delete(l.dirty, id)
	}
	node := l.node
	l.mu.Unlock()
	if len(ensures) == 0 && len(deltas) == 0 {
		return // nothing unflushed for this task (the common birth-spill case)
	}
	if len(ensures) > 0 {
		if failed := l.ctrl.EnsureObjects(ensures); len(failed) > 0 {
			l.mu.Lock()
			if !l.dead {
				for _, oid := range failed {
					if _, ok := l.ensures[oid]; !ok {
						l.ensures[oid] = ensures[oid]
					}
				}
			}
			l.mu.Unlock()
		}
	}
	if len(deltas) > 0 {
		op := newRefToken()
		if failed := l.ctrl.ModifyTaskStates(node, deltas, op); len(failed) > 0 {
			l.mu.Lock()
			l.retry = append(l.retry, taskBatch{op: op, deltas: deltas})
			l.mu.Unlock()
			return
		}
		l.mu.Lock()
		l.markAckedLocked(deltas)
		l.mu.Unlock()
	}
}

// markAckedLocked drops terminal records whose final delta the control
// plane acked, unless a newer transition re-dirtied them — that bounds
// ledger memory to the node's live task set.
func (l *TaskLedger) markAckedLocked(deltas []types.TaskStateDelta) {
	for _, d := range deltas {
		t := l.tasks[d.ID]
		if t == nil || t.seq != d.Seq {
			continue // re-dirtied since this delta was built
		}
		if t.status.Terminal() {
			delete(l.tasks, d.ID)
		}
	}
}
