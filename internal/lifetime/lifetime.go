// Package lifetime is the object lifetime subsystem: it decides how long
// the bytes behind a future stay alive and where they live. Three
// cooperating pieces extend the paper's object store (Figure 3) toward
// production scale:
//
//   - Tracker: ownership-based distributed reference counting (DESIGN.md
//     §12). Future creation (Submit/Put) and task-argument borrows retain
//     objects; explicit releases drop them. The node holding the reference
//     is the authority for its own share of the count: mutations land in a
//     local ledger and flush to the GCS object table as batched async
//     deltas, so the hot submit/enqueue paths never wait on a control-plane
//     round trip. "Referenced versus garbage" remains a cluster-wide fact,
//     published by the GCS from flushed state.
//   - DiskSpiller: the disk spill tier. Under memory pressure the object
//     store spills cold-but-referenced objects to a per-node directory and
//     restores them transparently on Get, converting ErrStoreFull failures
//     into graceful degradation.
//   - PullManager: the chunked pull protocol. Large objects transfer as
//     bounded-concurrency chunk streams spread across the peers that hold a
//     copy, with a per-peer window for backpressure; small objects still
//     take one round trip.
//
// Manager ties them together on each node: it consumes the control plane's
// GC channel and reclaims local copies (memory and disk) of objects whose
// cluster-wide count has dropped to zero.
package lifetime

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// Flush tuning. The interval bounds how stale the GCS's view of the
// cluster count may go (and therefore GC latency); the size kick bounds
// ledger memory on a node churning references faster than the ticker.
const (
	defaultFlushInterval = 2 * time.Millisecond
	flushKickThreshold   = 256
)

// Tracker is one node's reference ledger — the "owner" half of the
// ownership protocol (DESIGN.md §12). held is the authoritative in-process
// count of the references this node's drivers, borrows, and bridges hold;
// pending accumulates the net unflushed delta per object; touched records
// objects retained at all since the last flush, so a retain+release cycle
// that nets to zero still flushes as a delta-0 "touch" (the GCS must learn
// the object was referenced, or it would never become GC-eligible).
//
// Flushes are batched: one control-plane round trip per shard per flush
// covers every delta accumulated in the interval, each batch bound to an
// idempotency token recorded in the touched objects' RefOps rings. A flush
// that cannot reach a shard parks its batch — token and all — on a FIFO
// retry queue; redelivery under the original token makes the
// crash-between-commit-and-ack case safe (the shard recognizes the token
// and skips the re-apply), and FIFO order keeps one object's deltas
// applying in ledger order, which is what keeps the server-side clamp at
// zero from ever manufacturing or leaking a count.
//
// A Tracker built by NewTracker flushes synchronously inside every mutate
// (per-call behaviour, nothing to start or stop). Start switches it to
// batched mode with a background flusher; that is what nodes run.
type Tracker struct {
	ctrl gcs.API

	mu      sync.Mutex
	node    types.NodeID
	held    map[types.ObjectID]int64
	pending map[types.ObjectID]int64
	touched map[types.ObjectID]struct{}
	retry   []refBatch
	async   bool
	// dead latches after Abandon: the ledger belongs to a "crashed" node
	// and must never reach the control plane again, no matter what later
	// teardown code (scheduler Stop, deferred releases) appends to it.
	dead bool

	// flushMu serializes flush RPCs. Two concurrent flushes could deliver
	// one object's deltas out of ledger order, and the server clamps the
	// count at zero — a release applied before the retain it follows would
	// clamp away a decrement and leak the object forever.
	flushMu sync.Mutex

	stop     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	kick     chan struct{}
}

// refBatch is one flush that could not be delivered: its deltas and the
// idempotency token the delivery attempt carried (fixed for all retries).
type refBatch struct {
	op     uint64
	deltas map[types.ObjectID]int64
}

// NewTracker creates an empty ledger publishing into ctrl, in synchronous
// mode: every Retain/Release flushes inline. Call SetNode and Start to
// switch to batched async flushing.
func NewTracker(ctrl gcs.API) *Tracker {
	return &Tracker{
		ctrl:    ctrl,
		held:    make(map[types.ObjectID]int64),
		pending: make(map[types.ObjectID]int64),
		touched: make(map[types.ObjectID]struct{}),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
}

// SetNode attributes this ledger's flushes to node in the GCS object
// table's per-holder accounting — what the owner-death sweep reconstructs
// counts from when the node dies. Call before Start.
func (t *Tracker) SetNode(node types.NodeID) {
	t.mu.Lock()
	t.node = node
	t.mu.Unlock()
}

// Start switches the tracker to batched mode and launches the background
// flusher. Mutations stop flushing inline; the flusher drains the ledger
// every flush interval (or sooner when it grows past the kick threshold).
func (t *Tracker) Start() {
	t.mu.Lock()
	if t.async {
		t.mu.Unlock()
		return
	}
	t.async = true
	t.mu.Unlock()
	go t.flusher()
}

// Stop halts the flusher after one final synchronous flush, so a graceful
// shutdown leaves nothing unflushed. Safe to call multiple times and on a
// tracker never started.
func (t *Tracker) Stop() {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.mu.Lock()
		wasAsync := t.async
		t.async = false
		t.mu.Unlock()
		if wasAsync {
			<-t.stopped
		}
		t.Flush()
	})
}

// Abandon halts the flusher WITHOUT flushing, discarding pending deltas
// and the retry queue — the crash-simulation path (Node.Kill). The GCS
// keeps whatever this node already flushed; the owner-death sweep is what
// reconciles that remainder, exactly as it would for a real crash.
func (t *Tracker) Abandon() {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.mu.Lock()
		wasAsync := t.async
		t.async = false
		t.dead = true
		t.pending = make(map[types.ObjectID]int64)
		t.touched = make(map[types.ObjectID]struct{})
		t.retry = nil
		t.mu.Unlock()
		if wasAsync {
			<-t.stopped
		}
	})
}

func (t *Tracker) flusher() {
	defer close(t.stopped)
	tick := time.NewTicker(defaultFlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Flush()
		case <-t.kick:
			t.Flush()
		case <-t.stop:
			return
		}
	}
}

// Retain records new references in the ledger. In batched mode this is a
// pure in-process append — no control-plane round trip.
func (t *Tracker) Retain(ids ...types.ObjectID) {
	t.mu.Lock()
	for _, id := range ids {
		if id.IsNil() {
			continue
		}
		t.held[id]++
		t.pending[id]++
		t.touched[id] = struct{}{}
	}
	grown := len(t.pending) >= flushKickThreshold
	sync := !t.async
	t.mu.Unlock()
	if sync {
		t.Flush()
	} else if grown {
		select {
		case t.kick <- struct{}{}:
		default:
		}
	}
}

// Release drops references previously retained through this tracker.
// Releasing a reference the tracker does not hold is a no-op, so one buggy
// caller cannot drive the cluster count negative.
func (t *Tracker) Release(ids ...types.ObjectID) {
	t.mu.Lock()
	any := false
	for _, id := range ids {
		n := t.held[id]
		if n <= 0 {
			continue
		}
		if n == 1 {
			delete(t.held, id)
		} else {
			t.held[id] = n - 1
		}
		t.pending[id]--
		any = true
	}
	sync := !t.async && any
	t.mu.Unlock()
	if sync {
		t.Flush()
	}
}

// Held reports how many references to id this tracker currently holds.
// This is the authoritative count for this node's share — consulted
// locally (Manager.Referenced, reclaim guards) ahead of the GCS's
// eventually-consistent view.
func (t *Tracker) Held(id types.ObjectID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.held[id]
}

// HeldAll snapshots every reference the tracker holds (invariant checks).
func (t *Tracker) HeldAll() map[types.ObjectID]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[types.ObjectID]int64, len(t.held))
	for id, n := range t.held {
		out[id] = n
	}
	return out
}

// Unflushed snapshots the net delta per object the GCS has not yet acked:
// pending ledger entries plus every batch parked on the retry queue. The
// chaos suites' conservation checker samples this mid-flight — GCS count
// plus unflushed deltas must eventually equal the held counts.
func (t *Tracker) Unflushed() map[types.ObjectID]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[types.ObjectID]int64, len(t.pending))
	for id, d := range t.pending {
		out[id] = d
	}
	for _, b := range t.retry {
		for id, d := range b.deltas {
			out[id] += d
		}
	}
	return out
}

// Forget voids every local reference to id without emitting releases. The
// job reclaim pass zeroed the object's cluster count by decree (DESIGN.md
// §14), so flushing this node's holds — or replaying their unflushed
// retains — would only fight the force-release. Pending and parked deltas
// for the object are discarded; a later Release of a surviving handle
// no-ops through the held<=0 guard.
func (t *Tracker) Forget(id types.ObjectID) {
	t.mu.Lock()
	delete(t.held, id)
	delete(t.pending, id)
	for _, b := range t.retry {
		delete(b.deltas, id)
	}
	t.mu.Unlock()
}

// ReleaseAll drops every reference the tracker holds (component shutdown)
// and flushes, so surviving nodes can reclaim anything only this node kept
// alive.
func (t *Tracker) ReleaseAll() {
	t.mu.Lock()
	for id, n := range t.held {
		t.pending[id] -= n
	}
	t.held = make(map[types.ObjectID]int64)
	t.mu.Unlock()
	t.Flush()
}

// Flush pushes the ledger to the control plane: first redelivers any
// parked batches in FIFO order (under their original tokens), then sends
// the accumulated deltas as a fresh batch. Returns true when the ledger
// fully drained — false means a shard was unreachable and the remainder is
// parked for the next flush. Callers needing a happens-before edge (the
// scheduler stamping QUEUED after its borrows, the spill bridge before the
// respill publish) call this inline; the background flusher calls it on
// its interval.
func (t *Tracker) Flush() bool {
	t.flushMu.Lock()
	defer t.flushMu.Unlock()

	t.mu.Lock()
	if t.dead {
		t.mu.Unlock()
		return true // abandoned: a crashed node's ledger never flushes again
	}
	t.mu.Unlock()

	// Redeliver parked batches first: per-object ordering requires older
	// deltas to land before newer ones, and a batch must keep its token so
	// a shard that committed it before crashing dedups the redelivery.
	for {
		t.mu.Lock()
		if len(t.retry) == 0 {
			t.mu.Unlock()
			break
		}
		b := t.retry[0]
		node := t.node
		t.mu.Unlock()
		failed := t.ctrl.ModifyObjectRefCounts(node, b.deltas, b.op)
		t.mu.Lock()
		t.retry = t.retry[1:]
		if len(failed) > 0 {
			sub := make(map[types.ObjectID]int64, len(failed))
			for _, id := range failed {
				sub[id] = b.deltas[id]
			}
			t.retry = append([]refBatch{{op: b.op, deltas: sub}}, t.retry...)
			t.mu.Unlock()
			return false
		}
		t.mu.Unlock()
	}

	t.mu.Lock()
	if len(t.pending) == 0 && len(t.touched) == 0 {
		t.mu.Unlock()
		return true
	}
	deltas := make(map[types.ObjectID]int64, len(t.pending)+len(t.touched))
	for id, d := range t.pending {
		deltas[id] = d
	}
	for id := range t.touched {
		if _, ok := deltas[id]; !ok {
			deltas[id] = 0 // touch: retained and released within one interval
		}
	}
	t.pending = make(map[types.ObjectID]int64)
	t.touched = make(map[types.ObjectID]struct{})
	node := t.node
	t.mu.Unlock()

	op := newRefToken()
	failed := t.ctrl.ModifyObjectRefCounts(node, deltas, op)
	if len(failed) > 0 {
		sub := make(map[types.ObjectID]int64, len(failed))
		for _, id := range failed {
			sub[id] = deltas[id]
		}
		t.mu.Lock()
		t.retry = append(t.retry, refBatch{op: op, deltas: sub})
		t.mu.Unlock()
		return false
	}
	return true
}

// newRefToken returns a random non-zero idempotency token for one flush
// batch.
func newRefToken() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 1 // degraded but non-zero; collisions only dedup spuriously
	}
	return binary.BigEndian.Uint64(b[:]) | 1
}
