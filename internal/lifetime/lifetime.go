// Package lifetime is the object lifetime subsystem: it decides how long
// the bytes behind a future stay alive and where they live. Three
// cooperating pieces extend the paper's object store (Figure 3) toward
// production scale:
//
//   - Tracker: distributed reference counting. Future creation (Submit/Put)
//     and task-argument borrows retain objects; explicit releases drop them.
//     Counts are published through the GCS object table, so "referenced"
//     versus "garbage" is a cluster-wide fact, not a per-node guess.
//   - DiskSpiller: the disk spill tier. Under memory pressure the object
//     store spills cold-but-referenced objects to a per-node directory and
//     restores them transparently on Get, converting ErrStoreFull failures
//     into graceful degradation.
//   - PullManager: the chunked pull protocol. Large objects transfer as
//     bounded-concurrency chunk streams spread across the peers that hold a
//     copy, with a per-peer window for backpressure; small objects still
//     take one round trip.
//
// Manager ties them together on each node: it consumes the control plane's
// GC channel and reclaims local copies (memory and disk) of objects whose
// cluster-wide count has dropped to zero.
package lifetime

import (
	"sync"

	"repro/internal/gcs"
	"repro/internal/types"
)

// Tracker is one component's ledger of live object references. Every
// Retain/Release is mirrored into the GCS object table's cluster-wide
// count; the local ledger exists to make Release idempotent (a raced or
// duplicated release of a reference this tracker does not hold is a no-op,
// so one buggy caller cannot drive the global count negative).
type Tracker struct {
	ctrl gcs.API

	mu   sync.Mutex
	held map[types.ObjectID]int64
}

// NewTracker creates an empty ledger publishing into ctrl.
func NewTracker(ctrl gcs.API) *Tracker {
	return &Tracker{ctrl: ctrl, held: make(map[types.ObjectID]int64)}
}

// Retain records new references and publishes the increments.
func (t *Tracker) Retain(ids ...types.ObjectID) {
	for _, id := range ids {
		if id.IsNil() {
			continue
		}
		t.mu.Lock()
		t.held[id]++
		t.mu.Unlock()
		t.ctrl.ModifyObjectRefCount(id, 1)
	}
}

// Release drops references previously retained through this tracker.
// Releasing a reference the tracker does not hold is a no-op.
func (t *Tracker) Release(ids ...types.ObjectID) {
	for _, id := range ids {
		t.mu.Lock()
		n := t.held[id]
		if n <= 0 {
			t.mu.Unlock()
			continue
		}
		if n == 1 {
			delete(t.held, id)
		} else {
			t.held[id] = n - 1
		}
		t.mu.Unlock()
		t.ctrl.ModifyObjectRefCount(id, -1)
	}
}

// Held reports how many references to id this tracker currently holds.
func (t *Tracker) Held(id types.ObjectID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.held[id]
}

// ReleaseAll drops every reference the tracker holds (component shutdown).
func (t *Tracker) ReleaseAll() {
	t.mu.Lock()
	held := t.held
	t.held = make(map[types.ObjectID]int64)
	t.mu.Unlock()
	for id, n := range held {
		t.ctrl.ModifyObjectRefCount(id, -n)
	}
}
