package lifetime

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

func TestTrackerPublishesCounts(t *testing.T) {
	ctrl := gcs.NewStore(2)
	tr := NewTracker(ctrl)
	id := testObj(60)
	ctrl.EnsureObject(id, types.NilTaskID)

	tr.Retain(id)
	tr.Retain(id)
	if info, _ := ctrl.GetObject(id); info.RefCount != 2 {
		t.Fatalf("refcount = %d, want 2", info.RefCount)
	}
	tr.Release(id)
	if info, _ := ctrl.GetObject(id); info.RefCount != 1 {
		t.Fatalf("refcount = %d, want 1", info.RefCount)
	}
	if tr.Held(id) != 1 {
		t.Fatalf("held = %d, want 1", tr.Held(id))
	}
}

func TestTrackerDoubleReleaseIsNoop(t *testing.T) {
	ctrl := gcs.NewStore(2)
	a, b := NewTracker(ctrl), NewTracker(ctrl)
	id := testObj(61)
	a.Retain(id)
	b.Release(id) // b holds nothing: must not touch the global count
	b.Release(id)
	if info, _ := ctrl.GetObject(id); info.RefCount != 1 {
		t.Fatalf("refcount = %d after foreign releases, want 1", info.RefCount)
	}
}

func TestZeroTransitionPublishesGC(t *testing.T) {
	ctrl := gcs.NewStore(2)
	sub := ctrl.SubscribeObjectGC()
	defer sub.Close()
	tr := NewTracker(ctrl)
	id := testObj(62)

	tr.Retain(id)
	tr.Release(id)
	select {
	case msg := <-sub.C():
		var got types.ObjectID
		copy(got[:], msg)
		if got != id {
			t.Fatalf("GC published %v, want %v", got, id)
		}
	case <-time.After(time.Second):
		t.Fatal("zero transition did not publish GC")
	}

	// Objects never retained must never become GC-eligible.
	ctrl.ModifyObjectRefCount(testObj(63), 0)
	select {
	case <-sub.C():
		t.Fatal("untracked object published GC")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestReleaseAll(t *testing.T) {
	ctrl := gcs.NewStore(2)
	tr := NewTracker(ctrl)
	id := testObj(64)
	tr.Retain(id)
	tr.Retain(id)
	tr.Retain(id)
	tr.ReleaseAll()
	if info, _ := ctrl.GetObject(id); info.RefCount != 0 {
		t.Fatalf("refcount = %d after ReleaseAll, want 0", info.RefCount)
	}
	if tr.Held(id) != 0 {
		t.Fatal("tracker still holds references")
	}
}

func TestDiskSpillerRoundTrip(t *testing.T) {
	sp, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := testObj(65)
	payload := patterned(4 << 10)
	if err := sp.Spill(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Restore(id)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("restore = %d bytes, %v", len(got), err)
	}
	if err := sp.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Restore(id); err == nil {
		t.Fatal("restore succeeded after remove")
	}
	if err := sp.Remove(id); err != nil {
		t.Fatalf("double remove: %v", err)
	}
	spills, restores, onDisk := sp.Stats()
	if spills != 1 || restores != 1 || onDisk != 0 {
		t.Fatalf("stats = %d %d %d", spills, restores, onDisk)
	}
}

func TestStoreSpillsUnderPressureAndRestores(t *testing.T) {
	ctrl := gcs.NewStore(2)
	tier, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := objectstore.New(testNode(1), ctrl, 2<<10)
	store.SetSpillTier(tier)
	store.SetRefChecker(func(types.ObjectID) bool { return true })

	a, b := testObj(70), testObj(71)
	pa, pb := patterned(1500), patterned(1500)
	if err := store.Put(a, pa); err != nil {
		t.Fatal(err)
	}
	// b does not fit next to a: a (referenced) must spill, not drop.
	if err := store.Put(b, pb); err != nil {
		t.Fatalf("Put under pressure: %v", err)
	}
	if !store.Contains(a) || !store.Contains(b) {
		t.Fatal("spill lost an object")
	}
	if store.Used() > 2<<10 {
		t.Fatalf("used %d exceeds capacity", store.Used())
	}
	if store.SpilledBytes() != 1500 {
		t.Fatalf("spilled = %d, want 1500", store.SpilledBytes())
	}
	if info, _ := ctrl.GetObject(a); !info.IsSpilledOn(store.Node()) {
		t.Fatal("control plane does not know a is spilled")
	}

	// Get must transparently restore (and push b out to disk in turn).
	got, ok := store.Get(a)
	if !ok || !bytes.Equal(got, pa) {
		t.Fatal("restore corrupted a")
	}
	if info, _ := ctrl.GetObject(a); info.IsSpilledOn(store.Node()) {
		t.Fatal("restored object still marked spilled")
	}
	stats := store.Stats()
	if stats.Spills < 2 || stats.Restores != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEvictionDropsGarbageSpillsReferenced(t *testing.T) {
	ctrl := gcs.NewStore(2)
	tier, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := objectstore.New(testNode(1), ctrl, 2<<10)
	store.SetSpillTier(tier)
	live, garbage := testObj(72), testObj(73)
	store.SetRefChecker(func(id types.ObjectID) bool { return id == live })

	if err := store.Put(live, patterned(800)); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(garbage, patterned(800)); err != nil {
		t.Fatal(err)
	}
	// Pressure forces both cold objects out of memory.
	if err := store.Put(testObj(74), patterned(1800)); err != nil {
		t.Fatal(err)
	}
	if !store.Contains(live) {
		t.Fatal("referenced object dropped instead of spilled")
	}
	if store.Contains(garbage) {
		t.Fatal("garbage object survived eviction")
	}
	if info, _ := ctrl.GetObject(garbage); info.State != types.ObjectLost {
		t.Fatalf("garbage state = %v, want LOST", info.State)
	}
}

func TestManagerReclaimsOnZeroRefs(t *testing.T) {
	ctrl := gcs.NewStore(2)
	store := objectstore.New(testNode(1), ctrl, 0)
	mgr := NewManager(ctrl, store)
	mgr.Start()
	defer mgr.Stop()

	id := testObj(75)
	if err := store.Put(id, patterned(1024)); err != nil {
		t.Fatal(err)
	}
	mgr.Tracker().Retain(id)
	if store.Used() != 1024 {
		t.Fatalf("used = %d", store.Used())
	}
	mgr.Tracker().Release(id)

	deadline := time.After(2 * time.Second)
	for store.Used() != 0 {
		select {
		case <-deadline:
			t.Fatalf("store not reclaimed; used = %d", store.Used())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if mgr.Reclaimed() != 1 {
		t.Fatalf("reclaimed = %d, want 1", mgr.Reclaimed())
	}
	// Reclaiming also removes the spill-tier copy path: the object is gone.
	if store.Contains(id) {
		t.Fatal("object still resident after reclamation")
	}
}

func TestManagerKeepsReferencedObjects(t *testing.T) {
	ctrl := gcs.NewStore(2)
	store := objectstore.New(testNode(1), ctrl, 0)
	mgr := NewManager(ctrl, store)
	mgr.Start()
	defer mgr.Stop()

	id := testObj(76)
	if err := store.Put(id, patterned(64)); err != nil {
		t.Fatal(err)
	}
	other := NewTracker(ctrl)
	other.Retain(id) // a second holder elsewhere in the cluster
	mgr.Tracker().Retain(id)
	mgr.Tracker().Release(id)
	time.Sleep(20 * time.Millisecond)
	if !store.Contains(id) {
		t.Fatal("object reclaimed while another holder has a reference")
	}
}
