package lifetime

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/transport"
	"repro/internal/types"
)

func testNode(i uint64) types.NodeID {
	return types.NodeID(types.DeriveTaskID(types.NilTaskID, 5000+i))
}

func testObj(i uint64) types.ObjectID {
	return types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, i), 0)
}

// pullFixture builds a destination store pulling from n source stores over
// nw. Sources are addressable as "src-0", "src-1", ...
func pullFixture(t *testing.T, nw transport.Network, nsrc int, cfg PullConfig) (srcs []*objectstore.Store, dst *objectstore.Store, ctrl *gcs.Store, pm *PullManager) {
	t.Helper()
	ctrl = gcs.NewStore(4)
	addrs := make(map[types.NodeID]string)
	for i := 0; i < nsrc; i++ {
		src := objectstore.New(testNode(uint64(i+1)), ctrl, 0)
		srv := transport.NewServer()
		objectstore.RegisterPullHandler(srv, src)
		addr := "src-" + string(rune('0'+i))
		if _, err := nw.Listen(addr, srv); err != nil {
			t.Fatal(err)
		}
		addrs[src.Node()] = addr
		srcs = append(srcs, src)
	}
	dst = objectstore.New(testNode(99), ctrl, 0)
	pm = NewPullManager(dst, ctrl, nw, func(n types.NodeID) (string, bool) {
		a, ok := addrs[n]
		return a, ok
	}, cfg)
	t.Cleanup(pm.Close)
	return srcs, dst, ctrl, pm
}

func TestPullWholeRemoteObject(t *testing.T) {
	srcs, dst, ctrl, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	id := testObj(30)
	srcs[0].Put(id, []byte("remote-bytes"))
	if err := pm.Fetch(context.Background(), id, []types.NodeID{srcs[0].Node()}); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Get(id)
	if !ok || !bytes.Equal(got, []byte("remote-bytes")) {
		t.Fatalf("fetched = %q, %v", got, ok)
	}
	// Both locations registered.
	info, _ := ctrl.GetObject(id)
	if len(info.Locations) != 2 {
		t.Fatalf("locations = %v", info.Locations)
	}
	objects, chunks, _ := pm.Stats()
	if objects != 1 || chunks != 1 {
		t.Fatalf("stats = %d objects, %d chunks; want 1, 1", objects, chunks)
	}
}

func TestFetchAlreadyLocalIsNoop(t *testing.T) {
	_, dst, _, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	id := testObj(31)
	dst.Put(id, []byte("here"))
	if err := pm.Fetch(context.Background(), id, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFetchNoLocationsFails(t *testing.T) {
	_, _, _, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	if err := pm.Fetch(context.Background(), testObj(32), nil); err == nil {
		t.Fatal("fetch with no locations succeeded")
	}
}

func TestFetchSkipsDeadPeerAndFails(t *testing.T) {
	_, _, _, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	// Location points at a node with no registered address.
	err := pm.Fetch(context.Background(), testObj(33), []types.NodeID{testNode(9)})
	if err == nil {
		t.Fatal("fetch from unknown peer succeeded")
	}
}

func TestFetchMissingObjectOnPeer(t *testing.T) {
	srcs, _, _, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	err := pm.Fetch(context.Background(), testObj(34), []types.NodeID{srcs[0].Node()})
	if err == nil {
		t.Fatal("fetch of object absent on peer succeeded")
	}
}

func TestConcurrentFetchesCollapse(t *testing.T) {
	srcs, dst, _, pm := pullFixture(t, transport.NewInproc(time.Millisecond), 1, PullConfig{})
	id := testObj(35)
	srcs[0].Put(id, make([]byte, 1024))
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = pm.Fetch(context.Background(), id, []types.NodeID{srcs[0].Node()})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if !dst.Contains(id) {
		t.Fatal("object not resident after concurrent fetches")
	}
	if objects, _, _ := pm.Stats(); objects != 1 {
		t.Fatalf("concurrent fetches did not collapse: %d pulls", objects)
	}
}

func patterned(n int) []byte {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	return payload
}

func TestChunkedPullAssembles(t *testing.T) {
	srcs, dst, _, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{ChunkSize: 1 << 10})
	id := testObj(40)
	payload := patterned(10<<10 + 137) // 10 chunks + a ragged tail
	srcs[0].Put(id, payload)
	if err := pm.Fetch(context.Background(), id, []types.NodeID{srcs[0].Node()}); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Get(id)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("chunked pull corrupted payload")
	}
	_, chunks, bytesPulled := pm.Stats()
	if chunks != 11 {
		t.Fatalf("chunks = %d, want 11", chunks)
	}
	if bytesPulled != int64(len(payload)) {
		t.Fatalf("bytes = %d, want %d", bytesPulled, len(payload))
	}
}

func TestChunkedPullMultiPeer(t *testing.T) {
	srcs, dst, _, pm := pullFixture(t, transport.NewInproc(0), 2, PullConfig{ChunkSize: 512})
	id := testObj(41)
	payload := patterned(8 << 10)
	srcs[0].Put(id, payload)
	srcs[1].Put(id, payload)
	locs := []types.NodeID{srcs[0].Node(), srcs[1].Node()}
	if err := pm.Fetch(context.Background(), id, locs); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Get(id)
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-peer pull corrupted payload")
	}
}

func TestChunkedPullFallsBackOnPeerMissingObject(t *testing.T) {
	// Peer 1 is listed as a location but does not hold the object; every
	// chunk routed to it must fall back to peer 0.
	srcs, dst, _, pm := pullFixture(t, transport.NewInproc(0), 2, PullConfig{ChunkSize: 512})
	id := testObj(42)
	payload := patterned(4 << 10)
	srcs[0].Put(id, payload)
	locs := []types.NodeID{srcs[0].Node(), srcs[1].Node()}
	if err := pm.Fetch(context.Background(), id, locs); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Get(id)
	if !bytes.Equal(got, payload) {
		t.Fatal("fallback pull corrupted payload")
	}
}

func TestChunkedPullServesSpilledSource(t *testing.T) {
	// The source's copy lives on its disk tier; chunk serving must restore
	// it transparently.
	nw := transport.NewInproc(0)
	ctrl := gcs.NewStore(4)
	tier, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := objectstore.New(testNode(1), ctrl, 4<<10)
	src.SetSpillTier(tier)
	src.SetRefChecker(func(types.ObjectID) bool { return true })
	srv := transport.NewServer()
	objectstore.RegisterPullHandler(srv, src)
	if _, err := nw.Listen("src", srv); err != nil {
		t.Fatal(err)
	}
	big := testObj(43)
	payload := patterned(3 << 10)
	if err := src.Put(big, payload); err != nil {
		t.Fatal(err)
	}
	// Force big out of memory.
	if err := src.Put(testObj(44), patterned(3<<10)); err != nil {
		t.Fatal(err)
	}
	if info, _ := ctrl.GetObject(big); !info.IsSpilledOn(src.Node()) {
		t.Fatal("object not spilled; pressure setup broken")
	}

	dst := objectstore.New(testNode(2), ctrl, 0)
	pm := NewPullManager(dst, ctrl, nw, func(types.NodeID) (string, bool) { return "src", true }, PullConfig{ChunkSize: 1 << 10})
	defer pm.Close()
	if err := pm.Fetch(context.Background(), big, []types.NodeID{src.Node()}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Get(big)
	if !bytes.Equal(got, payload) {
		t.Fatal("pull from spilled source corrupted payload")
	}
}

func TestChunkedPullOverTCP(t *testing.T) {
	ctrl := gcs.NewStore(2)
	src := objectstore.New(testNode(1), ctrl, 0)
	dst := objectstore.New(testNode(2), ctrl, 0)
	srv := transport.NewServer()
	objectstore.RegisterPullHandler(srv, src)
	l, err := transport.TCP{}.Listen("127.0.0.1:39281", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pm := NewPullManager(dst, ctrl, transport.TCP{}, func(n types.NodeID) (string, bool) {
		return "127.0.0.1:39281", n == testNode(1)
	}, PullConfig{ChunkSize: 32 << 10})
	defer pm.Close()
	id := testObj(36)
	payload := patterned(256 << 10)
	src.Put(id, payload)
	if err := pm.Fetch(context.Background(), id, []types.NodeID{testNode(1)}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Get(id)
	if !bytes.Equal(got, payload) {
		t.Fatal("TCP chunked transfer corrupted payload")
	}
	if _, chunks, _ := pm.Stats(); chunks != 8 {
		t.Fatalf("chunks = %d, want 8", chunks)
	}
}

func TestChunkRequestWire(t *testing.T) {
	id := testObj(50)
	req := objectstore.EncodeChunkRequest(id, 4096, 512)
	gotID, off, length, err := objectstore.DecodeChunkRequest(req)
	if err != nil || gotID != id || off != 4096 || length != 512 {
		t.Fatalf("round trip = %v %d %d %v", gotID, off, length, err)
	}
	if _, _, _, err := objectstore.DecodeChunkRequest(req[:10]); err == nil {
		t.Fatal("short request decoded")
	}
	if _, _, _, err := objectstore.DecodeChunkRequest(objectstore.EncodeChunkRequest(id, 0, 0)); err == nil {
		t.Fatal("zero-length request decoded")
	}
}

// TestPrefetchPullsReadySet checks Prefetch pulls every ready remote
// dependency into the local store in the background, skips pending and
// already-local objects, and collapses with concurrent Fetch calls.
func TestPrefetchPullsReadySet(t *testing.T) {
	srcs, dst, ctrl, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	src := srcs[0]

	ready1, ready2 := testObj(60), testObj(61)
	src.Put(ready1, []byte("a"))
	src.Put(ready2, patterned(300<<10)) // chunked path
	local := testObj(62)
	dst.Put(local, []byte("here"))
	pending := testObj(63)
	ctrl.EnsureObject(pending, types.NilTaskID)

	pm.Prefetch([]types.ObjectID{ready1, ready2, local, pending})

	deadline := time.Now().Add(5 * time.Second)
	for !(dst.Contains(ready1) && dst.Contains(ready2)) {
		if time.Now().After(deadline) {
			t.Fatal("prefetch did not pull ready objects")
		}
		time.Sleep(time.Millisecond)
	}
	if dst.Contains(pending) {
		t.Fatal("prefetch must not invent pending objects")
	}
	if got := pm.Prefetched(); got != 2 {
		t.Fatalf("prefetched = %d, want 2 (local and pending skipped)", got)
	}
	// Collapsing: a Fetch racing the prefetch transfers the object once.
	if err := pm.Fetch(context.Background(), ready2, []types.NodeID{src.Node()}); err != nil {
		t.Fatal(err)
	}
	if objects, _, _ := pm.Stats(); objects != 2 {
		t.Fatalf("objects pulled = %d, want 2 (no double transfer)", objects)
	}
}
