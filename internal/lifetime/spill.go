package lifetime

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// ErrSpillBudget is returned by Spill when the write would exceed the disk
// budget and every evictable (unreferenced) spilled file has already been
// reclaimed. The tier refuses rather than drops: deleting a referenced
// spill file would turn "spill referenced data" into "lose referenced
// data". The store rolls the victim back to memory and surfaces
// ErrStoreFull to the Put that needed the room.
var ErrSpillBudget = errors.New("lifetime: spill tier over disk budget (all files referenced)")

// maxBudgetProbes bounds how many candidates one over-budget spill asks
// the refcount oracle about: each probe is a sequential control-plane RPC
// the evicting Put waits through, so an unbounded walk over a large
// mostly-referenced directory would turn one Put into O(files) RPCs.
const maxBudgetProbes = 32

// DiskSpiller is the production objectstore.SpillTier: one file per object
// in a per-node directory. Writes go through a unique temp file plus rename
// so a crash mid-spill can never leave a truncated object to be restored,
// and concurrent writes of the same object (possible now that the store
// spills outside its lock) cannot tear each other.
//
// An optional disk budget bounds bytes on disk (ROADMAP "Spill-tier
// hygiene"): when a spill would exceed it, the least recently used
// *unreferenced* files are evicted first; if every file is still
// referenced the spill is refused with ErrSpillBudget instead of dropping
// data. The refcount oracle is a control-plane RPC and is only ever
// consulted outside d.mu, so restores, range reads, and removals never
// queue behind a GCS failover — the same lock-scope rule as the store
// itself (DESIGN.md §8).
type DiskSpiller struct {
	dir string

	// budget and referenced are set at construction time (before the store
	// shares the tier). budget 0 = unlimited.
	budget     int64
	referenced func(types.ObjectID) bool

	mu     sync.Mutex
	files  map[types.ObjectID]*spillFile
	lru    *list.List // of *spillFile; front = MRU, back = LRU
	onDisk int64

	tmpSeq      atomic.Int64
	spills      atomic.Int64
	restores    atomic.Int64
	tierEvicted atomic.Int64
}

// spillFile tracks one on-disk object. writers counts in-flight Spill
// calls targeting it; committed records that at least one write has landed
// (so a failed retry never untracks a real file). Same-id writes always
// carry identical bytes — objects are immutable — so concurrent writers
// never disagree about size.
type spillFile struct {
	id        types.ObjectID
	size      int64
	elem      *list.Element
	writers   int
	committed bool
}

// NewDiskSpiller creates (or reuses) dir as the spill directory.
func NewDiskSpiller(dir string) (*DiskSpiller, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifetime: spill dir: %w", err)
	}
	return &DiskSpiller{dir: dir, files: make(map[types.ObjectID]*spillFile), lru: list.New()}, nil
}

// Dir returns the spill directory.
func (d *DiskSpiller) Dir() string { return d.dir }

// SetBudget bounds bytes on disk; 0 means unlimited. Call before the tier
// is shared.
func (d *DiskSpiller) SetBudget(bytes int64) { d.budget = bytes }

// SetRefChecker installs the liveness oracle used by budget eviction to
// tell reclaimable garbage from referenced data. It is typically a
// control-plane lookup (lifetime.Manager.Referenced) that treats an
// unreachable control plane as "referenced" — the conservative verdict.
// Call before the tier is shared; without one, budget eviction treats
// every file as referenced and the budget can only refuse.
func (d *DiskSpiller) SetRefChecker(fn func(types.ObjectID) bool) { d.referenced = fn }

func (d *DiskSpiller) path(id types.ObjectID) string {
	return filepath.Join(d.dir, id.Hex()+".obj")
}

// Spill implements objectstore.SpillTier. Overwriting an existing spill of
// the same object is allowed (objects are immutable, so the bytes match)
// and does not double-count the budget.
func (d *DiskSpiller) Spill(id types.ObjectID, data []byte) error {
	return d.spill(id, data, true)
}

// SpillBounded implements objectstore.BoundedSpiller: like Spill but never
// probes the refcount oracle — if the write does not fit the budget as-is
// it fails fast with ErrSpillBudget. The store's restore re-admission path
// uses it so a Get's latency never includes control-plane RPCs.
func (d *DiskSpiller) SpillBounded(id types.ObjectID, data []byte) error {
	return d.spill(id, data, false)
}

func (d *DiskSpiller) spill(id types.ObjectID, data []byte, allowProbes bool) error {
	size := int64(len(data))
	f, err := d.reserve(id, size, allowProbes)
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.%d.tmp", d.path(id), d.tmpSeq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp) // a partial write (ENOSPC) must not eat more disk
		d.finishWrite(f, false)
		return err
	}
	if err := os.Rename(tmp, d.path(id)); err != nil {
		os.Remove(tmp)
		d.finishWrite(f, false)
		return err
	}
	d.finishWrite(f, true)
	d.spills.Add(1)
	return nil
}

// reserve books size bytes for id, evicting cold unreferenced files when
// the budget demands it. Candidates are snapshotted under d.mu, classified
// by the oracle outside it, and re-validated under it before deletion — a
// hung oracle therefore stalls only this spill, never a concurrent
// Restore/RestoreRange/Remove. With allowProbes false the oracle is never
// consulted: an over-budget write is refused immediately. Returns the
// (possibly pre-existing) file record with a writer registered on it; the
// caller must pair with finishWrite.
func (d *DiskSpiller) reserve(id types.ObjectID, size int64, allowProbes bool) (*spillFile, error) {
	d.mu.Lock()
	for {
		if f, ok := d.files[id]; ok {
			// Overwrite: same id means identical immutable bytes, so the
			// size delta is zero in practice; keep it exact regardless.
			d.onDisk += size - f.size
			f.size = size
			f.writers++
			d.lru.MoveToFront(f.elem)
			d.mu.Unlock()
			return f, nil
		}
		if d.budget <= 0 || d.onDisk+size <= d.budget {
			break
		}
		if !allowProbes {
			still := d.onDisk + size - d.budget
			d.mu.Unlock()
			return nil, fmt.Errorf("%w: need %d more bytes", ErrSpillBudget, still)
		}
		need := d.onDisk + size - d.budget
		// Snapshot up to maxBudgetProbes candidates coldest-first (the
		// probe loop can reach no more); the oracle runs unlocked.
		var cands []*spillFile
		for el := d.lru.Back(); el != nil && len(cands) < maxBudgetProbes; el = el.Prev() {
			cands = append(cands, el.Value.(*spillFile))
		}
		ref := d.referenced
		d.mu.Unlock()

		// Each probe is a control-plane RPC (seconds during a failover),
		// issued sequentially while the evicting Put waits — hence the
		// cap. A budget refusal when evictable files sat beyond the cap
		// is the safe direction: the Put fails with ErrStoreFull and its
		// victim stays in memory; nothing is ever dropped.
		var victims []*spillFile
		var freeable int64
		for _, f := range cands {
			if freeable >= need {
				break
			}
			// No oracle: everything must be presumed referenced.
			if ref != nil && !ref(f.id) {
				victims = append(victims, f)
				freeable += f.size
			}
		}

		d.mu.Lock()
		progress := false
		for _, f := range victims {
			// Re-validate by pointer identity: if the file was removed (and
			// possibly re-spilled as a new generation at the same path)
			// while we were classifying, this victim is stale and must not
			// be unlinked; a victim with an in-flight writer is about to be
			// recreated, so evicting it would only untrack the new file.
			// The unlink stays under d.mu so no new same-path spill can
			// land between the check and the syscall — it is a fast
			// metadata op, unlike the oracle RPCs above.
			if d.files[f.id] != f || f.writers > 0 {
				continue
			}
			if err := os.Remove(d.path(f.id)); err != nil && !os.IsNotExist(err) {
				continue // still tracked, on disk, evictable later
			}
			d.lru.Remove(f.elem)
			delete(d.files, f.id)
			d.onDisk -= f.size
			d.tierEvicted.Add(1)
			progress = true
		}
		if d.budget > 0 && d.onDisk+size > d.budget && !progress {
			still := d.onDisk + size - d.budget
			d.mu.Unlock()
			return nil, fmt.Errorf("%w: need %d more bytes", ErrSpillBudget, still)
		}
		// Either it fits now, or retry against a fresh snapshot.
	}
	f := &spillFile{id: id, size: size, writers: 1}
	f.elem = d.lru.PushFront(f)
	d.files[id] = f
	d.onDisk += size
	d.mu.Unlock()
	return f, nil
}

// finishWrite retires one writer from f. A failed write only untracks the
// record when it was the last writer and no write ever landed — a
// concurrent same-id Spill that succeeded (or the pre-existing file of an
// overwrite) keeps its accounting.
func (d *DiskSpiller) finishWrite(f *spillFile, ok bool) {
	d.mu.Lock()
	f.writers--
	if ok {
		f.committed = true
	} else if !f.committed && f.writers == 0 && d.files[f.id] == f {
		d.lru.Remove(f.elem)
		delete(d.files, f.id)
		d.onDisk -= f.size
	}
	d.mu.Unlock()
}

// Restore implements objectstore.SpillTier.
func (d *DiskSpiller) Restore(id types.ObjectID) ([]byte, error) {
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, err
	}
	d.touch(id)
	d.restores.Add(1)
	return data, nil
}

// RestoreRange implements objectstore.RangeReader: one pread-sized read,
// so serving a chunk of a spilled object never touches the rest of it.
func (d *DiskSpiller) RestoreRange(id types.ObjectID, offset, length int64) ([]byte, error) {
	f, err := os.Open(d.path(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, length)
	n, err := f.ReadAt(buf, offset)
	if err != nil && !(err == io.EOF && int64(n) == length) {
		return nil, err
	}
	d.touch(id)
	return buf[:n], nil
}

// touch marks id most recently used for budget eviction.
func (d *DiskSpiller) touch(id types.ObjectID) {
	d.mu.Lock()
	if f, ok := d.files[id]; ok {
		d.lru.MoveToFront(f.elem)
	}
	d.mu.Unlock()
}

// Remove implements objectstore.SpillTier. Removing an absent object is a
// no-op. Accounting is settled only after the file is actually gone, so a
// failed removal leaves the file both on disk and counted against the
// budget (still evictable later), never invisible. A record with an
// in-flight writer is never untracked: the store's write/remove fence
// keeps Remove and Spill of one id from overlapping, but if they ever do,
// the writer's rename recreates the file and the kept record stays
// accurate.
func (d *DiskSpiller) Remove(id types.ObjectID) error {
	if err := os.Remove(d.path(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	d.mu.Lock()
	if f, ok := d.files[id]; ok && f.writers == 0 {
		d.lru.Remove(f.elem)
		delete(d.files, id)
		d.onDisk -= f.size
	}
	d.mu.Unlock()
	return nil
}

// Stats returns cumulative spill and restore counts plus bytes on disk.
func (d *DiskSpiller) Stats() (spills, restores, bytesOnDisk int64) {
	d.mu.Lock()
	bytesOnDisk = d.onDisk
	d.mu.Unlock()
	return d.spills.Load(), d.restores.Load(), bytesOnDisk
}

// TierEvictions returns how many spilled files budget pressure has
// reclaimed.
func (d *DiskSpiller) TierEvictions() int64 { return d.tierEvicted.Load() }

// SweepOrphans deletes spill files left behind by a previous incarnation:
// every *.obj whose object the keep oracle disowns (its object-table entry
// is gone, or the entry no longer records a spilled copy here), plus
// temp files from writes that crashed mid-spill. Call at node startup,
// before the store starts using the tier — the directory then contains
// only leftovers, never live spills. Files the oracle keeps are registered
// with the budget accounting, so a pre-existing working set counts against
// the disk budget from boot. Returns the number of files removed.
func (d *DiskSpiller) SweepOrphans(keep func(types.ObjectID) bool) (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("lifetime: orphan sweep: %w", err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		full := filepath.Join(d.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			if os.Remove(full) == nil {
				removed++
			}
			continue
		}
		hex, ok := strings.CutSuffix(name, ".obj")
		if !ok {
			continue // not ours
		}
		id, err := types.ParseObjectID(hex)
		if err != nil {
			// Unparseable .obj file: a foreign or corrupt name; reclaim it.
			if os.Remove(full) == nil {
				removed++
			}
			continue
		}
		if keep != nil && keep(id) {
			if info, err := e.Info(); err == nil {
				d.mu.Lock()
				if _, dup := d.files[id]; !dup {
					f := &spillFile{id: id, size: info.Size(), committed: true}
					f.elem = d.lru.PushFront(f)
					d.files[id] = f
					d.onDisk += f.size
				}
				d.mu.Unlock()
			}
			continue
		}
		if os.Remove(full) == nil {
			removed++
		}
	}
	return removed, nil
}
