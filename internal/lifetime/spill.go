package lifetime

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/types"
)

// DiskSpiller is the production objectstore.SpillTier: one file per object
// in a per-node directory. Writes go through a temp file plus rename so a
// crash mid-spill can never leave a truncated object to be restored.
type DiskSpiller struct {
	dir string

	spills   atomic.Int64
	restores atomic.Int64
	onDisk   atomic.Int64 // bytes currently spilled
}

// NewDiskSpiller creates (or reuses) dir as the spill directory.
func NewDiskSpiller(dir string) (*DiskSpiller, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifetime: spill dir: %w", err)
	}
	return &DiskSpiller{dir: dir}, nil
}

// Dir returns the spill directory.
func (d *DiskSpiller) Dir() string { return d.dir }

func (d *DiskSpiller) path(id types.ObjectID) string {
	return filepath.Join(d.dir, id.Hex()+".obj")
}

// Spill implements objectstore.SpillTier.
func (d *DiskSpiller) Spill(id types.ObjectID, data []byte) error {
	tmp := d.path(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.path(id)); err != nil {
		os.Remove(tmp)
		return err
	}
	d.spills.Add(1)
	d.onDisk.Add(int64(len(data)))
	return nil
}

// Restore implements objectstore.SpillTier.
func (d *DiskSpiller) Restore(id types.ObjectID) ([]byte, error) {
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, err
	}
	d.restores.Add(1)
	return data, nil
}

// RestoreRange implements objectstore.RangeReader: one pread-sized read,
// so serving a chunk of a spilled object never touches the rest of it.
func (d *DiskSpiller) RestoreRange(id types.ObjectID, offset, length int64) ([]byte, error) {
	f, err := os.Open(d.path(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, length)
	n, err := f.ReadAt(buf, offset)
	if err != nil && !(err == io.EOF && int64(n) == length) {
		return nil, err
	}
	return buf[:n], nil
}

// Remove implements objectstore.SpillTier. Removing an absent object is a
// no-op.
func (d *DiskSpiller) Remove(id types.ObjectID) error {
	info, err := os.Stat(d.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if err := os.Remove(d.path(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	d.onDisk.Add(-info.Size())
	return nil
}

// Stats returns cumulative spill and restore counts plus bytes on disk.
func (d *DiskSpiller) Stats() (spills, restores, bytesOnDisk int64) {
	return d.spills.Load(), d.restores.Load(), d.onDisk.Load()
}

// SweepOrphans deletes spill files left behind by a previous incarnation:
// every *.obj whose object the keep oracle disowns (its object-table entry
// is gone, or the entry no longer records a spilled copy here), plus
// temp files from writes that crashed mid-spill. Call at node startup,
// before the store starts using the tier — the directory then contains
// only leftovers, never live spills. Returns the number of files removed.
func (d *DiskSpiller) SweepOrphans(keep func(types.ObjectID) bool) (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("lifetime: orphan sweep: %w", err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		full := filepath.Join(d.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			if os.Remove(full) == nil {
				removed++
			}
			continue
		}
		hex, ok := strings.CutSuffix(name, ".obj")
		if !ok {
			continue // not ours
		}
		id, err := types.ParseObjectID(hex)
		if err != nil {
			// Unparseable .obj file: a foreign or corrupt name; reclaim it.
			if os.Remove(full) == nil {
				removed++
			}
			continue
		}
		if keep != nil && keep(id) {
			continue
		}
		if os.Remove(full) == nil {
			removed++
		}
	}
	return removed, nil
}
