package lifetime

import (
	"testing"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

// outageCtrl models a control plane whose shard owning the queried record
// is down: reads come back empty and the liveness probe fails.
type outageCtrl struct{ gcs.API }

func (outageCtrl) GetObject(types.ObjectID) (types.ObjectInfo, bool) {
	return types.ObjectInfo{}, false
}

func (outageCtrl) Ping() bool { return false }

// TestReferencedConservativeDuringOutage: with the control plane
// unreachable, eviction must treat objects as referenced (spill, never
// drop) — dropping on uncertainty destroys lineage-less Put data.
func TestReferencedConservativeDuringOutage(t *testing.T) {
	backing := gcs.NewStore(1)
	var node types.NodeID
	node[0] = 1
	store := objectstore.New(node, backing, 0)
	obj := sweepObjID(3)

	down := NewManager(outageCtrl{API: backing}, store)
	if !down.Referenced(obj) {
		t.Fatal("unreachable control plane treated object as unreferenced")
	}
	// Healthy control plane, genuinely unknown object: unreferenced.
	up := NewManager(backing, store)
	if up.Referenced(obj) {
		t.Fatal("unknown object counted as referenced on a healthy control plane")
	}
}
