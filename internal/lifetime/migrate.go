package lifetime

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/transport"
	"repro/internal/types"
)

// Spill-migration (DESIGN.md §10): when a node drains, every object it
// still holds must move to a peer before the node deregisters. The
// transfer itself is the existing chunked pull path run in reverse — the
// draining source asks a target to pull the object from it — so large
// objects ride the same bounded-concurrency chunk streams, per-peer
// windows, and spilled-range reads as any other transfer. Ordering is the
// safety core: the target's new location is published (and verified
// visible) before the source deletes its copy, so a referenced object
// never has zero live locations; and the source holds a refcount borrow
// across each push so the cluster GC cannot reclaim the object mid-flight.

// MigrateInMethod is the transport method every node serves for drain
// migration: the draining source asks this node to pull one object from
// it. Payload: gob MigrateReq; empty response on success. The handler acks
// only after the object is locally resident AND its location is visible in
// the control plane, which is what lets the source delete afterwards.
const MigrateInMethod = "lifetime.migrateIn"

// MigrateReq asks the receiving node to pull one object from the sender.
type MigrateReq struct {
	ID   types.ObjectID
	From types.NodeID
}

// migrateFetchTimeout bounds the target-side pull of one object.
const migrateFetchTimeout = 30 * time.Second

// migratePublishWait bounds how long the target waits for its own
// AddObjectLocation to become visible before acking (the publish runs
// through the store's per-object pipeline and the control plane may be
// mid-failover).
const migratePublishWait = 10 * time.Second

// RegisterMigrateHandler serves MigrateInMethod: the target-side half of
// spill-migration. The pull goes through the node's PullManager, so it is
// chunked, deduplicated against concurrent fetches of the same object, and
// prefers memory copies.
func RegisterMigrateHandler(srv *transport.Server, pm *PullManager) {
	srv.Handle(MigrateInMethod, func(payload []byte) ([]byte, error) {
		req, err := codec.DecodeAs[MigrateReq](payload)
		if err != nil {
			return nil, fmt.Errorf("lifetime: bad migrate request: %w", err)
		}
		ctx, cancel := context.WithTimeout(pm.baseCtx, migrateFetchTimeout)
		defer cancel()
		if err := pm.Fetch(ctx, req.ID, []types.NodeID{req.From}); err != nil {
			return nil, fmt.Errorf("lifetime: migrate pull %v: %w", req.ID, err)
		}
		// Ack only once our location is published: the source deletes its
		// copy on this ack, and the no-copy-less-referenced-object
		// invariant needs the new location in the table first.
		self := pm.store.Node()
		deadline := time.Now().Add(migratePublishWait)
		for {
			if info, ok := pm.ctrl.GetObject(req.ID); ok && info.HasLocation(self) {
				return nil, nil
			}
			if !pm.store.Contains(req.ID) {
				return nil, fmt.Errorf("lifetime: migrated copy of %v vanished before publish", req.ID)
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("lifetime: migrate publish of %v not visible", req.ID)
			}
			select {
			case <-time.After(5 * time.Millisecond):
			case <-pm.baseCtx.Done():
				return nil, pm.baseCtx.Err()
			}
		}
	})
}

// Migrator is the source-side drain driver: it empties the local store by
// pushing every referenced object to an Active peer (via MigrateInMethod)
// and dropping garbage, re-listing until nothing is left. It rides on the
// node's PullManager for everything peer-shaped — store, control plane,
// address resolution, and the cached peer connections — so a drain adds
// no second connection per peer and no duplicate cache logic.
type Migrator struct {
	pm   *PullManager
	refs *Tracker

	migrated atomic.Int64
	dropped  atomic.Int64
}

// NewMigrator wires a migrator to the node's pull manager and reference
// tracker (whose borrows protect in-flight objects).
func NewMigrator(pm *PullManager, refs *Tracker) *Migrator {
	return &Migrator{pm: pm, refs: refs}
}

// Stats returns cumulative (objects migrated to peers, garbage dropped).
func (m *Migrator) Stats() (migrated, dropped int64) {
	return m.migrated.Load(), m.dropped.Load()
}

// drainRounds bounds the re-list loop: each round must make progress, and
// rounds beyond the first only exist to sweep objects that arrived while
// an earlier round ran (late task outputs, racing Puts).
const drainRounds = 20

// DrainObjects empties the local store: garbage (refcount zero after
// retention) is dropped, everything else is pushed to an Active peer with
// the location published before local deletion. abort, when non-nil, is
// polled between objects so an operator rollback (Draining→Active) stops
// the migration promptly; aborting returns a non-nil error. The store may
// keep receiving objects while this runs (a racing Put, a late output);
// the loop re-lists until a pass finds the store empty.
func (m *Migrator) DrainObjects(ctx context.Context, abort func() bool) error {
	var lastErr error
	for round := 0; round < drainRounds; round++ {
		ids := m.pm.store.Resident()
		if len(ids) == 0 {
			return nil
		}
		progress := false
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			if abort != nil && abort() {
				return fmt.Errorf("lifetime: drain aborted with %d objects left", len(ids))
			}
			moved, err := m.migrateOne(ctx, id)
			if err != nil {
				lastErr = err
				continue
			}
			if moved {
				progress = true
			}
		}
		if !progress {
			if lastErr == nil {
				lastErr = fmt.Errorf("lifetime: drain made no progress with %d objects resident", len(ids))
			}
			return lastErr
		}
	}
	if n := len(m.pm.store.Resident()); n > 0 {
		return fmt.Errorf("lifetime: drain still %d objects resident after %d rounds", n, drainRounds)
	}
	return nil
}

// migrateOne disposes of a single object: drop if garbage or already
// replicated on another Active node, push to a peer otherwise. Reports
// whether the object is gone from the local store.
func (m *Migrator) migrateOne(ctx context.Context, id types.ObjectID) (bool, error) {
	if !m.pm.store.Contains(id) {
		return true, nil // reclaimed or deleted since the listing
	}
	info, haveInfo := m.pm.ctrl.GetObject(id)
	if haveInfo {
		if info.EverRetained && info.RefCount == 0 {
			// Garbage: the GC channel would reclaim it anyway.
			if m.pm.store.Delete(id) {
				m.dropped.Add(1)
			}
			return true, nil
		}
		if m.replicatedElsewhere(info) {
			// A live Active peer already holds a copy; deleting the local
			// one cannot strand the object. Draining peers do not count —
			// two draining nodes must not each trust the other's copy.
			if m.pm.store.Delete(id) {
				m.migrated.Add(1)
			}
			return true, nil
		}
	}
	// Hold a borrow across the push so a concurrent release elsewhere
	// cannot let the GC reclaim the object mid-transfer. The borrow must be
	// visible cluster-wide BEFORE the peer registers its location — a
	// pending-only retain would let the destination's manager see a stale
	// zero and reclaim the copy it just accepted — so this is one of the
	// few paths that flushes the ledger inline.
	m.refs.Retain(id)
	m.refs.Flush()
	defer m.refs.Release(id)
	targets := m.targets()
	if len(targets) == 0 {
		return false, fmt.Errorf("lifetime: no Active peer to migrate %v to", id)
	}
	var lastErr error
	for _, t := range targets {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		sp := m.pm.obs.tracer.Begin("migrate", "lifetime.migrate")
		if err := m.pushTo(t, id); err != nil {
			lastErr = err // peer died or refused (e.g. full); try the next
			continue
		}
		sp.Object = id.Hex()
		sp.Detail = "to " + t.ID.Hex()
		sp.End()
		// Peer acked: its location is published and visible. Deleting the
		// local copy now leaves the object with at least one live location.
		if m.pm.store.Delete(id) {
			m.migrated.Add(1)
			m.pm.obs.migrated.Inc()
		}
		return true, nil
	}
	return false, lastErr
}

// replicatedElsewhere reports whether another Active live node already
// holds a copy.
func (m *Migrator) replicatedElsewhere(info types.ObjectInfo) bool {
	self := m.pm.store.Node()
	for _, loc := range info.Locations {
		if loc == self {
			continue
		}
		if n, ok := m.pm.ctrl.GetNode(loc); ok && n.Schedulable() {
			return true
		}
	}
	return false
}

// migrateTargetAttempts bounds how many peers one object is offered to
// before its round gives up (the next round retries with a fresh view).
const migrateTargetAttempts = 3

// targets returns candidate receivers: Active live peers, least-loaded
// stores first so migrated bytes spread toward free memory.
func (m *Migrator) targets() []types.NodeInfo {
	self := m.pm.store.Node()
	var out []types.NodeInfo
	for _, n := range m.pm.ctrl.Nodes() {
		if n.ID == self || !n.Schedulable() {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		li := out[i].Store.UsedBytes + out[i].Store.SpilledBytes
		lj := out[j].Store.UsedBytes + out[j].Store.SpilledBytes
		return li < lj
	})
	if len(out) > migrateTargetAttempts {
		out = out[:migrateTargetAttempts]
	}
	return out
}

// pushTo asks one peer to pull id from this node, over the pull
// manager's cached connection to that peer (shared with ordinary pulls;
// closed by PullManager.Close at node shutdown).
func (m *Migrator) pushTo(target types.NodeInfo, id types.ObjectID) error {
	addr := target.Addr
	if addr == "" {
		if a, ok := m.pm.resolveAddr(target.ID); ok {
			addr = a
		} else {
			return fmt.Errorf("lifetime: no address for %v", target.ID)
		}
	}
	client, err := m.pm.conn(addr)
	if err != nil {
		return err
	}
	req := codec.MustEncode(MigrateReq{ID: id, From: m.pm.store.Node()})
	if _, err := client.Call(MigrateInMethod, req); err != nil {
		m.pm.dropConn(addr)
		return err
	}
	return nil
}
