package lifetime

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

func sweepObjID(b byte) types.ObjectID {
	var id types.ObjectID
	id[0] = b
	return id
}

// TestSweepOrphans: files for disowned objects, crashed-write temp files,
// and unparseable .obj names are reclaimed; kept objects' files survive.
func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskSpiller(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept, orphan := sweepObjID(1), sweepObjID(2)
	if err := d.Spill(kept, []byte("live")); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(orphan, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	// Crash leftovers: a temp file from a torn spill and a garbage name.
	for _, name := range []string{"deadbeef.obj.tmp", "not-an-id.obj", "unrelated.dat"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	removed, err := d.SweepOrphans(func(id types.ObjectID) bool { return id == kept })
	if err != nil {
		t.Fatal(err)
	}
	// orphan.obj + tmp + garbage .obj = 3; unrelated.dat is not ours.
	if removed != 3 {
		t.Fatalf("removed %d files, want 3", removed)
	}
	if data, err := d.Restore(kept); err != nil || string(data) != "live" {
		t.Fatalf("kept object damaged: %q, %v", data, err)
	}
	if _, err := d.Restore(orphan); err == nil {
		t.Fatal("orphan survived the sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated.dat")); err != nil {
		t.Fatal("foreign file deleted by sweep")
	}
}

// TestSweepOrphansNilKeep: with no oracle every spill file is an orphan
// (the fresh node incarnation owns none of the previous one's files).
func TestSweepOrphansNilKeep(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskSpiller(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(sweepObjID(9), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	removed, err := d.SweepOrphans(nil)
	if err != nil || removed != 1 {
		t.Fatalf("removed %d, %v", removed, err)
	}
}
