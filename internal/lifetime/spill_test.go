package lifetime

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

func sweepObjID(b byte) types.ObjectID {
	var id types.ObjectID
	id[0] = b
	return id
}

// TestSweepOrphans: files for disowned objects, crashed-write temp files,
// and unparseable .obj names are reclaimed; kept objects' files survive.
func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskSpiller(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept, orphan := sweepObjID(1), sweepObjID(2)
	if err := d.Spill(kept, []byte("live")); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(orphan, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	// Crash leftovers: a temp file from a torn spill and a garbage name.
	for _, name := range []string{"deadbeef.obj.tmp", "not-an-id.obj", "unrelated.dat"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	removed, err := d.SweepOrphans(func(id types.ObjectID) bool { return id == kept })
	if err != nil {
		t.Fatal(err)
	}
	// orphan.obj + tmp + garbage .obj = 3; unrelated.dat is not ours.
	if removed != 3 {
		t.Fatalf("removed %d files, want 3", removed)
	}
	if data, err := d.Restore(kept); err != nil || string(data) != "live" {
		t.Fatalf("kept object damaged: %q, %v", data, err)
	}
	if _, err := d.Restore(orphan); err == nil {
		t.Fatal("orphan survived the sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated.dat")); err != nil {
		t.Fatal("foreign file deleted by sweep")
	}
}

// TestSweepOrphansNilKeep: with no oracle every spill file is an orphan
// (the fresh node incarnation owns none of the previous one's files).
func TestSweepOrphansNilKeep(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskSpiller(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(sweepObjID(9), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	removed, err := d.SweepOrphans(nil)
	if err != nil || removed != 1 {
		t.Fatalf("removed %d, %v", removed, err)
	}
}

// TestDiskBudgetEvictsUnreferencedLRU: over budget, the tier reclaims the
// least recently used files whose objects nothing references; referenced
// files survive regardless of age.
func TestDiskBudgetEvictsUnreferencedLRU(t *testing.T) {
	d, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetBudget(30)
	var mu sync.Mutex
	referenced := map[types.ObjectID]bool{}
	d.SetRefChecker(func(id types.ObjectID) bool {
		mu.Lock()
		defer mu.Unlock()
		return referenced[id]
	})
	a, b, c, e := sweepObjID(10), sweepObjID(11), sweepObjID(12), sweepObjID(13)
	for _, id := range []types.ObjectID{a, b, c} {
		if err := d.Spill(id, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a: LRU order is now b (coldest), c, a.
	if _, err := d.Restore(a); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	referenced[a], referenced[c] = true, true // only b is garbage
	mu.Unlock()
	if err := d.Spill(e, make([]byte, 10)); err != nil {
		t.Fatalf("spill within budget after eviction: %v", err)
	}
	if _, err := d.Restore(b); err == nil {
		t.Fatal("unreferenced LRU file survived budget eviction")
	}
	for _, id := range []types.ObjectID{a, c, e} {
		if _, err := d.Restore(id); err != nil {
			t.Fatalf("referenced or fresh file evicted: %v", err)
		}
	}
	if _, _, onDisk := d.Stats(); onDisk != 30 {
		t.Fatalf("onDisk = %d, want 30", onDisk)
	}
	if n := d.TierEvictions(); n != 1 {
		t.Fatalf("TierEvictions = %d, want 1", n)
	}
}

// TestDiskBudgetRefusesWhenAllReferenced: the tier must refuse (not drop)
// when every spilled file is still referenced — deleting one would lose
// referenced data.
func TestDiskBudgetRefusesWhenAllReferenced(t *testing.T) {
	d, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetBudget(20)
	d.SetRefChecker(func(types.ObjectID) bool { return true })
	a, b := sweepObjID(20), sweepObjID(21)
	for _, id := range []types.ObjectID{a, b} {
		if err := d.Spill(id, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Spill(sweepObjID(22), make([]byte, 10)); !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("over-budget spill = %v, want ErrSpillBudget", err)
	}
	for _, id := range []types.ObjectID{a, b} {
		if _, err := d.Restore(id); err != nil {
			t.Fatalf("referenced file lost by refused spill: %v", err)
		}
	}
	if _, _, onDisk := d.Stats(); onDisk != 20 {
		t.Fatalf("onDisk = %d, want 20", onDisk)
	}
}

// TestBudgetOracleDoesNotBlockTierReads: budget eviction consults the
// refcount oracle (a control-plane RPC that can hang across a GCS
// failover) outside the spiller's lock, so a blocked eviction stalls only
// the spill that needs the room — concurrent restores and range reads of
// files already on disk keep working.
func TestBudgetOracleDoesNotBlockTierReads(t *testing.T) {
	d, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetBudget(20)
	gate := make(chan struct{})
	oracleEntered := make(chan struct{}, 4)
	d.SetRefChecker(func(types.ObjectID) bool {
		oracleEntered <- struct{}{}
		<-gate
		return true
	})
	a, b := sweepObjID(30), sweepObjID(31)
	if err := d.Spill(a, []byte("aaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if err := d.Spill(b, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	spillDone := make(chan error, 1)
	go func() { spillDone <- d.Spill(sweepObjID(32), make([]byte, 10)) }()
	<-oracleEntered // eviction is parked inside the hung oracle

	type res struct {
		data []byte
		err  error
	}
	reads := make(chan res, 2)
	go func() {
		data, err := d.Restore(a)
		reads <- res{data, err}
	}()
	go func() {
		data, err := d.RestoreRange(a, 2, 3)
		reads <- res{data, err}
	}()
	for i := 0; i < 2; i++ {
		select {
		case r := <-reads:
			if r.err != nil {
				t.Fatalf("tier read failed during blocked budget eviction: %v", r.err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("tier read blocked behind the hung refcount oracle")
		}
	}
	close(gate)
	if err := <-spillDone; !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("over-budget spill with all-referenced files = %v, want ErrSpillBudget", err)
	}
}

// TestSpillBoundedSkipsOracleProbes: SpillBounded must refuse an
// over-budget write immediately without ever touching the refcount oracle
// — the restore path's latency contract is "disk, never control plane".
func TestSpillBoundedSkipsOracleProbes(t *testing.T) {
	d, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetBudget(20)
	var probes atomic.Int32
	d.SetRefChecker(func(types.ObjectID) bool {
		probes.Add(1)
		return false // everything evictable — Spill would reclaim and succeed
	})
	for i := byte(40); i < 42; i++ {
		if err := d.Spill(sweepObjID(i), make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SpillBounded(sweepObjID(42), make([]byte, 10)); !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("over-budget SpillBounded = %v, want ErrSpillBudget", err)
	}
	if n := probes.Load(); n != 0 {
		t.Fatalf("SpillBounded probed the oracle %d times, want 0", n)
	}
	// The unbounded path still evicts and succeeds.
	if err := d.Spill(sweepObjID(42), make([]byte, 10)); err != nil {
		t.Fatalf("probing Spill after refusal: %v", err)
	}
	if probes.Load() == 0 {
		t.Fatal("probing Spill never consulted the oracle")
	}
}

// TestBudgetRefusalSurfacesStoreFull: end to end through the store, a
// budget-refusing tier rolls the victim back to memory and the Put that
// needed the room fails with ErrStoreFull — referenced bytes are never
// dropped to make the numbers work.
func TestBudgetRefusalSurfacesStoreFull(t *testing.T) {
	d, err := NewDiskSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetBudget(15)
	d.SetRefChecker(func(types.ObjectID) bool { return true })
	ctrl := gcs.NewStore(1)
	store := objectstore.New(testNode(1), ctrl, 20)
	store.SetSpillTier(d)
	store.SetRefChecker(func(types.ObjectID) bool { return true })

	a, b, c := testObj(70), testObj(71), testObj(72)
	if err := store.Put(a, make([]byte, 15)); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(b, make([]byte, 15)); err != nil {
		t.Fatal(err) // spills a; disk now at budget
	}
	if err := store.Put(c, make([]byte, 15)); !errors.Is(err, objectstore.ErrStoreFull) {
		t.Fatalf("Put with exhausted disk budget = %v, want ErrStoreFull", err)
	}
	// Nothing was dropped: b rolled back to memory, a still restorable.
	if data, ok := store.Get(b); !ok || len(data) != 15 {
		t.Fatal("rollback victim lost")
	}
	if !store.Contains(a) {
		t.Fatal("spilled object lost")
	}
}
