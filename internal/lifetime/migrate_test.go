package lifetime

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/transport"
	"repro/internal/types"
)

// migrateFixture builds a draining source and n target nodes, each target
// serving MigrateInMethod backed by its own pull manager, all over one
// in-process network and control plane.
func migrateFixture(t *testing.T, ntargets int) (src *objectstore.Store, targets []*objectstore.Store, ctrl *gcs.Store, m *Migrator) {
	t.Helper()
	nw := transport.NewInproc(0)
	ctrl = gcs.NewStore(4)
	addrs := make(map[types.NodeID]string)
	resolve := func(n types.NodeID) (string, bool) {
		a, ok := addrs[n]
		return a, ok
	}

	src = objectstore.New(testNode(50), ctrl, 0)
	srcSrv := transport.NewServer()
	objectstore.RegisterPullHandler(srcSrv, src)
	if _, err := nw.Listen("mig-src", srcSrv); err != nil {
		t.Fatal(err)
	}
	addrs[src.Node()] = "mig-src"
	ctrl.RegisterNode(types.NodeInfo{ID: src.Node(), Addr: "mig-src", Total: types.CPU(1)})
	srcPM := NewPullManager(src, ctrl, nw, resolve, PullConfig{ChunkSize: 16 << 10})
	t.Cleanup(srcPM.Close)

	for i := 0; i < ntargets; i++ {
		dst := objectstore.New(testNode(uint64(60+i)), ctrl, 0)
		srv := transport.NewServer()
		objectstore.RegisterPullHandler(srv, dst)
		pm := NewPullManager(dst, ctrl, nw, resolve, PullConfig{ChunkSize: 16 << 10})
		t.Cleanup(pm.Close)
		RegisterMigrateHandler(srv, pm)
		addr := "mig-dst-" + string(rune('0'+i))
		if _, err := nw.Listen(addr, srv); err != nil {
			t.Fatal(err)
		}
		addrs[dst.Node()] = addr
		ctrl.RegisterNode(types.NodeInfo{ID: dst.Node(), Addr: addr, Total: types.CPU(1)})
		targets = append(targets, dst)
	}

	m = NewMigrator(srcPM, NewTracker(ctrl))
	return src, targets, ctrl, m
}

// TestMigrateDrainsStoreToPeers: referenced objects (small and chunked)
// move to a peer with the location published before the source's copy is
// deleted; garbage is dropped, not transferred.
func TestMigrateDrainsStoreToPeers(t *testing.T) {
	src, targets, ctrl, m := migrateFixture(t, 1)
	tracker := NewTracker(ctrl)

	small := testObj(70)
	big := testObj(71)
	garbage := testObj(72)
	bigBytes := bytes.Repeat([]byte{7}, 96<<10) // 6 chunks at 16 KiB
	if err := src.Put(small, []byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := src.Put(big, bigBytes); err != nil {
		t.Fatal(err)
	}
	if err := src.Put(garbage, []byte("drop-me")); err != nil {
		t.Fatal(err)
	}
	tracker.Retain(small, big)
	tracker.Retain(garbage)
	tracker.Release(garbage) // refcount 0 after retention: GC-eligible

	if err := m.DrainObjects(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if n := src.Count(); n != 0 {
		t.Fatalf("source still holds %d objects", n)
	}
	for _, id := range []types.ObjectID{small, big} {
		data, ok := targets[0].Get(id)
		if !ok {
			t.Fatalf("object %v not on target", id)
		}
		if id == big && !bytes.Equal(data, bigBytes) {
			t.Fatal("chunked migration corrupted the object")
		}
		info, _ := ctrl.GetObject(id)
		if info.State != types.ObjectReady || !info.HasLocation(targets[0].Node()) || info.HasLocation(src.Node()) {
			t.Fatalf("bad post-migration record for %v: %+v", id, info)
		}
	}
	if _, ok := targets[0].Get(garbage); ok {
		t.Fatal("garbage was migrated instead of dropped")
	}
	migrated, dropped := m.Stats()
	if migrated != 2 || dropped != 1 {
		t.Fatalf("stats = %d migrated, %d dropped; want 2, 1", migrated, dropped)
	}
	// The migration borrows netted out: counts reflect only the test's own
	// retains.
	if info, _ := ctrl.GetObject(small); info.RefCount != 1 {
		t.Fatalf("refcount disturbed by migration: %d", info.RefCount)
	}
}

// TestMigrateFailsOverFailedTarget: a first-choice receiver whose store
// has crashed (still Alive in the table — an undetected failure — so the
// migrator discovers it only through the RPC error) routes the push to
// the surviving peer.
func TestMigrateFailsOverFailedTarget(t *testing.T) {
	src, targets, ctrl, m := migrateFixture(t, 2)
	// Make target 0 the preferred (least-loaded) choice, then crash its
	// store: its migrate handler's Put now fails and the push errors out.
	ctrl.Heartbeat(targets[1].Node(), 0, types.CPU(1), types.StoreStats{UsedBytes: 1 << 20})
	targets[0].Fail()
	id := testObj(80)
	if err := src.Put(id, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	NewTracker(ctrl).Retain(id)

	if err := m.DrainObjects(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := targets[1].Get(id); !ok {
		t.Fatal("object did not fail over to the surviving target")
	}
}

// TestMigrateAbortStopsPromptly: the abort hook (drain rollback) halts
// the sweep with an error and leaves remaining objects in place.
func TestMigrateAbortStopsPromptly(t *testing.T) {
	src, _, ctrl, m := migrateFixture(t, 1)
	id := testObj(81)
	if err := src.Put(id, []byte("stay")); err != nil {
		t.Fatal(err)
	}
	NewTracker(ctrl).Retain(id)
	if err := m.DrainObjects(context.Background(), func() bool { return true }); err == nil {
		t.Fatal("aborted drain must report an error")
	}
	if !src.Contains(id) {
		t.Fatal("aborted drain moved data anyway")
	}
	// A cancelled context stops it too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.DrainObjects(ctx, nil); err == nil {
		t.Fatal("cancelled drain must report an error")
	}
}
