package lifetime

import (
	"context"
	"testing"

	"repro/internal/transport"
	"repro/internal/types"
)

// TestPullZeroByteObject: an empty object must be fetchable cross-node
// like any other — the destination ends up with a present, zero-length
// copy and both locations registered. Regression companion to the
// GetRange zero-byte fix: tasks legitimately return empty payloads
// (side-effect-only functions), and a consumer on another node must not
// hang or error pulling one.
func TestPullZeroByteObject(t *testing.T) {
	srcs, dst, ctrl, pm := pullFixture(t, transport.NewInproc(0), 1, PullConfig{})
	id := testObj(60)
	if err := srcs[0].Put(id, []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := pm.Fetch(context.Background(), id, []types.NodeID{srcs[0].Node()}); err != nil {
		t.Fatalf("fetch of empty object: %v", err)
	}
	got, ok := dst.Get(id)
	if !ok {
		t.Fatal("empty object absent on the destination after fetch")
	}
	if len(got) != 0 {
		t.Fatalf("fetched %d bytes from an empty object", len(got))
	}
	info, _ := ctrl.GetObject(id)
	if !info.HasLocation(dst.Node()) {
		t.Fatalf("destination not registered as a location: %+v", info)
	}
}
