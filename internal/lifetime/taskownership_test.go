package lifetime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/gcs"
	"repro/internal/transport"
	"repro/internal/types"
)

func ownTask(b byte) types.TaskID {
	var id types.TaskID
	id[0] = 0xB0
	id[1] = b
	return id
}

func ownSpec(b byte) types.TaskSpec {
	return types.TaskSpec{ID: ownTask(b), Function: "own.work", Resources: types.CPU(1)}
}

// TestTaskOwnershipCommitThenDieDedup is the deterministic crash-window
// test for the task ledger's flush path, mirroring the refcount ledger's
// shard-kill discipline: a shard commits a ModifyTaskStates batch (and a
// ClaimTaskOp), dies before the ack reaches the owner, and recovers from
// snapshot+WAL. Redelivery under the original token must be recognized —
// no re-application, no burned fence sequence — while genuinely new deltas
// afterwards still apply.
func TestTaskOwnershipCommitThenDieDedup(t *testing.T) {
	nw := transport.NewInproc(0)
	svc, err := gcs.StartShard(gcs.ShardConfig{Index: 0, Addr: "shard-taskown", Network: nw, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	owner := ownNode(6)
	spec := ownSpec(1)
	st := svc.Store()
	if !st.AddTask(types.TaskState{Spec: spec, Status: types.TaskPending, Owner: owner}) {
		t.Fatal("AddTask rejected")
	}

	// A RUNNING delta commits durably; the "crash" lands between commit
	// and ack.
	const op = 61
	running := []types.TaskStateDelta{{
		ID: spec.ID, Owner: owner, Seq: 1,
		Status: types.TaskRunning, Node: owner,
		StartedNs: 1000, LastTransitionNs: 1000, Retries: 1,
	}}
	if failed := st.ModifyTaskStates(owner, running, op); len(failed) != 0 {
		t.Fatalf("commit failed for %v", failed)
	}
	svc.Kill()
	if err := svc.Restart(); err != nil {
		t.Fatal(err)
	}
	st = svc.Store()

	// Redeliver under the original token, exactly as the ledger's retry
	// queue would: consumed, not re-applied, not failed.
	if failed := st.ModifyTaskStates(owner, running, op); len(failed) != 0 {
		t.Fatalf("redelivery failed for %v", failed)
	}
	got, ok := st.GetTask(spec.ID)
	if !ok || got.Status != types.TaskRunning || got.OwnerSeq != 1 || got.Retries != 1 {
		t.Fatalf("after redelivery: status=%v seq=%d retries=%d (ok=%v)", got.Status, got.OwnerSeq, got.Retries, ok)
	}

	// A fresh delta after the dedup still applies — the token history must
	// not swallow new sequences.
	finished := []types.TaskStateDelta{{
		ID: spec.ID, Owner: owner, Seq: 2,
		Status: types.TaskFinished, Node: owner,
		FinishedNs: 2000, LastTransitionNs: 2000, Retries: 1,
	}}
	if failed := st.ModifyTaskStates(owner, finished, 62); len(failed) != 0 {
		t.Fatalf("fresh delta failed for %v", failed)
	}
	got, _ = st.GetTask(spec.ID)
	if got.Status != types.TaskFinished || got.OwnerSeq != 2 {
		t.Fatalf("fresh delta not applied: status=%v seq=%d", got.Status, got.OwnerSeq)
	}

	// Claim-then-die: a transfer CAS whose ack was lost is recognized by
	// its token and reports won with the originally stamped sequence.
	spec2 := ownSpec(2)
	st.AddTask(types.TaskState{Spec: spec2, Status: types.TaskPending, Owner: owner})
	successor := ownNode(7)
	seq1, won := st.ClaimTaskOp(spec2.ID, []types.TaskStatus{types.TaskPending}, types.TaskQueued, successor, 63)
	if !won {
		t.Fatal("claim lost")
	}
	svc.Kill()
	if err := svc.Restart(); err != nil {
		t.Fatal(err)
	}
	st = svc.Store()
	seq2, won := st.ClaimTaskOp(spec2.ID, []types.TaskStatus{types.TaskPending}, types.TaskQueued, successor, 63)
	if !won || seq2 != seq1 {
		t.Fatalf("claim redelivery: won=%v seq=%d, want won with seq %d", won, seq2, seq1)
	}
	if got, _ := st.GetTask(spec2.ID); got.OwnerSeq != seq1 || got.Owner != successor {
		t.Fatalf("claim double-applied: owner=%v seq=%d", got.Owner, got.OwnerSeq)
	}
}

// TestTaskOwnershipConservationAcrossShardKill races a live task ledger's
// batched flushes against a control-plane shard kill/restart and asserts
// task-state conservation (DESIGN.md §13): every owned task ends in
// exactly one terminal state in the follower table, with flush batches
// genuinely in flight when the shard died — parked batches must redeliver
// under their original tokens until the table converges.
func TestTaskOwnershipConservationAcrossShardKill(t *testing.T) {
	nw := transport.NewInproc(0)
	sup, err := gcs.NewSupervisor(gcs.SupervisorConfig{
		Shards:  3,
		Network: nw,
		MapAddr: "gcs-taskown",
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	client, err := gcs.NewSharded(gcs.ShardedConfig{Network: nw, MapAddr: "gcs-taskown"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	owner := ownNode(8)
	ledger := NewTaskLedger(client)
	ledger.SetNode(owner)
	ledger.Start()

	var ids []types.TaskID
	for i := byte(0); i < 24; i++ {
		spec := ownSpec(0x10 + i)
		if !client.AddTask(types.TaskState{Spec: spec, Status: types.TaskPending, Owner: owner}) {
			t.Fatalf("AddTask %d rejected", i)
		}
		ledger.Adopt(spec.ID, 0, types.TaskPending)
		ids = append(ids, spec.ID)
	}

	// Walk every task through its lifecycle while a shard dies and comes
	// back, so ledger batches are in flight across the kill.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, phase := range []types.TaskStatus{types.TaskQueued, types.TaskRunning, types.TaskFinished} {
			for _, id := range ids {
				select {
				case <-done:
					return
				default:
				}
				ledger.Transition(id, phase, types.WorkerID(id), "")
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	sup.KillShard(1)
	time.Sleep(30 * time.Millisecond)
	if err := sup.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(done)

	// Drain the ledger — parked kill-window batches redeliver under their
	// original tokens — then the follower table must hold every task
	// terminal.
	deadline := time.Now().Add(10 * time.Second)
	for !ledger.Flush() {
		if time.Now().After(deadline) {
			t.Fatal("task ledger did not drain after shard restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	chaostest.New(client).AwaitTaskConservation(t, 10*time.Second, ids)
	for _, id := range ids {
		st, ok := client.GetTask(id)
		if !ok || st.Status != types.TaskFinished {
			t.Fatalf("task %v: status=%v ok=%v, want FINISHED", id, st.Status, ok)
		}
	}
	ledger.Stop()
}
