package lifetime

import (
	"sync"
	"sync/atomic"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

// Manager runs the lifetime subsystem on one node: it owns the node's
// reference Tracker, answers the store's "is this still referenced?"
// queries, and consumes the control plane's GC channel, dropping local
// copies (memory and spill tier) of objects whose cluster-wide count fell
// to zero. Every node runs one; each reclaims only its own copy, so a
// single zero-transition publish empties the whole cluster.
type Manager struct {
	ctrl    gcs.API
	store   *objectstore.Store
	tracker *Tracker

	sub      gcs.Sub
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	reclaimed atomic.Int64
}

// NewManager builds a manager for store; call Start to begin collecting.
func NewManager(ctrl gcs.API, store *objectstore.Store) *Manager {
	return &Manager{
		ctrl:    ctrl,
		store:   store,
		tracker: NewTracker(ctrl),
		stop:    make(chan struct{}),
	}
}

// Tracker returns the node's reference ledger (futures and borrows).
func (m *Manager) Tracker() *Tracker { return m.tracker }

// Reclaimed returns how many local copies the GC loop has dropped.
func (m *Manager) Reclaimed() int64 { return m.reclaimed.Load() }

// Referenced reports whether the object still has live references anywhere
// in the cluster; the store consults it when deciding spill-versus-drop.
// This node's own ledger is checked first — it is the authority for the
// local share of the count and may be ahead of the GCS's flushed view, so
// a locally-held object is referenced no matter what the control plane
// says (and the common case costs no RPC at all). Otherwise unknown
// objects count as unreferenced (nothing can hold a reference to an object
// the control plane has never seen) — but a failed lookup with the control
// plane unreachable (a GCS shard mid-failover) counts as referenced:
// dropping on uncertainty would turn "spill referenced data" into "delete
// referenced data", unrecoverable for lineage-less Put objects. Same
// conservative rule as the spill queue's borrow bridge.
func (m *Manager) Referenced(id types.ObjectID) bool {
	if m.tracker.Held(id) > 0 {
		return true
	}
	info, ok := m.ctrl.GetObject(id)
	if ok {
		return info.RefCount > 0
	}
	if p, canProbe := m.ctrl.(gcs.Pinger); canProbe && !p.Ping() {
		return true
	}
	return false
}

// Start subscribes to the GC channel, switches the tracker to batched
// ledger mode attributed to this node, and launches the collection loop.
func (m *Manager) Start() {
	m.tracker.SetNode(m.store.Node())
	m.tracker.Start()
	m.sub = m.ctrl.SubscribeObjectGC()
	m.wg.Add(1)
	go m.run()
}

// Stop halts collection after a final ledger flush (graceful shutdown).
func (m *Manager) Stop() {
	m.stopOnce.Do(func() {
		m.tracker.Stop()
		close(m.stop)
		if m.sub != nil {
			m.sub.Close()
		}
		m.wg.Wait()
	})
}

// Kill halts the subsystem as a crash would: the tracker's unflushed
// deltas are abandoned, not flushed — the control plane's owner-death
// sweep reconciles whatever this node's ledger had already published.
func (m *Manager) Kill() {
	m.stopOnce.Do(func() {
		m.tracker.Abandon()
		close(m.stop)
		if m.sub != nil {
			m.sub.Close()
		}
		m.wg.Wait()
	})
}

func (m *Manager) run() {
	defer m.wg.Done()
	for {
		select {
		case msg, ok := <-m.sub.C():
			if !ok {
				return
			}
			if len(msg) != types.IDSize {
				continue
			}
			var id types.ObjectID
			copy(id[:], msg)
			m.maybeReclaim(id)
		case <-m.stop:
			return
		}
	}
}

// maybeReclaim drops the local copy of id if it is still garbage. The
// recheck narrows (but cannot close) the race against a concurrent
// re-retain; a wrongly dropped copy degrades to object-lost, which lineage
// reconstruction repairs, so the race costs time, not correctness.
// Delete is also safe against an in-flight spill or restore of the same
// object: the store's per-entry state machine settles the accounting on
// the deleter's side and the in-flight transition finalizes as a no-op
// (waiters of an in-flight restore are still served the bytes — a valid
// "Get before Delete" serialization).
func (m *Manager) maybeReclaim(id types.ObjectID) {
	if m.tracker.Held(id) > 0 && !m.jobReclaimed(id) {
		// The local ledger holds an unflushed reference: the GCS's zero was
		// stale the moment it published. Skip — the eventual release will
		// re-trigger GC.
		return
	}
	info, ok := m.ctrl.GetObject(id)
	if !ok || info.RefCount > 0 {
		return
	}
	if m.store.Delete(id) {
		m.reclaimed.Add(1)
		m.ctrl.LogEvent(types.Event{Kind: "object-reclaimed", Object: id, Node: m.store.Node()})
	}
}

// jobReclaimed reports whether id belongs to a terminated tenant job — in
// which case this node's references to it are void by decree (DESIGN.md
// §14: a job stop destroys the tenant's data wholesale) and are forgotten
// rather than honored, so the reclaim pass can drain the object's copies
// while live drivers still hold its futures. Read-only otherwise: three
// record fetches, paid only on GC events for locally-held objects.
func (m *Manager) jobReclaimed(id types.ObjectID) bool {
	info, ok := m.ctrl.GetObject(id)
	if !ok || info.RefCount != 0 {
		return false
	}
	task, ok := m.ctrl.GetTask(info.Producer)
	if !ok || task.Spec.Job.IsNil() {
		return false
	}
	job, ok := m.ctrl.GetJob(task.Spec.Job)
	if !ok || job.State == types.JobRunning {
		return false
	}
	m.tracker.Forget(id)
	return true
}
