package lifetime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/gcs"
	"repro/internal/transport"
	"repro/internal/types"
)

func ownObj(b byte) types.ObjectID {
	var id types.ObjectID
	id[0] = b
	return id
}

func ownNode(b byte) types.NodeID {
	var id types.NodeID
	id[0] = 0xA0 + b
	return id
}

// TestOwnershipLedgerBatchApplyAndTouch pins the batch-apply semantics the
// tracker's flushes rely on: one token covers the whole batch, a zero
// delta ("touch": a retain+release cycle that netted out within one flush
// interval) still marks the object ever-retained and GC-eligible at zero,
// and redelivering the same token is a no-op for the counts.
func TestOwnershipLedgerBatchApplyAndTouch(t *testing.T) {
	s := gcs.NewStore(2)
	node := ownNode(1)
	a, b, c := ownObj(1), ownObj(2), ownObj(3)
	for _, id := range []types.ObjectID{a, b, c} {
		s.EnsureObject(id, types.NilTaskID)
		s.AddObjectLocation(id, node, 8)
	}

	const op = 41
	batch := map[types.ObjectID]int64{a: 2, b: 1, c: 0}
	if failed := s.ModifyObjectRefCounts(node, batch, op); len(failed) != 0 {
		t.Fatalf("batch apply failed for %v", failed)
	}
	assertCount := func(id types.ObjectID, want int64) {
		t.Helper()
		info, ok := s.GetObject(id)
		if !ok || info.RefCount != want {
			t.Fatalf("object %v count = %d (ok=%v), want %d", id, info.RefCount, ok, want)
		}
	}
	assertCount(a, 2)
	assertCount(b, 1)
	assertCount(c, 0)

	// The touched-at-zero object is garbage, not pinned-forever.
	eligible := map[types.ObjectID]bool{}
	for _, id := range s.GCEligibleObjects() {
		eligible[id] = true
	}
	if !eligible[c] {
		t.Fatal("touch (delta 0) did not make the object GC-eligible at zero")
	}
	if eligible[a] || eligible[b] {
		t.Fatal("positively-counted objects marked GC-eligible")
	}

	// Redelivery under the same token (lost ack) changes nothing.
	if failed := s.ModifyObjectRefCounts(node, batch, op); len(failed) != 0 {
		t.Fatalf("redelivery failed for %v", failed)
	}
	assertCount(a, 2)
	assertCount(b, 1)
	assertCount(c, 0)
}

// TestOwnershipLedgerShardKillRedelivery is the deterministic
// crash-window test: a shard commits a ledger batch, dies before the ack
// reaches the flusher, and recovers from snapshot+WAL. The tracker's
// redelivery under the original token must not double-apply, and the
// subsequent releases must still drive the objects to GC eligibility —
// neither a leaked count nor a stranded object.
func TestOwnershipLedgerShardKillRedelivery(t *testing.T) {
	nw := transport.NewInproc(0)
	svc, err := gcs.StartShard(gcs.ShardConfig{Index: 0, Addr: "shard-own", Network: nw, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	node := ownNode(2)
	a, b := ownObj(4), ownObj(5)
	st := svc.Store()
	for _, id := range []types.ObjectID{a, b} {
		st.EnsureObject(id, types.NilTaskID)
		st.AddObjectLocation(id, node, 8)
	}

	// The batch commits durably; the "crash" lands between commit and ack.
	const op = 97
	batch := map[types.ObjectID]int64{a: 1, b: 2}
	if failed := st.ModifyObjectRefCounts(node, batch, op); len(failed) != 0 {
		t.Fatalf("commit failed for %v", failed)
	}
	svc.Kill()
	if err := svc.Restart(); err != nil {
		t.Fatal(err)
	}
	st = svc.Store()

	// Redeliver the whole batch under the original token, exactly as the
	// flusher's retry queue would.
	if failed := st.ModifyObjectRefCounts(node, batch, op); len(failed) != 0 {
		t.Fatalf("redelivery failed for %v", failed)
	}
	if info, _ := st.GetObject(a); info.RefCount != 1 {
		t.Fatalf("object a double-applied: count %d, want 1", info.RefCount)
	}
	if info, _ := st.GetObject(b); info.RefCount != 2 {
		t.Fatalf("object b double-applied: count %d, want 2", info.RefCount)
	}

	// Releasing everything must reach zero and publish GC — a stranded
	// object here would mean the dedup also swallowed fresh deltas.
	sub := st.SubscribeObjectGC()
	defer sub.Close()
	if failed := st.ModifyObjectRefCounts(node, map[types.ObjectID]int64{a: -1, b: -2}, 98); len(failed) != 0 {
		t.Fatalf("release failed for %v", failed)
	}
	eligible := map[types.ObjectID]bool{}
	for _, id := range st.GCEligibleObjects() {
		eligible[id] = true
	}
	if !eligible[a] || !eligible[b] {
		t.Fatalf("objects stranded after release: eligible=%v", eligible)
	}
}

// TestOwnershipLedgerConservationAcrossShardKill races a live tracker's
// batched flushes against a shard kill/restart and asserts the
// conservation law the whole design hangs on: GCS count + unflushed
// ledger deltas settles to exactly the held references, with deltas in
// flight when the shard died. The checker samples the mid-flight ledger
// (pending plus parked retry batches) every poll.
func TestOwnershipLedgerConservationAcrossShardKill(t *testing.T) {
	nw := transport.NewInproc(0)
	sup, err := gcs.NewSupervisor(gcs.SupervisorConfig{
		Shards:  3,
		Network: nw,
		MapAddr: "gcs-own",
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	client, err := gcs.NewSharded(gcs.ShardedConfig{Network: nw, MapAddr: "gcs-own"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	node := ownNode(3)
	var objs []types.ObjectID
	for i := byte(0); i < 24; i++ {
		id := ownObj(0x10 + i)
		client.EnsureObject(id, types.NilTaskID)
		client.AddObjectLocation(id, node, 8)
		objs = append(objs, id)
	}

	tracker := NewTracker(client)
	tracker.SetNode(node)
	tracker.Start()

	// Churn retains and releases while a shard dies and comes back, so
	// flush batches are genuinely in flight across the kill.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			id := objs[i%len(objs)]
			tracker.Retain(id)
			if i%3 == 0 {
				tracker.Release(id)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	sup.KillShard(1)
	time.Sleep(50 * time.Millisecond)
	if err := sup.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(done)
	wg.Wait()

	chk := chaostest.New(client)
	ledgers := map[string]chaostest.Ledger{"n3": tracker}

	// Conservation must hold with the tracker still live — retry batches
	// from the kill window drain under their original tokens.
	chk.AwaitRefConservation(t, 10*time.Second, ledgers)

	// Release every handle: counts must drain to zero everywhere and the
	// law must still hold through the final flushes.
	tracker.ReleaseAll()
	deadline := time.Now().Add(10 * time.Second)
	for !tracker.Flush() {
		if time.Now().After(deadline) {
			t.Fatal("ledger did not drain after shard restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	chk.AwaitRefConservation(t, 10*time.Second, ledgers)
	chk.AwaitZeroRefcounts(t, 10*time.Second)
	tracker.Stop()
}

// TestOwnershipOwnerDeathSweep: a node that dies with flushed retains but
// unflushed releases leaks its share until the sweep subtracts everything
// attributed to it; objects only the dead node kept alive become
// GC-eligible, and re-running the sweep is a no-op.
func TestOwnershipOwnerDeathSweep(t *testing.T) {
	s := gcs.NewStore(2)
	dead, live := ownNode(4), ownNode(5)
	shared, private := ownObj(0x40), ownObj(0x41)
	for _, id := range []types.ObjectID{shared, private} {
		s.EnsureObject(id, types.NilTaskID)
		s.AddObjectLocation(id, live, 8)
	}
	// The dead node's flushed state: one share on each object; the live
	// node also holds the shared one.
	if failed := s.ModifyObjectRefCounts(dead, map[types.ObjectID]int64{shared: 1, private: 2}, 51); len(failed) != 0 {
		t.Fatalf("dead node flush failed: %v", failed)
	}
	if failed := s.ModifyObjectRefCounts(live, map[types.ObjectID]int64{shared: 1}, 52); len(failed) != 0 {
		t.Fatalf("live node flush failed: %v", failed)
	}

	if n := s.SweepDeadNodeRefs(dead); n < 0 {
		t.Fatalf("sweep incomplete: %d", n)
	}
	if info, _ := s.GetObject(shared); info.RefCount != 1 {
		t.Fatalf("shared object count after sweep = %d, want 1 (live share intact)", info.RefCount)
	}
	if info, _ := s.GetObject(private); info.RefCount != 0 {
		t.Fatalf("private object count after sweep = %d, want 0", info.RefCount)
	}
	eligible := map[types.ObjectID]bool{}
	for _, id := range s.GCEligibleObjects() {
		eligible[id] = true
	}
	if !eligible[private] || eligible[shared] {
		t.Fatalf("sweep GC eligibility wrong: %v", eligible)
	}

	// Idempotent: a second sweep (retry after partial coverage) changes
	// nothing.
	s.SweepDeadNodeRefs(dead)
	if info, _ := s.GetObject(shared); info.RefCount != 1 {
		t.Fatal("repeated sweep ate the live node's share")
	}
}
