package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// checkSpanInvariants asserts the well-formedness every harvested span
// must keep no matter what died mid-flight: identified source node,
// non-empty name/category, a cluster-clock start, and a non-negative
// duration (End after Begin, on one node's monotonic clock).
func checkSpanInvariants(t *testing.T, spans []metrics.SpanRecord) {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == "" || sp.Cat == "" {
			t.Fatalf("span missing name/cat: %+v", sp)
		}
		if sp.Node == "" {
			t.Fatalf("span missing source node: %+v", sp)
		}
		if sp.StartNs <= 0 {
			t.Fatalf("span start %d not on the cluster clock: %+v", sp.StartNs, sp)
		}
		if sp.DurNs < 0 {
			t.Fatalf("span with negative duration: %+v", sp)
		}
	}
}

// TestChaosTraceSpansSurviveNodeKill kills a node mid-workload and checks
// the telemetry plane stays coherent: the survivors' spans keep their
// invariants, the dead node's unshipped spans are dropped (never
// corrupted), and the merged Chrome trace still exports as valid JSON.
func TestChaosTraceSpansSurviveNodeKill(t *testing.T) {
	reg := core.NewRegistry()
	step := core.Register1(reg, "trace.step", func(tc *core.TaskContext, x int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return x + 1, nil
	})
	c, err := New(Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	const chains, depth = 8, 3
	tails := make([]core.Ref[int], chains)
	for i := 0; i < chains; i++ {
		ref, err := step.Remote(d, i*10)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < depth; k++ {
			ref, err = step.RemoteRef(d, ref)
			if err != nil {
				t.Fatal(err)
			}
		}
		tails[i] = ref
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		c.KillNode(2) // dies with spans recorded but not yet heartbeat-shipped
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ref := range tails {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("chain %d: %v", i, err)
		}
		if v != i*10+depth {
			t.Fatalf("chain %d = %d, want %d", i, v, i*10+depth)
		}
	}
	// Let the survivors' next heartbeat ship their remaining spans.
	time.Sleep(100 * time.Millisecond)

	sink, ok := c.API.(gcs.TelemetrySink)
	if !ok {
		t.Fatal("control plane should store telemetry")
	}
	spans := sink.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans harvested despite completed workload")
	}
	checkSpanInvariants(t, spans)
	execs := 0
	for _, sp := range spans {
		if sp.Cat == "exec" {
			execs++
			if sp.Task == "" {
				t.Fatalf("exec span without task: %+v", sp)
			}
			if sp.Trace == 0 {
				t.Fatalf("exec span without trace ID: %+v", sp)
			}
		}
	}
	if execs == 0 {
		t.Fatal("no exec spans harvested")
	}
	var buf bytes.Buffer
	if err := profile.BuildFull(c.API).ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON after node kill: %v", err)
	}
}

// TestChaosTraceSpansSurviveShardKill runs the same check against a
// sharded control plane with a shard crash-restart mid-workload: telemetry
// published into the dead shard's window must either land after failover
// or vanish — never wedge a heartbeat or violate span invariants.
func TestChaosTraceSpansSurviveShardKill(t *testing.T) {
	reg := core.NewRegistry()
	step := core.Register1(reg, "trace.step", func(tc *core.TaskContext, x int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return x * 2, nil
	})
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		GCSShards:      3,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for round := 0; round < 3; round++ {
		if round == 1 {
			c.Super.KillShard(1) // auto-restart brings it back from WAL
		}
		refs := make([]core.Ref[int], 6)
		for i := range refs {
			ref, err := step.Remote(d, i)
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = ref
		}
		for i, ref := range refs {
			v, err := core.Get(ctx, d, ref)
			if err != nil {
				t.Fatalf("round %d task %d: %v", round, i, err)
			}
			if v != i*2 {
				t.Fatalf("round %d task %d = %d, want %d", round, i, v, i*2)
			}
		}
	}
	time.Sleep(150 * time.Millisecond) // post-failover heartbeats republish

	sink, ok := c.API.(gcs.TelemetrySink)
	if !ok {
		t.Fatal("sharded control plane should store telemetry")
	}
	// The killed shard's stored telemetry died with it (ephemeral by
	// design); heartbeats since failover must have repopulated it without
	// tripping any invariant.
	spans := sink.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans stored after shard failover")
	}
	checkSpanInvariants(t, spans)
	for _, snap := range sink.Telemetry() {
		if snap.AtNs <= 0 {
			t.Fatalf("telemetry snapshot without timestamp: node %v", snap.Node)
		}
	}
}
