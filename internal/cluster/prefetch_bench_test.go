package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// BenchmarkDepPrefetch measures experiment E19: end-to-end latency of a
// task whose dependency set lives on a remote node, with and without the
// local scheduler's park-time prefetch. The cluster runs a sharded control
// plane over a network with hop latency, so each resolver's subscription
// attach costs real round trips — exactly the head start prefetch removes
// by issuing every chunked pull the moment the task parks.
func BenchmarkDepPrefetch(b *testing.B) {
	const deps = 8
	cases := []struct {
		name    string
		depSize int
		hop     time.Duration
	}{
		// Latency-dominated: small objects, expensive control round trips.
		{"small-64KiB", 64 << 10, time.Millisecond},
		// Bandwidth-dominated: the transfer itself is the cost.
		{"large-512KiB", 512 << 10, 200 * time.Microsecond},
	}
	for _, tc := range cases {
		for _, disable := range []bool{false, true} {
			name := tc.name + "/prefetch"
			if disable {
				name = tc.name + "/resolver-only"
			}
			depSize := tc.depSize
			hop := tc.hop
			b.Run(name, func(b *testing.B) {
				reg := core.NewRegistry()
				reg.Register("bench.consume", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
					n := 0
					for _, a := range args {
						n += len(a)
					}
					return [][]byte{[]byte(fmt.Sprint(n))}, nil
				})
				c, err := New(Config{
					Nodes:           2,
					NodeResources:   types.CPU(4),
					GCSShards:       2,
					HopLatency:      hop,
					Registry:        reg,
					DisablePrefetch: disable,
					DepPollInterval: 2 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Shutdown()
				producer := c.Driver()    // objects land on node 0
				consumer := c.DriverOn(1) // tasks park on node 1, deps remote
				ctx := context.Background()
				payload := make([]byte, depSize)

				// The interesting window is park→scheduled (dependency
				// resolution: readiness discovery + chunked pulls), which
				// the task table records; wall-clock per iteration is
				// dominated by the Puts that stage each fresh dependency
				// set.
				var parkNs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					args := make([]types.Arg, deps)
					for d := 0; d < deps; d++ {
						ref, err := producer.Put(payload)
						if err != nil {
							b.Fatal(err)
						}
						args[d] = core.RefOf(ref)
					}
					refs, err := consumer.SubmitOpts("bench.consume", args)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := consumer.Get(ctx, refs[0]); err != nil {
						b.Fatal(err)
					}
					if info, ok := c.API.GetObject(refs[0].ID); ok {
						if st, ok := c.API.GetTask(info.Producer); ok && st.ScheduledNs > st.SubmittedNs {
							parkNs += st.ScheduledNs - st.SubmittedNs
						}
					}
				}
				b.ReportMetric(float64(parkNs)/float64(b.N), "park-ns/op")
			})
		}
	}
}
