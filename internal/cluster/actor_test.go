package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/types"
)

// counterFuncs registers a counter actor: init() -> 0, add(state, x) ->
// (state+x, state+x).
func counterFuncs() (*core.Registry, string, string) {
	reg := core.NewRegistry()
	initName := core.RegisterActorInit(reg, "counter.init", func(tc *core.TaskContext) (int, error) {
		return 0, nil
	})
	addName := core.RegisterActorMethod(reg, "counter.add", func(tc *core.TaskContext, state, x int) (int, int, error) {
		next := state + x
		return next, next, nil
	})
	return reg, initName, addName
}

func TestActorSerializesCalls(t *testing.T) {
	reg, initName, addName := counterFuncs()
	c, err := New(Config{Nodes: 1, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	actor, err := core.NewActor(d, initName)
	if err != nil {
		t.Fatal(err)
	}
	var results []core.ObjectRef
	for i := 1; i <= 10; i++ {
		ref, err := actor.Call(addName, core.Val(i))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, ref)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Result i must be the i-th partial sum: proves calls ran in order
	// despite all being submitted up front with no driver-side blocking.
	want := 0
	for i, ref := range results {
		want += i + 1
		raw, err := d.Get(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		v, err := codec.DecodeAs[int](raw)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("call %d result = %d, want %d (out-of-order actor execution)", i+1, v, want)
		}
	}
	// Final state matches too.
	raw, err := d.Get(ctx, actor.StateRef())
	if err != nil {
		t.Fatal(err)
	}
	final, _ := codec.DecodeAs[int](raw)
	if final != 55 {
		t.Fatalf("final state = %d", final)
	}
}

func TestActorSurvivesNodeDeath(t *testing.T) {
	reg, initName, addName := counterFuncs()
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	actor, err := core.NewActor(d, initName)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := actor.Call(addName, core.Val(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Materialize the state, then lose the non-driver node. The state chain
	// must replay from lineage.
	if _, err := d.Get(ctx, actor.StateRef()); err != nil {
		t.Fatal(err)
	}
	c.KillNode(1)
	raw, err := d.Get(ctx, actor.StateRef())
	if err != nil {
		t.Fatalf("actor state not reconstructed: %v", err)
	}
	v, _ := codec.DecodeAs[int](raw)
	if v != 15 {
		t.Fatalf("reconstructed actor state = %d, want 15", v)
	}
}

func TestActorFromWithinTask(t *testing.T) {
	// An actor driven by a task rather than the driver (actors compose with
	// nested tasks, R3).
	reg, initName, addName := counterFuncs()
	driveIt := core.Register1(reg, "drive", func(tc *core.TaskContext, n int) (int, error) {
		actor, err := core.NewActor(tc, initName)
		if err != nil {
			return 0, err
		}
		for i := 1; i <= n; i++ {
			if _, err := actor.Call(addName, core.Val(i)); err != nil {
				return 0, err
			}
		}
		raw, err := tc.Get(actor.StateRef())
		if err != nil {
			return 0, err
		}
		return codec.DecodeAs[int](raw)
	})
	c, err := New(Config{Nodes: 1, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ref, err := driveIt.Remote(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := core.Get(ctx, d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("nested actor sum = %d", v)
	}
}
