package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/lifetime"
	"repro/internal/types"
)

// drainRegistry registers the blob producer the drain suites use: output
// bytes are a deterministic function of (seed, size), so lineage replay
// after a kill reproduces them exactly and every Get can verify content.
func drainRegistry() (*core.Registry, core.Func2[int, int, []byte]) {
	reg := core.NewRegistry()
	blob := core.Register2(reg, "drain.blob", func(tc *core.TaskContext, seed, size int) ([]byte, error) {
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(seed * (i + 1))
		}
		return out, nil
	})
	return reg, blob
}

// produceOn pins n blobs onto the given node via the locality hint and
// waits for them all to be produced (without pulling them to the driver,
// so the victim keeps the sole copies).
func produceOn(t *testing.T, c *Cluster, blob core.Func2[int, int, []byte], node types.NodeID, n, size int) []core.Ref[[]byte] {
	t.Helper()
	d := c.Driver()
	refs := make([]core.Ref[[]byte], n)
	for i := range refs {
		var err error
		refs[i], err = blob.Remote(d, i+1, size, core.WithLocality(node))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range refs {
		waitFor(t, 20*time.Second, "blob production", func() bool {
			info, ok := c.API.GetObject(r.Untyped().ID)
			return ok && info.State == types.ObjectReady
		})
		_ = i
	}
	return refs
}

// verifyBlobs pulls every blob through the driver and checks content.
func verifyBlobs(t *testing.T, c *Cluster, refs []core.Ref[[]byte], size int) {
	t.Helper()
	d := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, r := range refs {
		data, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatalf("blob %d after drain: %v", i, err)
		}
		if len(data) != size || data[0] != byte(i+1) || data[len(data)-1] != byte((i+1)*size) {
			t.Fatalf("blob %d corrupted (len %d)", i, len(data))
		}
	}
}

// TestDrainMigratesAndDeregisters is the graceful end-to-end drain: mark a
// node Draining, and every referenced object it holds spill-migrates to a
// peer (location published before local deletion), the record commits
// Drained, and the node deregisters — with all data still readable and no
// object ever Lost.
func TestDrainMigratesAndDeregisters(t *testing.T) {
	reg, blob := drainRegistry()
	c, err := New(Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	const n, size = 8, 64 << 10
	victim := c.Node(1).ID()
	refs := produceOn(t, c, blob, victim, n, size)

	if !c.DrainNode(1) {
		t.Fatal("drain CAS lost")
	}
	checker := chaostest.New(c.API)
	if state := checker.AwaitDrainSettled(t, 30*time.Second, victim); state != types.NodeDrained {
		t.Fatalf("drain settled in %v, want DRAINED", state)
	}
	// Deregistered: the record goes dead after the Drained commit.
	waitFor(t, 10*time.Second, "drained node deregisters", func() bool {
		info, ok := c.API.GetNode(victim)
		return ok && !info.Alive
	})
	// Every blob migrated: readable, never Lost, and no location on the
	// drained node survives.
	for i, r := range refs {
		info, ok := c.API.GetObject(r.Untyped().ID)
		if !ok || info.State != types.ObjectReady {
			t.Fatalf("blob %d not READY after drain: %+v ok=%v", i, info, ok)
		}
		for _, loc := range info.Locations {
			if loc == victim {
				t.Fatalf("blob %d still has a location on the drained node", i)
			}
		}
	}
	verifyBlobs(t, c, refs, size)
	checker.AwaitReferencedReachable(t, 10*time.Second)

	d := c.Driver()
	for _, r := range refs {
		d.Release(r.Untyped())
	}
	checker.AwaitZeroRefcounts(t, 20*time.Second)
}

// TestDrainReplacesGangAsUnit pins the drain/gang interaction (DESIGN.md
// §10): marking a bundle node Draining rolls the whole placement back and
// re-places it — as a unit — on nodes that are still Active, after which
// member tasks run on the new placement and the drained node completes
// its exit.
func TestDrainReplacesGangAsUnit(t *testing.T) {
	reg, _ := drainRegistry()
	fn := core.Register1(reg, "drain.id", func(tc *core.TaskContext, x int) (int, error) {
		return x, nil
	})
	c, err := New(Config{Nodes: 4, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	pg, err := d.CreatePlacementGroup("drain-gang", types.StrategyStrictSpread,
		[]types.Resources{types.CPU(3), types.CPU(3), types.CPU(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.WaitReady(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	info, _ := c.API.GetPlacementGroup(pg.ID)
	placedOn := map[types.NodeID]bool{}
	for _, n := range info.BundleNodes {
		placedOn[n] = true
	}

	// Drain a bundle-holding node other than the driver's.
	victimIdx := -1
	for i := 1; i < c.NumNodes(); i++ {
		if placedOn[c.Node(i).ID()] {
			victimIdx = i
			break
		}
	}
	if victimIdx < 0 {
		t.Fatal("no drainable bundle node")
	}
	victim := c.Node(victimIdx).ID()
	if !c.DrainNode(victimIdx) {
		t.Fatal("drain CAS lost")
	}

	// The gang re-places as a unit, off the draining node.
	waitFor(t, 15*time.Second, "gang re-placement off the draining node", func() bool {
		cur, ok := c.API.GetPlacementGroup(pg.ID)
		if !ok || cur.State != types.GroupPlaced {
			return false
		}
		for _, n := range cur.BundleNodes {
			if n == victim {
				return false
			}
		}
		return true
	})
	// Members run on the fresh placement.
	for b := 0; b < 3; b++ {
		ref, err := fn.Options(pg.Bundle(b), core.WithResources(types.CPU(1))).Remote(d, b)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := core.Get(ctx, d, ref); err != nil || v != b {
			t.Fatalf("bundle %d member after re-placement: v=%d err=%v", b, v, err)
		}
	}
	// And the drained node finishes its exit cleanly.
	if state := chaostest.New(c.API).AwaitDrainSettled(t, 30*time.Second, victim); state != types.NodeDrained {
		t.Fatalf("bundle node's drain settled in %v, want DRAINED", state)
	}
}

// TestDrainRollsBackWithoutPeers pins the rollback arm of the state
// machine: a drain that cannot migrate (referenced objects, no Active
// peer to take them) rolls the record back to Active instead of stranding
// data or wedging, and the node serves again afterward.
func TestDrainRollsBackWithoutPeers(t *testing.T) {
	reg, blob := drainRegistry()
	c, err := New(Config{Nodes: 1, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	const size = 32 << 10
	refs := produceOn(t, c, blob, c.Node(0).ID(), 4, size)

	if !c.DrainNode(0) {
		t.Fatal("drain CAS lost")
	}
	checker := chaostest.New(c.API)
	if state := checker.AwaitDrainSettled(t, 30*time.Second, c.Node(0).ID()); state != types.NodeActive {
		t.Fatalf("peerless drain settled in %v, want ACTIVE rollback", state)
	}
	// Back in service: admission works and the data never left.
	verifyBlobs(t, c, refs, size)
	more, err := blob.Remote(c.Driver(), 9, size)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if data, err := core.Get(ctx, c.Driver(), more); err != nil || len(data) != size {
		t.Fatalf("post-rollback submission: len=%d err=%v", len(data), err)
	}
}

// TestDrainKillMatrix is the drain chaos suite (DESIGN.md §10): each
// scenario kills a different participant mid-drain — the draining node
// itself, a peer receiving the migrated objects, a control-plane shard —
// and asserts through the shared invariant checker that no referenced
// object is lost (live location or lineage replay) and the drain settles
// (Drained, dead, or rolled back to Active — never wedged).
func TestDrainKillMatrix(t *testing.T) {
	type tc struct {
		name   string
		cfg    func(*Config)
		chaos  func(t *testing.T, c *Cluster, victimIdx int)
		mayDie bool // the draining node itself is killed
	}
	cases := []tc{
		{
			// The draining node dies mid-migration: objects already pushed
			// survive on peers; the rest replay from lineage on Get.
			name: "kill-draining-node-mid-migration",
			chaos: func(t *testing.T, c *Cluster, victimIdx int) {
				time.Sleep(3 * time.Millisecond)
				c.KillNode(victimIdx)
			},
			mayDie: true,
		},
		{
			// A receiving peer dies mid-push: the migrator retries against
			// the remaining peer and the drain still completes.
			name: "kill-receiving-peer-mid-push",
			chaos: func(t *testing.T, c *Cluster, victimIdx int) {
				time.Sleep(3 * time.Millisecond)
				c.KillNode(2) // a migration target (node 0 hosts the driver)
			},
		},
		{
			// A control-plane shard dies mid-drain: location updates, the
			// Drained CAS, and drain-state reads all retry through the
			// supervisor's restarted incarnation.
			name: "kill-gcs-shard-mid-drain",
			cfg: func(cfg *Config) {
				cfg.GCSShards = 3
				cfg.GCSAutoRestart = 15 * time.Millisecond
			},
			chaos: func(t *testing.T, c *Cluster, victimIdx int) {
				time.Sleep(2 * time.Millisecond)
				c.Super.KillShard(0)
			},
		},
	}

	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			reg, blob := drainRegistry()
			cfg := Config{
				Nodes:         3,
				NodeResources: types.CPU(4),
				Registry:      reg,
				// Chunk the transfers so kills land mid-object, not between
				// objects.
				Pull: lifetime.PullConfig{ChunkSize: 32 << 10},
			}
			if tcase.cfg != nil {
				tcase.cfg(&cfg)
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Shutdown()

			const n, size = 8, 256 << 10
			const victimIdx = 1
			victim := c.Node(victimIdx).ID()
			refs := produceOn(t, c, blob, victim, n, size)

			if !c.DrainNode(victimIdx) {
				t.Fatal("drain CAS lost")
			}
			tcase.chaos(t, c, victimIdx)

			checker := chaostest.New(c.API)
			state := checker.AwaitDrainSettled(t, 30*time.Second, victim)
			if !tcase.mayDie && state != types.NodeDrained && state != types.NodeActive {
				t.Fatalf("drain settled in %v, want DRAINED (complete) or ACTIVE (rollback)", state)
			}
			// The acceptance bar: every referenced blob is still readable —
			// migrated copies serve directly, killed sole copies replay
			// from lineage — and content is intact.
			verifyBlobs(t, c, refs, size)
			checker.AwaitReferencedReachable(t, 20*time.Second)

			d := c.Driver()
			for _, r := range refs {
				d.Release(r.Untyped())
			}
			checker.AwaitZeroRefcounts(t, 30*time.Second)
		})
	}
}
