package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// blobRegistry registers "blob": returns a deterministic payload of the
// given size, tagged by seed.
func blobRegistry() (*core.Registry, core.Func2[int, int, []byte]) {
	reg := core.NewRegistry()
	blob := core.Register2(reg, "blob", func(tc *core.TaskContext, seed, size int) ([]byte, error) {
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(seed * (i + 1))
		}
		return out, nil
	})
	return reg, blob
}

// TestSpillCompletesOversizedWorkingSet is the lifetime subsystem's
// acceptance workload: a live working set several times the store's memory
// capacity completes via spill/restore where it previously died with
// ErrStoreFull, and dropping the driver's references reclaims everything.
func TestSpillCompletesOversizedWorkingSet(t *testing.T) {
	reg, blob := blobRegistry()
	const (
		capacity = 64 << 10
		blobSize = 16 << 10
		n        = 16 // 16 * 16 KiB = 4x memory capacity
	)
	c, err := New(Config{
		Nodes:         1,
		Registry:      reg,
		StoreCapacity: capacity,
		SpillDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	refs := make([]core.Ref[[]byte], n)
	for i := range refs {
		refs[i], err = blob.Remote(d, i+1, blobSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Every output is referenced (live working set) and must be readable:
	// the store has to spill, not evict or fail.
	for i, r := range refs {
		data, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatalf("get blob %d: %v", i, err)
		}
		want := byte((i + 1) * blobSize) // last byte of blob i
		if len(data) != blobSize || data[blobSize-1] != want {
			t.Fatalf("blob %d corrupted (len %d)", i, len(data))
		}
	}
	store := c.Node(0).Store()
	if store.Stats().Spills == 0 {
		t.Fatal("working set exceeded memory but nothing spilled")
	}
	if store.Used() > capacity {
		t.Fatalf("memory use %d exceeds capacity %d", store.Used(), capacity)
	}

	// Drop the driver's references: the lifetime GC must reclaim every
	// byte, memory and disk.
	raw := make([]core.ObjectRef, n)
	for i, r := range refs {
		raw[i] = r.Untyped()
	}
	d.Release(raw...)
	deadline := time.After(5 * time.Second)
	for store.Used() != 0 || store.SpilledBytes() != 0 {
		select {
		case <-deadline:
			t.Fatalf("not reclaimed: used=%d spilled=%d", store.Used(), store.SpilledBytes())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if c.Node(0).Lifetime().Reclaimed() == 0 {
		t.Fatal("lifetime manager reclaimed nothing")
	}

	// Reclaimed task outputs are not gone forever: lineage replay
	// regenerates them on demand (spill + reconstruction cooperating).
	data, err := core.Get(ctx, d, refs[0])
	if err != nil {
		t.Fatalf("get after reclaim: %v", err)
	}
	fresh := make([]byte, blobSize)
	for i := range fresh {
		fresh[i] = byte(1 * (i + 1))
	}
	if !bytes.Equal(data, fresh) {
		t.Fatal("reconstructed blob differs from original")
	}
}

// TestBorrowProtectsQueuedArguments pins down the scheduler borrow: a
// dependency whose driver reference is dropped while a consumer task is
// queued must survive until the consumer has run.
func TestBorrowProtectsQueuedArguments(t *testing.T) {
	reg := core.NewRegistry()
	size := core.Register1(reg, "size", func(tc *core.TaskContext, b []byte) (int, error) {
		return len(b), nil
	})
	c, err := New(Config{Nodes: 1, Registry: reg, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	arg, err := d.Put(bytes.Repeat([]byte{7}, 1024))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := size.RemoteRef(d, core.Ref[[]byte]{Ref: arg})
	if err != nil {
		t.Fatal(err)
	}
	// Submit has returned, so the scheduler's borrow is in place; dropping
	// the driver's reference must not reclaim the argument mid-flight.
	d.Release(arg)
	v, err := core.Get(ctx, d, ref)
	if err != nil || v != 1024 {
		t.Fatalf("consumer saw %d, %v", v, err)
	}
	// Once the consumer finished its borrow drops too; the Put object (no
	// lineage) is then reclaimed for good.
	store := c.Node(0).Store()
	deadline := time.After(5 * time.Second)
	for store.Contains(arg.ID) {
		select {
		case <-deadline:
			t.Fatal("argument never reclaimed after borrows drained")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestSpilledTaskArgsSurviveEarlyRelease pins down the spill-queue borrow
// bridge: a task forced through the global spill queue (SpillAlways) must
// keep its driver-Put argument alive even when the driver releases it
// right after submit — a Put object lost in that window is gone for good
// (no lineage), so without the bridge the task would hang.
func TestSpilledTaskArgsSurviveEarlyRelease(t *testing.T) {
	reg := core.NewRegistry()
	size := core.Register1(reg, "size", func(tc *core.TaskContext, b []byte) (int, error) {
		return len(b), nil
	})
	c, err := New(Config{
		Nodes:          1,
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0), // every task through the global queue
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	for i := 0; i < 8; i++ {
		arg, err := d.Put(bytes.Repeat([]byte{9}, 2048))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := size.RemoteRef(d, core.Ref[[]byte]{Ref: arg})
		if err != nil {
			t.Fatal(err)
		}
		d.Release(arg) // the task is still in (or headed for) the spill queue
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("round %d: consumer lost its argument: %v", i, err)
		}
		if v != 2048 {
			t.Fatalf("round %d: got %d", i, v)
		}
	}
}

// TestShutdownSettlesReferences: a graceful node shutdown releases every
// reference its tracker holds, so objects it alone kept alive become
// reclaimable on surviving nodes.
func TestShutdownSettlesReferences(t *testing.T) {
	reg, blob := blobRegistry()
	c, err := New(Config{Nodes: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	// Driver on node 1 creates and reads a blob; only node 1's tracker
	// holds the reference.
	d1 := c.DriverOn(1)
	ref, err := blob.Remote(d1, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Get(ctx, d1, ref); err != nil {
		t.Fatal(err)
	}
	id := ref.Untyped().ID
	// The driver's retain rides a batched ledger flush; await it landing in
	// the control plane's count before testing the shutdown release.
	setup := time.After(2 * time.Second)
	for {
		if info, _ := c.Ctrl.GetObject(id); info.RefCount > 0 {
			break
		}
		select {
		case <-setup:
			t.Fatal("setup: driver's reference never flushed")
		case <-time.After(2 * time.Millisecond):
		}
	}

	c.Node(1).Shutdown()
	deadline := time.After(5 * time.Second)
	for {
		info, _ := c.Ctrl.GetObject(id)
		if info.RefCount == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("refcount still %d after graceful shutdown", info.RefCount)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestChunkedPullAcrossClusterNodes exercises the chunked pull protocol in
// a full cluster: a large object produced on one node is consumed on
// another, transferring as parallel chunks.
func TestChunkedPullAcrossClusterNodes(t *testing.T) {
	reg, blob := blobRegistry()
	c, err := New(Config{
		Nodes: 2,
		PerNodeResources: []types.Resources{
			types.CPU(4),
			{types.ResCPU: 4, types.ResGPU: 1},
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver() // attached to node 0
	ctx := context.Background()

	// Force production onto node 1 via the GPU demand, then Get from node 0.
	ref, err := blob.Remote(d, 3, 1<<20, core.WithResources(types.Resources{types.ResCPU: 1, types.ResGPU: 1}))
	if err != nil {
		t.Fatal(err)
	}
	data, err := core.Get(ctx, d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1<<20 || data[0] != 3 {
		t.Fatalf("pulled blob corrupted (len %d)", len(data))
	}
	if _, chunks, _ := c.Node(0).Puller().Stats(); chunks < 2 {
		t.Fatalf("large pull used %d chunks; chunking not engaged", chunks)
	}
}
