package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// BenchmarkDrainLatency measures experiment E21a: wall time of one full
// drain — the Active→Draining CAS through backlog hand-off, quiesce,
// spill-migration of the whole working set over the chunked pull path, and
// the Draining→Drained commit — as a function of the resident working-set
// size on the draining node.
func BenchmarkDrainLatency(b *testing.B) {
	cases := []struct {
		objects int
		size    int
	}{
		{16, 256 << 10}, // 4 MiB
		{64, 256 << 10}, // 16 MiB
		{64, 1 << 20},   // 64 MiB
	}
	for _, tc := range cases {
		name := fmt.Sprintf("set-%dMiB", tc.objects*tc.size>>20)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reg := core.NewRegistry()
				blob := core.Register2(reg, "drain.blob", func(tc *core.TaskContext, seed, size int) ([]byte, error) {
					return make([]byte, size), nil
				})
				c, err := New(Config{Nodes: 3, NodeResources: types.CPU(4), Registry: reg})
				if err != nil {
					b.Fatal(err)
				}
				victim := c.Node(1).ID()
				d := c.Driver()
				refs := make([]core.Ref[[]byte], tc.objects)
				for j := range refs {
					refs[j], err = blob.Remote(d, j+1, tc.size, core.WithLocality(victim))
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, r := range refs {
					deadline := time.Now().Add(30 * time.Second)
					for {
						if info, ok := c.API.GetObject(r.Untyped().ID); ok && info.State == types.ObjectReady {
							break
						}
						if time.Now().After(deadline) {
							b.Fatal("production timed out")
						}
						time.Sleep(2 * time.Millisecond)
					}
				}
				b.StartTimer()

				if !c.DrainNode(1) {
					b.Fatal("drain CAS lost")
				}
				deadline := time.Now().Add(60 * time.Second)
				for {
					info, ok := c.API.GetNode(victim)
					if ok && info.State == types.NodeDrained {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("drain timed out (state %v)", info.State)
					}
					time.Sleep(time.Millisecond)
				}

				b.StopTimer()
				c.Shutdown()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkScaleUpReaction measures experiment E21b: time from the first
// submission of a burst until the autoscaler has provisioned a new node,
// on a 2-node cluster whose heartbeats carry the backlog signal.
func BenchmarkScaleUpReaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		reg := core.NewRegistry()
		work := core.Register1(reg, "as.sleep", func(tc *core.TaskContext, ms int) (int, error) {
			time.Sleep(time.Duration(ms) * time.Millisecond)
			return ms, nil
		})
		c, err := New(Config{
			Nodes:          2,
			NodeResources:  types.CPU(2),
			Registry:       reg,
			SpillThreshold: SpillThresholdOf(0),
			GlobalPolicy:   &scheduler.RoundRobinPolicy{},
		})
		if err != nil {
			b.Fatal(err)
		}
		driverNode := c.Node(0).ID()
		as := autoscale.New(autoscale.Config{
			Ctrl:        c.API,
			Provisioner: c,
			Interval:    10 * time.Millisecond,
			Policy: autoscale.Policy{
				MinNodes:       2,
				MaxNodes:       3,
				ScaleUpBacklog: 3,
				Protected:      func(id types.NodeID) bool { return id == driverNode },
			},
		})
		as.Start()
		d := c.Driver()
		b.StartTimer()

		for j := 0; j < 32; j++ {
			if _, err := work.Remote(d, 20); err != nil {
				b.Fatal(err)
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for c.NumNodes() < 3 {
			if time.Now().After(deadline) {
				b.Fatal("scale-up timed out")
			}
			time.Sleep(time.Millisecond)
		}

		b.StopTimer()
		as.Stop()
		c.Shutdown()
		b.StartTimer()
	}
}
