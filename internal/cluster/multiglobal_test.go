package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// TestMultipleGlobalSchedulers exercises the architecture's "one or more
// global schedulers throughout the cluster" (Section 3.2): with several
// Global instances subscribed to the spill channel, every task is placed by
// every scheduler (the channel fans out), and deterministic task IDs plus
// exactly-once task-table insertion make the duplicate placements converge
// to a single execution per task.
func TestMultipleGlobalSchedulers(t *testing.T) {
	reg := core.NewRegistry()
	bump := core.Register1(reg, "bump", func(tc *core.TaskContext, x int) (int, error) {
		return x + 1, nil
	})
	c, err := New(Config{
		Nodes:            3,
		NodeResources:    types.CPU(2),
		Registry:         reg,
		SpillThreshold:   SpillThresholdOf(0), // everything goes global
		GlobalSchedulers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if len(c.Globals) != 3 {
		t.Fatalf("globals = %d", len(c.Globals))
	}
	d := c.Driver()
	var refs []core.Ref[int]
	for i := 0; i < 30; i++ {
		ref, err := bump.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatal(err)
		}
		if v != i+1 {
			t.Fatalf("bump(%d) = %d", i, v)
		}
	}
	// Every scheduler instance participated.
	for i, g := range c.Globals {
		if g.Placed() == 0 {
			t.Fatalf("global scheduler %d never placed a task", i)
		}
	}
	// Convergence: despite 3x placements, each task executed effectively
	// once — executions across nodes must not exceed submissions by more
	// than the benign CAS-race allowance (duplicate executions are safe but
	// should be rare).
	var executed int64
	for i := 0; i < c.NumNodes(); i++ {
		executed += c.Node(i).Executor().Executed()
	}
	if executed < 30 {
		t.Fatalf("only %d executions for 30 tasks", executed)
	}
	if executed > 40 {
		t.Fatalf("%d executions for 30 tasks — dedupe not working", executed)
	}
}
