// Package cluster bootstraps complete clusters: N nodes, a sharded control
// plane, one or more global schedulers, and a driver client — the whole of
// the paper's Figure 3 in one call. The default mode is in-process (nodes
// as goroutine collections, network with injected hop latency), which is
// what the test suite and benchmark harness use; cmd/raynode assembles the
// same pieces across OS processes over TCP.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/lifetime"
	"repro/internal/node"
	"repro/internal/scheduler"
	"repro/internal/transport"
	"repro/internal/types"
)

// Config describes an in-process cluster.
type Config struct {
	// Nodes is the node count (default 1).
	Nodes int
	// NodeResources is each node's capacity (default {CPU:8}).
	NodeResources types.Resources
	// PerNodeResources overrides NodeResources per index when non-nil
	// (heterogeneous clusters, R4).
	PerNodeResources []types.Resources
	// Shards is the control-plane shard count (default 8). With GCSShards
	// unset this is the single in-process store's internal kv striping;
	// with GCSShards set it is each shard service's internal striping.
	Shards int
	// GCSShards, when positive, runs the control plane as that many
	// independently-failing shard services with per-shard WAL/snapshot
	// durability, supervised for restart, and routes every component
	// through versioned client-side shard maps. Zero keeps the single
	// in-process store (the pre-sharding deployment).
	GCSShards int
	// GCSDataDir holds each control-plane shard's snapshot and WAL when
	// GCSShards is set. Empty means a cluster-owned temp dir, removed at
	// Shutdown — kill/restart within one cluster still recovers from it.
	GCSDataDir string
	// GCSAutoRestart is the supervisor's restart-check interval for dead
	// control-plane shards. Zero selects 20ms when sharded; negative
	// disables auto-restart (tests drive KillShard/RestartShard manually).
	GCSAutoRestart time.Duration
	// GCSCheckpointWALBytes, when positive, makes the supervisor checkpoint
	// any shard whose WAL grows past this many bytes (bounded recovery
	// replay). Zero disables size-triggered checkpoints.
	GCSCheckpointWALBytes int64
	// HopLatency is the one-way network delay between nodes (default 0).
	HopLatency time.Duration
	// SpillThreshold is each local scheduler's backlog bound before
	// spilling to the global scheduler. Default: SpillNever for single-node
	// clusters, 2x the node's CPU count otherwise.
	SpillThreshold *int
	// StoreCapacity bounds each node's object store; 0 = unlimited.
	StoreCapacity int64
	// SpillDir, when set, enables each node's disk spill tier; node i
	// spills into SpillDir/node-i. Empty disables spilling.
	SpillDir string
	// SpillBudget bounds each node's spill tier bytes on disk; 0 =
	// unlimited (see node.Config.SpillBudget).
	SpillBudget int64
	// Pull tunes the chunked pull protocol (zero value = defaults).
	Pull lifetime.PullConfig
	// GlobalPolicy selects the placement policy (default locality-aware).
	GlobalPolicy scheduler.Policy
	// GlobalSchedulers is how many global scheduler instances run
	// (default 1; the architecture allows "one or more").
	GlobalSchedulers int
	// Registry holds the remote functions every node's workers can run.
	Registry *core.Registry
	// HeartbeatInterval for node load reports (default 20ms).
	HeartbeatInterval time.Duration
	// DepPollInterval for local schedulers (default from scheduler pkg).
	DepPollInterval time.Duration
	// DisableEventLog turns off control-plane event logging (E13 measures
	// the difference).
	DisableEventLog bool
	// DisablePrefetch turns off park-time dependency prefetch in every
	// local scheduler (the before arm of experiment E19).
	DisablePrefetch bool
	// InlineDispatch enables every local scheduler's inline (trampoline)
	// fast path for eligible tiny tasks (DESIGN.md §15).
	InlineDispatch bool
	// JobGrace is how long a Stopped job's task and object records survive
	// before the purge pass tombstones them (DESIGN.md §14). Zero selects
	// the scheduler default; negative disables purging.
	JobGrace time.Duration
}

// Cluster is a running in-process cluster.
type Cluster struct {
	// Ctrl is the single in-process control plane; nil when the cluster
	// runs a sharded control plane (use API instead).
	Ctrl *gcs.Store
	// API is the control-plane surface for inspection and tests: Ctrl in
	// single-store mode, a dedicated sharded client otherwise.
	API gcs.API
	// Super supervises the sharded control plane; nil in single-store mode.
	Super   *gcs.Supervisor
	Network *transport.Inproc
	Globals []*scheduler.Global

	cfg          Config
	nodes        []*node.Node
	shardClients []*gcs.Sharded
	gcsTmpDir    string

	mu      sync.Mutex
	clients map[string]transport.Client
	// addMu serializes AddNode calls against each other and against
	// Shutdown (index assignment spans node boot; a node booted after
	// Shutdown's snapshot would leak un-stopped).
	addMu  sync.Mutex
	closed bool // guarded by addMu
}

// New boots a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.NodeResources == nil {
		cfg.NodeResources = types.CPU(8)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: Registry is required")
	}
	if cfg.GlobalSchedulers <= 0 {
		cfg.GlobalSchedulers = 1
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 20 * time.Millisecond
	}

	c := &Cluster{
		cfg:     cfg,
		Network: transport.NewInproc(cfg.HopLatency),
		clients: make(map[string]transport.Client),
	}
	if cfg.GCSShards > 0 {
		if err := c.startShardedGCS(cfg); err != nil {
			return nil, err
		}
	} else {
		c.Ctrl = gcs.NewStore(cfg.Shards)
		c.Ctrl.SetEventLogging(!cfg.DisableEventLog)
		c.API = c.Ctrl
	}

	for i := 0; i < cfg.Nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			c.Shutdown()
			return nil, err
		}
	}

	for i := 0; i < cfg.GlobalSchedulers; i++ {
		ctrl, err := c.ctrlClient()
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		g := scheduler.NewGlobal(scheduler.GlobalConfig{
			Ctrl:         ctrl,
			Policy:       cfg.GlobalPolicy,
			Assign:       c.assign,
			Reserve:      c.reserve,
			ReleaseGroup: c.releaseGroup,
			FailTask:     c.failTask,
			JobGrace:     cfg.JobGrace,
		})
		g.Start()
		c.Globals = append(c.Globals, g)
	}
	return c, nil
}

// AddNode boots one more node into the running cluster (the elasticity
// primitive the gang tests and the future autoscaler drive). Per-index
// configuration (PerNodeResources, spill subdirectory) follows the node's
// position in join order; calls are serialized so concurrent adds cannot
// claim the same index (and with it the same listen address and spill
// subdirectory).
func (c *Cluster) AddNode() (*node.Node, error) {
	c.addMu.Lock()
	defer c.addMu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: shut down")
	}
	cfg := c.cfg
	c.mu.Lock()
	i := len(c.nodes)
	c.mu.Unlock()
	res := cfg.NodeResources
	if cfg.PerNodeResources != nil && i < len(cfg.PerNodeResources) && cfg.PerNodeResources[i] != nil {
		res = cfg.PerNodeResources[i]
	}
	spill := spillDefault(cfg, res)
	spillDir := ""
	if cfg.SpillDir != "" {
		spillDir = filepath.Join(cfg.SpillDir, fmt.Sprintf("node-%d", i))
	}
	ctrl, err := c.ctrlClient()
	if err != nil {
		return nil, err
	}
	n, err := node.New(node.Config{
		Resources:         res.Clone(),
		StoreCapacity:     cfg.StoreCapacity,
		SpillDir:          spillDir,
		SpillBudget:       cfg.SpillBudget,
		Pull:              cfg.Pull,
		SpillThreshold:    spill,
		Network:           c.Network,
		ListenAddr:        fmt.Sprintf("node-%d", i),
		Ctrl:              ctrl,
		Registry:          cfg.Registry,
		HeartbeatInterval: cfg.HeartbeatInterval,
		DepPollInterval:   cfg.DepPollInterval,
		DisablePrefetch:   cfg.DisablePrefetch,
		InlineDispatch:    cfg.InlineDispatch,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nodes = append(c.nodes, n)
	c.mu.Unlock()
	return n, nil
}

// ProvisionNode implements autoscale.NodeProvisioner: the autoscaler's
// scale-up boots one more in-process node through the same AddNode path
// the gang tests drive.
func (c *Cluster) ProvisionNode() error {
	_, err := c.AddNode()
	return err
}

// DrainNode marks node i Draining through the control plane (the same CAS
// the autoscaler's scale-down issues); the node notices and runs the drain
// protocol itself. Reports whether this call won the transition.
func (c *Cluster) DrainNode(i int) bool {
	return c.API.CASNodeState(c.Node(i).ID(), []types.NodeState{types.NodeActive}, types.NodeDraining)
}

// GCSMapAddr is where an in-process cluster's supervisor serves the shard
// map (sharded mode only).
const GCSMapAddr = "gcs"

// startShardedGCS boots the supervised shard services and the cluster's
// inspection client.
func (c *Cluster) startShardedGCS(cfg Config) error {
	dataDir := cfg.GCSDataDir
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "gcs-shards-*")
		if err != nil {
			return err
		}
		c.gcsTmpDir = dir
		dataDir = dir
	}
	auto := cfg.GCSAutoRestart
	if auto == 0 {
		auto = 20 * time.Millisecond
	} else if auto < 0 {
		auto = 0
	}
	sup, err := gcs.NewSupervisor(gcs.SupervisorConfig{
		Shards:             cfg.GCSShards,
		Network:            c.Network,
		MapAddr:            GCSMapAddr,
		DataDir:            dataDir,
		SubShards:          cfg.Shards,
		AutoRestart:        auto,
		CheckpointWALBytes: cfg.GCSCheckpointWALBytes,
		DisableEventLog:    cfg.DisableEventLog,
	})
	if err != nil {
		c.removeGCSTmp()
		return err
	}
	c.Super = sup
	api, err := c.ctrlClient()
	if err != nil {
		c.Shutdown()
		return err
	}
	c.API = api
	return nil
}

// ctrlClient returns the control-plane handle for one component: the
// shared in-process store in single-store mode, or a fresh sharded client
// — each component keeps its own connections, shard-map view, and
// resubscription loops, exactly as a separate OS process would.
func (c *Cluster) ctrlClient() (gcs.API, error) {
	if c.Super == nil {
		return c.Ctrl, nil
	}
	cl, err := gcs.NewSharded(gcs.ShardedConfig{Network: c.Network, MapAddr: GCSMapAddr})
	if err != nil {
		return nil, err
	}
	c.shardClients = append(c.shardClients, cl)
	return cl, nil
}

func (c *Cluster) removeGCSTmp() {
	if c.gcsTmpDir != "" {
		os.RemoveAll(c.gcsTmpDir)
		c.gcsTmpDir = ""
	}
}

func spillDefault(cfg Config, res types.Resources) int {
	if cfg.SpillThreshold != nil {
		return *cfg.SpillThreshold
	}
	if cfg.Nodes == 1 {
		return scheduler.SpillNever
	}
	return int(2 * res[types.ResCPU])
}

// SpillThresholdOf is a convenience for building Config.SpillThreshold.
func SpillThresholdOf(v int) *int { return &v }

// rpc delivers one scheduler RPC to a node over the cluster network.
func (c *Cluster) rpc(addr, method string, req any) error {
	client, err := c.client(addr)
	if err != nil {
		return err
	}
	_, err = client.Call(method, codec.MustEncode(req))
	return err
}

// assign delivers a global placement over the cluster network.
func (c *Cluster) assign(nid types.NodeID, addr string, spec types.TaskSpec) error {
	return c.rpc(addr, node.AssignMethod, spec)
}

// reserve delivers a gang bundle reservation over the cluster network.
func (c *Cluster) reserve(nid types.NodeID, addr string, group types.PlacementGroupID, bundle int, res types.Resources) error {
	return c.rpc(addr, node.ReserveMethod, node.ReserveReq{Group: group, Bundle: bundle, Res: res})
}

// releaseGroup delivers a gang reservation release over the network.
func (c *Cluster) releaseGroup(nid types.NodeID, addr string, group types.PlacementGroupID, removed bool) error {
	return c.rpc(addr, node.GroupReleaseMethod, node.GroupReleaseReq{Group: group, Removed: removed})
}

// failTask asks a node to bury a task with a terminal error.
func (c *Cluster) failTask(nid types.NodeID, addr string, spec types.TaskSpec, reason string) error {
	return c.rpc(addr, node.FailTaskMethod, node.FailTaskReq{Spec: spec, Reason: reason})
}

func (c *Cluster) client(addr string) (transport.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[addr]; ok {
		return cl, nil
	}
	cl, err := c.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.clients[addr] = cl
	return cl, nil
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *node.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Driver returns a fresh driver client attached to node 0.
func (c *Cluster) Driver() *core.Client { return core.NewClient(c.Node(0)) }

// DriverOn returns a driver attached to node i.
func (c *Cluster) DriverOn(i int) *core.Client { return core.NewClient(c.Node(i)) }

// KillNode crash-fails node i (fault injection, R6). The control plane
// learns immediately, as if a monitor had detected the missed heartbeats.
func (c *Cluster) KillNode(i int) {
	n := c.Node(i)
	n.Kill()
	c.dropClientFor(n.Addr())
}

func (c *Cluster) dropClientFor(addr string) {
	c.mu.Lock()
	if cl, ok := c.clients[addr]; ok {
		cl.Close()
		delete(c.clients, addr)
	}
	c.mu.Unlock()
}

// Shutdown stops every component.
func (c *Cluster) Shutdown() {
	c.addMu.Lock()
	c.closed = true // fence AddNode: no node may boot past this point
	c.addMu.Unlock()
	for _, g := range c.Globals {
		g.Stop()
	}
	c.mu.Lock()
	nodes := append([]*node.Node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		n.Shutdown()
	}
	c.mu.Lock()
	for addr, cl := range c.clients {
		cl.Close()
		delete(c.clients, addr)
	}
	c.mu.Unlock()
	for _, cl := range c.shardClients {
		cl.Close()
	}
	c.shardClients = nil
	if c.Super != nil {
		c.Super.Close()
	}
	c.removeGCSTmp()
}
