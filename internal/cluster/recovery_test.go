package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/kv"
	"repro/internal/node"
	"repro/internal/scheduler"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestControlPlaneFailover exercises the paper's Section 3.2.1 claim end to
// end: all durable state lives in the database, so after a control-plane
// crash the cluster recovers by restoring the database and restarting the
// stateless components — and lineage survives, so even objects lost along
// with the old nodes are reconstructed under the new incarnation.
func TestControlPlaneFailover(t *testing.T) {
	reg := core.NewRegistry()
	square := core.Register1(reg, "sq", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})

	// Incarnation 1: run a workload.
	c1, err := New(Config{Nodes: 2, NodeResources: types.CPU(2), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	d1 := c1.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var refs []core.Ref[int]
	for i := 0; i < 6; i++ {
		r, err := square.Remote(d1, i)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	raw := make([]core.ObjectRef, len(refs))
	for i, r := range refs {
		raw[i] = r.Untyped()
	}
	if _, _, err := d1.Wait(ctx, raw, len(raw), 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Snapshot the control database, then crash everything: nodes die with
	// their object stores, the control plane process is gone.
	var snap bytes.Buffer
	if err := c1.Ctrl.DB().Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	c1.Shutdown()

	// Incarnation 2: restore the database, wrap it as a control plane, and
	// start fresh stateless components against it.
	db, err := kv.Restore(&snap)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := gcs.RecoverStore(db)
	ctrl.ResetAfterRecovery() // the old incarnation's nodes are gone
	if got := len(ctrl.Tasks()); got != 6 {
		t.Fatalf("recovered task table has %d entries", got)
	}

	nw := transport.NewInproc(0)
	n, err := node.New(node.Config{
		Resources:      types.CPU(4),
		Network:        nw,
		ListenAddr:     "recovered-node",
		Ctrl:           ctrl,
		Registry:       reg,
		SpillThreshold: scheduler.SpillNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	// The old objects' only copies died with the old nodes; Gets against
	// the recovered control plane must replay lineage on the new node.
	d2 := core.NewClient(n)
	for i, r := range refs {
		data, err := d2.Get(ctx, r.Untyped())
		if err != nil {
			t.Fatalf("get %d after control-plane failover: %v", i, err)
		}
		v, err := codec.DecodeAs[int](data)
		if err != nil {
			t.Fatal(err)
		}
		if v != i*i {
			t.Fatalf("value %d = %d, want %d", i, v, i*i)
		}
	}
}
