package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// TestOwnerTransferOwnerKillMidBurst kills a node mid-burst while it owns
// live task tenures (tasks it claimed via spill placement) and asserts the
// owner-death transfer protocol end to end (DESIGN.md §13): the global
// scheduler reads the dead owner's live tasks from the follower table,
// releases each tenure back into the PENDING pool — bumping the fence so
// straggler deltas from the dead ledger are consumed — and re-places them.
// Every result must come back correct, and the task table must conserve
// task state: each submitted task ends in exactly one terminal record.
func TestOwnerTransferOwnerKillMidBurst(t *testing.T) {
	reg := core.NewRegistry()
	step := core.Register1(reg, "own.step", func(tc *core.TaskContext, x int) (int, error) {
		time.Sleep(2 * time.Millisecond) // long enough for the kill to land mid-tenure
		return x + 7, nil
	})
	c, err := New(Config{
		Nodes:          4,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{}, // spread tenures onto the victim
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	const tasks = 24
	refs := make([]core.Ref[int], tasks)
	ids := make([]types.TaskID, tasks)
	for i := 0; i < tasks; i++ {
		ref, err := step.Remote(d, i*10)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
		ids[i] = ref.Untyped().Task
		if ids[i].IsNil() {
			t.Fatalf("submit %d returned a ref with no task identity", i)
		}
	}

	// Kill a non-driver node while the burst executes: tasks it claimed die
	// with their owner's ledger and must be re-owned by successors.
	go func() {
		time.Sleep(4 * time.Millisecond)
		c.KillNode(2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ref := range refs {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("task %d after owner kill: %v", i, err)
		}
		if want := i*10 + 7; v != want {
			t.Fatalf("task %d = %d, want %d", i, v, want)
		}
	}

	// Task-state conservation: every submitted task reaches exactly one
	// terminal record in the follower table — none stranded mid-tenure on
	// the dead owner, none forgotten by the transfer.
	chaostest.New(c.Ctrl).AwaitTaskConservation(t, 20*time.Second, ids)
}

// TestOwnerTransferCommitThenDie drives the narrower commit-then-die
// window at cluster scope: the owner's ledger flushes a terminal FINISHED
// delta for a task (commit), then the owner dies. The transfer pass must
// NOT resurrect the finished task — its CAS only releases live tenures —
// and conservation must still hold for everything the dead node owned.
func TestOwnerTransferCommitThenDie(t *testing.T) {
	reg := core.NewRegistry()
	quick := core.Register1(reg, "own.quick", func(tc *core.TaskContext, x int) (int, error) {
		return x * 3, nil
	})
	c, err := New(Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	const tasks = 12
	refs := make([]core.Ref[int], tasks)
	ids := make([]types.TaskID, tasks)
	for i := 0; i < tasks; i++ {
		ref, err := quick.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
		ids[i] = ref.Untyped().Task
	}

	// Let the burst finish and the owners' FINISHED deltas flush, then
	// kill a node that owned some of the (already terminal) tenures.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	raw := make([]core.ObjectRef, tasks)
	for i, r := range refs {
		raw[i] = r.Untyped()
	}
	if _, _, err := d.Wait(ctx, raw, tasks, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Pull every result BEFORE the kill: a Get afterwards could trigger
	// lineage reconstruction of objects lost with the node, which
	// legitimately re-runs tasks — not the window under test.
	for i, ref := range refs {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("task %d before kill: %v", i, err)
		}
		if v != i*3 {
			t.Fatalf("task %d = %d, want %d", i, v, i*3)
		}
	}
	chaostest.New(c.Ctrl).AwaitTaskConservation(t, 20*time.Second, ids)
	before := map[types.TaskID]int64{}
	for _, ts := range c.Ctrl.Tasks() {
		before[ts.Spec.ID] = ts.FinishedNs
	}
	c.KillNode(1)

	// Wait for the death verdict, so the membership event (and with it the
	// transfer pass) has fired before the no-resurrection check.
	victim := c.Node(1).ID()
	deadline := time.Now().Add(20 * time.Second)
	for {
		info, ok := c.Ctrl.GetNode(victim)
		if ok && !info.Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never marked dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // let the transfer pass complete

	// Finished records must keep their terminal state and timestamps — the
	// transfer's CAS only releases live tenures, never terminal ones.
	chaostest.New(c.Ctrl).AwaitTaskConservation(t, 20*time.Second, ids)
	for _, ts := range c.Ctrl.Tasks() {
		if fin, ok := before[ts.Spec.ID]; ok && ts.FinishedNs != fin {
			t.Fatalf("task %v resurrected by the owner-death transfer: finish %d -> %d",
				ts.Spec.ID, fin, ts.FinishedNs)
		}
	}
}
