package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// jobRegistry registers the toy functions the multi-tenant tests drive.
func jobRegistry() (*core.Registry, core.Func1[int, int], core.Func1[int, int]) {
	reg := core.NewRegistry()
	id := core.Register1(reg, "job.id", func(tc *core.TaskContext, x int) (int, error) {
		return x, nil
	})
	sleep := core.Register1(reg, "job.sleep", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	return reg, id, sleep
}

// TestJobLifecycle is the acceptance test for the tenant job subsystem
// (DESIGN.md §14): create → submit under the job → stop → typed fencing →
// bulk reclaim → tombstoned records after the grace period.
func TestJobLifecycle(t *testing.T) {
	reg, id, sleep := jobRegistry()
	c, err := New(Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg,
		JobGrace: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	job, err := d.CreateJob("tenant-a", 2, types.JobQuota{})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := d.GetJob(job.ID)
	if !ok || info.State != types.JobRunning || info.Spec.Weight != 2 {
		t.Fatalf("job record after create: %+v ok=%v", info, ok)
	}

	// Tenanted tasks run normally and their records carry the job ID.
	refs := make([]core.Ref[int], 3)
	for i := range refs {
		if refs[i], err = id.Options(job.Option()).Remote(d, i); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range refs {
		if v, err := core.Get(ctx, d, r); err != nil || v != i {
			t.Fatalf("tenant task %d: v=%d err=%v", i, v, err)
		}
	}
	if tasks, complete := c.API.JobTasks(job.ID); !complete || len(tasks) != 3 {
		t.Fatalf("JobTasks: %d records complete=%v, want 3", len(tasks), complete)
	}

	// Submitting under an unknown job fails fast and typed.
	var bogus types.JobID
	bogus[0] = 0xAB
	if _, err := id.Options(core.WithJob(bogus)).Remote(d, 1); !errors.Is(err, core.ErrJobNotFound) {
		t.Fatalf("unknown job submit: %v, want ErrJobNotFound", err)
	}

	// Hold live tasks in flight, then stop the job under them.
	inflight := make([]core.Ref[int], 4)
	for i := range inflight {
		if inflight[i], err = sleep.Options(job.Option()).Remote(d, 5000); err != nil {
			t.Fatal(err)
		}
	}
	if err := job.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := job.Stop(); err != nil {
		t.Fatalf("StopJob must be idempotent: %v", err)
	}

	// New submissions are fenced (the admission cache refreshes within its
	// TTL, so the typed error surfaces after at most ~100ms).
	waitFor(t, 2*time.Second, "submission fence", func() bool {
		_, err := id.Options(job.Option()).Remote(d, 9)
		return errors.Is(err, core.ErrJobTerminated)
	})

	// The reclaim pass buries the in-flight tasks; blocked Gets observe a
	// typed job-stop error rather than hanging out the full sleep.
	for i, r := range inflight {
		got := make(chan error, 1)
		go func() { _, err := core.Get(ctx, d, r); got <- err }()
		select {
		case err := <-got:
			if err != nil && !errors.Is(err, core.ErrJobTerminated) {
				t.Fatalf("in-flight task %d after stop: %v", i, err)
			}
		case <-time.After(4 * time.Second):
			t.Fatalf("Get of in-flight task %d hung past reclaim", i)
		}
	}

	// The job commits Stopped, and after the grace period its task records
	// tombstone while the Stopped record itself survives as the fence.
	waitFor(t, 5*time.Second, "job stopped", func() bool {
		info, ok := d.GetJob(job.ID)
		return ok && info.State == types.JobStopped
	})
	waitFor(t, 5*time.Second, "records purged", func() bool {
		info, ok := d.GetJob(job.ID)
		if !ok || info.PurgedNs == 0 {
			return false
		}
		tasks, complete := c.API.JobTasks(job.ID)
		return complete && len(tasks) == 0
	})
	if _, err := id.Options(job.Option()).Remote(d, 1); !errors.Is(err, core.ErrJobTerminated) {
		t.Fatalf("submit against tombstone: %v, want ErrJobTerminated", err)
	}
}

// TestJobQuotaAdmission drives the fail-fast quota ceiling: with
// MaxLiveTasks=2, the third concurrent submission is refused with
// ErrJobQuota before any control-plane record is written.
func TestJobQuotaAdmission(t *testing.T) {
	reg, id, sleep := jobRegistry()
	c, err := New(Config{Nodes: 1, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	job, err := d.CreateJob("capped", 1, types.JobQuota{MaxLiveTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sleep.Options(job.Option()).Remote(d, 400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sleep.Options(job.Option()).Remote(d, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := id.Options(job.Option()).Remote(d, 1); !errors.Is(err, core.ErrJobQuota) {
		t.Fatalf("over-quota submit: %v, want ErrJobQuota", err)
	}
	// Quota is a ceiling on concurrency, not a lifetime budget: once the
	// live tasks finish (and the usage cache refreshes), headroom returns.
	for _, r := range []core.Ref[int]{a, b} {
		if _, err := core.Get(ctx, d, r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "quota headroom back", func() bool {
		r, err := id.Options(job.Option()).Remote(d, 7)
		if err != nil {
			return false
		}
		v, err := core.Get(ctx, d, r)
		return err == nil && v == 7
	})
}
