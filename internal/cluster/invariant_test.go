package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/types"
)

// TestDataflowOrderingInvariant checks the dataflow execution model's
// defining property (Section 3.1: "tasks become available for execution if
// and only if their dependencies have finished executing") over a randomly
// shaped DAG, using only the control plane's own records: for every
// finished task, its start timestamp must not precede the finish timestamp
// of any task producing one of its reference arguments. The profiling
// machinery (R7) doubles as the verification oracle.
func TestDataflowOrderingInvariant(t *testing.T) {
	reg := core.NewRegistry()
	combine := core.Register2(reg, "combine", func(tc *core.TaskContext, a, b int) (int, error) {
		time.Sleep(time.Millisecond)
		return a + b + 1, nil
	})
	c, err := New(Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	// Build a layered DAG: each layer combines pseudo-random pairs from the
	// previous layer.
	const width, depth = 6, 5
	layer := make([]core.Ref[int], width)
	for i := range layer {
		r, err := combine.Remote(d, i, i)
		if err != nil {
			t.Fatal(err)
		}
		layer[i] = r
	}
	rngState := uint64(42)
	next := func(n int) int {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return int(rngState % uint64(n))
	}
	var all []core.Ref[int]
	all = append(all, layer...)
	for l := 1; l < depth; l++ {
		newLayer := make([]core.Ref[int], width)
		for i := range newLayer {
			a, b := layer[next(width)], layer[next(width)]
			r, err := combine.RemoteRefs(d, a, b)
			if err != nil {
				t.Fatal(err)
			}
			newLayer[i] = r
		}
		layer = newLayer
		all = append(all, layer...)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	raw := make([]core.ObjectRef, len(all))
	for i, r := range all {
		raw[i] = r.Untyped()
	}
	ready, _, err := d.Wait(ctx, raw, len(raw), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != len(all) {
		t.Fatalf("only %d/%d tasks completed", len(ready), len(all))
	}

	// Owner-side futures resolve from the owner's ledger, so Wait can
	// return a flush interval before the last FINISHED delta lands in the
	// follower table (DESIGN.md §13). Let the follower settle first.
	settle := time.Now().Add(10 * time.Second)
	for {
		lagging := false
		for _, ts := range c.Ctrl.Tasks() {
			if ts.Status != types.TaskFinished {
				lagging = true
			}
		}
		if !lagging {
			break
		}
		if time.Now().After(settle) {
			break // fall through; the assertion below names the culprit
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Verify the invariant from control-plane records alone.
	tl := profile.Build(c.Ctrl)
	finishByTask := make(map[types.TaskID]int64)
	for _, s := range tl.Spans {
		finishByTask[s.Task] = s.FinishedNs
	}
	checked := 0
	for _, ts := range c.Ctrl.Tasks() {
		if ts.Status != types.TaskFinished {
			t.Fatalf("task %v not finished: %v", ts.Spec.ID, ts.Status)
		}
		for _, dep := range ts.Spec.Deps() {
			obj, ok := c.Ctrl.GetObject(dep)
			if !ok || obj.Producer.IsNil() {
				continue
			}
			producerFinish, ok := finishByTask[obj.Producer]
			if !ok {
				t.Fatalf("producer of %v missing from timeline", dep)
			}
			if ts.StartedNs < producerFinish {
				t.Fatalf("task %v started at %d before dependency producer %v finished at %d",
					ts.Spec.ID, ts.StartedNs, obj.Producer, producerFinish)
			}
			checked++
		}
	}
	if checked < width*(depth-1)*2 {
		t.Fatalf("only %d dependency edges verified", checked)
	}
}
