package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/types"
)

// dagRun captures everything observable about one execution of the
// equivalence DAG: results, lineage producer edges, terminal task records,
// and how many tasks took the inline fast path.
type dagRun struct {
	values    []int
	producers map[types.ObjectID]types.TaskID
	statuses  map[types.TaskID]types.TaskStatus
	inlined   int64
}

// runEquivalenceDag executes a fixed fan-in DAG (8 leaves combined
// pairwise down to a root) on a fresh 2-node cluster with inline dispatch
// on or off. A fixed driver root identity makes task and object IDs
// deterministic, so the two runs are comparable key by key.
func runEquivalenceDag(t *testing.T, inline bool) dagRun {
	t.Helper()
	reg := core.NewRegistry()
	leaf := core.Register1(reg, "inl.leaf", func(tc *core.TaskContext, x int) (int, error) {
		return 3*x + 1, nil
	})
	comb := core.Register2(reg, "inl.comb", func(tc *core.TaskContext, a, b int) (int, error) {
		return a + b, nil
	})
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		InlineDispatch: inline,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := core.NewClientWithRoot(c.Node(0), types.DeriveTaskID(types.NilTaskID, 4242))

	level := make([]core.Ref[int], 0, 8)
	for i := 0; i < 8; i++ {
		r, err := leaf.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		level = append(level, r)
	}
	refs := append([]core.Ref[int]{}, level...)
	for len(level) > 1 {
		next := make([]core.Ref[int], 0, len(level)/2)
		for i := 0; i+1 < len(level); i += 2 {
			r, err := comb.RemoteRefs(d, level[i], level[i+1])
			if err != nil {
				t.Fatal(err)
			}
			next = append(next, r)
		}
		level = next
		refs = append(refs, level...)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	run := dagRun{
		producers: make(map[types.ObjectID]types.TaskID),
		statuses:  make(map[types.TaskID]types.TaskStatus),
	}
	for _, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatal(err)
		}
		run.values = append(run.values, v)
	}
	// Lineage and terminal records, captured before release can GC them.
	// Producer edges and terminal stamps ride the owner ledger's batched
	// async flush (DESIGN.md §13) — an inline run finishes the whole DAG
	// before the first flush tick, so settle-then-read, like the
	// conservation checkers.
	settled := func() bool {
		for _, r := range refs {
			or := r.Untyped()
			info, ok := c.API.GetObject(or.ID)
			if !ok || info.Producer.IsNil() {
				return false
			}
			rec, ok := c.API.GetTask(or.Task)
			if !ok || !rec.Status.Terminal() {
				return false
			}
		}
		return true
	}
	for deadline := time.Now().Add(20 * time.Second); !settled(); {
		if time.Now().After(deadline) {
			t.Fatal("lineage/terminal records never settled in the control plane")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, r := range refs {
		or := r.Untyped()
		info, _ := c.API.GetObject(or.ID)
		run.producers[or.ID] = info.Producer
		rec, _ := c.API.GetTask(or.Task)
		run.statuses[or.Task] = rec.Status
	}
	// Reference conservation: dropping the driver's refs must drain every
	// refcount to zero in both modes.
	untyped := make([]core.ObjectRef, len(refs))
	for i, r := range refs {
		untyped[i] = r.Untyped()
	}
	d.Release(untyped...)
	chaostest.New(c.API).AwaitZeroRefcounts(t, 20*time.Second)

	for i := 0; i < c.NumNodes(); i++ {
		run.inlined += c.Node(i).Scheduler().Inlined()
	}
	return run
}

// TestInlineQueuedEquivalence: the same DAG run with inline dispatch on
// and off yields identical results, identical lineage producer edges, the
// same terminal task records, and zero leaked references in both modes.
// The mode is observable only through the inline counters.
func TestInlineQueuedEquivalence(t *testing.T) {
	on := runEquivalenceDag(t, true)
	off := runEquivalenceDag(t, false)

	if !reflect.DeepEqual(on.values, off.values) {
		t.Fatalf("results diverge:\ninline: %v\nqueued: %v", on.values, off.values)
	}
	if !reflect.DeepEqual(on.producers, off.producers) {
		t.Fatalf("lineage producer edges diverge:\ninline: %v\nqueued: %v", on.producers, off.producers)
	}
	for mode, run := range map[string]dagRun{"inline": on, "queued": off} {
		for id, st := range run.statuses {
			if st != types.TaskFinished {
				t.Fatalf("%s: task %v terminal status = %v, want FINISHED", mode, id, st)
			}
		}
	}
	if on.inlined == 0 {
		t.Fatal("inline mode never took the fast path")
	}
	if off.inlined != 0 {
		t.Fatalf("queued mode took the inline path %d times", off.inlined)
	}
}
