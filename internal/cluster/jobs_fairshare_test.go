package cluster

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// fairShareCluster builds the contended-dispatch fixture: every task
// spills to the global scheduler (threshold 0), so the fair queue orders
// all dispatch.
func fairShareCluster(t *testing.T, reg *core.Registry) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func sleepTask(reg *core.Registry, name string) core.Func1[int, int] {
	return core.Register1(reg, name, func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
}

// scheduledStamps returns the job's task ScheduledNs values, ascending,
// dropping tasks never dispatched.
func scheduledStamps(c *Cluster, job types.JobID) []int64 {
	var out []int64
	tasks, _ := c.API.JobTasks(job)
	for _, st := range tasks {
		if st.ScheduledNs > 0 {
			out = append(out, st.ScheduledNs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestJobFairShareDispatch submits a weight-3 victim (120 tasks) against a
// weight-1 noisy neighbor flooding 240, and checks the EXPERIMENTS.md E25
// acceptance bound: over the steady-state window (the victim's 30th
// through 90th dispatch), dispatch share matches the 3:1 weights within
// 10%. Measured from the durable ScheduledNs stamps, so node-pipeline FIFO
// effects cannot dilute it.
func TestJobFairShareDispatch(t *testing.T) {
	reg := core.NewRegistry()
	work := sleepTask(reg, "fs.work")
	c := fairShareCluster(t, reg)
	d := c.Driver()

	noisy, err := d.CreateJob("noisy", 1, types.JobQuota{})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := d.CreateJob("victim", 3, types.JobQuota{})
	if err != nil {
		t.Fatal(err)
	}
	const victimTasks, noisyTasks = 120, 240
	for i := 0; i < noisyTasks; i++ {
		if _, err := work.Options(noisy.Option()).Remote(d, 8); err != nil {
			t.Fatal(err)
		}
		if i < victimTasks {
			if _, err := work.Options(victim.Option()).Remote(d, 8); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 60*time.Second, "victim tasks finished", func() bool {
		tasks, _ := c.API.JobTasks(victim.ID)
		done := 0
		for _, st := range tasks {
			if st.Status == types.TaskFinished {
				done++
			}
		}
		return done == victimTasks
	})

	vs := scheduledStamps(c, victim.ID)
	if len(vs) < 90 {
		t.Fatalf("victim dispatched %d tasks, want >= 90", len(vs))
	}
	// Steady-state window: between the victim's 30th and 90th dispatch the
	// fair queue held backlog for both jobs, so DRR fully governed ordering.
	lo, hi := vs[29], vs[89]
	noisyIn := 0
	for _, ts := range scheduledStamps(c, noisy.ID) {
		if ts > lo && ts <= hi {
			noisyIn++
		}
	}
	const victimIn = 60 // dispatches 31..90
	share := float64(victimIn) / float64(max(noisyIn, 1))
	t.Logf("steady-state window: victim %d dispatches, noisy %d — share %.2f:1 (weights 3:1)", victimIn, noisyIn, share)
	if share < 2.7 || share > 3.3 {
		t.Fatalf("dispatch share %.2f:1 outside 10%% of the 3:1 weights (victim %d, noisy %d)",
			share, victimIn, noisyIn)
	}
}

// TestJobIsolationLatency checks E25's noisy-neighbor bound: a victim
// burst's median submit→dispatch latency with an equal-weight neighbor
// flooding 4x the work stays within 3x its solo latency. Plain FIFO
// dispatch would queue the victim behind the entire flood (~8x and up);
// weighted fair share caps the slowdown near the 2x an equal split costs.
func TestJobIsolationLatency(t *testing.T) {
	const victimTasks, noisyTasks = 60, 240

	run := func(withNoisy bool) time.Duration {
		reg := core.NewRegistry()
		work := sleepTask(reg, "iso.work")
		c := fairShareCluster(t, reg)
		d := c.Driver()
		victim, err := d.CreateJob("victim", 1, types.JobQuota{})
		if err != nil {
			t.Fatal(err)
		}
		if withNoisy {
			noisy, err := d.CreateJob("noisy", 1, types.JobQuota{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < noisyTasks; i++ {
				if _, err := work.Options(noisy.Option()).Remote(d, 8); err != nil {
					t.Fatal(err)
				}
			}
		}
		refs := make([]core.Ref[int], victimTasks)
		for i := range refs {
			if refs[i], err = work.Options(victim.Option()).Remote(d, 8); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, ref := range refs {
			if _, err := core.Get(ctx, d, ref); err != nil {
				t.Fatal(err)
			}
		}
		var lats []int64
		tasks, _ := c.API.JobTasks(victim.ID)
		for _, st := range tasks {
			if st.ScheduledNs > 0 && st.SubmittedNs > 0 {
				lats = append(lats, st.ScheduledNs-st.SubmittedNs)
			}
		}
		if len(lats) != victimTasks {
			t.Fatalf("victim dispatch stamps = %d, want %d", len(lats), victimTasks)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return time.Duration(lats[len(lats)/2])
	}

	solo := run(false)
	contended := run(true)
	t.Logf("victim median submit→dispatch: solo %v, with equal-weight noisy neighbor %v (%.2fx)",
		solo, contended, float64(contended)/float64(solo))
	if contended > 3*solo {
		t.Fatalf("victim median dispatch latency %v exceeds 3x solo (%v)", contended, solo)
	}
}
