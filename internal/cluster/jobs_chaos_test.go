package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// TestJobStopShardKillMidReclaim crash-fails a control-plane shard in the
// middle of a StopJob reclaim — after the Stopping CAS, while live tasks
// are being buried and object refs force-released — with the supervisor
// auto-restarting it from snapshot+WAL. The reclaim pipeline must converge
// anyway (every step re-derives its inputs from durable tables): the job
// commits Stopped, refcounts drain to zero, no buried task resurrects, and
// the purge tombstones survive a further shard restart.
func TestJobStopShardKillMidReclaim(t *testing.T) {
	reg := core.NewRegistry()
	quick := core.Register1(reg, "jchaos.quick", func(tc *core.TaskContext, x int) (int, error) {
		return x * 2, nil
	})
	slow := core.Register1(reg, "jchaos.slow", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	c, err := New(Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		GCSShards:      3,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
		JobGrace:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	job, err := d.CreateJob("chaos-tenant", 1, types.JobQuota{})
	if err != nil {
		t.Fatal(err)
	}

	// A mix of terminal and live tenant work: finished tasks whose objects
	// are still referenced by the driver, plus in-flight sleeps spread
	// across the nodes.
	var ids []types.TaskID
	for i := 0; i < 6; i++ {
		ref, err := quick.Options(job.Option()).Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ref.Untyped().Task)
	}
	for i := 0; i < 6; i++ {
		ref, err := slow.Options(job.Option()).Remote(d, 3000)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ref.Untyped().Task)
	}
	// Let the quick tasks land and the slow ones dispatch.
	waitFor(t, 10*time.Second, "tenant burst visible", func() bool {
		tasks, complete := c.API.JobTasks(job.ID)
		return complete && len(tasks) == len(ids)
	})

	// Stop, then kill the shard owning the job record mid-reclaim; the
	// supervisor restarts it from durable state.
	if err := job.Stop(); err != nil {
		t.Fatal(err)
	}
	idx := c.API.(*gcs.Sharded).Map().ShardForKey(gcs.JobKey(job.ID))
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Super.KillShard(idx)
		time.Sleep(50 * time.Millisecond)
		c.Super.KillShard((idx + 1) % 3) // a second shard once the first recovered
	}()

	// The reclaim must converge across the kills: Stopped committed, then
	// purged, with a complete shard view backing each conclusion.
	check := chaostest.New(c.API)
	waitFor(t, 30*time.Second, "job stopped across shard kills", func() bool {
		info, ok := c.API.GetJob(job.ID)
		return ok && info.State == types.JobStopped
	})
	waitFor(t, 30*time.Second, "job purged across shard kills", func() bool {
		info, ok := c.API.GetJob(job.ID)
		if !ok || info.PurgedNs == 0 {
			return false
		}
		tasks, complete := c.API.JobTasks(job.ID)
		return complete && len(tasks) == 0
	})

	// Refcount conservation: the force release drained every reference the
	// tenant's objects carried, and nothing leaked through the kills.
	check.AwaitZeroRefcounts(t, 30*time.Second)

	// No resurrection: the purge left no task records behind, and none may
	// reappear — not from a straggler ledger flush, not from a WAL replay,
	// not from lineage reconstruction of a purged object.
	time.Sleep(300 * time.Millisecond)
	if tasks, complete := c.API.JobTasks(job.ID); !complete || len(tasks) != 0 {
		t.Fatalf("tenant task records resurrected after purge: %d (complete=%v)", len(tasks), complete)
	}

	// Submissions against the tombstone stay fenced.
	if _, err := quick.Options(job.Option()).Remote(d, 1); !errors.Is(err, core.ErrJobTerminated) {
		t.Fatalf("submit against tombstone: %v, want ErrJobTerminated", err)
	}

	// The tombstones are durable: restart the job record's shard and the
	// Stopped+purged record must replay from snapshot+WAL, not revert.
	c.Super.KillShard(idx)
	waitFor(t, 20*time.Second, "shard back after tombstone restart", func() bool {
		p, ok := c.API.(gcs.Pinger)
		return ok && p.Ping()
	})
	info, ok := c.API.GetJob(job.ID)
	if !ok || info.State != types.JobStopped || info.PurgedNs == 0 {
		t.Fatalf("job tombstone did not survive restart: %+v ok=%v", info, ok)
	}
	if tasks, complete := c.API.JobTasks(job.ID); !complete || len(tasks) != 0 {
		t.Fatalf("purged task records resurrected by WAL replay: %d (complete=%v)", len(tasks), complete)
	}
}
