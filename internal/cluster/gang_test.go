package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/types"
)

// gangRegistry registers the toy member function used by the gang tests.
func gangRegistry() (*core.Registry, core.Func1[int, int]) {
	reg := core.NewRegistry()
	fn := core.Register1(reg, "gang.id", func(tc *core.TaskContext, x int) (int, error) {
		return x, nil
	})
	core.Register1(reg, "gang.sleep", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	return reg, fn
}

// waitFor polls cond until true or the deadline, failing the test after.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertZeroReservations checks every live node's books through the shared
// cluster-invariant checker (internal/chaostest): no bundle pools, full
// availability. The gang invariant: a group that cannot fully place leaves
// nothing behind.
func assertZeroReservations(t *testing.T, c *Cluster, skip map[int]bool) {
	t.Helper()
	books := make(map[string]chaostest.Books)
	for i := 0; i < c.NumNodes(); i++ {
		if skip[i] {
			continue
		}
		books[fmt.Sprintf("node-%d", i)] = c.Node(i).Scheduler()
	}
	chaostest.New(c.API).AwaitQuiescentBooks(t, 5*time.Second, books)
}

// TestGangAtomicity is the acceptance test: a 3-bundle STRICT_SPREAD group
// on a cluster that fits only 2 bundles stays pending with zero partial
// reservations, places atomically once a node joins, and — after a member
// node dies — releases every reservation and re-places the bundle set as a
// unit once capacity returns.
func TestGangAtomicity(t *testing.T) {
	reg, fn := gangRegistry()
	c, err := New(Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	bundles := []types.Resources{types.CPU(3), types.CPU(3), types.CPU(3)}
	pg, err := d.CreatePlacementGroup("gang", types.StrategyStrictSpread, bundles)
	if err != nil {
		t.Fatal(err)
	}

	// Two nodes cannot spread three bundles: the group must stay pending,
	// with zero reservations anywhere (all-or-nothing).
	time.Sleep(300 * time.Millisecond) // several gang passes
	if info, ok := c.API.GetPlacementGroup(pg.ID); !ok || info.State == types.GroupPlaced {
		t.Fatalf("group must not place on 2 nodes: %+v ok=%v", info, ok)
	}
	assertZeroReservations(t, c, nil)

	// A member task submitted now parks; it must run after placement.
	early, err := fn.Options(pg.Bundle(0), core.WithResources(types.CPU(1))).Remote(d, 41)
	if err != nil {
		t.Fatal(err)
	}

	// Third node: the group must place atomically across all three.
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	if err := pg.WaitReady(ctx, 10*time.Second); err != nil {
		t.Fatalf("group did not place after node join: %v", err)
	}
	info, _ := c.API.GetPlacementGroup(pg.ID)
	seen := map[types.NodeID]bool{}
	for _, n := range info.BundleNodes {
		if seen[n] {
			t.Fatalf("STRICT_SPREAD placed two bundles on %v", n)
		}
		seen[n] = true
	}
	if v, err := core.Get(ctx, d, early); err != nil || v != 41 {
		t.Fatalf("parked member task after placement: v=%d err=%v", v, err)
	}

	// Every bundle is reachable.
	for b := 0; b < 3; b++ {
		ref, err := fn.Options(pg.Bundle(b), core.WithResources(types.CPU(1))).Remote(d, b)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := core.Get(ctx, d, ref); err != nil || v != b {
			t.Fatalf("bundle %d member task: v=%d err=%v", b, v, err)
		}
	}

	// Kill a member node other than node 0 (the driver's backend). With
	// two nodes left the group cannot re-place: every surviving
	// reservation must be released — no partial placements linger.
	victim := -1
	for i := 1; i < c.NumNodes(); i++ {
		if seen[c.Node(i).ID()] {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no killable member node")
	}
	dead := c.Node(victim).ID()
	c.KillNode(victim)
	waitFor(t, 5*time.Second, "rollback off the dead node", func() bool {
		info, ok := c.API.GetPlacementGroup(pg.ID)
		return ok && info.State != types.GroupPlaced
	})
	assertZeroReservations(t, c, map[int]bool{victim: true})

	// Capacity returns: the whole set re-places atomically, off the dead
	// node, and the group serves again.
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "atomic re-placement", func() bool {
		info, ok := c.API.GetPlacementGroup(pg.ID)
		if !ok || info.State != types.GroupPlaced {
			return false
		}
		for _, n := range info.BundleNodes {
			if n == dead {
				return false
			}
		}
		return true
	})
	ref, err := fn.Options(pg.Bundle(1), core.WithResources(types.CPU(1))).Remote(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := core.Get(ctx, d, ref); err != nil || v != 7 {
		t.Fatalf("member task after re-placement: v=%d err=%v", v, err)
	}
}

// TestGangRemoveFailsPendingMembers checks removal: parked member tasks of
// a never-placeable group fail with the typed error instead of hanging,
// and queued members on a placed group's nodes fail too.
func TestGangRemoveFailsPendingMembers(t *testing.T) {
	reg, fn := gangRegistry()
	c, err := New(Config{Nodes: 2, NodeResources: types.CPU(4), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx := context.Background()

	// Unplaceable group (three spread bundles, two nodes): member parks.
	pg, err := d.CreatePlacementGroup("doomed", types.StrategyStrictSpread,
		[]types.Resources{types.CPU(3), types.CPU(3), types.CPU(3)})
	if err != nil {
		t.Fatal(err)
	}
	parked, err := fn.Options(pg.Bundle(0), core.WithResources(types.CPU(1))).Remote(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let it reach the global's parked set
	if err := pg.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Get(ctx, d, parked); !errors.Is(err, core.ErrGroupRemoved) {
		t.Fatalf("parked member after removal: want ErrGroupRemoved, got %v", err)
	}

	// Placed group: a member queued behind a running one fails on removal.
	pg2, err := d.CreatePlacementGroup("live", types.StrategyPack, []types.Resources{types.CPU(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg2.WaitReady(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The blocker must still be running when the removal's release RPCs
	// land; a generous sleep keeps the test stable under full-suite load.
	blocker, err := d.SubmitOpts("gang.sleep", []types.Arg{core.Val(2000)},
		core.WithPlacementGroup(pg2.ID, 0), core.WithResources(types.CPU(1)))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := fn.Options(pg2.Bundle(0), core.WithResources(types.CPU(1))).Remote(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "blocker running", func() bool {
		st, ok := c.API.GetTask(mustTaskOf(c, blocker[0]))
		return ok && st.Status == types.TaskRunning
	})
	if err := pg2.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Get(ctx, d, queued); !errors.Is(err, core.ErrGroupRemoved) {
		t.Fatalf("queued member after removal: want ErrGroupRemoved, got %v", err)
	}
	// The running member finishes normally; reservations are gone.
	if _, err := d.Get(ctx, blocker[0]); err != nil {
		t.Fatalf("running member should finish: %v", err)
	}
	assertZeroReservations(t, c, nil)
}

// mustTaskOf maps a return object to its producing task via the object
// table (the spec's lineage edge).
func mustTaskOf(c *Cluster, ref core.ObjectRef) types.TaskID {
	info, ok := c.API.GetObject(ref.ID)
	if !ok {
		return types.NilTaskID
	}
	return info.Producer
}

// TestGangConcurrentCreateRemove races group creation, placement, member
// submission, and removal under -race; afterwards no reservations may
// leak on any node.
func TestGangConcurrentCreateRemove(t *testing.T) {
	reg, fn := gangRegistry()
	c, err := New(Config{Nodes: 3, NodeResources: types.CPU(8), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const groups = 6
	var wg sync.WaitGroup
	for i := 0; i < groups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pg, err := d.CreatePlacementGroup(fmt.Sprintf("race-%d", i), types.PlacementStrategy(i%2),
				[]types.Resources{types.CPU(2), types.CPU(2)})
			if err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			// Half the groups get a member task racing the remove.
			if i%2 == 0 {
				if ref, err := fn.Options(pg.Bundle(i%2), core.WithResources(types.CPU(1))).Remote(d, i); err == nil {
					go func() { _, _ = core.Get(ctx, d, ref) }()
				}
			}
			time.Sleep(time.Duration(i*13) * time.Millisecond)
			if err := pg.Remove(); err != nil {
				t.Errorf("remove %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	waitFor(t, 10*time.Second, "all groups removed", func() bool {
		for _, g := range c.API.PlacementGroups() {
			if g.State != types.GroupRemoved {
				return false
			}
		}
		return true
	})
	assertZeroReservations(t, c, nil)
}
