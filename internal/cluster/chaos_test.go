package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// TestChaosKillsDuringWorkload submits a steady stream of dependent task
// chains while nodes are killed mid-flight. Every result must still come
// back correct: in-flight tasks on dead nodes are re-owned via the task
// table's CAS transitions, lost objects replay from lineage, and the global
// scheduler routes around the shrinking cluster (R6 under fire, not just
// after the dust settles).
func TestChaosKillsDuringWorkload(t *testing.T) {
	reg := core.NewRegistry()
	step := core.Register1(reg, "chaos.step", func(tc *core.TaskContext, x int) (int, error) {
		time.Sleep(2 * time.Millisecond) // long enough for kills to land mid-task
		return x + 1, nil
	})
	c, err := New(Config{
		Nodes:          4,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{}, // spread work to all victims
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	// 16 chains of depth 4: +1 four times from distinct bases.
	const chains, depth = 16, 4
	tails := make([]core.Ref[int], chains)
	for i := 0; i < chains; i++ {
		ref, err := step.Remote(d, i*100)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < depth; k++ {
			ref, err = step.RemoteRef(d, ref)
			if err != nil {
				t.Fatal(err)
			}
		}
		tails[i] = ref
	}

	// Kill two non-driver nodes while the chains execute.
	go func() {
		time.Sleep(5 * time.Millisecond)
		c.KillNode(3)
		time.Sleep(10 * time.Millisecond)
		c.KillNode(2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ref := range tails {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("chain %d after chaos: %v", i, err)
		}
		if want := i*100 + depth; v != want {
			t.Fatalf("chain %d = %d, want %d", i, v, want)
		}
	}
}

// TestChaosRepeatedKillsWithRetries layers application-level retries on top
// of node failures: tasks that fail transiently on their own must still
// converge while the cluster loses a node.
func TestChaosRepeatedKillsWithRetries(t *testing.T) {
	reg := core.NewRegistry()
	attempts := make(chan struct{}, 1024)
	flaky := core.Register1(reg, "chaos.flaky", func(tc *core.TaskContext, x int) (int, error) {
		attempts <- struct{}{}
		if len(attempts)%5 == 1 { // deterministic-ish transient failures
			return 0, errTransient
		}
		return x * 2, nil
	})
	c, err := New(Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	var refs []core.Ref[int]
	for i := 0; i < 12; i++ {
		ref, err := flaky.Remote(d, i, core.WithRetries(10))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	go func() {
		time.Sleep(3 * time.Millisecond)
		c.KillNode(2)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ref := range refs {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("flaky %d: %v", i, err)
		}
		if v != i*2 {
			t.Fatalf("flaky %d = %d", i, v)
		}
	}
}

var errTransient = errTransientType{}

type errTransientType struct{}

func (errTransientType) Error() string { return "transient chaos failure" }
