package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// TestChaosKillsDuringWorkload submits a steady stream of dependent task
// chains while nodes are killed mid-flight. Every result must still come
// back correct: in-flight tasks on dead nodes are re-owned via the task
// table's CAS transitions, lost objects replay from lineage, and the global
// scheduler routes around the shrinking cluster (R6 under fire, not just
// after the dust settles).
func TestChaosKillsDuringWorkload(t *testing.T) {
	reg := core.NewRegistry()
	step := core.Register1(reg, "chaos.step", func(tc *core.TaskContext, x int) (int, error) {
		time.Sleep(2 * time.Millisecond) // long enough for kills to land mid-task
		return x + 1, nil
	})
	c, err := New(Config{
		Nodes:          4,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{}, // spread work to all victims
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	// 16 chains of depth 4: +1 four times from distinct bases.
	const chains, depth = 16, 4
	tails := make([]core.Ref[int], chains)
	for i := 0; i < chains; i++ {
		ref, err := step.Remote(d, i*100)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < depth; k++ {
			ref, err = step.RemoteRef(d, ref)
			if err != nil {
				t.Fatal(err)
			}
		}
		tails[i] = ref
	}

	// Kill two non-driver nodes while the chains execute.
	go func() {
		time.Sleep(5 * time.Millisecond)
		c.KillNode(3)
		time.Sleep(10 * time.Millisecond)
		c.KillNode(2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ref := range tails {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("chain %d after chaos: %v", i, err)
		}
		if want := i*100 + depth; v != want {
			t.Fatalf("chain %d = %d, want %d", i, v, want)
		}
	}
}

// TestChaosRepeatedKillsWithRetries layers application-level retries on top
// of node failures: tasks that fail transiently on their own must still
// converge while the cluster loses a node.
func TestChaosRepeatedKillsWithRetries(t *testing.T) {
	reg := core.NewRegistry()
	attempts := make(chan struct{}, 1024)
	flaky := core.Register1(reg, "chaos.flaky", func(tc *core.TaskContext, x int) (int, error) {
		attempts <- struct{}{}
		if len(attempts)%5 == 1 { // deterministic-ish transient failures
			return 0, errTransient
		}
		return x * 2, nil
	})
	c, err := New(Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	var refs []core.Ref[int]
	for i := 0; i < 12; i++ {
		ref, err := flaky.Remote(d, i, core.WithRetries(10))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	go func() {
		time.Sleep(3 * time.Millisecond)
		c.KillNode(2)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, ref := range refs {
		v, err := core.Get(ctx, d, ref)
		if err != nil {
			t.Fatalf("flaky %d: %v", i, err)
		}
		if v != i*2 {
			t.Fatalf("flaky %d = %d", i, v)
		}
	}
}

var errTransient = errTransientType{}

type errTransientType struct{}

func (errTransientType) Error() string { return "transient chaos failure" }

// --- control-plane shard-kill chaos ---

// awaitZeroRefcounts delegates to the shared cluster-invariant checker
// (internal/chaostest): refcount conservation across shards, concluded
// only when every shard answers.
func awaitZeroRefcounts(t *testing.T, api gcs.API, within time.Duration) {
	t.Helper()
	chaostest.New(api).AwaitZeroRefcounts(t, within)
}

// killShardOwning crash-fails the shard that owns key after the delay; the
// supervisor's auto-restart loop brings it back.
func killShardOwning(c *Cluster, key string, delay time.Duration) {
	idx := c.API.(*gcs.Sharded).Map().ShardForKey(key)
	go func() {
		time.Sleep(delay)
		c.Super.KillShard(idx)
	}()
}

// TestShardKillMatrix is the table-driven shard-kill chaos suite: each
// scenario crash-fails a control-plane shard at a different dangerous
// moment — mid submit burst, mid GC publish, mid chunked pull — with the
// supervisor auto-restarting it from snapshot+WAL. Every scenario asserts
// end-to-end task results and the refcount invariants after recovery.
func TestShardKillMatrix(t *testing.T) {
	type tc struct {
		name  string
		nodes int
		cfg   func(*Config)
		run   func(t *testing.T, c *Cluster, step core.Func1[int, int], blob core.Func2[int, int, []byte])
	}
	cases := []tc{
		{
			// Kill while a burst of dependent chains is being submitted and
			// placed through the global spill queue: task records, spill
			// publishes, and status CAS transitions all hit the dying shard.
			name:  "kill-during-submit-burst",
			nodes: 3,
			cfg: func(cfg *Config) {
				cfg.SpillThreshold = SpillThresholdOf(0)
				cfg.GlobalPolicy = &scheduler.RoundRobinPolicy{}
			},
			run: func(t *testing.T, c *Cluster, step core.Func1[int, int], blob core.Func2[int, int, []byte]) {
				d := c.Driver()
				go func() {
					time.Sleep(2 * time.Millisecond)
					c.Super.KillShard(0)
					time.Sleep(25 * time.Millisecond)
					c.Super.KillShard(1) // second kill once the first recovered
				}()
				const chains, depth = 10, 3
				tails := make([]core.Ref[int], chains)
				var all []core.ObjectRef
				for i := 0; i < chains; i++ {
					ref, err := step.Remote(d, i*100)
					if err != nil {
						t.Fatal(err)
					}
					all = append(all, ref.Untyped())
					for k := 1; k < depth; k++ {
						ref, err = step.RemoteRef(d, ref)
						if err != nil {
							t.Fatal(err)
						}
						all = append(all, ref.Untyped())
					}
					tails[i] = ref
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				for i, ref := range tails {
					v, err := core.Get(ctx, d, ref)
					if err != nil {
						t.Fatalf("chain %d: %v", i, err)
					}
					if want := i*100 + depth; v != want {
						t.Fatalf("chain %d = %d, want %d", i, v, want)
					}
				}
				d.Release(all...)
				awaitZeroRefcounts(t, c.API, 20*time.Second)
			},
		},
		{
			// Kill the shard owning a blob's record in the window where the
			// driver's releases push refcounts to zero: the GC publishes race
			// the crash, and the eligible-set replay on resubscribe must
			// reclaim whatever the crash swallowed.
			name:  "kill-during-gc-publish",
			nodes: 1,
			run: func(t *testing.T, c *Cluster, step core.Func1[int, int], blob core.Func2[int, int, []byte]) {
				d := c.Driver()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				const n = 8
				refs := make([]core.Ref[[]byte], n)
				for i := range refs {
					var err error
					refs[i], err = blob.Remote(d, i+1, 16<<10)
					if err != nil {
						t.Fatal(err)
					}
				}
				for i, r := range refs {
					data, err := core.Get(ctx, d, r)
					if err != nil || len(data) != 16<<10 {
						t.Fatalf("blob %d: len %d, %v", i, len(data), err)
					}
				}
				// Kill the shard owning blob 0's record just as the releases
				// start publishing zero transitions.
				killShardOwning(c, gcs.ObjectKey(refs[0].Untyped().ID), 0)
				for _, r := range refs {
					d.Release(r.Untyped())
				}
				awaitZeroRefcounts(t, c.API, 20*time.Second)
				// The reclaim itself must complete: every local copy dropped
				// once the restarted shard replays eligible objects.
				store := c.Node(0).Store()
				deadline := time.Now().Add(20 * time.Second)
				for store.Used() != 0 || store.SpilledBytes() != 0 {
					if time.Now().After(deadline) {
						t.Fatalf("store not drained after GC chaos: used=%d spilled=%d",
							store.Used(), store.SpilledBytes())
					}
					time.Sleep(10 * time.Millisecond)
				}
			},
		},
		{
			// Kill the shard owning a large object's record while a peer is
			// mid chunked pull of it: location lookups and ready-channel
			// subscriptions must fail over to the restarted incarnation and
			// the transfer must still complete intact.
			name:  "kill-during-chunked-pull",
			nodes: 2,
			cfg: func(cfg *Config) {
				cfg.PerNodeResources = []types.Resources{
					types.CPU(4),
					{types.ResCPU: 4, types.ResGPU: 1},
				}
			},
			run: func(t *testing.T, c *Cluster, step core.Func1[int, int], blob core.Func2[int, int, []byte]) {
				d := c.Driver() // node 0
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				// Force production onto node 1; consume from node 0.
				ref, err := blob.Remote(d, 3, 1<<20,
					core.WithResources(types.Resources{types.ResCPU: 1, types.ResGPU: 1}))
				if err != nil {
					t.Fatal(err)
				}
				killShardOwning(c, gcs.ObjectKey(ref.Untyped().ID), 3*time.Millisecond)
				data, err := core.Get(ctx, d, ref)
				if err != nil {
					t.Fatalf("pull across shard kill: %v", err)
				}
				if len(data) != 1<<20 || data[0] != 3 || data[len(data)-1] != byte(3*len(data)) {
					t.Fatalf("pulled blob corrupted (len %d)", len(data))
				}
				d.Release(ref.Untyped())
				awaitZeroRefcounts(t, c.API, 20*time.Second)
			},
		},
	}

	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			reg := core.NewRegistry()
			step := core.Register1(reg, "chaos.step", func(tc *core.TaskContext, x int) (int, error) {
				time.Sleep(time.Millisecond)
				return x + 1, nil
			})
			blob := core.Register2(reg, "chaos.blob", func(tc *core.TaskContext, seed, size int) ([]byte, error) {
				out := make([]byte, size)
				for i := range out {
					out[i] = byte(seed * (i + 1))
				}
				return out, nil
			})
			cfg := Config{
				Nodes:          tcase.nodes,
				NodeResources:  types.CPU(2),
				Registry:       reg,
				GCSShards:      3,
				GCSAutoRestart: 15 * time.Millisecond,
			}
			if tcase.cfg != nil {
				tcase.cfg(&cfg)
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Shutdown()
			tcase.run(t, c, step, blob)
		})
	}
}

// TestShardFailoverDurableState is the tentpole acceptance kill-test: with
// two GCS shard services serving a live workload, one shard is killed and
// restarted from snapshot + WAL. No committed task-table (lineage),
// object-table, or refcount state may be lost, the workload must complete,
// and the post-recovery clock must not run backwards.
func TestShardFailoverDurableState(t *testing.T) {
	reg := core.NewRegistry()
	square := core.Register1(reg, "fo.square", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		GCSShards:      2,
		GCSAutoRestart: -1, // manual restart: the test controls the outage
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	get := func(refs []core.Ref[int], base int) {
		t.Helper()
		for i, r := range refs {
			v, err := core.Get(ctx, d, r)
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if want := (base + i) * (base + i); v != want {
				t.Fatalf("value = %d, want %d", v, want)
			}
		}
	}
	submit := func(base, n int) []core.Ref[int] {
		t.Helper()
		refs := make([]core.Ref[int], n)
		for i := range refs {
			var err error
			refs[i], err = square.Remote(d, base+i)
			if err != nil {
				t.Fatal(err)
			}
		}
		return refs
	}

	// Phase 1: committed before the snapshot.
	phase1 := submit(0, 6)
	get(phase1, 0)
	if err := c.Super.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// Phase 2: committed after the snapshot — recoverable only via WAL.
	phase2 := submit(10, 6)
	get(phase2, 10)

	// Freeze the pre-kill truth. Owner ledgers flush task state and
	// refcounts asynchronously, so "committed" means quiescent: snapshot
	// repeatedly until two consecutive reads agree, so the freeze can't
	// catch a flush mid-flight and mistake follower lag for lost state.
	snapshot := func() (map[string]types.TaskStatus, map[string]int64) {
		tasks := make(map[string]types.TaskStatus)
		for _, ts := range c.API.Tasks() {
			tasks[ts.Spec.ID.Hex()] = ts.Status
		}
		refs := make(map[string]int64)
		for _, o := range c.API.Objects() {
			refs[o.ID.Hex()] = o.RefCount
		}
		return tasks, refs
	}
	preTasks, preRefs := snapshot()
	for settle := time.Now().Add(10 * time.Second); ; {
		time.Sleep(10 * time.Millisecond)
		tasks, refs := snapshot()
		if reflect.DeepEqual(tasks, preTasks) && reflect.DeepEqual(refs, preRefs) {
			break
		}
		preTasks, preRefs = tasks, refs
		if time.Now().After(settle) {
			t.Fatal("pre-kill table never quiesced")
		}
	}
	preNow := c.API.NowNs()
	if len(preTasks) != 12 {
		t.Fatalf("pre-kill task table has %d rows", len(preTasks))
	}

	// Kill shard 0 mid-life; keep the workload running through the outage.
	c.Super.KillShard(0)
	phase3 := make(chan []core.Ref[int], 1)
	go func() { phase3 <- submit(20, 4) }()
	time.Sleep(40 * time.Millisecond)
	if err := c.Super.RestartShard(0); err != nil {
		t.Fatalf("restart from snapshot+WAL: %v", err)
	}
	get(<-phase3, 20)

	// Lineage: every pre-kill task record survived with its status.
	postTasks := make(map[string]types.TaskStatus)
	for _, ts := range c.API.Tasks() {
		postTasks[ts.Spec.ID.Hex()] = ts.Status
	}
	for id, status := range preTasks {
		got, ok := postTasks[id]
		if !ok {
			t.Fatalf("task %s lost across shard failover", id)
		}
		if got != status {
			t.Fatalf("task %s status %v -> %v across failover", id, status, got)
		}
	}
	// Refcounts: every committed count survived exactly.
	postRefs := make(map[string]int64)
	for _, o := range c.API.Objects() {
		postRefs[o.ID.Hex()] = o.RefCount
	}
	for id, n := range preRefs {
		got, ok := postRefs[id]
		if !ok {
			t.Fatalf("object %s lost across shard failover", id)
		}
		if got != n {
			t.Fatalf("object %s refcount %d -> %d across failover", id, n, got)
		}
	}
	// The restarted incarnation replayed WAL records on top of the
	// snapshot (phase 2 and the live phase-3 traffic guarantee some), and
	// the durable epoch kept the clock monotonic.
	if inc := c.Super.Shard(0).Incarnation(); inc != 2 {
		t.Fatalf("shard 0 incarnation = %d, want 2", inc)
	}
	if rep := c.Super.Shard(0).Stats().Replayed; rep == 0 {
		t.Fatal("restart replayed no WAL records; recovery path not exercised")
	}
	if now := c.API.NowNs(); now < preNow {
		t.Fatalf("cluster clock ran backwards across failover: %d -> %d", preNow, now)
	}
	// And a pre-kill object is still readable end to end.
	get(phase1[:1], 0)
}
