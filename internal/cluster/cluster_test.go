package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// testFuncs builds a registry with the functions the integration tests use.
type testFuncs struct {
	reg    *core.Registry
	square core.Func1[int, int]
	add    core.Func2[int, int, int]
	sleepy core.Func1[int, int]    // sleeps arg ms, returns arg
	fail   core.Func1[string, int] // always errors
	tree   core.Func2[int, int, int]
	gpu    core.Func1[int, int]
}

func newTestFuncs() *testFuncs {
	reg := core.NewRegistry()
	f := &testFuncs{reg: reg}
	f.square = core.Register1(reg, "square", func(tc *core.TaskContext, x int) (int, error) {
		return x * x, nil
	})
	f.add = core.Register2(reg, "add", func(tc *core.TaskContext, a, b int) (int, error) {
		return a + b, nil
	})
	f.sleepy = core.Register1(reg, "sleepy", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	f.fail = core.Register1(reg, "fail", func(tc *core.TaskContext, msg string) (int, error) {
		return 0, errors.New(msg)
	})
	// tree recursively spawns subtasks: sum of leaves = 2^depth (R3 test).
	f.tree = core.Register2(reg, "tree", func(tc *core.TaskContext, depth, width int) (int, error) {
		if depth == 0 {
			return 1, nil
		}
		var refs []core.Ref[int]
		for i := 0; i < width; i++ {
			ref, err := f.tree.Remote(tc, depth-1, width)
			if err != nil {
				return 0, err
			}
			refs = append(refs, ref)
		}
		total := 0
		for _, r := range refs {
			v, err := core.TaskGet(tc, r)
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	})
	f.gpu = core.Register1(reg, "gpu", func(tc *core.TaskContext, x int) (int, error) {
		return -x, nil
	})
	return f
}

func singleNode(t *testing.T, f *testFuncs) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 1, Registry: f.reg, NodeResources: types.CPU(8)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestSubmitGetRoundTrip(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	ref, err := f.square.Remote(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.Get(context.Background(), d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if v != 49 {
		t.Fatalf("square(7) = %d", v)
	}
}

func TestDataflowDependencies(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	// add(square(3), square(4)) == 25 via futures (R5).
	a, _ := f.square.Remote(d, 3)
	b, _ := f.square.Remote(d, 4)
	sum, err := f.add.RemoteRefs(d, a, b)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.Get(context.Background(), d, sum)
	if err != nil {
		t.Fatal(err)
	}
	if v != 25 {
		t.Fatalf("got %d, want 25", v)
	}
}

func TestDeepChain(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	// square chained: ((2^2)^2)^2 = 256
	ref, _ := f.square.Remote(d, 2)
	for i := 0; i < 2; i++ {
		var err error
		ref, err = f.square.RemoteRef(d, ref)
		if err != nil {
			t.Fatal(err)
		}
	}
	v, err := core.Get(context.Background(), d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if v != 256 {
		t.Fatalf("chain = %d", v)
	}
}

func TestNestedTasksDynamicGraph(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	// Binary tree of depth 4: 16 leaves. Parents block on children (worker
	// lending must prevent deadlock: 31 tasks on 8 CPUs).
	ref, err := f.tree.Remote(d, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := core.Get(ctx, d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if v != 16 {
		t.Fatalf("tree sum = %d, want 16", v)
	}
}

func TestWaitReturnsEarlyCompleters(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	fast, _ := f.sleepy.Remote(d, 5)
	slow, _ := f.sleepy.Remote(d, 2000)
	refs := []core.ObjectRef{fast.Untyped(), slow.Untyped()}
	start := time.Now()
	ready, pending, err := d.Wait(context.Background(), refs, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait blocked on the straggler")
	}
	if len(ready) != 1 || ready[0].ID != fast.Untyped().ID {
		t.Fatalf("ready = %v", ready)
	}
	if len(pending) != 1 || pending[0].ID != slow.Untyped().ID {
		t.Fatalf("pending = %v", pending)
	}
}

func TestWaitTimeout(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	slow, _ := f.sleepy.Remote(d, 2000)
	start := time.Now()
	ready, pending, err := d.Wait(context.Background(), []core.ObjectRef{slow.Untyped()}, 1, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > time.Second {
		t.Fatalf("Wait returned after %v", elapsed)
	}
	if len(ready) != 0 || len(pending) != 1 {
		t.Fatalf("ready=%d pending=%d", len(ready), len(pending))
	}
}

func TestPutAndGet(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	ref, err := core.PutTyped(d, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.Get(context.Background(), d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[2] != 3 {
		t.Fatalf("got %v", v)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	ref, _ := f.fail.Remote(d, "boom")
	_, err := core.Get(context.Background(), d, ref)
	if !errors.Is(err, core.ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("error message lost: %v", err)
	}
}

func TestPanicBecomesTaskFailure(t *testing.T) {
	reg := core.NewRegistry()
	panicky := core.Register0(reg, "panicky", func(tc *core.TaskContext) (int, error) {
		panic("kaboom")
	})
	c, err := New(Config{Nodes: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ref, _ := panicky.Remote(d)
	_, err = core.Get(context.Background(), d, ref)
	if !errors.Is(err, core.ErrTaskFailed) || !contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	reg := core.NewRegistry()
	attempts := make(chan struct{}, 16)
	flaky := core.Register0(reg, "flaky", func(tc *core.TaskContext) (int, error) {
		attempts <- struct{}{}
		if len(attempts) < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	c, err := New(Config{Nodes: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	ref, _ := flaky.Remote(d, core.WithRetries(5))
	v, err := core.Get(context.Background(), d, ref)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 || len(attempts) != 3 {
		t.Fatalf("v=%d attempts=%d", v, len(attempts))
	}
}

func TestMultiNodeSpillover(t *testing.T) {
	f := newTestFuncs()
	// 4 nodes x 2 CPUs; spill threshold 1 pushes load through the global
	// scheduler onto every node.
	c, err := New(Config{
		Nodes:          4,
		NodeResources:  types.CPU(2),
		Registry:       f.reg,
		SpillThreshold: SpillThresholdOf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	var refs []core.Ref[int]
	for i := 0; i < 64; i++ {
		ref, err := f.square.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatal(err)
		}
		if v != i*i {
			t.Fatalf("task %d = %d", i, v)
		}
	}
	var placed int64
	for _, g := range c.Globals {
		placed += g.Placed()
	}
	if placed == 0 {
		t.Fatal("global scheduler never placed a task — spillover broken")
	}
	// Work must actually have spread beyond node 0.
	remote := int64(0)
	for i := 1; i < c.NumNodes(); i++ {
		remote += c.Node(i).Executor().Executed()
	}
	if remote == 0 {
		t.Fatal("no task executed on a remote node")
	}
}

func TestHeterogeneousGPUPlacement(t *testing.T) {
	f := newTestFuncs()
	// Node 0: CPU only. Node 1: has the GPU. GPU tasks must run on node 1.
	c, err := New(Config{
		Nodes: 2,
		PerNodeResources: []types.Resources{
			types.CPU(4),
			{types.ResCPU: 4, types.ResGPU: 1},
		},
		Registry: f.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver() // driver on the CPU-only node
	var refs []core.Ref[int]
	for i := 0; i < 8; i++ {
		ref, err := f.gpu.Remote(d, i, core.WithResources(types.GPU(1, 1)))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatal(err)
		}
		if v != -i {
			t.Fatalf("gpu(%d) = %d", i, v)
		}
	}
	if got := c.Node(1).Executor().Executed(); got < 8 {
		t.Fatalf("GPU node executed %d tasks, want >= 8", got)
	}
	if got := c.Node(0).Executor().Failed(); got != 0 {
		t.Fatalf("CPU node failed %d tasks", got)
	}
}

func TestObjectTransferBetweenNodes(t *testing.T) {
	f := newTestFuncs()
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       f.reg,
		SpillThreshold: SpillThresholdOf(0), // force everything through global
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	a, _ := f.square.Remote(d, 5)
	b, _ := f.square.RemoteRef(d, a) // may land on a different node: transfer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := core.Get(ctx, d, b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 625 {
		t.Fatalf("got %d, want 625", v)
	}
}

func TestReconstructionAfterNodeDeath(t *testing.T) {
	f := newTestFuncs()
	c, err := New(Config{
		Nodes:          3,
		NodeResources:  types.CPU(2),
		Registry:       f.reg,
		SpillThreshold: SpillThresholdOf(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()

	// Produce values across the cluster and wait for completion.
	var refs []core.Ref[int]
	for i := 0; i < 12; i++ {
		ref, err := f.square.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	raw := make([]core.ObjectRef, len(refs))
	for i, r := range refs {
		raw[i] = r.Untyped()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := d.Wait(ctx, raw, len(raw), 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill a non-driver node: objects whose only copy lived there are lost.
	c.KillNode(2)

	// Every value must still be retrievable, via lineage replay if needed.
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatalf("get %d after node death: %v", i, err)
		}
		if v != i*i {
			t.Fatalf("reconstructed value %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestReconstructionOfDependencyChain(t *testing.T) {
	f := newTestFuncs()
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(4),
		Registry:       f.reg,
		SpillThreshold: SpillThresholdOf(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	a, _ := f.square.Remote(d, 2)        // 4
	b, _ := f.square.RemoteRef(d, a)     // 16
	chain, _ := f.square.RemoteRef(d, b) // 256
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := core.Get(ctx, d, chain); err != nil {
		t.Fatal(err)
	}
	// Lose everything on node 1; the chain must be replayable end to end.
	c.KillNode(1)
	v, err := core.Get(ctx, d, chain)
	if err != nil {
		t.Fatal(err)
	}
	if v != 256 {
		t.Fatalf("chain after reconstruction = %d", v)
	}
}

func TestDriverPutNotReconstructable(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	ref, err := d.Put("precious")
	if err != nil {
		t.Fatal(err)
	}
	// Drop the object everywhere.
	c.Node(0).Store().DropAll()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = d.Get(ctx, ref)
	if err == nil {
		t.Fatal("Get of dropped Put object succeeded")
	}
}

func TestCentralOnlyAblationStillCorrect(t *testing.T) {
	f := newTestFuncs()
	spill := scheduler.SpillAlways
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(4),
		Registry:       f.reg,
		SpillThreshold: &spill,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	d := c.Driver()
	var refs []core.Ref[int]
	for i := 0; i < 16; i++ {
		r, err := f.square.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range refs {
		v, err := core.Get(ctx, d, r)
		if err != nil || v != i*i {
			t.Fatalf("task %d: %d, %v", i, v, err)
		}
	}
	if c.Globals[0].Placed() < 16 {
		t.Fatalf("central-only mode placed %d < 16", c.Globals[0].Placed())
	}
}

func TestManySmallTasksThroughput(t *testing.T) {
	f := newTestFuncs()
	c := singleNode(t, f)
	d := c.Driver()
	const n = 500
	refs := make([]core.ObjectRef, n)
	for i := 0; i < n; i++ {
		r, err := f.square.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r.Untyped()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ready, _, err := d.Wait(ctx, refs, n, 50*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ready) != n {
		t.Fatalf("only %d/%d completed", len(ready), n)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || fmt.Sprintf("%s", s) != "" && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
