package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/chaostest"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/types"
)

// elasticityHarness registers a gated blob producer: every task blocks on
// the shared release channel (the in-process registry is shared by all
// nodes, provisioned ones included), so the submit burst's backlog holds
// — deterministically, under any scheduler or race-detector load — until
// the test has observed the scale-up, then resolves to verifiable bytes.
type elasticityHarness struct {
	reg     *core.Registry
	work    core.Func2[int, int, []byte]
	release chan struct{}
	once    sync.Once
}

func newElasticityHarness() *elasticityHarness {
	h := &elasticityHarness{reg: core.NewRegistry(), release: make(chan struct{})}
	h.work = core.Register2(h.reg, "as.work", func(tc *core.TaskContext, seed, size int) ([]byte, error) {
		<-h.release
		out := make([]byte, size)
		for i := range out {
			out[i] = byte(seed * (i + 1))
		}
		return out, nil
	})
	return h
}

func (h *elasticityHarness) unblock() { h.once.Do(func() { close(h.release) }) }

// runElasticity drives the acceptance loop of ISSUE 5 against an
// already-built 2-node cluster: a submit burst triggers scale-up, the
// results all read back correct, idleness triggers drains that
// spill-migrate every referenced object (verified readable afterward via
// Get, zero lost-object or store-full failures) before the drained nodes
// deregister back to the 2-node floor.
func runElasticity(t *testing.T, c *Cluster, h *elasticityHarness) {
	t.Cleanup(h.unblock)
	driverNode := c.Node(0).ID()
	as := autoscale.New(autoscale.Config{
		Ctrl:        c.API,
		Provisioner: c,
		Interval:    20 * time.Millisecond,
		Policy: autoscale.Policy{
			MinNodes:       2,
			MaxNodes:       4,
			ScaleUpBacklog: 3,
			IdleAfter:      300 * time.Millisecond,
			Cooldown:       150 * time.Millisecond,
			DrainTimeout:   30 * time.Second,
			Protected:      func(id types.NodeID) bool { return id == driverNode },
		},
	})
	as.Start()
	defer as.Stop()

	// Submit burst: far more tasks than the 2 seed nodes' 4 CPUs, all
	// holding until released, so heartbeats carry a standing backlog.
	const n, size = 32, 32 << 10
	d := c.Driver()
	refs := make([]core.Ref[[]byte], n)
	var err error
	for i := range refs {
		refs[i], err = h.work.Remote(d, i+1, size)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Scale-up reaction: the backlog must grow the cluster past its seed.
	waitFor(t, 30*time.Second, "scale-up under the burst", func() bool {
		return c.NumNodes() >= 3
	})
	h.unblock()

	// Consume every result while the burst drains.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i, r := range refs {
		data, err := core.Get(ctx, d, r)
		if err != nil {
			t.Fatalf("burst result %d: %v", i, err)
		}
		if len(data) != size || data[0] != byte(i+1) {
			t.Fatalf("burst result %d corrupted", i)
		}
	}

	// Idleness now triggers scale-down: nodes drain (migrating the blobs
	// the driver still references) and deregister, back down to MinNodes.
	waitFor(t, 60*time.Second, "drain back to the floor", func() bool {
		alive, active := 0, 0
		for _, ni := range c.API.Nodes() {
			if !ni.Alive {
				continue
			}
			alive++
			if ni.State == types.NodeActive {
				active++
			}
		}
		// The completion counter lands on the autoscaler's next tick after
		// the node deregisters, so it is part of the awaited condition.
		st := as.Status()
		return active == 2 && alive == 2 && st.ScaleUps >= 1 && st.Drained >= 1
	})

	// The drained nodes' objects all migrated: every ref still readable,
	// nothing Lost, no store-full/lost-object failures anywhere.
	for i, r := range refs {
		info, ok := c.API.GetObject(r.Untyped().ID)
		if !ok || info.State != types.ObjectReady {
			t.Fatalf("blob %d not READY after drains: %+v ok=%v", i, info, ok)
		}
		data, err := core.Get(ctx, d, r)
		if err != nil || len(data) != size {
			t.Fatalf("blob %d unreadable after drains: len=%d err=%v", i, len(data), err)
		}
	}
	for _, ts := range c.API.Tasks() {
		if ts.Status == types.TaskFailed {
			t.Fatalf("task %v failed during elasticity cycle: %s", ts.Spec.ID, ts.Error)
		}
	}

	checker := chaostest.New(c.API)
	checker.AwaitReferencedReachable(t, 10*time.Second)
	for _, r := range refs {
		d.Release(r.Untyped())
	}
	checker.AwaitZeroRefcounts(t, 30*time.Second)
}

// TestAutoscalerElasticity is the acceptance test (ISSUE 5) against the
// in-process control plane.
func TestAutoscalerElasticity(t *testing.T) {
	h := newElasticityHarness()
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       h.reg,
		SpillThreshold: SpillThresholdOf(0), // everything through the global queue
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	runElasticity(t, c, h)
}

// TestAutoscalerElasticitySharded runs the same closed loop against the
// sharded control plane: the autoscaler speaks only gcs.API, so one
// implementation must serve both deployments (the ISSUE's tentpole
// requirement).
func TestAutoscalerElasticitySharded(t *testing.T) {
	h := newElasticityHarness()
	c, err := New(Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       h.reg,
		GCSShards:      3,
		SpillThreshold: SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	runElasticity(t, c, h)
}
