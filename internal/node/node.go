// Package node assembles one cluster node exactly as drawn in the paper's
// Figure 3: a local scheduler, a shared in-memory object store, and workers
// (goroutine executions admitted by resource accounting), wired to the
// centralized control plane and the cluster network. A Node implements
// core.Backend, so both the driver and every task running on the node share
// one API surface.
package node

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gcs"
	"repro/internal/jobs"
	"repro/internal/lifetime"
	"repro/internal/metrics"
	"repro/internal/objectstore"
	"repro/internal/scheduler"
	"repro/internal/transport"
	"repro/internal/types"
)

// AssignMethod is the transport method by which the global scheduler
// delivers placements to a node's local scheduler.
const AssignMethod = "scheduler.assign"

// Gang-scheduling methods served by every node (DESIGN.md §9): the global
// scheduler's reservation pass drives them.
const (
	// ReserveMethod asks the local scheduler to hold a bundle reservation;
	// payload ReserveReq, error when the capacity is unavailable.
	ReserveMethod = "scheduler.reserve"
	// GroupReleaseMethod drops a group's reservations; payload GroupReleaseReq.
	GroupReleaseMethod = "scheduler.releaseGroup"
	// FailTaskMethod terminally fails a task through this node's store so
	// blocked Gets observe it; payload FailTaskReq.
	FailTaskMethod = "scheduler.failTask"
)

// Wire shapes for the gang-scheduling methods (gob via codec).
type (
	// ReserveReq asks for one bundle reservation.
	ReserveReq struct {
		Group  types.PlacementGroupID
		Bundle int
		Res    types.Resources
	}
	// GroupReleaseReq drops a group's reservations; Removed selects
	// fail-members (terminal removal) over respill (placement rollback).
	GroupReleaseReq struct {
		Group   types.PlacementGroupID
		Removed bool
	}
	// FailTaskReq buries a task with a terminal error.
	FailTaskReq struct {
		Spec   types.TaskSpec
		Reason string
	}
)

// Config describes one node.
type Config struct {
	// Resources is the node's total capacity (e.g. {CPU:8, GPU:1}).
	Resources types.Resources
	// StoreCapacity bounds the object store in bytes; 0 = unlimited.
	StoreCapacity int64
	// SpillDir, when set, enables the disk spill tier: under memory
	// pressure the store spills cold-but-referenced objects there instead
	// of failing with ErrStoreFull.
	SpillDir string
	// SpillBudget bounds the spill tier's bytes on disk; 0 = unlimited.
	// Over budget, the tier evicts the coldest unreferenced spill files,
	// and refuses spills (surfacing ErrStoreFull) when every file is still
	// referenced.
	SpillBudget int64
	// Pull tunes the chunked pull protocol (zero value = defaults).
	Pull lifetime.PullConfig
	// SpillThreshold is forwarded to the local scheduler (see
	// scheduler.SpillNever / SpillAlways).
	SpillThreshold int
	// Network connects the node to its peers and must match ListenAddr.
	Network transport.Network
	// ListenAddr is the node server's bind address.
	ListenAddr string
	// AdvertiseAddr is the address peers dial; defaults to ListenAddr.
	AdvertiseAddr string
	// Ctrl is the control plane.
	Ctrl gcs.API
	// Registry holds the functions this node's workers can run.
	Registry *core.Registry
	// HeartbeatInterval for load reporting; 0 disables heartbeats.
	HeartbeatInterval time.Duration
	// DepPollInterval is forwarded to the local scheduler (tests tighten it).
	DepPollInterval time.Duration
	// DisablePrefetch turns off park-time dependency prefetch (E19).
	DisablePrefetch bool
	// InlineDispatch enables the local scheduler's inline (trampoline)
	// fast path for eligible tiny tasks (DESIGN.md §15).
	InlineDispatch bool
	// DrainPollInterval bounds how quickly the node notices a Draining
	// mark on its own control-plane record (the pub/sub fast path makes it
	// rarely matter). Zero selects a default.
	DrainPollInterval time.Duration
	// OnDrained, when set, is invoked after a drain completes — state
	// Drained committed, every object migrated — just before the node
	// shuts itself down (tests and cluster bookkeeping hook it).
	OnDrained func()
	// DisableTelemetry turns off the node's metrics registry and span
	// tracer (benchmark baselines; the default is on — the record path
	// costs a few atomic adds).
	DisableTelemetry bool
	// TraceBuffer caps the span ring between heartbeat harvests; 0 selects
	// the tracer default.
	TraceBuffer int
	// Metrics, when set, is the registry the node instruments into instead
	// of creating its own — processes that host more than the node (e.g.
	// raynode's head, which also runs the GCS supervisor) share one so all
	// process metrics ship in the node's heartbeat.
	Metrics *metrics.Registry
}

// Node is a running cluster node.
type Node struct {
	id      types.NodeID
	addr    string
	cfg     Config
	ctrl    gcs.API
	store   *objectstore.Store
	tier    *lifetime.DiskSpiller
	life    *lifetime.Manager
	fetcher *lifetime.PullManager
	migr    *lifetime.Migrator
	taskled *lifetime.TaskLedger
	admit   *jobs.Admission
	sched   *scheduler.Local
	exec    *worker
	recon   *fault.Reconstructor
	// reg/tracer are this node's telemetry plane; nil when disabled. The
	// heartbeat loop ships snapshots and drained spans to the GCS.
	reg    *metrics.Registry
	tracer *metrics.Tracer
	sink   gcs.TelemetrySink
	// draining guards against concurrent drain executions (a pub/sub event
	// racing the poll fallback).
	draining atomic.Bool

	server   *transport.Server
	listener io.Closer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	dead     atomic.Bool
}

// worker aliases the executor to keep the Node struct readable.
type worker = executorShim

// New builds and starts a node: object store, pull server, local scheduler,
// executor, reconstructor, heartbeats, and control-plane registration.
func New(cfg Config) (*Node, error) {
	if cfg.Ctrl == nil || cfg.Network == nil || cfg.Registry == nil {
		return nil, fmt.Errorf("node: Ctrl, Network, and Registry are required")
	}
	if cfg.Resources == nil {
		cfg.Resources = types.CPU(8)
	}
	if cfg.AdvertiseAddr == "" {
		cfg.AdvertiseAddr = cfg.ListenAddr
	}
	var id types.NodeID
	if _, err := rand.Read(id[:]); err != nil {
		return nil, err
	}

	n := &Node{id: id, addr: cfg.AdvertiseAddr, cfg: cfg, ctrl: cfg.Ctrl, stop: make(chan struct{})}
	if !cfg.DisableTelemetry {
		n.reg = cfg.Metrics
		if n.reg == nil {
			n.reg = metrics.NewRegistry()
		}
		// Span timestamps use the cluster clock: one control-plane NowNs at
		// boot plus the local monotonic offset, so spans from different
		// nodes line up on one trace timeline without per-span RPCs.
		boot := cfg.Ctrl.NowNs()
		started := time.Now()
		n.tracer = metrics.NewTracer(cfg.TraceBuffer, id.Hex(), func() int64 {
			return boot + time.Since(started).Nanoseconds()
		})
		n.sink, _ = cfg.Ctrl.(gcs.TelemetrySink)
		// A remote or sharded control-plane client can time its RPCs; wire
		// it into this node's registry so gcs.rpc.* ships with heartbeats.
		if ms, ok := cfg.Ctrl.(interface{ SetMetrics(*metrics.Registry) }); ok {
			ms.SetMetrics(n.reg)
		}
	}
	n.store = objectstore.New(id, cfg.Ctrl, cfg.StoreCapacity)
	n.store.SetObservability(n.reg, n.tracer)
	n.life = lifetime.NewManager(cfg.Ctrl, n.store)
	n.store.SetRefChecker(n.life.Referenced)
	if cfg.SpillDir != "" {
		tier, err := lifetime.NewDiskSpiller(cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		tier.SetBudget(cfg.SpillBudget)
		// Budget eviction uses the same liveness oracle as spill-vs-drop:
		// only unreferenced files are reclaimable, and an unreachable
		// control plane (shard mid-failover) reads as "referenced".
		tier.SetRefChecker(n.life.Referenced)
		// Startup hygiene: a previous incarnation's spill files are orphans
		// here — this node's fresh ID owns none of them, and files whose
		// object-table entry is gone are unreachable garbage either way.
		// Swept before the store can spill, so nothing live is at risk.
		if _, err := tier.SweepOrphans(func(obj types.ObjectID) bool {
			info, ok := cfg.Ctrl.GetObject(obj)
			return ok && info.IsSpilledOn(id)
		}); err != nil {
			return nil, err
		}
		n.tier = tier
		n.store.SetSpillTier(tier)
	}
	n.fetcher = lifetime.NewPullManager(n.store, cfg.Ctrl, cfg.Network, n.resolvePeerAddr, cfg.Pull)
	n.fetcher.SetObservability(n.reg, n.tracer)
	n.migr = lifetime.NewMigrator(n.fetcher, n.life.Tracker())
	// The owner-side task ledger (DESIGN.md §13): this node is the authority
	// for the state and lineage of every task submitted through it, and the
	// GCS task table follows via batched async deltas.
	n.taskled = lifetime.NewTaskLedger(cfg.Ctrl)
	n.taskled.SetNode(id)
	// Per-submit job admission (DESIGN.md §14). The TTL cache amortizes the
	// job-record read and quota usage scan across a burst of submissions.
	n.admit = jobs.NewAdmission(cfg.Ctrl, 0)

	n.sched = scheduler.NewLocal(scheduler.LocalConfig{
		Node:            id,
		Total:           cfg.Resources,
		Ctrl:            cfg.Ctrl,
		Store:           n.store,
		Fetcher:         n.fetcher,
		Refs:            n.life.Tracker(),
		Ledger:          n.taskled,
		SpillThreshold:  cfg.SpillThreshold,
		DepPollInterval: cfg.DepPollInterval,
		DisablePrefetch: cfg.DisablePrefetch,
		InlineDispatch:  cfg.InlineDispatch,
		Metrics:         n.reg,
		Tracer:          n.tracer,
		JobFence: func(id types.JobID) bool {
			info, ok := n.admit.Job(id)
			return ok && info.State != types.JobRunning
		},
		// Fair-share fence (DESIGN.md §15): while two or more tenants are
		// running, inline submission would bypass the DRR dispatch gate, so
		// the trampoline stands down and every task flows through the queue.
		InlineFence: func() bool { return n.admit.MultiTenant() },
	})
	n.recon = &fault.Reconstructor{
		Ctrl:   cfg.Ctrl,
		Ledger: n.taskled,
		Resubmit: func(spec types.TaskSpec) error {
			if n.dead.Load() {
				return scheduler.ErrStopped
			}
			return n.sched.Submit(spec, false)
		},
	}
	n.sched.SetRecon(func(obj types.ObjectID) { _ = n.recon.RequestObject(obj) })
	n.exec = newExecutorShim(n)
	n.exec.inner.SetLedger(n.taskled)
	n.sched.SetExec(n.exec.Execute)
	n.sched.SetExecInline(n.exec.ExecuteInline)

	n.server = transport.NewServer()
	n.server.SetMetrics(n.reg)
	objectstore.RegisterPullHandler(n.server, n.store)
	lifetime.RegisterMigrateHandler(n.server, n.fetcher)
	n.server.Handle(AssignMethod, func(payload []byte) ([]byte, error) {
		spec, err := codec.DecodeAs[types.TaskSpec](payload)
		if err != nil {
			return nil, fmt.Errorf("node: bad assignment: %w", err)
		}
		if err := n.sched.Submit(spec, true); err != nil {
			return nil, err
		}
		return nil, nil
	})
	n.server.Handle(ReserveMethod, func(payload []byte) ([]byte, error) {
		req, err := codec.DecodeAs[ReserveReq](payload)
		if err != nil {
			return nil, fmt.Errorf("node: bad reservation: %w", err)
		}
		if !n.sched.ReserveBundle(req.Group, req.Bundle, req.Res) {
			return nil, fmt.Errorf("node: bundle %d of %v does not fit %v", req.Bundle, req.Group, req.Res)
		}
		return nil, nil
	})
	n.server.Handle(GroupReleaseMethod, func(payload []byte) ([]byte, error) {
		req, err := codec.DecodeAs[GroupReleaseReq](payload)
		if err != nil {
			return nil, fmt.Errorf("node: bad group release: %w", err)
		}
		n.sched.ReleaseGroup(req.Group, req.Removed)
		return nil, nil
	})
	n.server.Handle(FailTaskMethod, func(payload []byte) ([]byte, error) {
		req, err := codec.DecodeAs[FailTaskReq](payload)
		if err != nil {
			return nil, fmt.Errorf("node: bad fail request: %w", err)
		}
		n.sched.FailTask(req.Spec, req.Reason)
		return nil, nil
	})
	listener, err := cfg.Network.Listen(cfg.ListenAddr, n.server)
	if err != nil {
		return nil, fmt.Errorf("node: listen %s: %w", cfg.ListenAddr, err)
	}
	n.listener = listener

	cfg.Ctrl.RegisterNode(types.NodeInfo{ID: id, Addr: cfg.AdvertiseAddr, Total: cfg.Resources.Clone()})
	n.life.Start()
	n.taskled.Start()
	n.sched.Start()
	if cfg.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	n.wg.Add(1)
	go n.drainWatch()
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.id }

// Addr returns the node's advertised transport address.
func (n *Node) Addr() string { return n.addr }

// Store exposes the object store (tests, tools).
func (n *Node) Store() *objectstore.Store { return n.store }

// Lifetime exposes the lifetime manager (tests, dashboards).
func (n *Node) Lifetime() *lifetime.Manager { return n.life }

// Puller exposes the chunked pull manager (tests, dashboards).
func (n *Node) Puller() *lifetime.PullManager { return n.fetcher }

// Scheduler exposes the local scheduler (tests, dashboards).
func (n *Node) Scheduler() *scheduler.Local { return n.sched }

// Executor exposes execution counters (dashboards).
func (n *Node) Executor() ExecStats { return n.exec }

// Registry returns the node's function registry.
func (n *Node) Registry() *core.Registry { return n.cfg.Registry }

// Metrics returns the node's metrics registry (nil when telemetry is off).
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Tracer returns the node's span tracer (nil when telemetry is off).
func (n *Node) Tracer() *metrics.Tracer { return n.tracer }

func (n *Node) resolvePeerAddr(id types.NodeID) (string, bool) {
	info, ok := n.ctrl.GetNode(id)
	if !ok || !info.Alive {
		return "", false
	}
	return info.Addr, true
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			stats := n.store.Stats()
			stats.Reclaimed = n.life.Reclaimed()
			if n.tier != nil {
				stats.TierEvicted = n.tier.TierEvictions()
			}
			n.ctrl.Heartbeat(n.id, n.sched.QueueLen(), n.sched.Available(), stats)
			n.publishTelemetry()
		case <-n.stop:
			return
		}
	}
}

// publishTelemetry ships the node's metric snapshot and any spans recorded
// since the last heartbeat to the control plane (R7: profiling tools read
// them from centralized state). Telemetry is best-effort and ephemeral —
// a failed publish drops this interval's spans rather than retrying into
// a degraded control plane.
func (n *Node) publishTelemetry() {
	if n.sink == nil || n.reg == nil {
		return
	}
	spans := n.tracer.Drain()
	n.sink.PublishTelemetry(n.id, n.reg.Snapshot(), spans)
}

// --- drain protocol (DESIGN.md §10) ---

// drainWatch notices a Draining mark on this node's own control-plane
// record — set by the autoscaler's scale-down decision or an operator's
// `rayctl drain` — and runs the drain. The node-events subscription is the
// fast path; the poll is the at-least-once fallback for a dropped event.
func (n *Node) drainWatch() {
	defer n.wg.Done()
	sub := n.ctrl.SubscribeNodeEvents()
	defer sub.Close()
	// The poll is deliberately slow: the subscription is the fast path, a
	// drain start tolerates sub-second latency, and every poll tick is a
	// control-plane RPC paid by every node for its whole lifetime.
	poll := n.cfg.DrainPollInterval
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	subC := sub.C()
	for {
		marked := false
		select {
		case msg, ok := <-subC:
			if !ok {
				subC = nil // dead subscription: degrade to the poll
				continue
			}
			info, err := gcs.DecodeNodeEvent(msg)
			if err != nil || info.ID != n.id {
				continue
			}
			marked = info.State == types.NodeDraining
		case <-t.C:
			info, ok := n.ctrl.GetNode(n.id)
			marked = ok && info.State == types.NodeDraining
		case <-n.stop:
			return
		}
		if marked && n.runDrain() {
			return // drained and shutting down
		}
	}
}

// runDrain executes the drain state machine: fence admissions, hand the
// backlog to the global queue, quiesce running tasks, spill-migrate every
// object to peers, commit Draining→Drained, and deregister. Any failure —
// or an operator/autoscaler rollback of the record to Active — aborts:
// the fence drops and the node serves again. Reports whether the node
// drained (and is shutting down).
func (n *Node) runDrain() bool {
	if !n.draining.CompareAndSwap(false, true) {
		return false // a drain is already running
	}
	defer n.draining.Store(false)
	n.ctrl.LogEvent(types.Event{Kind: "drain-start", Node: n.id})
	n.sched.SetDraining(true)
	evicted := n.sched.DrainBacklog()
	// Quiesce: wait out tasks already dispatched or blocked mid-Get. New
	// work cannot arrive (admissions are fenced; the global scheduler
	// stopped placing here when the CAS published).
	for n.sched.Busy() > 0 || n.exec.Active() > 0 {
		if n.drainRolledBack() {
			return n.abortDrain("quiesce")
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-n.stop:
			return true // killed or shut down mid-drain; nothing to resume
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-n.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := n.migr.DrainObjects(ctx, n.drainRolledBack); err != nil {
		if n.dead.Load() {
			return true
		}
		// Migration cannot complete (no Active peers, peers full, or an
		// operator abort): roll back to Active rather than strand data.
		n.ctrl.CASNodeState(n.id, []types.NodeState{types.NodeDraining}, types.NodeActive)
		return n.abortDrain(err.Error())
	}
	if !n.ctrl.CASNodeState(n.id, []types.NodeState{types.NodeDraining}, types.NodeDrained) {
		return n.abortDrain("drained commit lost") // rolled back underneath
	}
	migrated, dropped := n.migr.Stats()
	n.ctrl.LogEvent(types.Event{Kind: "drain-complete", Node: n.id,
		Detail: fmt.Sprintf("migrated=%d dropped=%d respilled=%d", migrated, dropped, evicted)})
	// Safety net for anything that slipped in after the final sweep: drop
	// it with its location deregistered so consumers see Lost (lineage
	// replay) instead of a phantom copy on a deregistered node.
	n.store.DropAll()
	if n.cfg.OnDrained != nil {
		n.cfg.OnDrained()
	}
	go n.Shutdown()
	return true
}

// drainRolledBack reports whether this node's record left Draining — the
// autoscaler's drain timeout or an operator abort rolled it back. An
// unreadable record (control plane mid-failover) is NOT a rollback: the
// drain holds its course and retries against the restarted shard.
func (n *Node) drainRolledBack() bool {
	info, ok := n.ctrl.GetNode(n.id)
	return ok && info.State != types.NodeDraining
}

// abortDrain drops the admission fence and resumes normal service.
func (n *Node) abortDrain(why string) bool {
	n.sched.SetDraining(false)
	n.ctrl.LogEvent(types.Event{Kind: "drain-abort", Node: n.id, Detail: why})
	return false
}

// --- core.Backend ---

// SubmitTask implements core.Backend.
func (n *Node) SubmitTask(spec types.TaskSpec) error {
	if n.dead.Load() {
		return scheduler.ErrStopped
	}
	return n.sched.Submit(spec, false)
}

// SubmitTaskAt implements core.InlineBackend: a submission from a task
// running inline carries its depth so the scheduler's trampoline cap can
// bounce deep chains back to the queue (DESIGN.md §15).
func (n *Node) SubmitTaskAt(spec types.TaskSpec, depth int) error {
	if n.dead.Load() {
		return scheduler.ErrStopped
	}
	return n.sched.SubmitAt(spec, false, depth)
}

// ObjectLocal implements core.Backend.
func (n *Node) ObjectLocal(id types.ObjectID) bool { return n.store.Contains(id) }

// PutObject implements core.Backend.
func (n *Node) PutObject(id types.ObjectID, data []byte) error {
	return n.store.Put(id, data)
}

// Control implements core.Backend.
func (n *Node) Control() gcs.API { return n.ctrl }

// RetainObject implements core.RefCounted: futures created through this
// node hold references in its lifetime tracker.
func (n *Node) RetainObject(id types.ObjectID) { n.life.Tracker().Retain(id) }

// ReleaseObject implements core.RefCounted.
func (n *Node) ReleaseObject(id types.ObjectID) { n.life.Tracker().Release(id) }

// NodeID implements core.Backend.
func (n *Node) NodeID() types.NodeID { return n.id }

// OwnsTask implements core.TaskOwner: waits on futures whose producing
// task this node owns resolve from the in-process ledger's state events
// instead of per-object control-plane subscriptions (DESIGN.md §13).
func (n *Node) OwnsTask(id types.TaskID) bool { return n.taskled.Owns(id) }

// WatchTaskTerminal implements core.TaskOwner.
func (n *Node) WatchTaskTerminal(id types.TaskID) <-chan struct{} {
	return n.taskled.WatchTerminal(id)
}

// AdmitJobTask implements core.JobGate: one tenanted submission is decided
// against the job's record and quota ceilings through the node's TTL-cached
// admission state (DESIGN.md §14).
func (n *Node) AdmitJobTask(job types.JobID) error { return n.admit.Admit(job) }

// TaskLedger exposes the owner-side task ledger (tests, dashboards).
func (n *Node) TaskLedger() *lifetime.TaskLedger { return n.taskled }

// ResolveObject implements core.Backend: block until the object is locally
// resident, pulling remote copies and replaying lineage for lost ones. This
// is the machinery under every Get.
func (n *Node) ResolveObject(ctx context.Context, id types.ObjectID) ([]byte, error) {
	if data, ok := n.store.Get(id); ok {
		return data, nil
	}
	sub := n.ctrl.SubscribeObjectReady(id)
	defer sub.Close()
	poll := time.NewTicker(10 * time.Millisecond)
	defer poll.Stop()
	// Stranded-producer probing is throttled (see scheduler.Local.resolveDep
	// for the rationale); ~every 20 wakeups ≈ 200ms worst case to detect a
	// producer that died while queued.
	const strandedCheckPeriod = 20
	wakeups := 0
	for {
		if data, ok := n.store.Get(id); ok {
			return data, nil
		}
		if info, ok := n.ctrl.GetObject(id); ok {
			switch info.State {
			case types.ObjectReady:
				if len(info.Locations) > 0 {
					fctx, cancel := context.WithTimeout(ctx, 5*time.Second)
					err := n.fetcher.Fetch(fctx, id, info.Locations)
					cancel()
					if err == nil {
						continue
					}
				}
			case types.ObjectLost:
				if err := n.recon.RequestObject(id); err != nil && !errors.Is(err, fault.ErrControlUnavailable) {
					return nil, err
				}
				// ErrControlUnavailable is retryable: a GCS incarnation died
				// mid-request. Keep waiting; the request is re-issued against
				// the restarted shard on a later wakeup.
			case types.ObjectPending:
				// The reconstructor no-ops for healthy in-flight producers
				// and replays producers stranded on dead nodes.
				if wakeups%strandedCheckPeriod == 0 {
					if err := n.recon.RequestObject(id); err != nil && !errors.Is(err, fault.ErrControlUnavailable) {
						return nil, err
					}
				}
			}
		}
		wakeups++
		arrival := n.store.WaitChan(id)
		select {
		case <-arrival:
		case <-sub.C():
		case <-poll.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.stop:
			return nil, scheduler.ErrStopped
		}
	}
}

// --- lifecycle ---

// Shutdown stops the node gracefully.
func (n *Node) Shutdown() {
	n.stopOnce.Do(func() {
		n.dead.Store(true)
		close(n.stop)
		n.sched.Stop()
		// Final task-ledger flush: every terminal transition this owner
		// stamped reaches the follower table before the node deregisters.
		n.taskled.Stop()
		// Settle the node's ledger: drivers', borrows', and bridges'
		// references all die with a graceful shutdown, so surviving nodes
		// can reclaim anything only this node kept alive. (Kill skips
		// this: a crashed process cannot release, and leaked counts are
		// the conservative failure mode.)
		n.life.Tracker().ReleaseAll()
		n.life.Stop()
		if n.listener != nil {
			n.listener.Close()
		}
		n.fetcher.Close()
		// Quiesce the node's own loops BEFORE declaring death: a heartbeat
		// in flight after MarkNodeDead would resurrect Alive on a record
		// nobody will ever mark dead again.
		n.wg.Wait()
		n.ctrl.MarkNodeDead(n.id)
	})
}

// Kill simulates a node crash for fault-tolerance experiments (R6): the
// scheduler dies with its queues, the object store's memory vanishes, the
// server stops answering, and the control plane learns the node is dead.
// Objects whose only copy lived here transition to LOST.
func (n *Node) Kill() {
	n.stopOnce.Do(func() {
		n.dead.Store(true)
		close(n.stop)
		// Abandon the reference ledger FIRST: unflushed deltas die with the
		// process (and the dead-latch stops the scheduler teardown below
		// from flushing its releases — a crashed node cannot release). The
		// owner-death sweep reconciles what this node had already flushed.
		n.life.Kill()
		// Same for the task ledger: unflushed task-state deltas die here,
		// and the global scheduler's owner-transfer sweep re-drives the
		// tasks this owner leaves behind in the follower table.
		n.taskled.Abandon()
		n.sched.Stop()
		if n.listener != nil {
			n.listener.Close()
		}
		n.store.Fail()
		n.fetcher.Close()
		n.wg.Wait()
		n.ctrl.MarkNodeDead(n.id)
	})
}
