package node

import (
	"context"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
	workerpkg "repro/internal/worker"
)

// ExecStats exposes execution counters without leaking the executor.
type ExecStats interface {
	Active() int64
	Executed() int64
	Failed() int64
}

// executorShim binds worker.Executor to the node: it supplies the hooks
// that implement worker lending (a task blocked in Get releases its
// resources to the local scheduler) and the retry re-enqueue path.
type executorShim struct {
	inner  *workerpkg.Executor
	tracer *metrics.Tracer
	execNs *metrics.Histogram
}

func newExecutorShim(n *Node) *executorShim {
	s := &executorShim{}
	hooks := workerpkg.Hooks{
		OnBlocked: func(spec types.TaskSpec, blocked bool) {
			if blocked {
				n.sched.ReleaseFor(spec)
			} else {
				n.sched.ReacquireFor(spec)
			}
		},
		Resubmit: func(spec types.TaskSpec) {
			// Retry bookkeeping already reset the task's status; enqueue
			// directly (Submit's dedupe would treat it as in flight).
			_ = n.sched.Enqueue(spec)
		},
	}
	s.inner = workerpkg.NewExecutor(n.id, n.ctrl, n.cfg.Registry, n, hooks)
	s.tracer = n.tracer
	s.execNs = n.reg.Histogram("worker.exec.ns")
	return s
}

// Execute implements scheduler.ExecFunc.
func (s *executorShim) Execute(ctx context.Context, spec types.TaskSpec, args [][]byte) {
	sp := s.tracer.Begin("exec", "worker.exec")
	sp.Task = spec.ID.Hex()
	sp.Trace = spec.TraceID
	start := time.Now()
	s.inner.Execute(ctx, spec, args)
	s.execNs.Observe(time.Since(start).Nanoseconds())
	sp.End()
}

// ExecuteInline implements scheduler.ExecFunc for the inline dispatch path
// (DESIGN.md §15). The span carries inline=true so traces distinguish the
// two modes — by contract the only observable difference besides latency.
func (s *executorShim) ExecuteInline(ctx context.Context, spec types.TaskSpec, args [][]byte) {
	sp := s.tracer.Begin("exec", "worker.exec")
	sp.Task = spec.ID.Hex()
	sp.Trace = spec.TraceID
	sp.Detail = "inline=true"
	start := time.Now()
	s.inner.ExecuteInline(ctx, spec, args)
	s.execNs.Observe(time.Since(start).Nanoseconds())
	sp.End()
}

// Active implements ExecStats.
func (s *executorShim) Active() int64 { return s.inner.Active() }

// Executed implements ExecStats.
func (s *executorShim) Executed() int64 { return s.inner.Executed() }

// Failed implements ExecStats.
func (s *executorShim) Failed() int64 { return s.inner.Failed() }
