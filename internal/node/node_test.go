package node

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/scheduler"
	"repro/internal/transport"
	"repro/internal/types"
)

func testRegistry() *core.Registry {
	reg := core.NewRegistry()
	core.Register1(reg, "double", func(tc *core.TaskContext, x int) (int, error) {
		return 2 * x, nil
	})
	return reg
}

func newTestNode(t *testing.T, ctrl gcs.API, nw transport.Network, addr string, reg *core.Registry) *Node {
	t.Helper()
	n, err := New(Config{
		Resources:      types.CPU(4),
		Network:        nw,
		ListenAddr:     addr,
		Ctrl:           ctrl,
		Registry:       reg,
		SpillThreshold: scheduler.SpillNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Shutdown)
	return n
}

func TestNodeRegistersWithControlPlane(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nw := transport.NewInproc(0)
	n := newTestNode(t, ctrl, nw, "n1", testRegistry())
	info, ok := ctrl.GetNode(n.ID())
	if !ok || !info.Alive || info.Addr != "n1" {
		t.Fatalf("node info: %+v %v", info, ok)
	}
	if info.Total[types.ResCPU] != 4 {
		t.Fatalf("capacity: %v", info.Total)
	}
}

func TestNodeBackendRoundTrip(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nw := transport.NewInproc(0)
	n := newTestNode(t, ctrl, nw, "n1", testRegistry())
	d := core.NewClient(n)
	ref, err := d.Submit1(core.Call{Function: "double", Args: []types.Arg{core.Val(21)}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := d.Get(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.DecodeAs[int](raw)
	if err != nil || v != 42 {
		t.Fatalf("double(21) = %d, %v", v, err)
	}
}

func TestAssignMethodDeliversTasks(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nw := transport.NewInproc(0)
	n := newTestNode(t, ctrl, nw, "n1", testRegistry())
	client, err := nw.Dial("n1")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	spec := types.TaskSpec{
		ID:         types.DeriveTaskID(types.NilTaskID, 80),
		Function:   "double",
		Args:       []types.Arg{core.Val(5)},
		NumReturns: 1,
		Resources:  types.CPU(1),
	}
	if _, err := client.Call(AssignMethod, codec.MustEncode(spec)); err != nil {
		t.Fatal(err)
	}
	d := core.NewClient(n)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	raw, err := d.Get(ctx, core.ObjectRef{ID: spec.ReturnID(0)})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := codec.DecodeAs[int](raw)
	if v != 10 {
		t.Fatalf("assigned task result = %d", v)
	}
	// Malformed assignment must error, not crash.
	if _, err := client.Call(AssignMethod, []byte("garbage")); err == nil {
		t.Fatal("garbage assignment accepted")
	}
}

func TestKillMarksDeadAndDropsObjects(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nw := transport.NewInproc(0)
	n := newTestNode(t, ctrl, nw, "n1", testRegistry())
	obj := types.PutObjectID(types.DeriveTaskID(types.NilTaskID, 81), 1)
	if err := n.PutObject(obj, []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Kill()
	info, _ := ctrl.GetNode(n.ID())
	if info.Alive {
		t.Fatal("killed node still alive in control plane")
	}
	oinfo, _ := ctrl.GetObject(obj)
	if oinfo.State != types.ObjectLost {
		t.Fatalf("object state after kill: %v", oinfo.State)
	}
	if err := n.SubmitTask(types.TaskSpec{ID: types.DeriveTaskID(types.NilTaskID, 82), Function: "double", NumReturns: 1}); err == nil {
		t.Fatal("dead node accepted a task")
	}
	// Store must refuse resurrection.
	if err := n.PutObject(obj, []byte("x")); err == nil {
		t.Fatal("dead store accepted a Put")
	}
}

func TestHeartbeatsUpdateLoad(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nw := transport.NewInproc(0)
	n, err := New(Config{
		Resources:         types.CPU(2),
		Network:           nw,
		ListenAddr:        "hb",
		Ctrl:              ctrl,
		Registry:          testRegistry(),
		SpillThreshold:    scheduler.SpillNever,
		HeartbeatInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	deadline := time.After(2 * time.Second)
	for {
		info, _ := ctrl.GetNode(n.ID())
		if info.Available != nil && info.Available[types.ResCPU] == 2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("heartbeat never reported availability: %+v", info)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestNodeBootSweepsSpillOrphans plants leftover spill files (a previous
// incarnation's objects plus a crashed-write temp file) in the spill dir
// and asserts a booting node reclaims them: its fresh NodeID owns none of
// them, and their object-table entries are gone.
func TestNodeBootSweepsSpillOrphans(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nw := transport.NewInproc(0)
	dir := t.TempDir()

	var stale types.ObjectID
	stale[0] = 42
	planted := []string{
		stale.Hex() + ".obj",
		stale.Hex() + ".obj.tmp",
	}
	for _, name := range planted {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	n, err := New(Config{
		Resources:      types.CPU(2),
		SpillDir:       dir,
		Network:        nw,
		ListenAddr:     "sweeper",
		Ctrl:           ctrl,
		Registry:       testRegistry(),
		SpillThreshold: scheduler.SpillNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	for _, name := range planted {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived node boot", name)
		}
	}
}

// TestTCPClusterSmoke runs two nodes over real TCP sockets sharing one
// in-process control plane, with a task whose dependency must transfer
// between nodes — the multi-process data path end to end.
func TestTCPClusterSmoke(t *testing.T) {
	ctrl := gcs.NewStore(4)
	nw := transport.TCP{}
	reg := testRegistry()
	n1, err := New(Config{
		Resources:      types.CPU(2),
		Network:        nw,
		ListenAddr:     "127.0.0.1:39381",
		Ctrl:           ctrl,
		Registry:       reg,
		SpillThreshold: scheduler.SpillNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Shutdown()
	n2, err := New(Config{
		Resources:      types.CPU(2),
		Network:        nw,
		ListenAddr:     "127.0.0.1:39382",
		Ctrl:           ctrl,
		Registry:       reg,
		SpillThreshold: scheduler.SpillNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Shutdown()

	// Produce on node 1, consume from node 2: the argument object must
	// travel over TCP via the pull protocol.
	d1 := core.NewClient(n1)
	ref, err := d1.Submit1(core.Call{Function: "double", Args: []types.Arg{core.Val(100)}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := d1.Get(ctx, ref); err != nil {
		t.Fatal(err)
	}
	d2 := core.NewClient(n2)
	ref2, err := d2.Submit1(core.Call{Function: "double", Args: []types.Arg{core.RefOf(ref)}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := d2.Get(ctx, ref2)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := codec.DecodeAs[int](raw)
	if v != 400 {
		t.Fatalf("cross-node chain = %d, want 400", v)
	}
	if !n2.Store().Contains(ref.ID) {
		t.Fatal("dependency never transferred to node 2")
	}
}
