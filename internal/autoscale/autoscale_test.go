package autoscale

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

type fakeProv struct {
	mu    sync.Mutex
	calls int
	fail  bool
}

func (p *fakeProv) ProvisionNode() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail {
		return fmt.Errorf("no capacity")
	}
	p.calls++
	return nil
}

func (p *fakeProv) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

func nid(i byte) types.NodeID {
	var id types.NodeID
	id[0] = i
	return id
}

// harness: a real in-process control plane (the autoscaler speaks only
// gcs.API, so the store doubles as the fake), with nodes registered and
// heartbeats injected directly. Ticks are driven by hand for determinism.
func harness(t *testing.T, p Policy, prov NodeProvisioner, nodes int) (*Autoscaler, *gcs.Store) {
	t.Helper()
	s := gcs.NewStore(2)
	for i := 0; i < nodes; i++ {
		s.RegisterNode(types.NodeInfo{ID: nid(byte(i + 1)), Addr: fmt.Sprintf("n%d", i), Total: types.CPU(4)})
	}
	a := New(Config{Ctrl: s, Provisioner: prov, Policy: p})
	return a, s
}

func beat(s *gcs.Store, i byte, queue int, avail types.Resources) {
	s.Heartbeat(nid(i), queue, avail, types.StoreStats{})
}

// TestScaleUpOnBacklog: heartbeat backlog over the threshold provisions a
// node; the cooldown then gates a second provision.
func TestScaleUpOnBacklog(t *testing.T) {
	prov := &fakeProv{}
	a, s := harness(t, Policy{ScaleUpBacklog: 3, MaxNodes: 4, Cooldown: time.Hour}, prov, 2)
	beat(s, 1, 1, types.CPU(0))
	beat(s, 2, 1, types.CPU(0))
	a.tick()
	if prov.count() != 0 {
		t.Fatalf("scaled up below threshold: %d", prov.count())
	}
	beat(s, 1, 5, types.CPU(0))
	beat(s, 2, 4, types.CPU(0))
	a.tick()
	if prov.count() != 1 {
		t.Fatalf("backlog over threshold must provision once: %d", prov.count())
	}
	a.tick() // still over threshold, but inside the cooldown
	if prov.count() != 1 {
		t.Fatalf("cooldown must gate the second provision: %d", prov.count())
	}
	if st := a.Status(); st.ScaleUps != 1 || st.Backlog != 9 {
		t.Fatalf("bad status: %+v", st)
	}
}

// TestScaleUpOnSpillPressure: the spill-tier signal triggers without any
// queue backlog.
func TestScaleUpOnSpillPressure(t *testing.T) {
	prov := &fakeProv{}
	a, s := harness(t, Policy{ScaleUpSpilledBytes: 1 << 20, Cooldown: time.Hour}, prov, 1)
	s.Heartbeat(nid(1), 0, types.CPU(4), types.StoreStats{SpilledBytes: 2 << 20})
	a.tick()
	if prov.count() != 1 {
		t.Fatalf("spill pressure must provision: %d", prov.count())
	}
}

// TestMaxNodesCap: no provisioning at the ceiling, however deep the
// backlog.
func TestMaxNodesCap(t *testing.T) {
	prov := &fakeProv{}
	a, s := harness(t, Policy{ScaleUpBacklog: 1, MaxNodes: 2}, prov, 2)
	beat(s, 1, 100, types.CPU(0))
	beat(s, 2, 100, types.CPU(0))
	a.tick()
	if prov.count() != 0 {
		t.Fatalf("provisioned past MaxNodes: %d", prov.count())
	}
}

// TestScaleDownDrainsIdleUnprotectedNode: sustained idleness drains
// exactly one node — the unprotected one — via the drain-state CAS.
func TestScaleDownDrainsIdleUnprotectedNode(t *testing.T) {
	prov := &fakeProv{}
	protected := nid(1)
	a, s := harness(t, Policy{
		MinNodes:  1,
		IdleAfter: time.Millisecond,
		Cooldown:  time.Millisecond,
		Protected: func(id types.NodeID) bool { return id == protected },
	}, prov, 2)
	beat(s, 1, 0, types.CPU(4))
	beat(s, 2, 0, types.CPU(4))
	a.tick() // arms idleSince
	time.Sleep(5 * time.Millisecond)
	a.tick() // idle long enough: drain
	info, ok := s.GetNode(nid(2))
	if !ok || info.State != types.NodeDraining {
		t.Fatalf("unprotected idle node not draining: %+v ok=%v", info, ok)
	}
	if info, _ := s.GetNode(protected); info.State != types.NodeActive {
		t.Fatal("protected node must never drain")
	}
	// One drain at a time: the in-flight drain blocks another decision.
	time.Sleep(5 * time.Millisecond)
	a.tick()
	if info, _ := s.GetNode(protected); info.State != types.NodeActive {
		t.Fatal("second drain started while one was in flight")
	}
	if st := a.Status(); st.Drains != 1 {
		t.Fatalf("bad drain count: %+v", st)
	}
}

// TestScaleDownRespectsMinNodes: an idle cluster at the floor never
// drains.
func TestScaleDownRespectsMinNodes(t *testing.T) {
	a, s := harness(t, Policy{MinNodes: 2, IdleAfter: time.Millisecond, Cooldown: time.Millisecond}, &fakeProv{}, 2)
	beat(s, 1, 0, types.CPU(4))
	beat(s, 2, 0, types.CPU(4))
	a.tick()
	time.Sleep(5 * time.Millisecond)
	a.tick()
	for i := byte(1); i <= 2; i++ {
		if info, _ := s.GetNode(nid(i)); info.State != types.NodeActive {
			t.Fatalf("drained below MinNodes: node %d %v", i, info.State)
		}
	}
}

// TestBusyClusterResetsIdleClock: any backlog re-arms the idle window.
func TestBusyClusterResetsIdleClock(t *testing.T) {
	a, s := harness(t, Policy{MinNodes: 1, IdleAfter: 10 * time.Millisecond, Cooldown: time.Millisecond}, &fakeProv{}, 2)
	beat(s, 1, 0, types.CPU(4))
	beat(s, 2, 0, types.CPU(4))
	a.tick()
	time.Sleep(6 * time.Millisecond)
	beat(s, 1, 3, types.CPU(1)) // busy again
	a.tick()                    // resets the idle clock
	beat(s, 1, 0, types.CPU(4))
	a.tick() // idle re-arms from now
	time.Sleep(6 * time.Millisecond)
	a.tick() // 6ms < IdleAfter since re-arm: no drain yet
	for i := byte(1); i <= 2; i++ {
		if info, _ := s.GetNode(nid(i)); info.State != types.NodeActive {
			t.Fatal("drained before the idle window elapsed")
		}
	}
}

// TestDrainTimeoutRollsBack: a drain stuck past DrainTimeout (aged from
// the record's DrainNs on the cluster clock) is rolled back to Active —
// including operator-initiated drains the loop never started.
func TestDrainTimeoutRollsBack(t *testing.T) {
	a, s := harness(t, Policy{DrainTimeout: 2 * time.Millisecond}, &fakeProv{}, 2)
	if !s.CASNodeState(nid(2), []types.NodeState{types.NodeActive}, types.NodeDraining) {
		t.Fatal("setup drain failed")
	}
	a.tick() // adopts the operator drain; too young to time out
	if info, _ := s.GetNode(nid(2)); info.State != types.NodeDraining {
		t.Fatal("rolled back a young drain")
	}
	time.Sleep(5 * time.Millisecond)
	a.tick()
	if info, _ := s.GetNode(nid(2)); info.State != types.NodeActive {
		t.Fatalf("stuck drain not rolled back: %v", info.State)
	}
	if st := a.Status(); st.RolledBack != 1 {
		t.Fatalf("bad rollback count: %+v", st)
	}
}

// TestDrainCompletionCounted: a tracked drain reaching Drained is counted
// complete and untracked.
func TestDrainCompletionCounted(t *testing.T) {
	a, s := harness(t, Policy{MinNodes: 1, IdleAfter: time.Millisecond, Cooldown: time.Millisecond}, &fakeProv{}, 2)
	beat(s, 1, 0, types.CPU(4))
	beat(s, 2, 0, types.CPU(4))
	a.tick()
	time.Sleep(5 * time.Millisecond)
	a.tick()
	// Find the draining node and complete its protocol.
	var victim types.NodeID
	for i := byte(1); i <= 2; i++ {
		if info, _ := s.GetNode(nid(i)); info.State == types.NodeDraining {
			victim = nid(i)
		}
	}
	if victim.IsNil() {
		t.Fatal("no drain started")
	}
	if !s.CASNodeState(victim, []types.NodeState{types.NodeDraining}, types.NodeDrained) {
		t.Fatal("drained commit failed")
	}
	s.MarkNodeDead(victim)
	a.tick()
	if st := a.Status(); st.Drained != 1 {
		t.Fatalf("completion not counted: %+v", st)
	}
}

// degradedCtrl wraps the store with a controllable Ping: a sharded
// control plane whose fan-out scans are currently missing a dead shard's
// rows answers false, and the autoscaler must hold all decisions.
type degradedCtrl struct {
	*gcs.Store
	up bool
}

func (d *degradedCtrl) Ping() bool { return d.up }

// TestDegradedViewHoldsDecisions: with a shard down, neither the
// undercounted active set nor the hidden in-flight drain may trigger an
// action; decisions resume when the view completes.
func TestDegradedViewHoldsDecisions(t *testing.T) {
	prov := &fakeProv{}
	s := gcs.NewStore(2)
	ctrl := &degradedCtrl{Store: s, up: false}
	for i := 0; i < 2; i++ {
		s.RegisterNode(types.NodeInfo{ID: nid(byte(i + 1)), Addr: fmt.Sprintf("n%d", i), Total: types.CPU(4)})
	}
	a := New(Config{Ctrl: ctrl, Provisioner: prov,
		Policy: Policy{MinNodes: 1, ScaleUpBacklog: 1, IdleAfter: time.Millisecond, Cooldown: time.Millisecond}})

	// Deep backlog, but the view is degraded: no provision.
	beat(s, 1, 50, types.CPU(0))
	beat(s, 2, 50, types.CPU(0))
	a.tick()
	if prov.count() != 0 {
		t.Fatalf("provisioned on a degraded view: %d", prov.count())
	}
	// Fully idle, but degraded: no drain either.
	beat(s, 1, 0, types.CPU(4))
	beat(s, 2, 0, types.CPU(4))
	a.tick()
	time.Sleep(5 * time.Millisecond)
	a.tick()
	for i := byte(1); i <= 2; i++ {
		if info, _ := s.GetNode(nid(i)); info.State != types.NodeActive {
			t.Fatal("drained on a degraded view")
		}
	}
	// View completes: decisions resume (idle clock arms fresh).
	ctrl.up = true
	a.tick()
	time.Sleep(5 * time.Millisecond)
	a.tick()
	drained := 0
	for i := byte(1); i <= 2; i++ {
		if info, _ := s.GetNode(nid(i)); info.State == types.NodeDraining {
			drained++
		}
	}
	if drained != 1 {
		t.Fatalf("decisions did not resume once the view completed: %d draining", drained)
	}
}
