// Package autoscale closes the elasticity loop the ROADMAP's top open item
// asks for (DESIGN.md §10): a policy-driven autoscaler that consumes the
// heartbeat signals every node already publishes — runnable queue depth,
// available resources, object-store memory and spill-tier usage — and
// decides when the cluster should grow and when a node should drain away.
//
// The autoscaler speaks only gcs.API, so one implementation serves both
// the in-process cluster and the sharded multi-process control plane.
// Scale-up delegates to a pluggable NodeProvisioner (the in-process
// cluster and cmd/raynode both implement it via their AddNode paths).
// Scale-down is a CAS on the node-table drain state machine
// (Active→Draining); the chosen node notices the mark and runs the drain
// protocol itself — stop admitting, spill-migrate every object to peers,
// commit Draining→Drained, deregister — so the autoscaler never touches a
// node directly and keeps working when the node is in another process. A
// drain that outlives Policy.DrainTimeout is rolled back (Draining→Active)
// and the node resumes serving.
package autoscale

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/types"
)

// NodeProvisioner adds capacity to the cluster. Implementations boot one
// more node attached to the same control plane: cluster.Cluster boots an
// in-process node, cmd/raynode boots one in its own process. The call may
// block for the node's startup; the autoscaler invokes it off its
// decision loop's critical state only.
type NodeProvisioner interface {
	ProvisionNode() error
}

// Policy tunes the scaling decisions. The zero value selects defaults.
type Policy struct {
	// MinNodes is the floor of schedulable (Active, alive) nodes; the
	// autoscaler never drains below it. Default 1.
	MinNodes int
	// MaxNodes is the ceiling; scale-up stops there. Default 8.
	MaxNodes int
	// ScaleUpBacklog triggers scale-up when the mean runnable backlog per
	// schedulable node (from heartbeat QueueLen) reaches it. Default 4.
	ScaleUpBacklog float64
	// ScaleUpSpilledBytes triggers scale-up when the cluster-wide spill-
	// tier usage reaches it — memory pressure as an elasticity signal.
	// Zero disables the signal.
	ScaleUpSpilledBytes int64
	// IdleAfter is how long the cluster must stay idle (no backlog, full
	// availability everywhere, no drain in flight) before a scale-down
	// drain starts. Default 2s.
	IdleAfter time.Duration
	// Cooldown separates consecutive scale actions so one burst cannot
	// thrash provision/drain decisions. Default 1s.
	Cooldown time.Duration
	// DrainTimeout bounds one drain: a node still Draining after this long
	// (aged from the record's DrainNs on the cluster clock) is rolled back
	// to Active. Default 30s.
	DrainTimeout time.Duration
	// Protected reports nodes that must never be drained — typically the
	// node a driver is attached to. nil protects nothing.
	Protected func(types.NodeID) bool
}

func (p Policy) withDefaults() Policy {
	if p.MinNodes <= 0 {
		p.MinNodes = 1
	}
	if p.MaxNodes <= 0 {
		p.MaxNodes = 8
	}
	if p.ScaleUpBacklog <= 0 {
		p.ScaleUpBacklog = 4
	}
	if p.IdleAfter <= 0 {
		p.IdleAfter = 2 * time.Second
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 30 * time.Second
	}
	return p
}

// Config wires an Autoscaler.
type Config struct {
	// Ctrl is the control plane (in-process store or sharded client).
	Ctrl gcs.API
	// Provisioner adds nodes on scale-up. nil disables scale-up (the
	// autoscaler still watches and times out drains).
	Provisioner NodeProvisioner
	// Policy tunes decisions (zero value = defaults).
	Policy Policy
	// Interval is the decision-loop tick. Default 100ms.
	Interval time.Duration
	// Metrics, when set, receives autoscale counters and gauges
	// (autoscale.scaleups, autoscale.drains, autoscale.active,
	// autoscale.backlog). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Status is a snapshot for dashboards and rayctl.
type Status struct {
	Nodes      int    `json:"nodes"`    // live nodes, any state
	Active     int    `json:"active"`   // schedulable nodes
	Draining   int    `json:"draining"` // drains in flight
	Backlog    int    `json:"backlog"`  // summed runnable queue depth
	Idle       bool   `json:"idle"`     // the scale-down precondition
	ScaleUps   int64  `json:"scale_ups"`
	Drains     int64  `json:"drains_started"`
	Drained    int64  `json:"drains_completed"`
	RolledBack int64  `json:"drains_rolled_back"`
	LastAction string `json:"last_action,omitempty"`
}

// Autoscaler runs the decision loop.
type Autoscaler struct {
	cfg Config

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu         sync.Mutex
	idleSince  time.Time
	lastScale  time.Time
	lastAction string
	// tracked remembers drains this loop is watching (including operator-
	// initiated ones it discovered), so completions are counted once.
	tracked map[types.NodeID]bool
	// lastSnap caches the latest tick's classification for Status.
	lastSnap Status

	scaleUps   atomic.Int64
	drains     atomic.Int64
	drained    atomic.Int64
	rolledBack atomic.Int64

	// Mirrors of the counters above in the metrics registry (nil-safe).
	mScaleUps *metrics.Counter
	mDrains   *metrics.Counter
}

// New builds an autoscaler; call Start to begin deciding.
func New(cfg Config) *Autoscaler {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	cfg.Policy = cfg.Policy.withDefaults()
	a := &Autoscaler{
		cfg:       cfg,
		stop:      make(chan struct{}),
		tracked:   make(map[types.NodeID]bool),
		mScaleUps: cfg.Metrics.Counter("autoscale.scaleups"),
		mDrains:   cfg.Metrics.Counter("autoscale.drains"),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("autoscale.active", func() int64 { return int64(a.Status().Active) })
		cfg.Metrics.GaugeFunc("autoscale.backlog", func() int64 { return int64(a.Status().Backlog) })
	}
	return a
}

// Start launches the decision loop.
func (a *Autoscaler) Start() {
	a.wg.Add(1)
	go a.run()
}

// Stop halts the loop. In-flight drains keep running — the draining nodes
// own their protocol; only new decisions stop.
func (a *Autoscaler) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

// Status snapshots the autoscaler's view and counters.
func (a *Autoscaler) Status() Status {
	a.mu.Lock()
	s := a.lastSnap
	s.LastAction = a.lastAction
	a.mu.Unlock()
	s.ScaleUps = a.scaleUps.Load()
	s.Drains = a.drains.Load()
	s.Drained = a.drained.Load()
	s.RolledBack = a.rolledBack.Load()
	return s
}

func (a *Autoscaler) run() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.tick()
		case <-a.stop:
			return
		}
	}
}

// tick is one decision pass: classify the node table, settle drain
// bookkeeping (completions, timeouts), then consider one scale action.
func (a *Autoscaler) tick() {
	// A sharded control plane's fan-out scans silently omit a dead shard's
	// rows (the same trap the gang pass and the chaos checker gate
	// against): acting on the degraded view would spuriously provision
	// against an undercounted active set, or start a second drain because
	// the in-flight one's row is hidden. Skip the pass; decisions resume
	// when every shard answers.
	if p, ok := a.cfg.Ctrl.(gcs.Pinger); ok && !p.Ping() {
		a.noteAction("control-plane view degraded: holding decisions")
		return
	}
	nodes := a.cfg.Ctrl.Nodes()
	var active, draining []types.NodeInfo
	live := 0
	for _, n := range nodes {
		if !n.Alive {
			continue
		}
		live++
		switch n.State {
		case types.NodeActive:
			active = append(active, n)
		case types.NodeDraining:
			draining = append(draining, n)
		}
	}
	a.settleDrains(nodes, draining)

	backlog := 0
	var spilled int64
	idle := len(draining) == 0
	for _, n := range active {
		backlog += n.QueueLen
		spilled += n.Store.SpilledBytes
		if n.QueueLen > 0 || !fullyAvailable(n) {
			idle = false
		}
	}
	a.mu.Lock()
	a.lastSnap = Status{Nodes: live, Active: len(active), Draining: len(draining), Backlog: backlog, Idle: idle}
	a.mu.Unlock()

	p := a.cfg.Policy
	if a.shouldScaleUp(active, backlog, spilled) {
		a.mu.Lock()
		a.lastScale = time.Now() // provision attempts count against the cooldown too
		a.mu.Unlock()
		if err := a.cfg.Provisioner.ProvisionNode(); err != nil {
			a.noteAction("scale-up failed: " + err.Error())
			return
		}
		a.scaleUps.Add(1)
		a.mScaleUps.Inc()
		a.noteAction(fmt.Sprintf("scale-up to %d nodes (backlog=%d spilled=%dB)", len(active)+1, backlog, spilled))
		a.cfg.Ctrl.LogEvent(types.Event{Kind: "autoscale-up", Detail: fmt.Sprintf("backlog=%d spilled=%d", backlog, spilled)})
		return
	}

	// Scale-down: only from a cluster that has stayed idle, one drain at a
	// time, never below the floor, never a protected node.
	if !idle {
		a.mu.Lock()
		a.idleSince = time.Time{}
		a.mu.Unlock()
		return
	}
	a.mu.Lock()
	if a.idleSince.IsZero() {
		a.idleSince = time.Now()
	}
	idleFor := time.Since(a.idleSince)
	a.mu.Unlock()
	if idleFor < p.IdleAfter || len(active) <= p.MinNodes || len(draining) > 0 || !a.cooldownOver() {
		return
	}
	victim := a.pickVictim(active)
	if victim == nil {
		return
	}
	if a.cfg.Ctrl.CASNodeState(victim.ID, []types.NodeState{types.NodeActive}, types.NodeDraining) {
		a.drains.Add(1)
		a.mDrains.Inc()
		a.mu.Lock()
		a.tracked[victim.ID] = true
		a.lastScale = time.Now()
		a.mu.Unlock()
		a.noteAction(fmt.Sprintf("drain %v (%d active, idle %v)", victim.ID, len(active), idleFor.Round(time.Millisecond)))
		a.cfg.Ctrl.LogEvent(types.Event{Kind: "autoscale-drain", Node: victim.ID})
	}
}

func (a *Autoscaler) shouldScaleUp(active []types.NodeInfo, backlog int, spilled int64) bool {
	if a.cfg.Provisioner == nil {
		return false
	}
	p := a.cfg.Policy
	if len(active) >= p.MaxNodes || !a.cooldownOver() {
		return false
	}
	if len(active) == 0 {
		return true // a cluster with zero schedulable nodes must grow
	}
	if float64(backlog)/float64(len(active)) >= p.ScaleUpBacklog {
		return true
	}
	return p.ScaleUpSpilledBytes > 0 && spilled >= p.ScaleUpSpilledBytes
}

// settleDrains counts finished drains and rolls back stuck ones. Drain age
// comes from the record's DrainNs on the cluster clock, so operator-
// initiated drains (which this loop never started) time out identically.
func (a *Autoscaler) settleDrains(nodes []types.NodeInfo, draining []types.NodeInfo) {
	now := a.cfg.Ctrl.NowNs()
	inFlight := make(map[types.NodeID]bool, len(draining))
	for _, n := range draining {
		inFlight[n.ID] = true
		a.mu.Lock()
		known := a.tracked[n.ID]
		if !known {
			a.tracked[n.ID] = true // operator-initiated: adopt it
		}
		a.mu.Unlock()
		if n.DrainNs > 0 && now-n.DrainNs > a.cfg.Policy.DrainTimeout.Nanoseconds() {
			if a.cfg.Ctrl.CASNodeState(n.ID, []types.NodeState{types.NodeDraining}, types.NodeActive) {
				a.rolledBack.Add(1)
				a.noteAction(fmt.Sprintf("drain timeout: rolled %v back to Active", n.ID))
				a.cfg.Ctrl.LogEvent(types.Event{Kind: "autoscale-drain-rollback", Node: n.ID})
			}
		}
	}
	// Anything tracked but no longer Draining finished one way or another:
	// Drained (or dead) counts as completion; Active means the node (or
	// the timeout above) rolled it back.
	a.mu.Lock()
	trackedIDs := make([]types.NodeID, 0, len(a.tracked))
	for id := range a.tracked {
		trackedIDs = append(trackedIDs, id)
	}
	a.mu.Unlock()
	for _, id := range trackedIDs {
		if inFlight[id] {
			continue
		}
		state, found := types.NodeActive, false
		for _, n := range nodes {
			if n.ID == id {
				state, found = n.State, true
				break
			}
		}
		switch {
		case !found:
			continue // record unreadable (shard failover): keep tracking
		case state == types.NodeDrained:
			a.drained.Add(1)
		}
		a.mu.Lock()
		delete(a.tracked, id)
		a.mu.Unlock()
	}
}

// pickVictim chooses the cheapest node to drain: unprotected, preferring
// the smallest resident working set (fewest bytes to migrate).
func (a *Autoscaler) pickVictim(active []types.NodeInfo) *types.NodeInfo {
	var best *types.NodeInfo
	var bestBytes int64
	for i := range active {
		n := &active[i]
		if a.cfg.Policy.Protected != nil && a.cfg.Policy.Protected(n.ID) {
			continue
		}
		b := n.Store.UsedBytes + n.Store.SpilledBytes
		if best == nil || b < bestBytes {
			best, bestBytes = n, b
		}
	}
	return best
}

// fullyAvailable reports whether the node's heartbeat shows every unit of
// capacity free (nothing running or reserved). Before the first heartbeat
// Available is nil — treated as busy, so a just-booted node cannot tip the
// cluster into "idle".
func fullyAvailable(n types.NodeInfo) bool {
	if n.Available == nil {
		return false
	}
	return n.Total.Fits(n.Available)
}

func (a *Autoscaler) cooldownOver() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Since(a.lastScale) >= a.cfg.Policy.Cooldown
}

func (a *Autoscaler) noteAction(s string) {
	a.mu.Lock()
	a.lastAction = s
	a.mu.Unlock()
}
