package bsp

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRunStageExecutesAllTasks(t *testing.T) {
	e := New(Config{Executors: 4})
	double := func(in []byte) []byte { return []byte{in[0] * 2} }
	inputs := [][]byte{{1}, {2}, {3}, {4}, {5}}
	out := e.RunStage([]Task{double}, inputs)
	for i, o := range out {
		if o[0] != inputs[i][0]*2 {
			t.Fatalf("task %d: got %d", i, o[0])
		}
	}
	if e.TasksRun() != 5 || e.StagesRun() != 1 {
		t.Fatalf("counters: tasks=%d stages=%d", e.TasksRun(), e.StagesRun())
	}
}

func TestBarrierSemantics(t *testing.T) {
	e := New(Config{Executors: 4})
	var stage1Done atomic.Int32
	slow := func(in []byte) []byte {
		time.Sleep(10 * time.Millisecond)
		stage1Done.Add(1)
		return in
	}
	check := func(in []byte) []byte {
		if stage1Done.Load() != 4 {
			t.Error("stage 2 task ran before stage 1 barrier")
		}
		return in
	}
	inputs := [][]byte{{0}, {1}, {2}, {3}}
	e.RunStages([][]Task{{slow}, {check}}, inputs)
}

func TestDriverOverheadSerializesDispatch(t *testing.T) {
	overhead := 5 * time.Millisecond
	e := New(Config{Executors: 8, DriverOverhead: overhead})
	noop := func(in []byte) []byte { return in }
	inputs := make([][]byte, 8)
	for i := range inputs {
		inputs[i] = []byte{byte(i)}
	}
	start := time.Now()
	e.RunStage([]Task{noop}, inputs)
	elapsed := time.Since(start)
	// 8 tasks * 5ms driver-serial dispatch = 40ms floor despite 8 executors.
	if elapsed < 8*overhead {
		t.Fatalf("driver bottleneck missing: %v < %v", elapsed, 8*overhead)
	}
}

func TestParallelismWithinStage(t *testing.T) {
	e := New(Config{Executors: 8})
	slow := func(in []byte) []byte {
		time.Sleep(20 * time.Millisecond)
		return in
	}
	inputs := make([][]byte, 8)
	start := time.Now()
	e.RunStage([]Task{slow}, inputs)
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Fatalf("no parallelism: 8x20ms took %v", elapsed)
	}
}

func TestBytesShippedGrowsWithInput(t *testing.T) {
	e := New(Config{Executors: 1})
	noop := func(in []byte) []byte { return in }
	e.RunStage([]Task{noop}, [][]byte{make([]byte, 1000)})
	small := e.BytesShipped()
	e.RunStage([]Task{noop}, [][]byte{make([]byte, 100000)})
	if e.BytesShipped()-small < 90000 {
		t.Fatal("shipping cost does not scale with input size")
	}
}

func TestEmptyInputsUsesTaskCount(t *testing.T) {
	e := New(Config{Executors: 2})
	var n atomic.Int64
	counter := func(in []byte) []byte { n.Add(1); return nil } // tasks run on parallel executors
	out := e.RunStage([]Task{counter, counter, counter}, nil)
	if len(out) != 3 {
		t.Fatalf("outputs = %d", len(out))
	}
	if n.Load() != 3 {
		t.Fatalf("ran %d tasks, want 3", n.Load())
	}
}

func TestExecutorClampAndDefaults(t *testing.T) {
	e := New(Config{Executors: 0})
	out := e.RunStage([]Task{func(in []byte) []byte { return []byte{9} }}, [][]byte{{1}})
	if out[0][0] != 9 {
		t.Fatal("single-executor engine broken")
	}
}
