// Package bsp implements a bulk-synchronous-parallel execution engine — the
// stand-in for the Spark baseline of the paper's Section 4.2. It reproduces
// the two properties the paper's comparison rests on:
//
//  1. BSP structure: computation proceeds in stages separated by global
//     barriers; no task of stage k+1 starts before every task of stage k
//     finishes.
//  2. Per-task system overhead: a centralized driver dispatches tasks one
//     at a time, serializing each task's closure and arguments, plus a
//     calibrated constant standing in for the JVM/Spark scheduling stack.
//
// The overhead constant is documented, settable, and echoed by the
// benchmark harness (see DESIGN.md §2 row 11 and EXPERIMENTS.md E5). The
// paper reports Spark 9x slower than a single thread on ~7ms tasks; with
// the default 60ms driver-side cost per task this engine lands in the same
// regime by construction of the same mechanism (driver bottleneck), not by
// hardcoding the ratio.
package bsp

import (
	"bytes"
	"encoding/gob"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultDriverOverhead is the per-task driver-side dispatch cost. The
// value is calibrated so that, on the paper's workload shape (tasks of a
// few milliseconds), the engine exhibits the order-of-magnitude slowdown
// the paper measured for Spark (its footnote 2 workload).
const DefaultDriverOverhead = 60 * time.Millisecond

// Task is one unit of stage work: input bytes to output bytes.
type Task func(input []byte) []byte

// Config tunes the engine.
type Config struct {
	// Executors is the worker-slot count (cluster parallelism).
	Executors int
	// DriverOverhead is the serial per-task dispatch cost modelling the
	// baseline's scheduling/serialization stack. Zero means "ideal BSP":
	// barriers only, no system overhead — useful for ablation.
	DriverOverhead time.Duration
}

// Engine executes stages of tasks with global barriers between stages.
type Engine struct {
	cfg Config

	tasksRun  atomic.Int64
	stagesRun atomic.Int64
	shipped   atomic.Int64 // bytes serialized by the driver
}

// New builds an engine. Executors < 1 is treated as 1.
func New(cfg Config) *Engine {
	if cfg.Executors < 1 {
		cfg.Executors = 1
	}
	return &Engine{cfg: cfg}
}

// TasksRun returns the cumulative task count.
func (e *Engine) TasksRun() int64 { return e.tasksRun.Load() }

// StagesRun returns the cumulative stage count.
func (e *Engine) StagesRun() int64 { return e.stagesRun.Load() }

// BytesShipped returns the bytes serialized through the driver.
func (e *Engine) BytesShipped() int64 { return e.shipped.Load() }

// stageJob is one dispatched task instance.
type stageJob struct {
	idx   int
	task  Task
	input []byte
}

// RunStage executes one BSP stage: the driver serializes and dispatches
// every task through a central loop (the Spark-like bottleneck), executors
// run them in parallel, and RunStage returns only when all finish — the
// barrier. inputs[i] feeds tasks[i mod len(tasks)] when len(tasks) <
// len(inputs) (the common "same function over a partitioned input" shape).
func (e *Engine) RunStage(tasks []Task, inputs [][]byte) [][]byte {
	n := len(inputs)
	if n == 0 {
		n = len(tasks)
		inputs = make([][]byte, n)
	}
	out := make([][]byte, n)
	jobs := make(chan stageJob)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Executors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out[j.idx] = j.task(j.input)
				e.tasksRun.Add(1)
			}
		}()
	}
	// The driver loop: serialize each task's input (actually performing
	// the encode, as Spark pickles closures) and pay the dispatch cost
	// serially — this is the mechanism that throttles small tasks.
	for i := 0; i < n; i++ {
		task := tasks[i%len(tasks)]
		e.shipped.Add(int64(e.serialize(inputs[i])))
		if e.cfg.DriverOverhead > 0 {
			time.Sleep(e.cfg.DriverOverhead)
		}
		jobs <- stageJob{idx: i, task: task, input: inputs[i]}
	}
	close(jobs)
	wg.Wait() // the BSP barrier
	e.stagesRun.Add(1)
	return out
}

// serialize really encodes the payload (gob), so shipping cost scales with
// input size like the baseline's serialization does.
func (e *Engine) serialize(payload []byte) int {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(payload)
	return buf.Len()
}

// RunStages chains stages, feeding each stage the previous stage's outputs.
func (e *Engine) RunStages(stages [][]Task, initial [][]byte) [][]byte {
	data := initial
	for _, st := range stages {
		data = e.RunStage(st, data)
	}
	return data
}
