// Package dashboard implements the "Web UI / Debugging Tools / Profiling
// Tools" box of the paper's Figure 3 (R7): an HTTP surface over the
// centralized control plane. Because all system state lives in the control
// plane, the dashboard is a pure reader — it can attach to any running
// cluster without coordination.
package dashboard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/gcs"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/types"
)

// Option customizes the dashboard handler.
type Option func(*handlerOpts)

type handlerOpts struct {
	shardStats func() []gcs.ShardStats
	autoscale  func() autoscale.Status
	pprof      bool
}

// WithShardStats attaches a control-plane shard health source (typically
// gcs.Supervisor.Stats), enabling /api/shards and the overview's shard
// line on sharded-GCS deployments.
func WithShardStats(fn func() []gcs.ShardStats) Option {
	return func(o *handlerOpts) { o.shardStats = fn }
}

// WithAutoscaler attaches an autoscaler status source (typically
// autoscale.Autoscaler.Status), enabling /api/autoscale and the
// overview's elasticity line.
func WithAutoscaler(fn func() autoscale.Status) Option {
	return func(o *handlerOpts) { o.autoscale = fn }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ (the -pprof flag on
// cmd/raynode and cmd/dashboard-serving processes). Off by default: the
// profiling endpoints expose stacks and heap contents, so operators opt in.
func WithPprof() Option {
	return func(o *handlerOpts) { o.pprof = true }
}

// Handler serves the dashboard endpoints:
//
//	GET /api/nodes     — node table with liveness and load
//	GET /api/tasks     — task table (status, timing, placement)
//	GET /api/objects   — object table (size, locations, state)
//	GET /api/functions — registered remote functions
//	GET /api/events    — raw event log
//	GET /api/profile   — per-function summary statistics
//	GET /api/trace     — Chrome trace-event JSON of the whole timeline
//	GET /api/shards    — control-plane shard health (sharded GCS only)
//	GET /api/placement — placement groups (strategy, state, bundle→node map)
//	GET /api/autoscale — autoscaler status (when one is attached)
//	GET /api/jobs      — job table (state, weight, usage, quota headroom)
//	POST /api/drain?node=<hex> — mark a node Draining (rayctl drain)
//	POST /api/stopjob?job=<hex> — begin a job's stop+reclaim (rayctl stop-job)
//	GET /              — plain-text overview
func Handler(ctrl gcs.API, opts ...Option) http.Handler {
	var o handlerOpts
	for _, opt := range opts {
		opt(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/shards", func(w http.ResponseWriter, r *http.Request) {
		if o.shardStats == nil {
			writeJSON(w, []gcs.ShardStats{}) // single-store control plane
			return
		}
		writeJSON(w, o.shardStats())
	})
	mux.HandleFunc("/api/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, nodesView(ctrl))
	})
	// GET /api/tasks lists every task row; /api/tasks?id=<hex> narrows to
	// one task and adds the full transition timestamps (rayctl tasks <id>).
	mux.HandleFunc("/api/tasks", func(w http.ResponseWriter, r *http.Request) {
		if hex := r.URL.Query().Get("id"); hex != "" {
			id, err := types.ParseTaskID(hex)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			st, ok := ctrl.GetTask(id)
			if !ok {
				http.Error(w, "no such task", http.StatusNotFound)
				return
			}
			writeJSON(w, taskDetail(ctrl, st))
			return
		}
		writeJSON(w, tasksView(ctrl))
	})
	mux.HandleFunc("/api/objects", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, objectsView(ctrl))
	})
	mux.HandleFunc("/api/functions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ctrl.Functions())
	})
	mux.HandleFunc("/api/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eventsView(ctrl))
	})
	mux.HandleFunc("/api/profile", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, profile.Build(ctrl).Summarize())
	})
	mux.HandleFunc("/api/placement", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, placementView(ctrl))
	})
	mux.HandleFunc("/api/autoscale", func(w http.ResponseWriter, r *http.Request) {
		if o.autoscale == nil {
			writeJSON(w, autoscale.Status{}) // no autoscaler attached
			return
		}
		writeJSON(w, o.autoscale())
	})
	// POST /api/drain?node=<hex> marks a node Draining (the same CAS the
	// autoscaler's scale-down issues); the node runs the drain protocol
	// itself. The one write endpoint on an otherwise read-only surface —
	// it exists so `rayctl drain` needs nothing but the dashboard URL.
	mux.HandleFunc("/api/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		id, err := types.ParseNodeID(r.URL.Query().Get("node"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ok := ctrl.CASNodeState(id, []types.NodeState{types.NodeActive}, types.NodeDraining)
		writeJSON(w, map[string]bool{"ok": ok})
	})
	mux.HandleFunc("/api/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, jobsView(ctrl))
	})
	// POST /api/stopjob?job=<hex> runs the same CAS core.StopJob issues
	// (Running → Stopping); the global scheduler's reclaim pass does the
	// rest. Like /api/drain, this write endpoint exists so `rayctl
	// stop-job` needs nothing but the dashboard URL.
	mux.HandleFunc("/api/stopjob", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		id, err := types.ParseJobID(r.URL.Query().Get("job"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ok := ctrl.CASJobState(id, []types.JobState{types.JobRunning}, types.JobStopping)
		writeJSON(w, map[string]bool{"ok": ok})
	})
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = profile.BuildFull(ctrl).ExportChromeTrace(w)
	})
	// GET /metrics — Prometheus text exposition over every node's latest
	// telemetry snapshot (shipped by heartbeats). Empty but valid when the
	// control plane stores no telemetry (sharded client without spans yet,
	// or telemetry disabled).
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WritePrometheus(w, telemetryOf(ctrl))
	})
	// GET /api/metrics[?filter=substr] — the same snapshots as JSON, for
	// rayctl top / rayctl metrics.
	mux.HandleFunc("/api/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, metricsView(ctrl, r.URL.Query().Get("filter")))
	})
	if o.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		overview(ctrl, o, w)
	})
	return mux
}

// telemetryOf adapts the control plane's stored telemetry (when it has
// any) to the exporter's node-snapshot shape.
func telemetryOf(ctrl gcs.API) []metrics.NodeSnapshot {
	sink, ok := ctrl.(gcs.TelemetrySink)
	if !ok {
		return nil
	}
	stored := sink.Telemetry()
	out := make([]metrics.NodeSnapshot, len(stored))
	for i, t := range stored {
		out[i] = metrics.NodeSnapshot{Node: t.Node.String(), AtNs: t.AtNs, Snap: t.Snap}
	}
	return out
}

// MetricRow is one (node, metric, value) triple in /api/metrics.
type MetricRow struct {
	Node   string `json:"node"`
	Name   string `json:"name"`
	Value  int64  `json:"value"`
	P50Ns  int64  `json:"p50_ns,omitempty"`
	P99Ns  int64  `json:"p99_ns,omitempty"`
	IsHist bool   `json:"hist,omitempty"`
}

func metricsView(ctrl gcs.API, filter string) []MetricRow {
	var out []MetricRow
	match := func(name string) bool {
		return filter == "" || strings.Contains(name, filter)
	}
	for _, t := range telemetryOf(ctrl) {
		node := t.Node
		for name, v := range t.Snap.Counters {
			if match(name) {
				out = append(out, MetricRow{Node: node, Name: name, Value: v})
			}
		}
		for name, v := range t.Snap.Gauges {
			if match(name) {
				out = append(out, MetricRow{Node: node, Name: name, Value: v})
			}
		}
		for name, h := range t.Snap.Hists {
			if match(name) {
				out = append(out, MetricRow{
					Node: node, Name: name, Value: int64(h.Count),
					P50Ns: h.Quantile(0.5), P99Ns: h.Quantile(0.99), IsHist: true,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// NodeView is the JSON shape of one node row.
type NodeView struct {
	ID string `json:"id"`
	// IDHex is the full node ID, the form POST /api/drain (rayctl drain)
	// takes.
	IDHex     string          `json:"id_hex"`
	Addr      string          `json:"addr"`
	Alive     bool            `json:"alive"`
	State     string          `json:"state"`
	Total     types.Resources `json:"total"`
	Available types.Resources `json:"available"`
	QueueLen  int             `json:"queue_len"`
	LastSeen  int64           `json:"last_seen_ns"`
	// Object-store memory and spill-tier usage (lifetime subsystem).
	StoreUsed    int64 `json:"store_used_bytes"`
	StoreSpilled int64 `json:"store_spilled_bytes"`
	StoreObjects int   `json:"store_objects"`
	Spills       int64 `json:"spills"`
	Restores     int64 `json:"restores"`
	Reclaimed    int64 `json:"reclaimed"`
	TierEvicted  int64 `json:"tier_evicted"`
}

func nodesView(ctrl gcs.API) []NodeView {
	var out []NodeView
	for _, n := range ctrl.Nodes() {
		out = append(out, NodeView{
			ID: n.ID.String(), IDHex: n.ID.Hex(), Addr: n.Addr, Alive: n.Alive,
			State: n.State.String(),
			Total: n.Total, Available: n.Available,
			QueueLen: n.QueueLen, LastSeen: n.LastSeen,
			StoreUsed: n.Store.UsedBytes, StoreSpilled: n.Store.SpilledBytes,
			StoreObjects: n.Store.Objects, Spills: n.Store.Spills,
			Restores: n.Store.Restores, Reclaimed: n.Store.Reclaimed,
			TierEvicted: n.Store.TierEvicted,
		})
	}
	return out
}

// TaskView is the JSON shape of one task row. Owner is the node whose
// ledger holds the task's authoritative state (DESIGN.md §13); the row is
// the follower table's view, at most a flush interval behind.
type TaskView struct {
	ID string `json:"id"`
	// IDHex is the full task ID, the form /api/tasks?id= (rayctl tasks
	// <id-hex>) takes.
	IDHex    string `json:"id_hex"`
	Function string `json:"function"`
	Status   string `json:"status"`
	Node     string `json:"node"`
	Owner    string `json:"owner,omitempty"`
	OwnerSeq uint64 `json:"owner_seq,omitempty"`
	Error    string `json:"error,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	E2EMs    float64 `json:"e2e_ms"`
	// LastTransitionAgeMs is how long the task has sat in its current
	// status — the first thing to look at for a stuck task.
	LastTransitionAgeMs float64 `json:"last_transition_age_ms"`
}

// TaskDetail is the single-task shape of /api/tasks?id=: the row plus the
// full transition timestamps.
type TaskDetail struct {
	TaskView
	Parent      string `json:"parent,omitempty"`
	Worker      string `json:"worker,omitempty"`
	MaxRetries  int    `json:"max_retries"`
	SubmittedNs int64  `json:"submitted_ns"`
	ScheduledNs int64  `json:"scheduled_ns,omitempty"`
	StartedNs   int64  `json:"started_ns,omitempty"`
	FinishedNs  int64  `json:"finished_ns,omitempty"`
}

func taskView(t types.TaskState, nowNs int64) TaskView {
	var e2e float64
	if t.FinishedNs > 0 {
		e2e = float64(t.FinishedNs-t.SubmittedNs) / 1e6
	}
	var age float64
	if t.LastTransitionNs > 0 && nowNs > t.LastTransitionNs {
		age = float64(nowNs-t.LastTransitionNs) / 1e6
	}
	v := TaskView{
		ID: t.Spec.ID.String(), IDHex: t.Spec.ID.Hex(), Function: t.Spec.Function,
		Status: t.Status.String(), Node: t.Node.String(),
		OwnerSeq: t.OwnerSeq,
		Error:    t.Error, Retries: t.Retries, E2EMs: e2e,
		LastTransitionAgeMs: age,
	}
	if !t.Owner.IsNil() {
		v.Owner = t.Owner.String()
	}
	return v
}

func tasksView(ctrl gcs.API) []TaskView {
	now := ctrl.NowNs()
	var out []TaskView
	for _, t := range ctrl.Tasks() {
		out = append(out, taskView(t, now))
	}
	return out
}

func taskDetail(ctrl gcs.API, t types.TaskState) TaskDetail {
	d := TaskDetail{
		TaskView:   taskView(t, ctrl.NowNs()),
		MaxRetries: t.Spec.MaxRetries,
		SubmittedNs: t.SubmittedNs, ScheduledNs: t.ScheduledNs,
		StartedNs: t.StartedNs, FinishedNs: t.FinishedNs,
	}
	if !t.Spec.Parent.IsNil() {
		d.Parent = t.Spec.Parent.String()
	}
	if !t.Worker.IsNil() {
		d.Worker = t.Worker.String()
	}
	return d
}

// ObjectView is the JSON shape of one object row.
type ObjectView struct {
	ID        string   `json:"id"`
	Size      int64    `json:"size"`
	State     string   `json:"state"`
	Producer  string   `json:"producer"`
	Locations []string `json:"locations"`
	RefCount  int64    `json:"ref_count"`
	SpilledOn []string `json:"spilled_on,omitempty"`
}

func objectsView(ctrl gcs.API) []ObjectView {
	var out []ObjectView
	for _, o := range ctrl.Objects() {
		locs := make([]string, len(o.Locations))
		for i, l := range o.Locations {
			locs[i] = l.String()
		}
		var disk []string
		for _, l := range o.SpilledOn {
			disk = append(disk, l.String())
		}
		out = append(out, ObjectView{
			ID: o.ID.String(), Size: o.Size, State: o.State.String(),
			Producer: o.Producer.String(), Locations: locs,
			RefCount: o.RefCount, SpilledOn: disk,
		})
	}
	return out
}

// PlacementView is the JSON shape of one placement-group row.
type PlacementView struct {
	ID       string            `json:"id"`
	Name     string            `json:"name,omitempty"`
	Strategy string            `json:"strategy"`
	State    string            `json:"state"`
	Bundles  []types.Resources `json:"bundles"`
	// Nodes[i] is the node holding bundle i's reservation (placed groups).
	Nodes     []string `json:"nodes,omitempty"`
	CreatedNs int64    `json:"created_ns"`
	PlacedNs  int64    `json:"placed_ns,omitempty"`
	RemovedNs int64    `json:"removed_ns,omitempty"`
}

func placementView(ctrl gcs.API) []PlacementView {
	var out []PlacementView
	for _, g := range ctrl.PlacementGroups() {
		v := PlacementView{
			ID: g.Spec.ID.String(), Name: g.Spec.Name,
			Strategy: g.Spec.Strategy.String(), State: g.State.String(),
			CreatedNs: g.CreatedNs, PlacedNs: g.PlacedNs, RemovedNs: g.RemovedNs,
		}
		for _, b := range g.Spec.Bundles {
			v.Bundles = append(v.Bundles, b.Resources)
		}
		for _, n := range g.BundleNodes {
			v.Nodes = append(v.Nodes, n.String())
		}
		out = append(out, v)
	}
	return out
}

// JobView is the JSON shape of one job row: the durable record joined
// with the job's live footprint (task counts, queue depth, object bytes)
// and its remaining quota headroom. Headroom fields are -1 when the
// corresponding quota dimension is unlimited.
type JobView struct {
	ID string `json:"id"`
	// IDHex is the full job ID, the form POST /api/stopjob (rayctl
	// stop-job) takes.
	IDHex  string `json:"id_hex"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Weight int    `json:"weight"`
	// Quota ceilings (zero = unlimited).
	MaxLiveTasks   int   `json:"max_live_tasks,omitempty"`
	MaxQueueDepth  int   `json:"max_queue_depth,omitempty"`
	MaxObjectBytes int64 `json:"max_object_bytes,omitempty"`
	CreatedNs      int64 `json:"created_ns"`
	StoppedNs      int64 `json:"stopped_ns,omitempty"`
	PurgedNs       int64 `json:"purged_ns,omitempty"`
	// Live footprint, attributed the same way admission meters it.
	LiveTasks   int   `json:"live_tasks"`
	QueueDepth  int   `json:"queue_depth"`
	ObjectBytes int64 `json:"object_bytes"`
	// TotalTasks counts every task record still attributed to the job,
	// terminal ones included (drops to 0 once the purge tombstones them).
	TotalTasks int `json:"total_tasks"`
	// Remaining admission headroom per quota dimension; -1 = unlimited.
	LiveHeadroom  int   `json:"live_headroom"`
	QueueHeadroom int   `json:"queue_headroom"`
	BytesHeadroom int64 `json:"bytes_headroom"`
}

func jobsView(ctrl gcs.API) []JobView {
	records := ctrl.Jobs()
	if len(records) == 0 {
		return nil
	}
	tasks := ctrl.Tasks()
	usage := jobs.ComputeUsage(tasks, ctrl.Objects())
	totals := make(map[types.JobID]int)
	for _, t := range tasks {
		if !t.Spec.Job.IsNil() {
			totals[t.Spec.Job]++
		}
	}
	out := make([]JobView, 0, len(records))
	for _, j := range records {
		u := usage[j.Spec.ID]
		v := JobView{
			ID: j.Spec.ID.String(), IDHex: j.Spec.ID.Hex(),
			Name: j.Spec.Name, State: j.State.String(), Weight: j.Spec.FairWeight(),
			MaxLiveTasks: j.Spec.Quota.MaxLiveTasks, MaxQueueDepth: j.Spec.Quota.MaxQueueDepth,
			MaxObjectBytes: j.Spec.Quota.MaxObjectBytes,
			CreatedNs:      j.CreatedNs, StoppedNs: j.StoppedNs, PurgedNs: j.PurgedNs,
			LiveTasks: u.LiveTasks, QueueDepth: u.QueueDepth, ObjectBytes: u.ObjectBytes,
			TotalTasks:   totals[j.Spec.ID],
			LiveHeadroom: -1, QueueHeadroom: -1, BytesHeadroom: -1,
		}
		if q := j.Spec.Quota.MaxLiveTasks; q > 0 {
			v.LiveHeadroom = max(0, q-u.LiveTasks)
		}
		if q := j.Spec.Quota.MaxQueueDepth; q > 0 {
			v.QueueHeadroom = max(0, q-u.QueueDepth)
		}
		if q := j.Spec.Quota.MaxObjectBytes; q > 0 {
			v.BytesHeadroom = max(0, q-u.ObjectBytes)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].CreatedNs < out[k].CreatedNs })
	return out
}

// EventView is the JSON shape of one event-log entry.
type EventView struct {
	TimeNs int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Task   string `json:"task,omitempty"`
	Object string `json:"object,omitempty"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
}

func eventsView(ctrl gcs.API) []EventView {
	var out []EventView
	for _, e := range ctrl.Events() {
		ev := EventView{TimeNs: e.TimeNs, Kind: e.Kind, Detail: e.Detail}
		if !e.Task.IsNil() {
			ev.Task = e.Task.String()
		}
		if !e.Object.IsNil() {
			ev.Object = e.Object.String()
		}
		if !e.Node.IsNil() {
			ev.Node = e.Node.String()
		}
		out = append(out, ev)
	}
	return out
}

func overview(ctrl gcs.API, o handlerOpts, w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if o.shardStats != nil {
		stats := o.shardStats()
		alive := 0
		var restarts int64
		for _, s := range stats {
			if s.Alive {
				alive++
			}
			restarts += s.Restarts
		}
		fmt.Fprintf(w, "control plane: %d shards (%d alive, %d restarts)\n", len(stats), alive, restarts)
	}
	nodes := ctrl.Nodes()
	alive, draining := 0, 0
	for _, n := range nodes {
		if n.Alive {
			alive++
			if n.State == types.NodeDraining {
				draining++
			}
		}
	}
	tasks := ctrl.Tasks()
	byStatus := map[types.TaskStatus]int{}
	for _, t := range tasks {
		byStatus[t.Status]++
	}
	fmt.Fprintf(w, "cluster overview @ %v\n", time.Duration(ctrl.NowNs()))
	fmt.Fprintf(w, "nodes: %d (%d alive, %d draining)\n", len(nodes), alive, draining)
	if o.autoscale != nil {
		st := o.autoscale()
		fmt.Fprintf(w, "autoscaler: %d active, %d draining, backlog %d, %d scale-ups, %d drains (%d done, %d rolled back)\n",
			st.Active, st.Draining, st.Backlog, st.ScaleUps, st.Drains, st.Drained, st.RolledBack)
	}
	fmt.Fprintf(w, "tasks: %d total", len(tasks))
	for _, st := range []types.TaskStatus{types.TaskPending, types.TaskQueued, types.TaskScheduled, types.TaskRunning, types.TaskFinished, types.TaskLost, types.TaskFailed} {
		if n := byStatus[st]; n > 0 {
			fmt.Fprintf(w, "  %s=%d", st, n)
		}
	}
	fmt.Fprintln(w)
	// Dispatch-mode split (DESIGN.md §15), summed over the nodes' latest
	// heartbeat telemetry; omitted when no node has reported yet.
	var dispatched, inlined int64
	for _, snap := range telemetryOf(ctrl) {
		dispatched += snap.Snap.Counters["scheduler.tasks.dispatched"]
		inlined += snap.Snap.Counters["scheduler.tasks.inlined"]
	}
	if dispatched > 0 {
		fmt.Fprintf(w, "dispatch: %d total, %d inline, %d queued\n", dispatched, inlined, dispatched-inlined)
	}
	var memUsed, memSpilled, reclaimed int64
	for _, n := range nodes {
		if n.Alive {
			memUsed += n.Store.UsedBytes
			memSpilled += n.Store.SpilledBytes
			reclaimed += n.Store.Reclaimed
		}
	}
	fmt.Fprintf(w, "object memory: %d B in memory, %d B spilled, %d reclaimed\n",
		memUsed, memSpilled, reclaimed)
	fmt.Fprintf(w, "objects: %d, functions: %d, events: %d\n",
		len(ctrl.Objects()), len(ctrl.Functions()), len(ctrl.Events()))
	if jobRecords := ctrl.Jobs(); len(jobRecords) > 0 {
		byState := map[types.JobState]int{}
		for _, j := range jobRecords {
			byState[j.State]++
		}
		fmt.Fprintf(w, "jobs: %d total", len(jobRecords))
		for _, st := range []types.JobState{types.JobRunning, types.JobStopping, types.JobStopped} {
			if n := byState[st]; n > 0 {
				fmt.Fprintf(w, "  %s=%d", st, n)
			}
		}
		fmt.Fprintln(w)
	}
	if groups := ctrl.PlacementGroups(); len(groups) > 0 {
		byState := map[types.PlacementGroupState]int{}
		for _, g := range groups {
			byState[g.State]++
		}
		fmt.Fprintf(w, "placement groups: %d total", len(groups))
		for _, st := range []types.PlacementGroupState{types.GroupPending, types.GroupPlacing, types.GroupPlaced, types.GroupRemoved} {
			if n := byState[st]; n > 0 {
				fmt.Fprintf(w, "  %s=%d", st, n)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nendpoints: /api/nodes /api/tasks /api/objects /api/functions /api/events /api/profile /api/trace /api/shards /api/placement /api/autoscale /api/jobs /api/metrics /metrics")
}
