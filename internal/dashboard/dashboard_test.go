package dashboard

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/scheduler"
	"repro/internal/types"
)

func dashboardCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	reg := core.NewRegistry()
	ident := core.Register1(reg, "ident", func(tc *core.TaskContext, x int) (int, error) {
		return x, nil
	})
	c, err := cluster.New(cluster.Config{Nodes: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d := c.Driver()
	ref, err := ident.Remote(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := core.Get(ctx, d, ref); err != nil {
		t.Fatal(err)
	}
	return c
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	c := dashboardCluster(t)
	srv := httptest.NewServer(Handler(c.Ctrl))
	defer srv.Close()

	t.Run("nodes", func(t *testing.T) {
		code, body := get(t, srv, "/api/nodes")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var nodes []NodeView
		if err := json.Unmarshal([]byte(body), &nodes); err != nil {
			t.Fatal(err)
		}
		if len(nodes) != 2 {
			t.Fatalf("nodes = %d", len(nodes))
		}
		for _, n := range nodes {
			if !n.Alive || n.Addr == "" {
				t.Fatalf("node view: %+v", n)
			}
		}
	})
	t.Run("tasks", func(t *testing.T) {
		// The terminal record and the ownership columns (DESIGN.md §13: the
		// owner node plus the full ID hex for the detail endpoint) may lag
		// the owner's ledger by a flush interval, so poll until the follower
		// table shows the settled row.
		var tasks []TaskView
		deadline := time.Now().Add(10 * time.Second)
		for {
			code, body := get(t, srv, "/api/tasks")
			if code != 200 {
				t.Fatalf("status %d", code)
			}
			if err := json.Unmarshal([]byte(body), &tasks); err != nil {
				t.Fatal(err)
			}
			if len(tasks) == 1 && tasks[0].Status == "FINISHED" &&
				tasks[0].Owner != "" && len(tasks[0].IDHex) == 2*types.IDSize {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("task row never settled: %+v", tasks)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if tasks[0].Function != "ident" {
			t.Fatalf("tasks = %+v", tasks)
		}
		if tasks[0].E2EMs <= 0 {
			t.Fatal("missing timing")
		}
	})
	t.Run("task-detail", func(t *testing.T) {
		_, body := get(t, srv, "/api/tasks")
		var tasks []TaskView
		if err := json.Unmarshal([]byte(body), &tasks); err != nil {
			t.Fatal(err)
		}
		code, body := get(t, srv, "/api/tasks?id="+tasks[0].IDHex)
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var d TaskDetail
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			t.Fatal(err)
		}
		if d.Function != "ident" || d.Status != "FINISHED" || d.SubmittedNs <= 0 || d.FinishedNs <= 0 {
			t.Fatalf("task detail = %+v", d)
		}
		if code, _ := get(t, srv, "/api/tasks?id=zzzz"); code != 400 {
			t.Fatalf("bad id: status %d, want 400", code)
		}
		if code, _ := get(t, srv, "/api/tasks?id="+strings.Repeat("00", types.IDSize)); code != 404 {
			t.Fatalf("unknown id: status %d, want 404", code)
		}
	})
	t.Run("objects", func(t *testing.T) {
		code, body := get(t, srv, "/api/objects")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var objs []ObjectView
		if err := json.Unmarshal([]byte(body), &objs); err != nil {
			t.Fatal(err)
		}
		if len(objs) == 0 {
			t.Fatal("no objects")
		}
	})
	t.Run("events", func(t *testing.T) {
		code, body := get(t, srv, "/api/events")
		if code != 200 || !strings.Contains(body, "submit") {
			t.Fatalf("events: %d %q", code, body[:min(len(body), 200)])
		}
	})
	t.Run("profile", func(t *testing.T) {
		code, body := get(t, srv, "/api/profile")
		if code != 200 || !strings.Contains(body, "ident") {
			t.Fatalf("profile: %d", code)
		}
	})
	t.Run("trace", func(t *testing.T) {
		code, body := get(t, srv, "/api/trace")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		var parsed map[string]any
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatal(err)
		}
		if _, ok := parsed["traceEvents"]; !ok {
			t.Fatal("trace missing traceEvents")
		}
	})
	t.Run("overview", func(t *testing.T) {
		code, body := get(t, srv, "/")
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		for _, want := range []string{"nodes: 2", "tasks: 1", "FINISHED=1"} {
			if !strings.Contains(body, want) {
				t.Fatalf("overview missing %q:\n%s", want, body)
			}
		}
	})
	t.Run("404", func(t *testing.T) {
		code, _ := get(t, srv, "/nope")
		if code != 404 {
			t.Fatalf("status %d", code)
		}
	})
	t.Run("shards-single-store", func(t *testing.T) {
		code, body := get(t, srv, "/api/shards")
		if code != 200 || strings.TrimSpace(body) != "[]" {
			t.Fatalf("single-store shard view: %d %q", code, body)
		}
	})
}

// TestShardView exercises /api/shards and the overview shard line against
// a sharded control plane, across a shard kill+restart.
func TestShardView(t *testing.T) {
	reg := core.NewRegistry()
	c, err := cluster.New(cluster.Config{
		Nodes:          1,
		Registry:       reg,
		GCSShards:      2,
		GCSAutoRestart: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	srv := httptest.NewServer(Handler(c.API, WithShardStats(c.Super.Stats)))
	defer srv.Close()

	var shards []gcs.ShardStats
	code, body := get(t, srv, "/api/shards")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || !shards[0].Alive || !shards[1].Alive {
		t.Fatalf("shard view: %+v", shards)
	}

	c.Super.KillShard(1)
	if err := c.Super.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv, "/api/shards")
	if err := json.Unmarshal([]byte(body), &shards); err != nil {
		t.Fatal(err)
	}
	if shards[1].Incarnation != 2 || shards[1].Restarts != 1 {
		t.Fatalf("restart not reflected: %+v", shards[1])
	}

	_, overview := get(t, srv, "/")
	if !strings.Contains(overview, "control plane: 2 shards (2 alive, 1 restarts)") {
		t.Fatalf("overview missing shard line:\n%s", overview)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPlacementView exercises /api/placement and the overview's
// placement-group line.
func TestPlacementView(t *testing.T) {
	c := dashboardCluster(t)
	srv := httptest.NewServer(Handler(c.Ctrl))
	defer srv.Close()

	d := c.Driver()
	pg, err := d.CreatePlacementGroup("dash", types.StrategyPack, []types.Resources{types.CPU(2), types.CPU(2)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pg.WaitReady(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv, "/api/placement")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var rows []PlacementView
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 1 || rows[0].State != "PLACED" || rows[0].Strategy != "PACK" ||
		len(rows[0].Bundles) != 2 || len(rows[0].Nodes) != 2 || rows[0].Name != "dash" {
		t.Fatalf("bad placement view: %+v", rows)
	}

	_, overview := get(t, srv, "/")
	if !strings.Contains(overview, "placement groups: 1 total") || !strings.Contains(overview, "PLACED=1") {
		t.Fatalf("overview missing placement line:\n%s", overview)
	}
}

// TestAutoscaleAndDrainEndpoints covers the elasticity surface: the node
// view carries drain state + full ID hex, /api/autoscale round-trips a
// status source, and POST /api/drain drives the node-table CAS (GET is
// refused; the CAS reports a loser).
func TestAutoscaleAndDrainEndpoints(t *testing.T) {
	c := dashboardCluster(t)
	h := Handler(c.API, WithAutoscaler(func() autoscale.Status {
		return autoscale.Status{Active: 2, ScaleUps: 3, LastAction: "scale-up to 2 nodes"}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Node view: state + full hex.
	resp, err := http.Get(srv.URL + "/api/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nodes []NodeView
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nodes) != 2 {
		t.Fatalf("want 2 nodes, got %d", len(nodes))
	}
	for _, n := range nodes {
		if n.State != "ACTIVE" || len(n.IDHex) != 2*types.IDSize {
			t.Fatalf("bad node view: %+v", n)
		}
	}

	// Autoscaler status passthrough.
	resp, err = http.Get(srv.URL + "/api/autoscale")
	if err != nil {
		t.Fatal(err)
	}
	var st autoscale.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Active != 2 || st.ScaleUps != 3 || st.LastAction == "" {
		t.Fatalf("bad autoscale status: %+v", st)
	}

	// Drain: GET refused, POST wins once, the loser reports ok=false.
	victim := nodes[1].IDHex
	if resp, err = http.Get(srv.URL + "/api/drain?node=" + victim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET drain: HTTP %d, want 405", resp.StatusCode)
	}
	post := func() bool {
		resp, err := http.Post(srv.URL+"/api/drain?node="+victim, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			OK bool `json:"ok"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.OK
	}
	if !post() {
		t.Fatal("first drain POST must win the CAS")
	}
	id, err := types.ParseNodeID(victim)
	if err != nil {
		t.Fatal(err)
	}
	waitState := func(want types.NodeState, within time.Duration) types.NodeState {
		deadline := time.Now().Add(within)
		for {
			info, _ := c.API.GetNode(id)
			if info.State == want || time.Now().After(deadline) {
				return info.State
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// The empty-store node drains to completion quickly; a second POST can
	// race anywhere in Draining→Drained and must simply never report a
	// fresh CAS win.
	if post() {
		t.Fatal("second drain POST must lose (node no longer Active)")
	}
	if got := waitState(types.NodeDrained, 10*time.Second); got != types.NodeDrained {
		t.Fatalf("drained node state = %v, want DRAINED", got)
	}
}

// TestJobsEndpoints covers the multi-tenancy surface (DESIGN.md §14): the
// job table row joins the durable record with live usage and quota
// headroom, the overview gains a jobs line, and POST /api/stopjob drives
// the same Running→Stopping CAS core.StopJob issues (GET refused, second
// POST loses).
func TestJobsEndpoints(t *testing.T) {
	c := dashboardCluster(t)
	srv := httptest.NewServer(Handler(c.Ctrl))
	defer srv.Close()

	d := c.Driver()
	job, err := d.CreateJob("dash-tenant", 3, types.JobQuota{MaxLiveTasks: 8})
	if err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv, "/api/jobs")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var rows []JobView
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("jobs = %+v", rows)
	}
	j := rows[0]
	if j.Name != "dash-tenant" || j.State != "RUNNING" || j.Weight != 3 ||
		j.IDHex != job.ID.Hex() || j.MaxLiveTasks != 8 {
		t.Fatalf("job view: %+v", j)
	}
	if j.LiveHeadroom != 8 || j.QueueHeadroom != -1 || j.BytesHeadroom != -1 {
		t.Fatalf("headroom: %+v", j)
	}

	_, overview := get(t, srv, "/")
	if !strings.Contains(overview, "jobs: 1 total") || !strings.Contains(overview, "RUNNING=1") {
		t.Fatalf("overview missing jobs line:\n%s", overview)
	}

	// Stop: GET refused, first POST wins the CAS, the loser reports ok=false.
	resp, err := http.Get(srv.URL + "/api/stopjob?job=" + job.ID.Hex())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET stopjob: HTTP %d, want 405", resp.StatusCode)
	}
	post := func() bool {
		resp, err := http.Post(srv.URL+"/api/stopjob?job="+job.ID.Hex(), "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			OK bool `json:"ok"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.OK
	}
	if !post() {
		t.Fatal("first stopjob POST must win the CAS")
	}
	if post() {
		t.Fatal("second stopjob POST must lose (job no longer Running)")
	}

	// The reclaim pass commits Stopped; the row reflects it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, srv, "/api/jobs")
		if err := json.Unmarshal([]byte(body), &rows); err != nil {
			t.Fatal(err)
		}
		if len(rows) == 1 && rows[0].State == "STOPPED" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job row never reached STOPPED: %+v", rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsEndpointFamilies drives a sharded cluster through a
// spill-heavy cross-node workload and asserts one scrape of /metrics
// covers every instrumented subsystem: scheduler, objectstore, gcs,
// lifetime, and autoscale metric families, rendered as valid Prometheus
// text with per-node labels.
func TestMetricsEndpointFamilies(t *testing.T) {
	reg := core.NewRegistry()
	blob := core.Register1(reg, "blob", func(tc *core.TaskContext, n int) ([]byte, error) {
		return make([]byte, 8<<10), nil
	})
	c, err := cluster.New(cluster.Config{
		Nodes:          2,
		NodeResources:  types.CPU(2),
		Registry:       reg,
		GCSShards:      2,
		SpillThreshold: cluster.SpillThresholdOf(0),
		GlobalPolicy:   &scheduler.RoundRobinPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	// Gauges land in node 0's registry at construction, so the autoscale
	// family ships with that node's heartbeats like everything else.
	as := autoscale.New(autoscale.Config{Ctrl: c.API, Metrics: c.Node(0).Metrics()})
	as.Start()
	t.Cleanup(as.Stop)

	d := c.Driver()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Round-robin placement births half the blobs remotely; the driver's
	// Gets pull them across nodes, and the zero spill threshold pushes
	// every put through the spill path.
	for i := 0; i < 8; i++ {
		ref, err := blob.Remote(d, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Get(ctx, d, ref); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(Handler(c.API))
	defer srv.Close()
	want := []string{"scheduler_", "objectstore_", "gcs_", "lifetime_", "autoscale_"}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body := string(raw)
		missing := ""
		for _, fam := range want {
			if !strings.Contains(body, fam) {
				missing = fam
				break
			}
		}
		if missing == "" {
			if !strings.Contains(body, "# TYPE") || !strings.Contains(body, `node="`) {
				t.Fatalf("not Prometheus text exposition:\n%.400s", body)
			}
			if !strings.Contains(body, "_bucket{") {
				t.Fatal("no histogram series exported")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("family %q never appeared in /metrics:\n%.1000s", missing, body)
		}
		time.Sleep(20 * time.Millisecond) // next heartbeat ships the snapshots
	}
}
