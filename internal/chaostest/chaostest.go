// Package chaostest is the reusable cluster-wide invariant checker shared
// by the chaos suites (shard kills, gang atomicity, drain kill matrix,
// autoscaler elasticity). Every assertion is an *await*: chaos tests
// observe a cluster mid-recovery, so the checker polls until the invariant
// holds — and, crucially, only concludes from a complete view: on a
// sharded control plane a dead shard's rows are simply absent from fan-out
// scans, so every conclusion requires all shards answering (gcs.Pinger),
// otherwise a poll landing in the kill window would pass vacuously.
//
// The invariants:
//
//   - Refcount conservation: after all handles are released, no object
//     anywhere still carries a reference — a retain accepted before a
//     crash is never forgotten, and every release eventually lands.
//   - Task-state conservation: every submitted task eventually reaches
//     exactly one terminal state in the follower task table, across owner
//     deaths, ownership transfers, and shard crashes (DESIGN.md §13).
//   - Bundle-pool accounting: a quiescent node's books balance — zero
//     bundle reservations, availability equal to total capacity (checked
//     against scheduler.Local.Accounting, the same surface the gang
//     invariant tests pinned).
//   - Referenced reachability: no referenced object is lost — every
//     object with a positive refcount either has a live location or is
//     reconstructable from lineage (non-nil producer).
package chaostest

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// Books is the per-node accounting surface the checker reads;
// scheduler.Local implements it.
type Books interface {
	Accounting() (total, avail types.Resources, bundles int, reserved types.Resources)
}

// Checker polls cluster-wide invariants through the control plane.
type Checker struct {
	api gcs.API
}

// New builds a checker over the cluster's merged control-plane view (the
// in-process store, or a sharded client whose fan-outs merge all shards).
func New(api gcs.API) *Checker { return &Checker{api: api} }

// pollInterval is the await loops' re-check cadence.
const pollInterval = 10 * time.Millisecond

// shardsUp reports whether scans currently reflect every shard. A non-
// Pinger control plane (plain in-process store) is always complete.
func (c *Checker) shardsUp() bool {
	if p, ok := c.api.(gcs.Pinger); ok {
		return p.Ping()
	}
	return true
}

// AwaitZeroRefcounts asserts refcount conservation across shards: within
// the deadline, every object's cluster-wide count drains to zero while all
// shards are answering.
func (c *Checker) AwaitZeroRefcounts(t testing.TB, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		up := c.shardsUp()
		leaked := 0
		for _, o := range c.api.Objects() {
			if o.RefCount != 0 {
				leaked++
			}
		}
		if leaked == 0 && up {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaostest: %d objects still hold references (all shards up: %v)", leaked, up)
		}
		time.Sleep(pollInterval)
	}
}

// Ledger is the per-node reference-ledger surface the conservation
// checker samples; lifetime.Tracker implements it. HeldAll is the node's
// authoritative held counts, Unflushed the net deltas the control plane
// has not yet acked (pending entries plus parked retry batches).
type Ledger interface {
	HeldAll() map[types.ObjectID]int64
	Unflushed() map[types.ObjectID]int64
}

// AwaitRefConservation asserts the ownership protocol's conservation law
// mid-flight: for every object, the GCS's flushed count plus the net
// unflushed deltas across all live ledgers equals the references those
// ledgers hold. The equality is eventual, not instantaneous — a batch the
// shard committed but whose ack was lost is transiently counted twice
// (in RefCount and in the retry queue) until redelivery dedups it — so
// the await polls, sampling all ledgers and the table in each round, and
// only concludes on a complete shard view.
func (c *Checker) AwaitRefConservation(t testing.TB, within time.Duration, ledgers map[string]Ledger) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		up := c.shardsUp()
		bad := c.conservationViolations(ledgers)
		if up && len(bad) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaostest: refcount conservation violated (all shards up: %v): %v", up, bad)
		}
		time.Sleep(pollInterval)
	}
}

// conservationViolations samples every ledger plus the object table and
// returns a description of each object where flushed + unflushed != held.
func (c *Checker) conservationViolations(ledgers map[string]Ledger) []string {
	held := make(map[types.ObjectID]int64)
	unflushed := make(map[types.ObjectID]int64)
	for _, l := range ledgers {
		for id, n := range l.HeldAll() {
			held[id] += n
		}
		for id, d := range l.Unflushed() {
			unflushed[id] += d
		}
	}
	flushed := make(map[types.ObjectID]int64)
	for _, o := range c.api.Objects() {
		flushed[o.ID] = o.RefCount
	}
	ids := make(map[types.ObjectID]bool)
	for id := range held {
		ids[id] = true
	}
	for id := range unflushed {
		ids[id] = true
	}
	for id := range flushed {
		ids[id] = true
	}
	var bad []string
	for id := range ids {
		if flushed[id]+unflushed[id] != held[id] {
			bad = append(bad, fmt.Sprintf("%v: flushed=%d unflushed=%d held=%d",
				id, flushed[id], unflushed[id], held[id]))
		}
	}
	return bad
}

// AwaitTaskConservation asserts the owner-based task-state protocol's
// conservation law (DESIGN.md §13): once the workload quiesces and owner
// ledgers settle their flushes, every task the cluster admitted is in the
// follower table in exactly one terminal state (FINISHED, FAILED, or LOST)
// — no task is forgotten mid-ownership-tenure, left claimed by a dead
// owner, or stranded non-terminal by a fence that consumed its final
// delta. Chaos can legitimately leave a task mid-replay at any instant, so
// the assertion is an await; and since a dead shard's rows vanish from
// fan-out scans, it only concludes on a complete shard view. Pass the IDs
// of every submitted root task; lineage replays and retries collapse onto
// the same records, so the expected terminal count is exactly len(ids).
func (c *Checker) AwaitTaskConservation(t testing.TB, within time.Duration, ids []types.TaskID) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		up := c.shardsUp()
		bad := c.taskConservationViolations(ids)
		if up && len(bad) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaostest: task-state conservation violated for %d/%d tasks (all shards up: %v): %v",
				len(bad), len(ids), up, bad)
		}
		time.Sleep(pollInterval)
	}
}

// taskConservationViolations scans the follower table and describes every
// submitted task that is absent or not yet in a terminal state.
func (c *Checker) taskConservationViolations(ids []types.TaskID) []string {
	table := make(map[types.TaskID]types.TaskState)
	for _, ts := range c.api.Tasks() {
		table[ts.Spec.ID] = ts
	}
	var bad []string
	for _, id := range ids {
		st, ok := table[id]
		if !ok {
			bad = append(bad, fmt.Sprintf("%v: missing from the task table", id))
			continue
		}
		if !st.Status.Terminal() {
			bad = append(bad, fmt.Sprintf("%v: %v (owner %v seq %d)", id, st.Status, st.Owner, st.OwnerSeq))
		}
	}
	return bad
}

// AwaitQuiescentBooks asserts bundle-pool accounting on every supplied
// node: zero bundle reservations and full availability — the gang
// invariant that a group which cannot fully place (or was rolled back)
// leaves nothing behind. Keys label nodes in failure messages.
func (c *Checker) AwaitQuiescentBooks(t testing.TB, within time.Duration, nodes map[string]Books) {
	t.Helper()
	deadline := time.Now().Add(within)
	for label, b := range nodes {
		for {
			total, avail, bundles, reserved := b.Accounting()
			if bundles == 0 && reserved.IsZero() && total.Fits(avail) && avail.Fits(total) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("chaostest: node %s books not quiescent: total=%v avail=%v bundles=%d reserved=%v",
					label, total, avail, bundles, reserved)
			}
			time.Sleep(pollInterval)
		}
	}
}

// AwaitReferencedReachable asserts that no referenced object is lost:
// within the deadline (and with all shards answering), every object whose
// refcount is positive either is Ready with at least one location on a
// live node, is still Pending (its producer in flight), or — if Lost —
// carries a producer edge so lineage replay can reconstruct it.
func (c *Checker) AwaitReferencedReachable(t testing.TB, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		up := c.shardsUp()
		bad := c.unreachableReferenced()
		if up && len(bad) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaostest: %d referenced objects unreachable (all shards up: %v): %v", len(bad), up, bad)
		}
		time.Sleep(pollInterval)
	}
}

// unreachableReferenced returns a description of every referenced object
// that currently has neither a live copy nor a lineage path back to one.
func (c *Checker) unreachableReferenced() []string {
	alive := make(map[types.NodeID]bool)
	for _, n := range c.api.Nodes() {
		if n.Alive {
			alive[n.ID] = true
		}
	}
	var bad []string
	for _, o := range c.api.Objects() {
		if o.RefCount <= 0 {
			continue
		}
		switch o.State {
		case types.ObjectReady:
			located := false
			for _, l := range o.Locations {
				if alive[l] {
					located = true
					break
				}
			}
			if !located {
				bad = append(bad, fmt.Sprintf("%v READY with no live location", o.ID))
			}
		case types.ObjectLost:
			if o.Producer.IsNil() {
				bad = append(bad, fmt.Sprintf("%v LOST and not reconstructable", o.ID))
			}
		}
	}
	return bad
}

// AwaitDrainSettled asserts the drain state machine's terminal guarantee
// for one node: within the deadline its record reads Drained (migration
// finished, node deregistering or gone), dead (the chaos killed it), or
// rolled back to Active and admitting again — never wedged in Draining.
func (c *Checker) AwaitDrainSettled(t testing.TB, within time.Duration, node types.NodeID) types.NodeState {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		info, ok := c.api.GetNode(node)
		if ok && (!info.Alive || info.State != types.NodeDraining) {
			return info.State
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaostest: node %v still Draining after %v (ok=%v)", node, within, ok)
		}
		time.Sleep(pollInterval)
	}
}
