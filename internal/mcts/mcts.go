// Package mcts implements Monte Carlo tree search over the core API — the
// paper's Figure 2b workload and the canonical consumer of dynamic task
// creation (R3): the search adaptively launches more simulation tasks
// exploring the most promising subtrees, "depending on how promising they
// are or how fast the computation is", so the task graph cannot be
// specified upfront.
//
// The "game" is a deterministic synthetic planning problem: a hidden
// optimal action sequence is derived from the seed, and a rollout's payoff
// measures how much of its action prefix matches. Simulations burn a
// configurable compute cost, standing in for the paper's physics
// simulator.
package mcts

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// FuncSimulate is the remote simulation function's registry name.
const FuncSimulate = "mcts.simulate"

// Config shapes the search.
type Config struct {
	// Seed derives the hidden optimal sequence and rollout noise.
	Seed uint64
	// NumActions is the branching factor.
	NumActions int
	// MaxDepth is the planning horizon.
	MaxDepth int
	// SimCost is each simulation task's compute (the physics sim).
	SimCost time.Duration
	// Budget is the total number of simulations.
	Budget int
	// Parallelism bounds in-flight simulation tasks.
	Parallelism int
	// ExplorationC is the UCB1 exploration constant.
	ExplorationC float64
}

// Default returns a small but non-trivial search.
func Default(seed uint64) Config {
	return Config{
		Seed:         seed,
		NumActions:   4,
		MaxDepth:     6,
		SimCost:      2 * time.Millisecond,
		Budget:       128,
		Parallelism:  8,
		ExplorationC: 1.4,
	}
}

// simArg is the wire argument of FuncSimulate.
type simArg struct {
	Path    []int
	Seed    uint64
	CostNs  int64
	Actions int
	Depth   int
}

// Result is a completed search.
type Result struct {
	BestAction  int
	BestValue   float64
	Simulations int
	TreeNodes   int
	Elapsed     time.Duration
}

// hiddenSequence is the optimal plan the rollouts reward.
func hiddenSequence(seed uint64, depth, actions int) []int {
	h := fnv.New64a()
	fmt.Fprintf(h, "seq-%d", seed)
	s := h.Sum64()
	out := make([]int, depth)
	for i := range out {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		out[i] = int((s * 0x2545f4914f6cdd1d) >> 33 % uint64(actions))
	}
	return out
}

// Rollout evaluates a partial action path: the deterministic payoff plus
// path-dependent pseudo-noise, after burning the simulation cost. Exported
// so the serial baseline and the remote function share one body.
func Rollout(arg simArg) float64 {
	sim.Compute(time.Duration(arg.CostNs))
	hidden := hiddenSequence(arg.Seed, arg.Depth, arg.Actions)
	score := 0.0
	for i, a := range arg.Path {
		if i >= len(hidden) {
			break
		}
		if a == hidden[i] {
			score += 1.0
		} else {
			break // payoff rewards matching prefixes
		}
	}
	// Deterministic noise from the path, so searches are reproducible.
	h := fnv.New64a()
	for _, a := range arg.Path {
		fmt.Fprintf(h, "%d,", a)
	}
	noise := float64(h.Sum64()%1000)/1000.0*0.1 - 0.05
	return score/float64(arg.Depth) + noise
}

// RegisterFuncs installs the simulation function.
func RegisterFuncs(reg *core.Registry) {
	reg.Register(FuncSimulate, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("mcts.simulate expects 1 arg")
		}
		arg, err := codec.DecodeAs[simArg](args[0])
		if err != nil {
			return nil, err
		}
		v := Rollout(arg)
		enc, err := codec.Encode(v)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
}

// node is one tree node.
type node struct {
	path     []int
	visits   int
	value    float64 // total
	virtual  int     // virtual losses: in-flight sims through this node
	children []*node
}

func (n *node) mean() float64 {
	if n.visits == 0 {
		return 0
	}
	return n.value / float64(n.visits)
}

// ucb scores a child for selection (UCB1 with virtual losses so parallel
// selections diversify).
func (n *node) ucb(child *node, c float64) float64 {
	nv := child.visits + child.virtual
	if nv == 0 {
		return math.Inf(1)
	}
	total := n.visits + n.virtual
	if total < 1 {
		total = 1
	}
	return child.value/float64(nv) + c*math.Sqrt(math.Log(float64(total))/float64(nv))
}

// tree is the mutable search state (driver-side only; simulations are the
// distributed part, as in the paper's Fig 2b).
type tree struct {
	cfg  Config
	root *node
	size int
}

func newTree(cfg Config) *tree {
	return &tree{cfg: cfg, root: &node{}, size: 1}
}

// selectLeaf descends by UCB1, expanding the first unexpanded node, and
// applies a virtual loss along the path.
func (t *tree) selectLeaf() *node {
	n := t.root
	n.virtual++
	for len(n.path) < t.cfg.MaxDepth {
		if len(n.children) == 0 {
			n.children = make([]*node, t.cfg.NumActions)
			for a := 0; a < t.cfg.NumActions; a++ {
				child := &node{path: append(append([]int(nil), n.path...), a)}
				n.children[a] = child
			}
			t.size += t.cfg.NumActions
		}
		best, bestScore := n.children[0], math.Inf(-1)
		for _, ch := range n.children {
			if s := n.ucb(ch, t.cfg.ExplorationC); s > bestScore {
				best, bestScore = ch, s
			}
		}
		n = best
		n.virtual++
		if n.visits == 0 {
			break // simulate fresh leaves before expanding them
		}
	}
	return n
}

// backprop records a simulation result along the leaf's path.
func (t *tree) backprop(leaf *node, value float64) {
	// Walk from root following leaf.path, updating every node on the way.
	n := t.root
	n.visits++
	n.value += value
	n.virtual--
	for depth := 0; depth < len(leaf.path); depth++ {
		n = n.children[leaf.path[depth]]
		n.visits++
		n.value += value
		n.virtual--
	}
}

func (t *tree) bestRootAction() (int, float64) {
	best, bestVisits, bestValue := 0, -1, 0.0
	for a, ch := range t.root.children {
		if ch.visits > bestVisits {
			best, bestVisits, bestValue = a, ch.visits, ch.mean()
		}
	}
	return best, bestValue
}

func (t *tree) simArgFor(leaf *node) simArg {
	return simArg{
		Path:    leaf.path,
		Seed:    t.cfg.Seed,
		CostNs:  int64(t.cfg.SimCost),
		Actions: t.cfg.NumActions,
		Depth:   t.cfg.MaxDepth,
	}
}

// SearchSerial is the single-threaded baseline.
func SearchSerial(cfg Config) Result {
	start := time.Now()
	t := newTree(cfg)
	for i := 0; i < cfg.Budget; i++ {
		leaf := t.selectLeaf()
		t.backprop(leaf, Rollout(t.simArgFor(leaf)))
	}
	best, val := t.bestRootAction()
	return Result{BestAction: best, BestValue: val, Simulations: cfg.Budget, TreeNodes: t.size, Elapsed: time.Since(start)}
}

// Search runs the parallel search on the cluster: it keeps up to
// cfg.Parallelism simulation tasks in flight, uses wait to harvest
// whichever complete first, and immediately re-expands from the updated
// tree — the dynamic, adaptive graph construction of R3.
func Search(ctx context.Context, driver *core.Client, cfg Config) (Result, error) {
	start := time.Now()
	t := newTree(cfg)
	type flight struct{ leaf *node }
	inflight := make(map[types.ObjectID]flight)
	launched := 0

	launch := func() error {
		leaf := t.selectLeaf()
		ref, err := driver.Submit1(core.Call{
			Function:  FuncSimulate,
			Args:      []types.Arg{core.Val(t.simArgFor(leaf))},
			Resources: types.CPU(1),
		})
		if err != nil {
			return err
		}
		inflight[ref.ID] = flight{leaf: leaf}
		launched++
		return nil
	}

	done := 0
	for done < cfg.Budget {
		for launched < cfg.Budget && len(inflight) < cfg.Parallelism {
			if err := launch(); err != nil {
				return Result{}, err
			}
		}
		refs := make([]core.ObjectRef, 0, len(inflight))
		for id := range inflight {
			refs = append(refs, core.ObjectRef{ID: id})
		}
		ready, _, err := driver.Wait(ctx, refs, 1, -1)
		if err != nil {
			return Result{}, err
		}
		for _, r := range ready {
			fl := inflight[r.ID]
			delete(inflight, r.ID)
			raw, err := driver.Get(ctx, r)
			if err != nil {
				return Result{}, err
			}
			v, err := codec.DecodeAs[float64](raw)
			if err != nil {
				return Result{}, err
			}
			t.backprop(fl.leaf, v)
			done++
		}
	}
	best, val := t.bestRootAction()
	return Result{BestAction: best, BestValue: val, Simulations: done, TreeNodes: t.size, Elapsed: time.Since(start)}, nil
}
