package mcts

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/types"
)

func fastConfig(seed uint64) Config {
	cfg := Default(seed)
	cfg.SimCost = 100 * time.Microsecond
	cfg.Budget = 64
	cfg.Parallelism = 4
	return cfg
}

func TestHiddenSequenceDeterministic(t *testing.T) {
	a := hiddenSequence(7, 6, 4)
	b := hiddenSequence(7, 6, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hidden sequence not deterministic")
		}
		if a[i] < 0 || a[i] >= 4 {
			t.Fatalf("action %d out of range", a[i])
		}
	}
	c := hiddenSequence(8, 6, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequences")
	}
}

func TestRolloutRewardsMatchingPrefix(t *testing.T) {
	cfg := fastConfig(3)
	hidden := hiddenSequence(cfg.Seed, cfg.MaxDepth, cfg.NumActions)
	good := simArg{Path: hidden, Seed: cfg.Seed, Actions: cfg.NumActions, Depth: cfg.MaxDepth}
	bad := simArg{Path: []int{(hidden[0] + 1) % cfg.NumActions}, Seed: cfg.Seed, Actions: cfg.NumActions, Depth: cfg.MaxDepth}
	if Rollout(good) <= Rollout(bad) {
		t.Fatal("full match did not beat mismatch")
	}
}

func TestSearchSerialFindsHiddenFirstAction(t *testing.T) {
	cfg := fastConfig(5)
	cfg.Budget = 256
	res := SearchSerial(cfg)
	hidden := hiddenSequence(cfg.Seed, cfg.MaxDepth, cfg.NumActions)
	if res.BestAction != hidden[0] {
		t.Fatalf("best action %d, hidden %d (value %v)", res.BestAction, hidden[0], res.BestValue)
	}
	if res.Simulations != cfg.Budget {
		t.Fatalf("simulations = %d", res.Simulations)
	}
	if res.TreeNodes <= 1 {
		t.Fatal("tree never grew")
	}
}

func TestParallelSearchFindsHiddenFirstAction(t *testing.T) {
	cfg := fastConfig(5)
	cfg.Budget = 256
	reg := core.NewRegistry()
	RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Search(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hidden := hiddenSequence(cfg.Seed, cfg.MaxDepth, cfg.NumActions)
	if res.BestAction != hidden[0] {
		t.Fatalf("parallel best action %d, hidden %d", res.BestAction, hidden[0])
	}
	if res.Simulations < cfg.Budget {
		t.Fatalf("only %d simulations ran", res.Simulations)
	}
}

func TestVirtualLossesClearAfterSearch(t *testing.T) {
	cfg := fastConfig(9)
	tr := newTree(cfg)
	for i := 0; i < 32; i++ {
		leaf := tr.selectLeaf()
		tr.backprop(leaf, Rollout(tr.simArgFor(leaf)))
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.virtual != 0 {
			t.Fatalf("node %v left with virtual loss %d", n.path, n.virtual)
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(tr.root)
}

func TestUCBPrefersUnvisited(t *testing.T) {
	parent := &node{visits: 10}
	visited := &node{visits: 5, value: 5}
	fresh := &node{}
	if parent.ucb(fresh, 1.4) <= parent.ucb(visited, 1.4) {
		t.Fatal("unvisited child not prioritized")
	}
}
