package jobs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/types"
)

type fakeControl struct {
	jobs    map[types.JobID]types.JobInfo
	tasks   []types.TaskState
	objects []types.ObjectInfo
	gets    int
	scans   int
}

func (f *fakeControl) GetJob(id types.JobID) (types.JobInfo, bool) {
	f.gets++
	info, ok := f.jobs[id]
	return info, ok
}
func (f *fakeControl) Tasks() []types.TaskState {
	f.scans++
	return f.tasks
}
func (f *fakeControl) Objects() []types.ObjectInfo { return f.objects }

func runningJob(id types.JobID, quota types.JobQuota) types.JobInfo {
	return types.JobInfo{
		Spec:  types.JobSpec{ID: id, Weight: 1, Quota: quota},
		State: types.JobRunning,
	}
}

func taskIn(job types.JobID, n byte, status types.TaskStatus) types.TaskState {
	var id types.TaskID
	id[0] = n
	id[1] = job[0]
	return types.TaskState{Spec: types.TaskSpec{ID: id, Job: job}, Status: status}
}

func TestAdmitUnknownAndTerminatedJobs(t *testing.T) {
	a, b := jobID(1), jobID(2)
	fc := &fakeControl{jobs: map[types.JobID]types.JobInfo{}}
	stopped := runningJob(b, types.JobQuota{})
	stopped.State = types.JobStopped
	fc.jobs[b] = stopped
	adm := NewAdmission(fc, time.Hour)

	if err := adm.Admit(types.NilJobID); err != nil {
		t.Fatalf("nil job rejected: %v", err)
	}
	if err := adm.Admit(a); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown job: %v, want ErrJobNotFound", err)
	}
	if err := adm.Admit(b); !errors.Is(err, ErrJobTerminated) {
		t.Fatalf("stopped job: %v, want ErrJobTerminated", err)
	}
	stopping := stopped
	stopping.State = types.JobStopping
	adm.Observe(stopping)
	if err := adm.Admit(b); !errors.Is(err, ErrJobTerminated) {
		t.Fatalf("stopping job: %v, want ErrJobTerminated", err)
	}
}

func TestAdmitQuotaCeilings(t *testing.T) {
	a := jobID(1)
	fc := &fakeControl{jobs: map[types.JobID]types.JobInfo{
		a: runningJob(a, types.JobQuota{MaxLiveTasks: 3}),
	}}
	fc.tasks = []types.TaskState{
		taskIn(a, 1, types.TaskRunning),
		taskIn(a, 2, types.TaskPending),
		taskIn(a, 3, types.TaskFinished), // terminal: not live
	}
	adm := NewAdmission(fc, time.Hour)
	if err := adm.Admit(a); err != nil {
		t.Fatalf("submit under ceiling rejected: %v", err)
	}
	// 2 scanned live + 1 in-flight = ceiling; next must fail fast.
	if err := adm.Admit(a); !errors.Is(err, ErrJobQuota) {
		t.Fatalf("submit at ceiling: %v, want ErrJobQuota", err)
	}
}

func TestAdmitObjectBytesCeiling(t *testing.T) {
	a := jobID(1)
	producer := taskIn(a, 1, types.TaskFinished)
	fc := &fakeControl{
		jobs:  map[types.JobID]types.JobInfo{a: runningJob(a, types.JobQuota{MaxObjectBytes: 100})},
		tasks: []types.TaskState{producer},
		objects: []types.ObjectInfo{
			{Producer: producer.Spec.ID, Size: 60},
			{Producer: producer.Spec.ID, Size: 50},
		},
	}
	adm := NewAdmission(fc, time.Hour)
	if err := adm.Admit(a); !errors.Is(err, ErrJobQuota) {
		t.Fatalf("over byte ceiling: %v, want ErrJobQuota", err)
	}
}

func TestAdmitUnlimitedSkipsScan(t *testing.T) {
	a := jobID(1)
	fc := &fakeControl{jobs: map[types.JobID]types.JobInfo{a: runningJob(a, types.JobQuota{})}}
	adm := NewAdmission(fc, time.Hour)
	for i := 0; i < 5; i++ {
		if err := adm.Admit(a); err != nil {
			t.Fatalf("unlimited job rejected: %v", err)
		}
	}
	if fc.scans != 0 {
		t.Fatalf("unlimited admission ran %d usage scans, want 0", fc.scans)
	}
	if fc.gets != 1 {
		t.Fatalf("record fetched %d times under TTL, want 1", fc.gets)
	}
}

func TestComputeUsageAttribution(t *testing.T) {
	a, b := jobID(1), jobID(2)
	pa := taskIn(a, 1, types.TaskRunning)
	pb := taskIn(b, 2, types.TaskQueued)
	var orphan types.TaskID
	orphan[0] = 99
	usage := ComputeUsage(
		[]types.TaskState{pa, pb, taskIn(a, 3, types.TaskFailed)},
		[]types.ObjectInfo{
			{Producer: pa.Spec.ID, Size: 10},
			{Producer: pb.Spec.ID, Size: 20},
			{Producer: orphan, Size: 1 << 40}, // purged producer: meters nobody
		},
	)
	if u := usage[a]; u.LiveTasks != 1 || u.QueueDepth != 0 || u.ObjectBytes != 10 {
		t.Fatalf("job a usage = %+v", u)
	}
	if u := usage[b]; u.LiveTasks != 1 || u.QueueDepth != 1 || u.ObjectBytes != 20 {
		t.Fatalf("job b usage = %+v", u)
	}
}
