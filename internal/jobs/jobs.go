// Package jobs implements the multi-tenant job subsystem (DESIGN.md §14):
// weighted fair-share dispatch ordering for the global scheduler and
// admission quotas enforced at submit time. The durable job table itself
// lives in the GCS (internal/gcs jobs.go); this package holds the policy
// machinery that consumes it.
package jobs

import "errors"

// Typed admission errors. core aliases these so drivers can errors.Is
// against its public API without importing this package.
var (
	// ErrJobNotFound rejects a submission naming a job the control plane
	// has no record of.
	ErrJobNotFound = errors.New("jobs: job not found")
	// ErrJobTerminated rejects a submission against a job that is stopping
	// or stopped. The Stopped record is a durable tombstone, so a replayed
	// submission keeps failing with this error even after the job's task
	// and object records have been purged.
	ErrJobTerminated = errors.New("jobs: job terminated")
	// ErrJobQuota rejects a submission that would exceed one of the job's
	// admission ceilings (concurrent live tasks, queue depth, object
	// bytes). Fail-fast: the task never enters the queues.
	ErrJobQuota = errors.New("jobs: quota exceeded")
)
