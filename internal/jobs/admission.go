package jobs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/types"
)

// Control is the slice of the control-plane API admission needs. gcs.API
// satisfies it; tests satisfy it with fixtures.
type Control interface {
	GetJob(id types.JobID) (types.JobInfo, bool)
	Tasks() []types.TaskState
	Objects() []types.ObjectInfo
}

// Usage is one job's measured footprint, the quantity quotas meter.
type Usage struct {
	// LiveTasks counts the job's non-terminal task records.
	LiveTasks int
	// QueueDepth counts the subset sitting unscheduled (PENDING or QUEUED).
	QueueDepth int
	// ObjectBytes sums the sizes of undrained objects attributed to the
	// job through producer-task lineage edges.
	ObjectBytes int64
}

// ComputeUsage folds cluster scans into per-job footprints. Objects are
// attributed to the job of their producer task; records whose producer has
// already been purged are unattributable and meter nobody (conservative in
// the tenant's favor).
func ComputeUsage(tasks []types.TaskState, objects []types.ObjectInfo) map[types.JobID]Usage {
	out := make(map[types.JobID]Usage)
	producerJob := make(map[types.TaskID]types.JobID, len(tasks))
	for _, t := range tasks {
		producerJob[t.Spec.ID] = t.Spec.Job
		if t.Spec.Job.IsNil() {
			continue
		}
		u := out[t.Spec.Job]
		if !t.Status.Terminal() {
			u.LiveTasks++
		}
		if t.Status == types.TaskPending || t.Status == types.TaskQueued {
			u.QueueDepth++
		}
		out[t.Spec.Job] = u
	}
	for _, o := range objects {
		job, ok := producerJob[o.Producer]
		if !ok || job.IsNil() {
			continue
		}
		u := out[job]
		u.ObjectBytes += o.Size
		out[job] = u
	}
	return out
}

// Admission enforces per-job quotas at submit time. Both the job record
// and the cluster usage scan are cached for a short TTL — admission sits
// on the submit fast path, and a quota is a ceiling, not an exact meter;
// an optimistic in-flight counter covers the submissions admitted between
// scans so a burst cannot blow arbitrarily far past the ceiling.
type Admission struct {
	ctrl Control
	ttl  time.Duration

	mu       sync.Mutex
	jobs     map[types.JobID]cachedJob
	usage    map[types.JobID]Usage
	usageAt  time.Time
	inflight map[types.JobID]int

	// Multi-tenancy signal cache (DESIGN.md §15): MultiTenant sits on the
	// submit fast path exactly like Admit, so the job-table scan behind it
	// is amortized under the same TTL.
	multi   bool
	multiAt time.Time
}

// jobLister is the optional slice of the control plane that can enumerate
// job records. gcs.API implements it; minimal test fixtures need not.
type jobLister interface {
	Jobs() []types.JobInfo
}

type cachedJob struct {
	info types.JobInfo
	at   time.Time
}

// NewAdmission wraps a control plane. ttl <= 0 selects 100ms — long enough
// to amortize the scans across a submit burst, short enough that a stop or
// quota edit lands within an eye-blink.
func NewAdmission(ctrl Control, ttl time.Duration) *Admission {
	if ttl <= 0 {
		ttl = 100 * time.Millisecond
	}
	return &Admission{
		ctrl:     ctrl,
		ttl:      ttl,
		jobs:     make(map[types.JobID]cachedJob),
		usage:    make(map[types.JobID]Usage),
		inflight: make(map[types.JobID]int),
	}
}

// Job returns the (cached) job record.
func (a *Admission) Job(id types.JobID) (types.JobInfo, bool) {
	a.mu.Lock()
	c, ok := a.jobs[id]
	fresh := ok && time.Since(c.at) < a.ttl
	a.mu.Unlock()
	if fresh {
		return c.info, true
	}
	info, ok := a.ctrl.GetJob(id)
	if !ok {
		return types.JobInfo{}, false
	}
	a.mu.Lock()
	a.jobs[id] = cachedJob{info: info, at: time.Now()}
	a.mu.Unlock()
	return info, true
}

// Observe force-updates the job cache from a subscription event, so a stop
// fences new submissions without waiting out the TTL.
func (a *Admission) Observe(info types.JobInfo) {
	a.mu.Lock()
	a.jobs[info.Spec.ID] = cachedJob{info: info, at: time.Now()}
	a.mu.Unlock()
}

// Admit decides one submission: nil to admit, or a typed error
// (ErrJobNotFound / ErrJobTerminated / ErrJobQuota) to reject. A nil job
// ID is the untenanted default and is always admitted.
func (a *Admission) Admit(job types.JobID) error {
	if job.IsNil() {
		return nil
	}
	info, ok := a.Job(job)
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobNotFound, job)
	}
	if info.State != types.JobRunning {
		return fmt.Errorf("%w: %s is %s", ErrJobTerminated, job, info.State)
	}
	q := info.Spec.Quota
	if q.MaxLiveTasks == 0 && q.MaxQueueDepth == 0 && q.MaxObjectBytes == 0 {
		return nil // unlimited: skip the usage scan entirely
	}
	u, pending := a.jobUsage(job)
	if q.MaxLiveTasks > 0 && u.LiveTasks+pending >= q.MaxLiveTasks {
		return fmt.Errorf("%w: %s live tasks %d at ceiling %d", ErrJobQuota, job, u.LiveTasks+pending, q.MaxLiveTasks)
	}
	if q.MaxQueueDepth > 0 && u.QueueDepth+pending >= q.MaxQueueDepth {
		return fmt.Errorf("%w: %s queue depth %d at ceiling %d", ErrJobQuota, job, u.QueueDepth+pending, q.MaxQueueDepth)
	}
	if q.MaxObjectBytes > 0 && u.ObjectBytes >= q.MaxObjectBytes {
		return fmt.Errorf("%w: %s object bytes %d at ceiling %d", ErrJobQuota, job, u.ObjectBytes, q.MaxObjectBytes)
	}
	a.mu.Lock()
	a.inflight[job]++
	a.mu.Unlock()
	return nil
}

// MultiTenant reports whether two or more jobs are currently Running — the
// same contention signal the global scheduler's fair-dispatch gate keys on
// (scheduler.Global.runningJobs). The local scheduler fences its inline
// fast path on it so a tenant's inline submissions cannot bypass DRR
// ordering while fair share is in effect. TTL-cached; a control plane that
// cannot enumerate jobs reads as single-tenant.
func (a *Admission) MultiTenant() bool {
	a.mu.Lock()
	fresh := !a.multiAt.IsZero() && time.Since(a.multiAt) < a.ttl
	cached := a.multi
	a.mu.Unlock()
	if fresh {
		return cached
	}
	lister, ok := a.ctrl.(jobLister)
	running := 0
	if ok {
		for _, j := range lister.Jobs() {
			if j.State == types.JobRunning {
				running++
				if running >= 2 {
					break
				}
			}
		}
	}
	a.mu.Lock()
	a.multi = running >= 2
	a.multiAt = time.Now()
	a.mu.Unlock()
	return running >= 2
}

// jobUsage returns the job's scanned usage plus its optimistic in-flight
// count, refreshing the cluster scan when the cache has aged out.
func (a *Admission) jobUsage(job types.JobID) (Usage, int) {
	a.mu.Lock()
	stale := time.Since(a.usageAt) >= a.ttl
	a.mu.Unlock()
	if stale {
		usage := ComputeUsage(a.ctrl.Tasks(), a.ctrl.Objects())
		a.mu.Lock()
		// Re-check under the lock: a concurrent refresh may have won.
		if time.Since(a.usageAt) >= a.ttl {
			a.usage = usage
			a.usageAt = time.Now()
			// The fresh scan has absorbed previously-admitted submissions.
			a.inflight = make(map[types.JobID]int)
		}
		a.mu.Unlock()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usage[job], a.inflight[job]
}
