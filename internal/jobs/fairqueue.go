package jobs

import "repro/internal/types"

// FairQueue orders spilled tasks for dispatch by deficit round-robin over
// jobs: each job owns a FIFO of its pending specs plus a deficit counter;
// a full rotation of the ring grants every backlogged job dispatches in
// proportion to its weight (unit task cost, so DRR degenerates to weighted
// round-robin). Tasks with no job ride under NilJobID at weight 1.
//
// The queue is not self-synchronizing: the global scheduler's run
// goroutine owns it exclusively, like the parked-task map it feeds.
type FairQueue struct {
	// weight resolves a job's current fair-share weight; the scheduler
	// backs it with its job-record cache. Values <= 0 clamp to 1 so a job
	// whose record is momentarily unknown still drains.
	weight func(types.JobID) int

	order   []types.JobID // active ring: jobs with queued specs
	queues  map[types.JobID][]types.TaskSpec
	deficit map[types.JobID]int
	// ids counts queued specs per task ID (respill duplicates can coexist)
	// so the scheduler's pending-task sweep can tell "held here, gated" from
	// "publish lost, rescue me" without scanning every ring.
	ids    map[types.TaskID]int
	cursor int
	size   int
}

// NewFairQueue builds an empty queue around a weight resolver (nil means
// every job weighs 1 — plain round-robin).
func NewFairQueue(weight func(types.JobID) int) *FairQueue {
	return &FairQueue{
		weight:  weight,
		queues:  make(map[types.JobID][]types.TaskSpec),
		deficit: make(map[types.JobID]int),
		ids:     make(map[types.TaskID]int),
	}
}

func (f *FairQueue) weightOf(job types.JobID) int {
	if f.weight == nil {
		return 1
	}
	if w := f.weight(job); w > 0 {
		return w
	}
	return 1
}

// Push enqueues a spec under its job, activating the job in the ring if it
// had nothing queued.
func (f *FairQueue) Push(spec types.TaskSpec) {
	job := spec.Job
	if _, ok := f.queues[job]; !ok {
		f.order = append(f.order, job)
	}
	f.queues[job] = append(f.queues[job], spec)
	f.ids[spec.ID]++
	f.size++
}

// Pop dequeues the next spec under DRR order. The ring cursor parks on the
// job being served, so one job's consecutive Pops batch up to its weight
// before the rotation moves on — which is what makes a full rotation
// weight-proportional.
func (f *FairQueue) Pop() (types.TaskSpec, bool) {
	for f.size > 0 {
		if f.cursor >= len(f.order) {
			f.cursor = 0
		}
		job := f.order[f.cursor]
		queue := f.queues[job]
		if len(queue) == 0 {
			f.retire(f.cursor)
			continue
		}
		if f.deficit[job] <= 0 {
			// Replenish on the way past; the job serves its quantum when
			// the rotation comes back around.
			f.deficit[job] += f.weightOf(job)
			f.cursor++
			continue
		}
		f.deficit[job]--
		spec := queue[0]
		f.queues[job] = queue[1:]
		f.forget(spec.ID)
		f.size--
		if len(queue) == 1 {
			// Drained: retire so an idle job neither holds a ring slot nor
			// banks deficit for a later burst.
			f.retire(f.cursor)
		}
		return spec, true
	}
	return types.TaskSpec{}, false
}

// retire drops the ring slot at index i and its job's bookkeeping.
func (f *FairQueue) retire(i int) {
	job := f.order[i]
	delete(f.queues, job)
	delete(f.deficit, job)
	f.order = append(f.order[:i], f.order[i+1:]...)
}

// DropJob removes every spec queued under job (a stopping tenant) and
// returns them so the caller can bury the task records.
func (f *FairQueue) DropJob(job types.JobID) []types.TaskSpec {
	dropped, ok := f.queues[job]
	if !ok {
		return nil
	}
	for i, j := range f.order {
		if j == job {
			f.retire(i)
			if i < f.cursor {
				f.cursor--
			}
			break
		}
	}
	for _, spec := range dropped {
		f.forget(spec.ID)
	}
	f.size -= len(dropped)
	return dropped
}

// forget decrements a task ID's queued count.
func (f *FairQueue) forget(id types.TaskID) {
	if f.ids[id] <= 1 {
		delete(f.ids, id)
	} else {
		f.ids[id]--
	}
}

// Contains reports whether any spec with this task ID is queued.
func (f *FairQueue) Contains(id types.TaskID) bool { return f.ids[id] > 0 }

// Len returns the total number of queued specs.
func (f *FairQueue) Len() int { return f.size }

// Jobs returns how many distinct jobs currently have specs queued — the
// scheduler's contention signal: with fewer than two, fair-share ordering
// cannot matter and dispatch may run unthrottled.
func (f *FairQueue) Jobs() int { return len(f.queues) }

// JobDepth returns the number of specs queued under one job.
func (f *FairQueue) JobDepth(job types.JobID) int { return len(f.queues[job]) }
