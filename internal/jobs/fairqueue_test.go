package jobs

import (
	"testing"

	"repro/internal/types"
)

func jobID(b byte) types.JobID {
	var id types.JobID
	id[0] = b
	return id
}

func specFor(job types.JobID, n byte) types.TaskSpec {
	var id types.TaskID
	id[0] = n
	id[1] = job[0]
	return types.TaskSpec{ID: id, Job: job}
}

// TestFairQueueWeightedShare drains a contended queue and checks the
// dispatch mix matches the 1:3 weight ratio.
func TestFairQueueWeightedShare(t *testing.T) {
	a, b := jobID(1), jobID(2)
	weights := map[types.JobID]int{a: 1, b: 3}
	f := NewFairQueue(func(j types.JobID) int { return weights[j] })
	for i := 0; i < 40; i++ {
		f.Push(specFor(a, byte(i)))
		f.Push(specFor(b, byte(i)))
	}
	counts := map[types.JobID]int{}
	for i := 0; i < 40; i++ { // drain half; both jobs still backlogged
		spec, ok := f.Pop()
		if !ok {
			t.Fatalf("queue dry after %d pops", i)
		}
		counts[spec.Job]++
	}
	// 40 dispatches at 1:3 → 10:30; DRR quantizes per rotation, allow ±2.
	if counts[a] < 8 || counts[a] > 12 {
		t.Fatalf("weight-1 job got %d of 40 dispatches, want ~10", counts[a])
	}
	if counts[b] < 28 || counts[b] > 32 {
		t.Fatalf("weight-3 job got %d of 40 dispatches, want ~30", counts[b])
	}
	if f.Len() != 40 {
		t.Fatalf("Len = %d, want 40", f.Len())
	}
}

// TestFairQueueWorkConserving: an idle high-weight job must not stall a
// backlogged low-weight one.
func TestFairQueueWorkConserving(t *testing.T) {
	a := jobID(1)
	f := NewFairQueue(func(types.JobID) int { return 1 })
	for i := 0; i < 5; i++ {
		f.Push(specFor(a, byte(i)))
	}
	for i := 0; i < 5; i++ {
		if _, ok := f.Pop(); !ok {
			t.Fatalf("pop %d failed with sole backlogged job", i)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop succeeded on empty queue")
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0", f.Len())
	}
}

// TestFairQueueFIFOWithinJob: a job's own tasks dispatch in push order.
func TestFairQueueFIFOWithinJob(t *testing.T) {
	a := jobID(1)
	f := NewFairQueue(nil)
	for i := 0; i < 8; i++ {
		f.Push(specFor(a, byte(i)))
	}
	for i := 0; i < 8; i++ {
		spec, ok := f.Pop()
		if !ok || spec.ID[0] != byte(i) {
			t.Fatalf("pop %d = %v (ok=%v), want FIFO order", i, spec.ID[0], ok)
		}
	}
}

// TestFairQueueDropJob removes a stopping job's backlog and leaves the
// others dispatchable.
func TestFairQueueDropJob(t *testing.T) {
	a, b := jobID(1), jobID(2)
	f := NewFairQueue(nil)
	for i := 0; i < 4; i++ {
		f.Push(specFor(a, byte(i)))
		f.Push(specFor(b, byte(i)))
	}
	dropped := f.DropJob(a)
	if len(dropped) != 4 {
		t.Fatalf("DropJob returned %d specs, want 4", len(dropped))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d after drop, want 4", f.Len())
	}
	for i := 0; i < 4; i++ {
		spec, ok := f.Pop()
		if !ok || spec.Job != b {
			t.Fatalf("pop %d after drop: job %v, want survivor", i, spec.Job)
		}
	}
	if f.DropJob(a) != nil {
		t.Fatal("second DropJob returned specs")
	}
}

// TestFairQueueNilJobRides: untenanted tasks queue under the nil ID.
func TestFairQueueNilJobRides(t *testing.T) {
	f := NewFairQueue(nil)
	f.Push(types.TaskSpec{})
	if f.JobDepth(types.NilJobID) != 1 {
		t.Fatalf("JobDepth(nil) = %d, want 1", f.JobDepth(types.NilJobID))
	}
	if _, ok := f.Pop(); !ok {
		t.Fatal("nil-job spec did not dispatch")
	}
}
