// Package fault implements the transparent fault tolerance of the paper's
// Section 3.2.1 (R6): because the control plane stores the computation
// lineage (every task spec, plus each object's producing task), lost
// objects are reconstructed by replaying the tasks that produced them.
// Deterministic task and object IDs make replay idempotent, and the task
// table's CAS transitions guarantee a single re-executor per task.
package fault

import (
	"errors"
	"fmt"

	"repro/internal/gcs"
	"repro/internal/types"
)

// ErrNotReconstructable marks objects with no lineage (driver Puts): they
// have no producing task to replay. Same limitation as the prototype.
var ErrNotReconstructable = errors.New("fault: object has no producing task")

// ErrControlUnavailable marks a reconstruction attempt that failed because
// the control plane (or the shard owning the record) was unreachable — a
// dead GCS incarnation mid-restart, not a missing record. It is retryable:
// callers keep waiting and re-request instead of failing the resolve, so a
// Get in flight across a control-plane failover completes once the shard's
// new incarnation is up.
var ErrControlUnavailable = errors.New("fault: control plane unavailable (retryable)")

// ctrlReachable distinguishes "record absent" from "control plane down"
// when a read comes back empty: implementations exposing a liveness probe
// (gcs.Remote, gcs.Sharded) are consulted; a plain in-process store is
// always reachable.
func (r *Reconstructor) ctrlReachable() bool {
	if p, ok := r.Ctrl.(gcs.Pinger); ok {
		return p.Ping()
	}
	return true
}

// TaskLookup is the owner-side view of task state (lifetime.TaskLedger):
// authoritative for tasks this node owns, and fresher than the follower
// table, whose view trails by a flush interval.
type TaskLookup interface {
	Lookup(id types.TaskID) (types.TaskState, bool)
}

// Reconstructor replays producing tasks to regenerate lost objects.
type Reconstructor struct {
	Ctrl gcs.API
	// Ledger, when set, is consulted before the follower task table
	// (DESIGN.md §13): a producer this node owns answers health checks
	// in-process, with no control-plane read and no staleness window.
	Ledger TaskLookup
	// Resubmit hands a lineage spec back to a local scheduler, which
	// deduplicates through the task table (scheduler.Local.Submit).
	Resubmit func(spec types.TaskSpec) error
}

// deriveProducer rebuilds a missing object→producer edge from the task
// table. The admission AddTask is the synchronous, durable half of
// lineage (DESIGN.md §13): every spec is in the table before its task can
// run, while the object record's Producer edge rides the owner's async
// ensure flush — a crash (or a control-plane snapshot taken) inside that
// window loses only the index, never the lineage. Return-object IDs are
// deterministic (H("ret" ‖ task ‖ index)), so the edge is recomputable
// from the specs. O(tasks × returns), paid only when a Lost object has no
// recorded producer — the catastrophic-failover path, not a hot one.
func (r *Reconstructor) deriveProducer(id types.ObjectID) (types.TaskState, bool) {
	for _, st := range r.Ctrl.Tasks() {
		for i := 0; i < st.Spec.NumReturns; i++ {
			if st.Spec.ReturnID(i) == id {
				return st, true
			}
		}
	}
	return types.TaskState{}, false
}

// RequestObject triggers reconstruction of id if it is lost, or if it is
// pending but its producer is stranded (recorded on a node that has died —
// which covers both tasks that were running there and tasks that sat in its
// queues without ever being dispatched). It returns nil when the object is
// ready, healthily being produced, or a replay was initiated; the caller
// continues waiting for the object-ready notification. Transitive
// reconstruction of the replayed task's own lost inputs happens naturally:
// the scheduler's dependency resolver calls back into RequestObject for
// each unavailable dependency it encounters.
func (r *Reconstructor) RequestObject(id types.ObjectID) error {
	info, ok := r.Ctrl.GetObject(id)
	if !ok {
		if !r.ctrlReachable() {
			return fmt.Errorf("%w: looking up object %v", ErrControlUnavailable, id)
		}
		// The probe can race a shard recovery: the read may have given up
		// while the shard was down and the ping succeeded against its new
		// incarnation. One re-read settles record-absent vs unlucky timing.
		if info, ok = r.Ctrl.GetObject(id); !ok {
			return fmt.Errorf("fault: object %v unknown to control plane", id)
		}
	}
	if info.State == types.ObjectReady {
		return nil
	}
	if info.Producer.IsNil() {
		// Pending with no lineage edge is transient under owner-based
		// lineage (DESIGN.md §13): the record was created by a refcount
		// flush and the owner's EnsureObjects delta is still in flight — a
		// genuinely producerless object (a Put) is born Ready, never
		// Pending. Keep waiting; only a Lost object with no producer needs
		// the edge derived (or is truly beyond replay).
		if info.State == types.ObjectPending {
			return nil
		}
		st, ok := r.deriveProducer(id)
		if !ok {
			return fmt.Errorf("%w: %v", ErrNotReconstructable, id)
		}
		r.Ctrl.EnsureObject(id, st.Spec.ID) // heal: next resolve is O(1) again
		info.Producer = st.Spec.ID
	}
	// Owner-ledger fast path: if this node owns the producer, its liveness
	// is known in-process. A live owned producer is by definition healthy
	// (it is admitted on THIS node, which is alive), and an owned terminal
	// failure already stored error payloads under the returns — neither
	// needs a table read or a replay. Anything else (owned-but-finished
	// with the object lost, or not owned at all) falls through to the
	// follower table, which holds the spec replay needs.
	if r.Ledger != nil {
		if st, owned := r.Ledger.Lookup(info.Producer); owned {
			switch st.Status {
			case types.TaskPending, types.TaskQueued, types.TaskScheduled, types.TaskRunning:
				return nil
			case types.TaskFailed:
				return nil
			}
		}
	}
	st, ok := r.Ctrl.GetTask(info.Producer)
	if !ok {
		if !r.ctrlReachable() {
			return fmt.Errorf("%w: looking up lineage of %v", ErrControlUnavailable, info.Producer)
		}
		if st, ok = r.Ctrl.GetTask(info.Producer); !ok {
			return fmt.Errorf("fault: lineage record for task %v missing", info.Producer)
		}
	}
	if info.State == types.ObjectPending {
		switch st.Status {
		case types.TaskPending, types.TaskQueued, types.TaskScheduled, types.TaskRunning:
			if node, ok := r.Ctrl.GetNode(st.Node); ok && node.Alive {
				return nil // healthy in-flight producer: just keep waiting
			}
			// Stranded on a dead or unknown node: fall through and replay.
		case types.TaskFailed:
			// Terminal failure: the executor stored error payloads under
			// the return IDs, so waiters will observe the failure.
			return nil
		}
	}
	r.Ctrl.LogEvent(types.Event{Kind: "reconstruct", Task: st.Spec.ID, Object: id})
	// Submit deduplicates: if another node already won the replay CAS this
	// is a no-op.
	return r.Resubmit(st.Spec)
}
