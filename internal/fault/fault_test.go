package fault

import (
	"errors"
	"testing"

	"repro/internal/gcs"
	"repro/internal/types"
)

func TestRequestObjectReadyIsNoop(t *testing.T) {
	ctrl := gcs.NewStore(2)
	task := types.DeriveTaskID(types.NilTaskID, 1)
	obj := types.ObjectIDForReturn(task, 0)
	ctrl.EnsureObject(obj, task)
	ctrl.AddObjectLocation(obj, types.NodeID(types.DeriveTaskID(types.NilTaskID, 100)), 8)

	called := false
	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(spec types.TaskSpec) error {
		called = true
		return nil
	}}
	if err := r.RequestObject(obj); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("resubmitted producer of a ready object")
	}
}

func TestRequestObjectReplaysProducer(t *testing.T) {
	ctrl := gcs.NewStore(2)
	spec := types.TaskSpec{ID: types.DeriveTaskID(types.NilTaskID, 2), Function: "f", NumReturns: 1}
	ctrl.AddTask(types.TaskState{Spec: spec, Status: types.TaskFinished})
	obj := spec.ReturnID(0)
	node := types.NodeID(types.DeriveTaskID(types.NilTaskID, 101))
	ctrl.EnsureObject(obj, spec.ID)
	ctrl.AddObjectLocation(obj, node, 8)
	ctrl.RemoveObjectLocation(obj, node) // sole copy gone -> LOST

	var resubmitted *types.TaskSpec
	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error {
		resubmitted = &s
		return nil
	}}
	if err := r.RequestObject(obj); err != nil {
		t.Fatal(err)
	}
	if resubmitted == nil || resubmitted.ID != spec.ID {
		t.Fatal("producer not replayed")
	}
	// The reconstruct event must be in the log (R7 visibility).
	found := false
	for _, ev := range ctrl.Events() {
		if ev.Kind == "reconstruct" && ev.Task == spec.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("no reconstruct event logged")
	}
}

func TestRequestObjectPutIsNotReconstructable(t *testing.T) {
	ctrl := gcs.NewStore(2)
	obj := types.PutObjectID(types.DeriveTaskID(types.NilTaskID, 3), 1)
	node := types.NodeID(types.DeriveTaskID(types.NilTaskID, 102))
	ctrl.AddObjectLocation(obj, node, 8) // producer: nil
	ctrl.RemoveObjectLocation(obj, node)

	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error { return nil }}
	err := r.RequestObject(obj)
	if !errors.Is(err, ErrNotReconstructable) {
		t.Fatalf("err = %v", err)
	}
}

func TestRequestObjectUnknown(t *testing.T) {
	ctrl := gcs.NewStore(2)
	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error { return nil }}
	obj := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 4), 0)
	if err := r.RequestObject(obj); err == nil {
		t.Fatal("unknown object accepted")
	}
}

// deadCtrl models a control plane whose incarnation has died: every read
// comes back empty and the liveness probe fails. It wraps a healthy store
// so the non-overridden methods keep their signatures.
type deadCtrl struct {
	gcs.API
	deadObjects bool
	deadTasks   bool
}

func (d *deadCtrl) GetObject(id types.ObjectID) (types.ObjectInfo, bool) {
	if d.deadObjects {
		return types.ObjectInfo{}, false
	}
	return d.API.GetObject(id)
}

func (d *deadCtrl) GetTask(id types.TaskID) (types.TaskState, bool) {
	if d.deadTasks {
		return types.TaskState{}, false
	}
	return d.API.GetTask(id)
}

func (d *deadCtrl) Ping() bool { return false }

// TestRequestObjectDeadControlPlaneIsRetryable is the regression test for
// the resolver-wedging bug: RequestObject against a dead GCS incarnation
// must return ErrControlUnavailable — a retryable error the resolver loop
// keeps waiting on — instead of a permanent "object unknown" failure (or,
// worse, a spurious replay of a healthy task).
func TestRequestObjectDeadControlPlaneIsRetryable(t *testing.T) {
	backing := gcs.NewStore(2)
	task := types.DeriveTaskID(types.NilTaskID, 6)
	obj := types.ObjectIDForReturn(task, 0)
	backing.AddTask(types.TaskState{Spec: types.TaskSpec{ID: task, NumReturns: 1}, Status: types.TaskRunning})
	backing.EnsureObject(obj, task)

	r := &Reconstructor{
		Ctrl:     &deadCtrl{API: backing, deadObjects: true},
		Resubmit: func(types.TaskSpec) error { t.Fatal("resubmitted through a dead control plane"); return nil },
	}
	err := r.RequestObject(obj)
	if !errors.Is(err, ErrControlUnavailable) {
		t.Fatalf("object lookup against dead GCS: err = %v, want ErrControlUnavailable", err)
	}

	// Same when the object read succeeds but the lineage lookup hits the
	// dead shard.
	r.Ctrl = &deadCtrl{API: backing, deadTasks: true}
	err = r.RequestObject(obj)
	if !errors.Is(err, ErrControlUnavailable) {
		t.Fatalf("lineage lookup against dead GCS: err = %v, want ErrControlUnavailable", err)
	}

	// Once the control plane answers again, the same request proceeds
	// normally (healthy running producer: no-op, no error).
	r.Ctrl = backing
	// Producer node is unknown/dead in this synthetic setup, so a replay is
	// attempted; accept it quietly to prove the error cleared.
	resubmitted := false
	r.Resubmit = func(types.TaskSpec) error { resubmitted = true; return nil }
	if err := r.RequestObject(obj); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if !resubmitted {
		t.Fatal("stranded producer not replayed after recovery")
	}
}

func TestRequestObjectMissingLineage(t *testing.T) {
	ctrl := gcs.NewStore(2)
	task := types.DeriveTaskID(types.NilTaskID, 5)
	obj := types.ObjectIDForReturn(task, 0)
	node := types.NodeID(types.DeriveTaskID(types.NilTaskID, 103))
	ctrl.EnsureObject(obj, task) // producer recorded but no task-table entry
	ctrl.AddObjectLocation(obj, node, 8)
	ctrl.RemoveObjectLocation(obj, node)

	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error { return nil }}
	if err := r.RequestObject(obj); err == nil {
		t.Fatal("missing lineage record accepted")
	}
}
