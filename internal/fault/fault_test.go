package fault

import (
	"errors"
	"testing"

	"repro/internal/gcs"
	"repro/internal/types"
)

func TestRequestObjectReadyIsNoop(t *testing.T) {
	ctrl := gcs.NewStore(2)
	task := types.DeriveTaskID(types.NilTaskID, 1)
	obj := types.ObjectIDForReturn(task, 0)
	ctrl.EnsureObject(obj, task)
	ctrl.AddObjectLocation(obj, types.NodeID(types.DeriveTaskID(types.NilTaskID, 100)), 8)

	called := false
	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(spec types.TaskSpec) error {
		called = true
		return nil
	}}
	if err := r.RequestObject(obj); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("resubmitted producer of a ready object")
	}
}

func TestRequestObjectReplaysProducer(t *testing.T) {
	ctrl := gcs.NewStore(2)
	spec := types.TaskSpec{ID: types.DeriveTaskID(types.NilTaskID, 2), Function: "f", NumReturns: 1}
	ctrl.AddTask(types.TaskState{Spec: spec, Status: types.TaskFinished})
	obj := spec.ReturnID(0)
	node := types.NodeID(types.DeriveTaskID(types.NilTaskID, 101))
	ctrl.EnsureObject(obj, spec.ID)
	ctrl.AddObjectLocation(obj, node, 8)
	ctrl.RemoveObjectLocation(obj, node) // sole copy gone -> LOST

	var resubmitted *types.TaskSpec
	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error {
		resubmitted = &s
		return nil
	}}
	if err := r.RequestObject(obj); err != nil {
		t.Fatal(err)
	}
	if resubmitted == nil || resubmitted.ID != spec.ID {
		t.Fatal("producer not replayed")
	}
	// The reconstruct event must be in the log (R7 visibility).
	found := false
	for _, ev := range ctrl.Events() {
		if ev.Kind == "reconstruct" && ev.Task == spec.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("no reconstruct event logged")
	}
}

func TestRequestObjectPutIsNotReconstructable(t *testing.T) {
	ctrl := gcs.NewStore(2)
	obj := types.PutObjectID(types.DeriveTaskID(types.NilTaskID, 3), 1)
	node := types.NodeID(types.DeriveTaskID(types.NilTaskID, 102))
	ctrl.AddObjectLocation(obj, node, 8) // producer: nil
	ctrl.RemoveObjectLocation(obj, node)

	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error { return nil }}
	err := r.RequestObject(obj)
	if !errors.Is(err, ErrNotReconstructable) {
		t.Fatalf("err = %v", err)
	}
}

func TestRequestObjectUnknown(t *testing.T) {
	ctrl := gcs.NewStore(2)
	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error { return nil }}
	obj := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 4), 0)
	if err := r.RequestObject(obj); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestRequestObjectMissingLineage(t *testing.T) {
	ctrl := gcs.NewStore(2)
	task := types.DeriveTaskID(types.NilTaskID, 5)
	obj := types.ObjectIDForReturn(task, 0)
	node := types.NodeID(types.DeriveTaskID(types.NilTaskID, 103))
	ctrl.EnsureObject(obj, task) // producer recorded but no task-table entry
	ctrl.AddObjectLocation(obj, node, 8)
	ctrl.RemoveObjectLocation(obj, node)

	r := &Reconstructor{Ctrl: ctrl, Resubmit: func(s types.TaskSpec) error { return nil }}
	if err := r.RequestObject(obj); err == nil {
		t.Fatal("missing lineage record accepted")
	}
}
