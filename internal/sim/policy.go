package sim

import (
	"time"
)

// Policy is a linear softmax-free policy: scores = W·obs, action = argmax.
// It is the stand-in for the paper's neural-network policy — what matters
// to the system experiments is that (a) evaluating it is a fixed-duration
// accelerator kernel and (b) updating it from rollout statistics changes
// future actions, so the examples can show learning progress.
type Policy struct {
	// W is row-major [NumActions][ObsDim].
	W          []float64
	ObsDim     int
	NumActions int
	// EvalCost is the accelerator time burned per batch evaluation (the
	// paper computed actions "in parallel on GPUs").
	EvalCost time.Duration
}

// NewPolicy builds a zero policy (uniform behaviour: always action 0 until
// the first update breaks ties).
func NewPolicy(obsDim, numActions int, evalCost time.Duration) *Policy {
	return &Policy{
		W:          make([]float64, obsDim*numActions),
		ObsDim:     obsDim,
		NumActions: numActions,
		EvalCost:   evalCost,
	}
}

// Act selects actions for a batch of observations, burning the kernel cost
// once per batch (the GPU-batching the paper's workload alternates with).
func (p *Policy) Act(batch []Obs) []int {
	Kernel{Duration: p.EvalCost, OnCPU: false}.Run()
	out := make([]int, len(batch))
	for i, obs := range batch {
		out[i] = p.act1(obs)
	}
	return out
}

func (p *Policy) act1(obs Obs) int {
	best, bestScore := 0, -1e300
	for a := 0; a < p.NumActions; a++ {
		s := 0.0
		row := p.W[a*p.ObsDim : (a+1)*p.ObsDim]
		for i := 0; i < p.ObsDim && i < len(obs); i++ {
			s += row[i] * obs[i]
		}
		if s > bestScore {
			best, bestScore = a, s
		}
	}
	return best
}

// Update applies a cross-entropy-style update: move weights toward
// (observation, action) pairs that led to above-average returns. grads is
// produced by RolloutStats.Gradient.
func (p *Policy) Update(grads []float64, lr float64) {
	for i := range p.W {
		if i < len(grads) {
			p.W[i] += lr * grads[i]
		}
	}
}

// Clone deep-copies the policy (it crosses task boundaries by value).
func (p *Policy) Clone() *Policy {
	c := *p
	c.W = append([]float64(nil), p.W...)
	return &c
}

// RolloutStats accumulates (obs, action, return) statistics from episodes
// for the policy update.
type RolloutStats struct {
	SumGrad []float64
	Return  float64
	Steps   int
}

// Record folds one step into the stats, weighted later by episode return.
func (rs *RolloutStats) Record(obs Obs, action int, reward float64, obsDim, numActions int) {
	if rs.SumGrad == nil {
		rs.SumGrad = make([]float64, obsDim*numActions)
	}
	row := rs.SumGrad[action*obsDim : (action+1)*obsDim]
	for i := 0; i < obsDim && i < len(obs); i++ {
		row[i] += obs[i] * reward
	}
	rs.Return += reward
	rs.Steps++
}

// Merge folds another rollout's stats into rs.
func (rs *RolloutStats) Merge(other RolloutStats) {
	if rs.SumGrad == nil {
		rs.SumGrad = make([]float64, len(other.SumGrad))
	}
	for i := range other.SumGrad {
		rs.SumGrad[i] += other.SumGrad[i]
	}
	rs.Return += other.Return
	rs.Steps += other.Steps
}

// Gradient produces the update direction (normalized by steps).
func (rs *RolloutStats) Gradient() []float64 {
	out := make([]float64, len(rs.SumGrad))
	n := float64(rs.Steps)
	if n == 0 {
		n = 1
	}
	for i, g := range rs.SumGrad {
		out[i] = g / n
	}
	return out
}
