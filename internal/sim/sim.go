// Package sim provides the simulated hardware and environments that
// substitute for the paper's testbed, per the reproduction rules:
//
//   - Kernel: a calibrated compute kernel standing in for CPU- or GPU-bound
//     work (the paper's policy evaluations ran on physical GPUs). A kernel
//     burns wall-clock time with real arithmetic so the scheduler observes
//     genuine occupancy, not a sleep that the Go runtime can overlap.
//   - Env: a deterministic synthetic environment standing in for the Atari
//     emulator of Section 4.2. Its contract is the one the workload needs:
//     a step costs ~StepCost (default 7ms, the paper's task size) and
//     episode lengths vary.
//
// Determinism: both are seeded; identical seeds give identical trajectories,
// which the fault-tolerance tests rely on (replayed tasks must reproduce
// identical results).
package sim

import (
	"math"
	"time"
)

// Burn performs real floating-point work for approximately d wall time and
// returns a checksum so the work cannot be optimized away. Tasks built on
// Burn genuinely occupy a CPU, unlike time.Sleep.
func Burn(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	deadline := time.Now().Add(d)
	x := 1.0001
	for {
		for i := 0; i < 2048; i++ {
			x = math.Sqrt(x*x + 1.000001)
		}
		if !time.Now().Before(deadline) {
			return x
		}
	}
}

// Sleep blocks for d without consuming CPU; kernels tagged as accelerator
// work use it (a GPU kernel occupies the GPU resource, not a host core).
func Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Compute models a calibrated compute kernel as a wall-clock wait. All
// workload kernels (simulation steps, policy evaluations, RNN cells, sensor
// preprocessing) go through Compute rather than Burn: the kernels stand in
// for hardware this reproduction does not have (the paper's multi-core
// simulators and GPUs), and on a single-core host a spinning kernel would
// serialize every task and hide the scheduler-level parallelism the
// experiments measure. Occupancy is still enforced — by the local
// scheduler's resource accounting (a node with CPU:8 admits at most eight
// 1-CPU kernels), which is the same admission control the paper's prototype
// relied on. See DESIGN.md §2 row 9 and EXPERIMENTS.md "Environment".
func Compute(d time.Duration) {
	Sleep(d)
}

// Kernel is a calibrated compute kernel: the substitute for a hardware
// execution unit (paper R4 heterogeneity source).
type Kernel struct {
	// Duration is the kernel's wall-clock cost.
	Duration time.Duration
	// OnCPU selects Burn (host core busy) vs Sleep (accelerator busy).
	OnCPU bool
}

// Run executes the kernel.
func (k Kernel) Run() float64 {
	if k.OnCPU {
		return Burn(k.Duration)
	}
	Sleep(k.Duration)
	return 0
}

// rng is a small deterministic PRNG (xorshift64*), seedable and
// serializable so environment state can cross task boundaries.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
