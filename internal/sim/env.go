package sim

import (
	"time"
)

// Obs is an environment observation: a small feature vector (the stand-in
// for a downsampled Atari frame).
type Obs []float64

// EnvConfig shapes the synthetic environment.
type EnvConfig struct {
	// Seed determines the whole trajectory (deterministic replay).
	Seed uint64
	// ObsDim is the observation vector length.
	ObsDim int
	// NumActions is the discrete action count.
	NumActions int
	// StepCost is the compute burned per step; the paper's Section 4.2
	// tasks were ~7ms, so that is the default.
	StepCost time.Duration
	// MinSteps/MaxSteps bound episode length; actual length varies with
	// the seed (the paper's R4: "the simulation length may depend on
	// whether the robot achieves its goal").
	MinSteps int
	MaxSteps int
	// JitterEvery/JitterFactor make roughly 1-in-JitterEvery steps cost
	// JitterFactor times more, deterministically per (seed, step): the
	// heavy-tailed step durations that motivate the wait primitive (R1/R4).
	// Zero disables jitter.
	JitterEvery  int
	JitterFactor int
}

// DefaultEnvConfig mirrors the Section 4.2 workload shape.
func DefaultEnvConfig(seed uint64) EnvConfig {
	return EnvConfig{
		Seed:       seed,
		ObsDim:     16,
		NumActions: 4,
		StepCost:   7 * time.Millisecond,
		MinSteps:   8,
		MaxSteps:   16,
	}
}

// Env is a deterministic synthetic episodic environment. The hidden state
// is a point drifting in ObsDim-space; rewards favour actions matching the
// drift direction, so learning progress is measurable (a policy better
// than random scores higher), which lets the examples display a learning
// curve without any ML library.
type Env struct {
	cfg     EnvConfig
	rng     rng
	state   []float64
	drift   []float64
	step    int
	horizon int
}

// NewEnv builds an environment; identical configs give identical episodes.
func NewEnv(cfg EnvConfig) *Env {
	if cfg.ObsDim <= 0 {
		cfg.ObsDim = 16
	}
	if cfg.NumActions <= 0 {
		cfg.NumActions = 4
	}
	if cfg.MinSteps <= 0 {
		cfg.MinSteps = 8
	}
	if cfg.MaxSteps < cfg.MinSteps {
		cfg.MaxSteps = cfg.MinSteps
	}
	e := &Env{cfg: cfg, rng: newRNG(cfg.Seed)}
	e.state = make([]float64, cfg.ObsDim)
	e.drift = make([]float64, cfg.ObsDim)
	for i := range e.state {
		e.state[i] = e.rng.Float64()*2 - 1
		e.drift[i] = e.rng.Float64()*2 - 1
	}
	e.horizon = cfg.MinSteps + e.rng.Intn(cfg.MaxSteps-cfg.MinSteps+1)
	return e
}

// Reset restarts the episode and returns the initial observation.
func (e *Env) Reset() Obs {
	*e = *NewEnv(e.cfg)
	return e.Observe()
}

// Observe returns the current observation.
func (e *Env) Observe() Obs {
	obs := make(Obs, len(e.state))
	copy(obs, e.state)
	return obs
}

// NumActions returns the action-space size.
func (e *Env) NumActions() int { return e.cfg.NumActions }

// Step applies an action, burns the configured compute, and returns the
// next observation, the reward, and whether the episode ended.
func (e *Env) Step(action int) (Obs, float64, bool) {
	Compute(e.stepCost())
	// Reward: +1 scaled by how well the action quadrant matches the drift
	// direction of the corresponding state slice.
	seg := len(e.state) / e.cfg.NumActions
	if seg == 0 {
		seg = 1
	}
	lo := (action * seg) % len(e.state)
	reward := 0.0
	for i := lo; i < lo+seg && i < len(e.state); i++ {
		if e.drift[i] > 0 {
			reward += 1.0 / float64(seg)
		}
	}
	for i := range e.state {
		e.state[i] += 0.1 * e.drift[i]
		if e.state[i] > 3 || e.state[i] < -3 {
			e.drift[i] = -e.drift[i]
		}
	}
	e.step++
	return e.Observe(), reward, e.step >= e.horizon
}

// Horizon returns this episode's length (varies with seed).
func (e *Env) Horizon() int { return e.horizon }

// stepCost applies the deterministic heavy-tail jitter model.
func (e *Env) stepCost() time.Duration {
	c := e.cfg.StepCost
	if e.cfg.JitterEvery > 0 {
		h := e.cfg.Seed ^ uint64(e.step)*0x9e3779b97f4a7c15
		h ^= h >> 29
		if int(h%uint64(e.cfg.JitterEvery)) == 0 {
			f := e.cfg.JitterFactor
			if f <= 1 {
				f = 3
			}
			c *= time.Duration(f)
		}
	}
	return c
}

// EnvState is the serializable snapshot of an Env, letting environment
// state cross task boundaries (each simulation step can be its own task,
// as in Section 4.2's ~7ms tasks).
type EnvState struct {
	Cfg     EnvConfig
	Rng     uint64
	State   []float64
	Drift   []float64
	Step    int
	Horizon int
}

// State snapshots the environment.
func (e *Env) State() EnvState {
	return EnvState{
		Cfg:     e.cfg,
		Rng:     e.rng.s,
		State:   append([]float64(nil), e.state...),
		Drift:   append([]float64(nil), e.drift...),
		Step:    e.step,
		Horizon: e.horizon,
	}
}

// RestoreEnv rebuilds an Env from a snapshot.
func RestoreEnv(st EnvState) *Env {
	return &Env{
		cfg:     st.Cfg,
		rng:     rng{s: st.Rng},
		state:   append([]float64(nil), st.State...),
		drift:   append([]float64(nil), st.Drift...),
		step:    st.Step,
		horizon: st.Horizon,
	}
}
