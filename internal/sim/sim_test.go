package sim

import (
	"testing"
	"time"
)

func TestBurnTakesApproximatelyRequestedTime(t *testing.T) {
	start := time.Now()
	Burn(5 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond {
		t.Fatalf("Burn returned early: %v", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("Burn overshot badly: %v", elapsed)
	}
	if Burn(0) != 0 {
		t.Fatal("Burn(0) should be a no-op")
	}
}

func TestKernelModes(t *testing.T) {
	start := time.Now()
	Kernel{Duration: 2 * time.Millisecond, OnCPU: true}.Run()
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("CPU kernel too fast")
	}
	start = time.Now()
	Kernel{Duration: 2 * time.Millisecond}.Run()
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("accelerator kernel too fast")
	}
}

func TestEnvDeterministicTrajectory(t *testing.T) {
	cfg := DefaultEnvConfig(42)
	cfg.StepCost = 0
	a, b := NewEnv(cfg), NewEnv(cfg)
	for !func() bool {
		oa, ra, da := a.Step(1)
		ob, rb, db := b.Step(1)
		if ra != rb || da != db {
			t.Fatal("rewards diverge")
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatal("observations diverge")
			}
		}
		return da
	}() {
	}
}

func TestEnvEpisodeLengthVaries(t *testing.T) {
	lens := map[int]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		cfg := DefaultEnvConfig(seed)
		lens[NewEnv(cfg).Horizon()] = true
	}
	if len(lens) < 2 {
		t.Fatal("episode lengths constant across seeds — R4 variability missing")
	}
}

func TestEnvStateRoundTrip(t *testing.T) {
	cfg := DefaultEnvConfig(7)
	cfg.StepCost = 0
	env := NewEnv(cfg)
	env.Step(2)
	snap := env.State()
	restored := RestoreEnv(snap)
	o1, r1, d1 := env.Step(3)
	o2, r2, d2 := restored.Step(3)
	if r1 != r2 || d1 != d2 {
		t.Fatal("restored env diverges")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("restored observation diverges")
		}
	}
}

func TestEnvReset(t *testing.T) {
	cfg := DefaultEnvConfig(9)
	cfg.StepCost = 0
	env := NewEnv(cfg)
	first := env.Observe()
	env.Step(0)
	reset := env.Reset()
	for i := range first {
		if first[i] != reset[i] {
			t.Fatal("Reset did not restore the initial observation")
		}
	}
}

func TestEnvRewardWithinBounds(t *testing.T) {
	cfg := DefaultEnvConfig(3)
	cfg.StepCost = 0
	env := NewEnv(cfg)
	for {
		_, r, done := env.Step(1)
		if r < 0 || r > 1.0001 {
			t.Fatalf("reward %v out of [0,1]", r)
		}
		if done {
			break
		}
	}
}

func TestPolicyLearnsPreference(t *testing.T) {
	p := NewPolicy(4, 2, 0)
	obs := Obs{1, 0, 0, 0}
	// Push weights toward action 1 for this observation.
	grads := make([]float64, 8)
	grads[4] = 1 // action 1, feature 0
	p.Update(grads, 1.0)
	if got := p.Act([]Obs{obs})[0]; got != 1 {
		t.Fatalf("policy chose %d after update toward 1", got)
	}
}

func TestPolicyCloneIndependent(t *testing.T) {
	p := NewPolicy(2, 2, 0)
	c := p.Clone()
	c.W[0] = 99
	if p.W[0] == 99 {
		t.Fatal("Clone aliases weights")
	}
}

func TestRolloutStatsMergeAndGradient(t *testing.T) {
	var a, b RolloutStats
	a.Record(Obs{1, 0}, 0, 1.0, 2, 2)
	b.Record(Obs{0, 1}, 1, 0.5, 2, 2)
	a.Merge(b)
	if a.Steps != 2 || a.Return != 1.5 {
		t.Fatalf("merge: steps=%d return=%v", a.Steps, a.Return)
	}
	g := a.Gradient()
	if len(g) != 4 {
		t.Fatalf("gradient len %d", len(g))
	}
	if g[0] == 0 || g[3] == 0 {
		t.Fatal("gradient lost contributions")
	}
}

func TestRNGUniformish(t *testing.T) {
	r := newRNG(123)
	buckets := make([]int, 4)
	for i := 0; i < 4000; i++ {
		buckets[r.Intn(4)]++
	}
	for i, n := range buckets {
		if n < 700 || n > 1300 {
			t.Fatalf("bucket %d = %d, badly skewed", i, n)
		}
	}
	if r.Intn(0) != 0 {
		t.Fatal("Intn(0) should be 0")
	}
}
