// Package metrics is the cluster's measurement substrate (ROADMAP:
// observability; paper R7 extended beyond the task table). It is
// dependency-free — nothing under repro/internal imports into it — so any
// layer, including kv and transport, can be instrumented without cycles.
//
// Design rules:
//   - The record path is atomic-only: Counter.Add, Gauge.Set and
//     Histogram.Observe touch a fixed number of atomics and never allocate,
//     so instruments are safe on scheduler/store hot paths.
//   - Every instrument method is nil-receiver-safe, and a nil *Registry
//     hands out nil instruments. Components therefore take a *Registry
//     that may be nil and pre-resolve their instruments at construction;
//     disabling metrics costs one predictable nil-check branch.
//   - Instrument names use "dotted.base;key=value;key=value" — the
//     Prometheus exporter splits the suffix into labels.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value. Safe on a nil receiver (no-op).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a name-keyed set of instruments. Lookup (Counter, Gauge,
// Histogram) is get-or-create under a mutex; callers are expected to
// resolve instruments once at construction and hold the pointers, keeping
// the mutex off every hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (disabled but safe) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (disabled but safe) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at Snapshot time — for values a
// subsystem already tracks (queue depth, resident bytes) where mirroring
// into a Gauge on every change would be wasted work. Re-registering a name
// replaces the callback. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (disabled but safe) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, gob-friendly so
// nodes can ship it to the control plane with heartbeats.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot captures all instruments (sampling GaugeFuncs). A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	// Callbacks run outside the registry lock: they typically read other
	// subsystems' state and must be free to take those locks.
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, fn := range fns {
		snap.Gauges[k] = fn()
	}
	for k, h := range hists {
		snap.Hists[k] = h.Snapshot()
	}
	return snap
}

// Names returns all instrument names, sorted (for stable test output).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.gaugeFns {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
