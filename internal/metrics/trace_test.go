package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
)

func fakeClock() (func() int64, *atomic.Int64) {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }, &t
}

func TestTracerSpanFields(t *testing.T) {
	now, _ := fakeClock()
	tr := NewTracer(8, "n1", now)
	sp := tr.Begin("spill", "objectstore.spill")
	sp.Task = "task-1"
	sp.Object = "obj-1"
	sp.Trace = 99
	sp.Detail = "64KiB"
	sp.End()

	spans := tr.Drain()
	if len(spans) != 1 {
		t.Fatalf("drained %d spans, want 1", len(spans))
	}
	rec := spans[0]
	if rec.Name != "objectstore.spill" || rec.Cat != "spill" || rec.Task != "task-1" ||
		rec.Object != "obj-1" || rec.Trace != 99 || rec.Node != "n1" || rec.Detail != "64KiB" {
		t.Fatalf("bad record: %+v", rec)
	}
	if rec.StartNs != 1 || rec.DurNs != 1 {
		t.Fatalf("bad timestamps: start=%d dur=%d", rec.StartNs, rec.DurNs)
	}
	if got := tr.Drain(); got != nil {
		t.Fatalf("second drain returned %d spans", len(got))
	}
}

// The ring drops oldest on overflow and Drain returns oldest-first.
func TestTracerRingOverflow(t *testing.T) {
	now, _ := fakeClock()
	tr := NewTracer(3, "n1", now)
	for i := 0; i < 5; i++ {
		sp := tr.Begin("c", "s")
		sp.Trace = uint64(i)
		sp.End()
	}
	spans := tr.Drain()
	if len(spans) != 3 {
		t.Fatalf("drained %d, want 3", len(spans))
	}
	for i, want := range []uint64{2, 3, 4} {
		if spans[i].Trace != want {
			t.Errorf("span %d trace = %d, want %d", i, spans[i].Trace, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerConcurrent(t *testing.T) {
	now, _ := fakeClock()
	tr := NewTracer(1024, "n1", now)
	var wg sync.WaitGroup
	var drained atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin("c", "s")
				sp.End()
				if i%50 == 0 {
					drained.Add(int64(len(tr.Drain())))
				}
			}
		}()
	}
	wg.Wait()
	drained.Add(int64(len(tr.Drain())))
	total := drained.Load() + tr.Dropped()
	if total != 8*200 {
		t.Fatalf("drained+dropped = %d, want %d", total, 8*200)
	}
}
