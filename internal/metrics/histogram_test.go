package metrics

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

// Every recorded value must land in the bucket whose bounds contain it.
func TestHistogramBucketPlacement(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {int64(1)<<62 + 1, 63},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.v)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			got := -1
			for b, n := range s.Buckets {
				if n > 0 {
					got = b
				}
			}
			t.Errorf("Observe(%d): landed in bucket %d, want %d", c.v, got, c.bucket)
		}
		lo := int64(0)
		if c.bucket > 0 {
			lo = BucketUpperBound(c.bucket-1) + 1
		}
		if c.v > 0 && (c.v < lo || c.v > BucketUpperBound(c.bucket)) {
			t.Errorf("value %d outside bucket %d bounds [%d,%d]", c.v, c.bucket, lo, BucketUpperBound(c.bucket))
		}
	}
}

// Property test (ISSUE 6 satellite): on random workloads drawn from
// several shapes, (a) each value lands in the bucket whose bounds contain
// it, and (b) histogram quantile estimates stay within one log2-bucket
// bound of stats.Sample ground truth.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := map[string]func() int64{
		"uniform":    func() int64 { return rng.Int63n(1_000_000) },
		"exp":        func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"bimodal":    func() int64 { return []int64{100, 5_000_000}[rng.Intn(2)] + rng.Int63n(50) },
		"heavy-tail": func() int64 { return int64(1) << uint(rng.Intn(40)) },
	}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{}
			sample := stats.NewSample(5000)
			var manual [NumBuckets]uint64
			const n = 5000
			for i := 0; i < n; i++ {
				v := draw()
				h.Observe(v)
				sample.Add(time.Duration(v))
				manual[bucketIndex(v)]++
			}
			s := h.Snapshot()
			if s.Count != n {
				t.Fatalf("count = %d, want %d", s.Count, n)
			}
			for b := range manual {
				if s.Buckets[b] != manual[b] {
					t.Fatalf("bucket %d: histogram %d, manual %d", b, s.Buckets[b], manual[b])
				}
			}
			for _, q := range []float64{0.5, 0.9, 0.99} {
				est := s.Quantile(q)
				truth := sample.Percentile(q * 100).Nanoseconds()
				eb, tb := bucketIndex(est), bucketIndex(truth)
				if eb < tb-1 || eb > tb+1 {
					t.Errorf("q=%.2f: estimate %d (bucket %d) vs truth %d (bucket %d): off by more than one bucket", q, est, eb, truth, tb)
				}
			}
		})
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty quantile != 0")
	}
	if empty.Mean() != 0 {
		t.Errorf("empty mean != 0")
	}
	h := &Histogram{}
	h.Observe(100)
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got != BucketUpperBound(bucketIndex(100)) {
			t.Errorf("single-value quantile(%v) = %d", q, got)
		}
	}
}
