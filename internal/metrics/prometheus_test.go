package metrics

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches a Prometheus text-format sample. The label block, if
// present, must be well-formed key="value" pairs.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+$`)

func TestWritePrometheusValidExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("scheduler.tasks.submitted").Add(10)
	r.Counter("gcs.rpc.count;method=heartbeat;shard=0").Add(4)
	r.Gauge("scheduler.queue.depth").Set(3)
	h := r.Histogram("gcs.rpc.ns;method=put")
	h.Observe(1000)
	h.Observe(2000)
	h.Observe(500_000)

	var b strings.Builder
	if err := WritePrometheus(&b, []NodeSnapshot{{Node: "node-a", Snap: r.Snapshot()}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	typeSeen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad type %q in %q", parts[3], line)
			}
			typeSeen[parts[2]] = true
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		// Every sample must follow a TYPE declaration for its family.
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if !typeSeen[name] && !typeSeen[base] {
			t.Fatalf("sample %q before its TYPE line", line)
		}
	}

	for _, want := range []string{
		"# TYPE scheduler_tasks_submitted counter",
		`scheduler_tasks_submitted{node="node-a"} 10`,
		`gcs_rpc_count{method="heartbeat",shard="0",node="node-a"} 4`,
		"# TYPE scheduler_queue_depth gauge",
		`scheduler_queue_depth{node="node-a"} 3`,
		"# TYPE gcs_rpc_ns histogram",
		`gcs_rpc_ns_count{method="put",node="node-a"} 3`,
		`gcs_rpc_ns_sum{method="put",node="node-a"} 503000`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// Histogram buckets must be cumulative and close with an +Inf bucket equal
// to the count.
func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat.ns")
	for _, v := range []int64{1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, []NodeSnapshot{{Node: "n", Snap: r.Snapshot()}}); err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	infSeen := false
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 6 {
				t.Fatalf("+Inf bucket = %d, want 6", v)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestPromNameSanitization(t *testing.T) {
	metric, labels := promName("a.b-c.ns;shard=3;method=task.put")
	if metric != "a_b_c_ns" {
		t.Errorf("metric = %q", metric)
	}
	if fmt.Sprint(labels) != "[[shard 3] [method task.put]]" {
		t.Errorf("labels = %v", labels)
	}
}
