package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeSnapshot pairs a snapshot with the node that published it. The
// exporter adds a node="..." label to every sample so one scrape of the
// dashboard covers the whole cluster.
type NodeSnapshot struct {
	Node string
	AtNs int64
	Snap Snapshot
}

// promName splits a registry name ("gcs.rpc.ns;method=heartbeat;shard=0")
// into a Prometheus metric name (dots/dashes → underscores) and its label
// pairs.
func promName(name string) (metric string, labels [][2]string) {
	parts := strings.Split(name, ";")
	metric = sanitize(parts[0])
	for _, p := range parts[1:] {
		if k, v, ok := strings.Cut(p, "="); ok {
			labels = append(labels, [2]string{sanitize(k), v})
		}
	}
	return metric, labels
}

func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func labelString(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = fmt.Sprintf("%s=%q", kv[0], kv[1])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// family collects the fully rendered sample lines of one metric family;
// all of a histogram's _bucket/_sum/_count lines live in its base family
// so the single # TYPE line legally precedes every sample.
type family struct {
	typ   string
	lines []string
}

// WritePrometheus renders snapshots in Prometheus text exposition format
// (version 0.0.4). Counters and gauges become one sample per (metric,
// labels, node); histograms expand to _bucket{le=...}/_sum/_count series
// with power-of-two le bounds. Output is sorted for stable scraping.
func WritePrometheus(w io.Writer, snaps []NodeSnapshot) error {
	families := map[string]*family{}
	add := func(metric, typ, line string) {
		f := families[metric]
		if f == nil {
			f = &family{typ: typ}
			families[metric] = f
		}
		f.lines = append(f.lines, line)
	}
	for _, ns := range snaps {
		nodeLabel := [2]string{"node", ns.Node}
		withNode := func(labels [][2]string) [][2]string {
			if ns.Node == "" {
				return labels
			}
			return append(labels, nodeLabel)
		}
		for name, v := range ns.Snap.Counters {
			metric, labels := promName(name)
			add(metric, "counter", fmt.Sprintf("%s%s %d", metric, labelString(withNode(labels)), v))
		}
		for name, v := range ns.Snap.Gauges {
			metric, labels := promName(name)
			add(metric, "gauge", fmt.Sprintf("%s%s %d", metric, labelString(withNode(labels)), v))
		}
		for name, h := range ns.Snap.Hists {
			metric, labels := promName(name)
			labels = withNode(labels)
			// Emit buckets only up to the highest non-empty one so the
			// series stays short; +Inf always closes the family.
			top := 0
			for b, n := range h.Buckets {
				if n > 0 {
					top = b
				}
			}
			var cum uint64
			for b := 0; b <= top; b++ {
				cum += h.Buckets[b]
				le := append(append([][2]string{}, labels...), [2]string{"le", fmt.Sprintf("%d", BucketUpperBound(b))})
				add(metric, "histogram", fmt.Sprintf("%s_bucket%s %d", metric, labelString(le), cum))
			}
			inf := append(append([][2]string{}, labels...), [2]string{"le", "+Inf"})
			add(metric, "histogram", fmt.Sprintf("%s_bucket%s %d", metric, labelString(inf), h.Count))
			add(metric, "histogram", fmt.Sprintf("%s_sum%s %d", metric, labelString(labels), h.Sum))
			add(metric, "histogram", fmt.Sprintf("%s_count%s %d", metric, labelString(labels), h.Count))
		}
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		if f.typ != "histogram" {
			// Histogram lines keep emission order: buckets ascend by le
			// (lexical sorting would scramble numeric bounds).
			sort.Strings(f.lines)
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// MergeSnapshots folds per-node snapshots into one cluster-wide snapshot:
// counters, gauges, and histograms all sum (queue depths and resident
// bytes aggregate meaningfully as cluster totals; gauges where a sum is
// wrong should be read per-node instead).
func MergeSnapshots(snaps []NodeSnapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	for _, ns := range snaps {
		for k, v := range ns.Snap.Counters {
			out.Counters[k] += v
		}
		for k, v := range ns.Snap.Gauges {
			out.Gauges[k] += v
		}
		for k, h := range ns.Snap.Hists {
			merged := out.Hists[k]
			merged.merge(h)
			out.Hists[k] = merged
		}
	}
	return out
}
