package metrics

import (
	"sync/atomic"
	"testing"
)

// BenchmarkMetricsOverhead is ISSUE 6's acceptance gate: a counter or
// histogram record must stay under 100 ns under 8-way contention.
// EXPERIMENTS.md E22 records measured numbers.
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench.counter")
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench.hist")
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			var v int64
			for pb.Next() {
				v++
				h.Observe(v)
			}
		})
	})
	b.Run("counter-disabled", func(b *testing.B) {
		var r *Registry
		c := r.Counter("bench.counter")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("span", func(b *testing.B) {
		var clock atomic.Int64
		tr := NewTracer(4096, "bench", func() int64 { return clock.Add(1) })
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				sp := tr.Begin("bench", "bench.span")
				sp.End()
			}
		})
	})
}
