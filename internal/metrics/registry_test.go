package metrics

import (
	"sync"
	"testing"
)

// A nil registry and nil instruments must be fully inert: components are
// wired with whatever the node hands them, and "metrics off" is a nil.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	if c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	g := r.Gauge("b")
	g.Set(7)
	g.Add(1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %d", got)
	}
	r.GaugeFunc("c", func() int64 { return 1 })
	h := r.Histogram("d")
	h.Observe(9)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram count = %d", s.Count)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Hists) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if r.Names() != nil {
		t.Fatalf("nil registry names not nil")
	}

	var tr *Tracer
	sp := tr.Begin("cat", "name")
	sp.Task = "t"
	sp.End()
	if tr.Drain() != nil || tr.Dropped() != 0 {
		t.Fatalf("nil tracer not inert")
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatalf("same name returned distinct counters")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatalf("same name returned distinct gauges")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatalf("same name returned distinct histograms")
	}
}

func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks.submitted").Add(3)
	r.Gauge("queue.depth").Set(11)
	r.GaugeFunc("store.used.bytes", func() int64 { return 42 })
	r.Histogram("lat.ns").Observe(100)
	r.Histogram("lat.ns").Observe(200)

	snap := r.Snapshot()
	if snap.Counters["tasks.submitted"] != 3 {
		t.Errorf("counter = %d, want 3", snap.Counters["tasks.submitted"])
	}
	if snap.Gauges["queue.depth"] != 11 {
		t.Errorf("gauge = %d, want 11", snap.Gauges["queue.depth"])
	}
	if snap.Gauges["store.used.bytes"] != 42 {
		t.Errorf("gauge func = %d, want 42", snap.Gauges["store.used.bytes"])
	}
	h := snap.Hists["lat.ns"]
	if h.Count != 2 || h.Sum != 300 {
		t.Errorf("hist count=%d sum=%d, want 2/300", h.Count, h.Sum)
	}
	want := []string{"lat.ns", "queue.depth", "store.used.bytes", "tasks.submitted"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

// Concurrent get-or-create plus records must be race-free (run under
// -race in CI) and lose no increments.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(int64(i))
				r.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h").Snapshot().Count; got != goroutines*perG {
		t.Fatalf("hist count = %d, want %d", got, goroutines*perG)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(1)
	a.Gauge("g").Set(2)
	a.Histogram("h").Observe(10)
	b := NewRegistry()
	b.Counter("c").Add(3)
	b.Gauge("g").Set(4)
	b.Histogram("h").Observe(20)

	merged := MergeSnapshots([]NodeSnapshot{
		{Node: "n1", Snap: a.Snapshot()},
		{Node: "n2", Snap: b.Snapshot()},
	})
	if merged.Counters["c"] != 4 {
		t.Errorf("merged counter = %d, want 4", merged.Counters["c"])
	}
	if merged.Gauges["g"] != 6 {
		t.Errorf("merged gauge = %d, want 6", merged.Gauges["g"])
	}
	h := merged.Hists["h"]
	if h.Count != 2 || h.Sum != 30 {
		t.Errorf("merged hist count=%d sum=%d, want 2/30", h.Count, h.Sum)
	}
}
