package metrics

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram: bucket 0 holds
// values <= 0 and bucket b (1..64) holds values in [2^(b-1), 2^b - 1].
// Power-of-two bucketing means the bucket index is one bits.Len64 — no
// search, no float math — and the relative error of any quantile estimate
// is bounded by one octave.
const NumBuckets = 65

// Histogram is a fixed log2-bucket distribution. Observe is two atomic
// adds and is safe under arbitrary concurrency; there is no lock anywhere
// on the record path.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpperBound returns the largest value bucket b can hold.
func BucketUpperBound(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return int64(^uint64(0) >> 1) // max int64
	}
	return int64(1)<<b - 1
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a gob-friendly copy of a histogram's state.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets []uint64 // len NumBuckets; Buckets[b] = observations in bucket b
}

// Snapshot copies the histogram. Counts are read bucket-by-bucket without
// a global lock, so a snapshot taken during concurrent Observes may be off
// by in-flight observations — fine for monitoring, stated for tests.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Buckets = make([]uint64, NumBuckets)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// Quantile estimates the q-th quantile (q in [0,1]) as the upper bound of
// the bucket where the cumulative count crosses q*Count. The estimate is
// within one bucket bound of the true value by construction.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for b, n := range s.Buckets {
		cum += n
		if cum > rank {
			return BucketUpperBound(b)
		}
	}
	return BucketUpperBound(NumBuckets - 1)
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// merge adds other's observations into s (s must be deep-copied first if
// shared). Used by the exporter to aggregate one metric across nodes.
func (s *HistSnapshot) merge(other HistSnapshot) {
	if s.Buckets == nil {
		s.Buckets = make([]uint64, NumBuckets)
	}
	for b, n := range other.Buckets {
		if b < len(s.Buckets) {
			s.Buckets[b] += n
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
}
