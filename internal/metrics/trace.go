package metrics

import (
	"sync"
	"sync/atomic"
)

// SpanRecord is one finished span as buffered on a node and shipped to the
// control plane. IDs are hex strings (not repro types — this package stays
// dependency-free); empty fields mean "not applicable". Trace carries the
// submit-side trace context propagated through types.TaskSpec, so
// data-plane work (a spill, a pull chunk, a drain migration) can be
// stitched into the owning task's timeline even when it happens on a node
// the task never ran on.
type SpanRecord struct {
	Name    string // e.g. "objectstore.spill"
	Cat     string // coarse family: "spill", "pull", "rpc", "sched", ...
	Task    string // owning task ID (hex), if known at record time
	Object  string // object ID (hex) the span moved, if any
	Trace   uint64 // trace context inherited from the submitting driver/task
	Node    string // node that recorded the span
	StartNs int64  // cluster-epoch nanoseconds (see Tracer clock note)
	DurNs   int64
	Detail  string
}

// Span is an in-flight span handle returned by Tracer.Begin. It is a plain
// value: set the exported fields you know, then call End. A zero Span
// (from a nil tracer) is inert.
type Span struct {
	Name   string
	Cat    string
	Task   string
	Object string
	Trace  uint64
	Detail string

	start int64
	t     *Tracer
}

// Tracer buffers finished spans in a fixed-capacity ring (drop-oldest).
// The ring is mutex-protected: spans finish at data-plane rates (per
// spill/pull/RPC, not per counter increment), so a lock is cheap here and
// keeps Drain race-free under the chaos tests' -race runs.
//
// Clock: now() must return cluster-epoch nanoseconds. Nodes build it from
// one boot-time control-plane NowNs plus a local monotonic offset, so span
// timestamps align with task-table timestamps without per-span RPCs.
type Tracer struct {
	mu      sync.Mutex
	buf     []SpanRecord
	start   int // index of oldest record
	n       int // live records
	dropped atomic.Int64

	node string
	now  func() int64
}

// NewTracer returns a tracer buffering up to capacity spans recorded on
// node. now supplies cluster-epoch nanosecond timestamps.
func NewTracer(capacity int, node string, now func() int64) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{buf: make([]SpanRecord, capacity), node: node, now: now}
}

// Begin starts a span. Safe on a nil receiver: returns an inert Span.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{Cat: cat, Name: name, start: t.now(), t: t}
}

// End finishes the span and buffers it. Inert on a zero Span.
func (s Span) End() {
	t := s.t
	if t == nil {
		return
	}
	rec := SpanRecord{
		Name: s.Name, Cat: s.Cat, Task: s.Task, Object: s.Object,
		Trace: s.Trace, Detail: s.Detail, Node: t.node,
		StartNs: s.start, DurNs: t.now() - s.start,
	}
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.buf[t.start] = rec // overwrite oldest
		t.start = (t.start + 1) % len(t.buf)
		t.dropped.Add(1)
	} else {
		t.buf[(t.start+t.n)%len(t.buf)] = rec
		t.n++
	}
	t.mu.Unlock()
}

// Drain removes and returns all buffered spans (oldest first). Nodes call
// it on each heartbeat to ship spans to the control plane. Nil-safe.
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return nil
	}
	out := make([]SpanRecord, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	t.start, t.n = 0, 0
	return out
}

// Dropped returns the cumulative count of spans lost to ring overflow.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Node returns the tracer's node label ("" on nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Now returns the tracer's cluster-epoch clock reading (0 on nil) — used
// by callers that stamp their own timestamps next to spans.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}
