// Package stats provides the small measurement toolkit used by the
// benchmark harness: latency samples with percentiles, throughput counters,
// and aligned table rendering for paper-style output.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample accumulates duration observations and reports order statistics.
// It is safe for concurrent use.
type Sample struct {
	mu   sync.Mutex
	durs []time.Duration
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capHint int) *Sample {
	return &Sample{durs: make([]time.Duration, 0, capHint)}
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.mu.Lock()
	s.durs = append(s.durs, d)
	s.mu.Unlock()
}

// N returns the number of observations.
func (s *Sample) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.durs)
}

// sortedCopy snapshots and sorts the observations.
func (s *Sample) sortedCopy() []time.Duration {
	s.mu.Lock()
	out := make([]time.Duration, len(s.durs))
	copy(out, s.durs)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (s *Sample) Percentile(p float64) time.Duration {
	sorted := s.sortedCopy()
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.durs) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.durs {
		total += d
	}
	return total / time.Duration(len(s.durs))
}

// Min returns the smallest observation.
func (s *Sample) Min() time.Duration {
	sorted := s.sortedCopy()
	if len(sorted) == 0 {
		return 0
	}
	return sorted[0]
}

// Max returns the largest observation.
func (s *Sample) Max() time.Duration {
	sorted := s.sortedCopy()
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)-1]
}

// Summary formats mean/p50/p99/max on one line.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.N(), s.Mean().Round(time.Microsecond),
		s.Percentile(50).Round(time.Microsecond),
		s.Percentile(99).Round(time.Microsecond),
		s.Max().Round(time.Microsecond))
}

// Table renders rows of strings with aligned columns, in the style of the
// tables printed by cmd/raybench.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return b.String()
	}
	fmt.Fprintln(w, line(t.Header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

// Rate converts a count over an elapsed duration to an events/second figure.
func Rate(n int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}
