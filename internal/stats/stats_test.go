package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplePercentiles(t *testing.T) {
	s := NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatal("min/max wrong")
	}
}

func TestSampleMean(t *testing.T) {
	s := NewSample(4)
	s.Add(2 * time.Millisecond)
	s.Add(4 * time.Millisecond)
	if got := s.Mean(); got != 3*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleConcurrent(t *testing.T) {
	s := NewSample(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s.N() != 8000 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSummaryContainsFields(t *testing.T) {
	s := NewSample(1)
	s.Add(time.Millisecond)
	sum := s.Summary()
	for _, want := range []string{"n=1", "mean=", "p50=", "p99=", "max="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{Header: []string{"metric", "value"}}
	tbl.AddRow("latency", "35µs")
	tbl.AddRow("throughput-per-second", 1000000)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "metric") || !strings.Contains(lines[3], "1000000") {
		t.Fatalf("unexpected table:\n%s", out)
	}
	// Columns aligned: "value" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "1000000") {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != 1000 {
		t.Fatalf("Rate = %v", got)
	}
	if got := Rate(5, 0); got != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}
