// Package codec serializes values crossing task boundaries. Every task
// argument and return value is stored in the object store as bytes, exactly
// as the paper's prototype serialized Python values into its shared-memory
// store; this package is the Go equivalent, built on encoding/gob with a
// raw-bytes fast path for values that are already bytes.
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Tag bytes distinguish the wire forms. Gob payloads carry their own
// type information after the tag; raw payloads are opaque; binary payloads
// (tagBin, see fast.go) carry a type byte for the hot record structs.
const (
	tagGob  = 0x01
	tagRaw  = 0x02
	tagNull = 0x03
	// tagBin = 0x04 (fast.go)
)

// Encode serializes v. []byte values take the zero-copy raw path; the hot
// control-plane record types take the reflection-free binary path.
func Encode(v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return []byte{tagNull}, nil
	case []byte:
		out := make([]byte, 1+len(x))
		out[0] = tagRaw
		copy(out[1:], x)
		return out, nil
	}
	if b, ok := encodeFast(v); ok {
		return b, nil
	}
	var buf bytes.Buffer
	buf.WriteByte(tagGob)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("codec: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// MustEncode is Encode but panics on error; for values known serializable.
func MustEncode(v any) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode deserializes data into out, which must be a non-nil pointer.
// Raw payloads require out to be *[]byte; null payloads leave out untouched.
func Decode(data []byte, out any) error {
	if len(data) == 0 {
		return fmt.Errorf("codec: empty payload")
	}
	switch data[0] {
	case tagNull:
		return nil
	case tagRaw:
		p, ok := out.(*[]byte)
		if !ok {
			return fmt.Errorf("codec: raw payload requires *[]byte, got %T", out)
		}
		*p = append((*p)[:0], data[1:]...)
		return nil
	case tagGob:
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(out); err != nil {
			return fmt.Errorf("codec: decode into %T: %w", out, err)
		}
		return nil
	case tagBin:
		return decodeFast(data[1:], out)
	default:
		return fmt.Errorf("codec: unknown tag 0x%02x", data[0])
	}
}

// DecodeAs is the generic convenience form of Decode.
func DecodeAs[T any](data []byte) (T, error) {
	var v T
	// Special-case []byte so DecodeAs[[]byte] hits the raw path.
	if p, ok := any(&v).(*[]byte); ok {
		err := Decode(data, p)
		return v, err
	}
	err := Decode(data, &v)
	return v, err
}

// EncodeAs is the generic convenience form of Encode (for symmetry).
func EncodeAs[T any](v T) ([]byte, error) { return Encode(v) }
