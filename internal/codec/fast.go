package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/types"
)

// Binary fast path for the hot control-plane record types. Profiling the
// task-throughput benchmark showed ~2/3 of cluster CPU inside encoding/gob,
// almost all of it *recompiling* encode/decode engines: every kv record
// read (scheduler placement scans, wait polls, status stamps) constructs a
// fresh gob decoder, and gob's per-stream type negotiation makes decoder
// reuse across records impossible. The record types below are small, fixed
// structs, so they get a hand-rolled reflection-free wire form under a
// dedicated tag. Everything else still rides gob; a payload written by the
// fast path is self-describing via its type byte, so the two forms coexist
// in the same store and WAL.
//
// Keep these encoders in lockstep with the struct definitions in
// internal/types — a new field must be added to both sides here (the
// round-trip tests in fast_test.go enforce this with reflection over the
// field sets).
const tagBin = 0x04

// Type bytes following tagBin.
const (
	binObjectInfo      = 0x01
	binTaskState       = 0x02
	binTaskSpec        = 0x03
	binNodeInfo        = 0x04
	binTaskLedgerBatch = 0x05
	binJobInfo         = 0x06
)

// encodeFast serializes the hot types; ok=false means "not a fast type,
// fall back to gob".
func encodeFast(v any) ([]byte, bool) {
	switch x := v.(type) {
	case types.ObjectInfo:
		return appendObjectInfo([]byte{tagBin, binObjectInfo}, &x), true
	case *types.ObjectInfo:
		return appendObjectInfo([]byte{tagBin, binObjectInfo}, x), true
	case types.TaskState:
		return appendTaskState([]byte{tagBin, binTaskState}, &x), true
	case *types.TaskState:
		return appendTaskState([]byte{tagBin, binTaskState}, x), true
	case types.TaskSpec:
		return appendTaskSpec([]byte{tagBin, binTaskSpec}, &x), true
	case *types.TaskSpec:
		return appendTaskSpec([]byte{tagBin, binTaskSpec}, x), true
	case types.NodeInfo:
		return appendNodeInfo([]byte{tagBin, binNodeInfo}, &x), true
	case *types.NodeInfo:
		return appendNodeInfo([]byte{tagBin, binNodeInfo}, x), true
	case types.TaskLedgerBatch:
		return appendTaskLedgerBatch([]byte{tagBin, binTaskLedgerBatch}, &x), true
	case *types.TaskLedgerBatch:
		return appendTaskLedgerBatch([]byte{tagBin, binTaskLedgerBatch}, x), true
	case types.JobInfo:
		return appendJobInfo([]byte{tagBin, binJobInfo}, &x), true
	case *types.JobInfo:
		return appendJobInfo([]byte{tagBin, binJobInfo}, x), true
	}
	return nil, false
}

// decodeFast deserializes a tagBin payload (data excludes the tag byte).
func decodeFast(data []byte, out any) error {
	if len(data) == 0 {
		return fmt.Errorf("codec: truncated binary payload")
	}
	r := &binReader{buf: data[1:]}
	var err error
	switch data[0] {
	case binObjectInfo:
		p, ok := out.(*types.ObjectInfo)
		if !ok {
			return fmt.Errorf("codec: binary ObjectInfo payload into %T", out)
		}
		*p, err = r.objectInfo()
	case binTaskState:
		p, ok := out.(*types.TaskState)
		if !ok {
			return fmt.Errorf("codec: binary TaskState payload into %T", out)
		}
		*p, err = r.taskState()
	case binTaskSpec:
		p, ok := out.(*types.TaskSpec)
		if !ok {
			return fmt.Errorf("codec: binary TaskSpec payload into %T", out)
		}
		*p, err = r.taskSpec()
	case binNodeInfo:
		p, ok := out.(*types.NodeInfo)
		if !ok {
			return fmt.Errorf("codec: binary NodeInfo payload into %T", out)
		}
		*p, err = r.nodeInfo()
	case binTaskLedgerBatch:
		p, ok := out.(*types.TaskLedgerBatch)
		if !ok {
			return fmt.Errorf("codec: binary TaskLedgerBatch payload into %T", out)
		}
		*p, err = r.taskLedgerBatch()
	case binJobInfo:
		p, ok := out.(*types.JobInfo)
		if !ok {
			return fmt.Errorf("codec: binary JobInfo payload into %T", out)
		}
		*p, err = r.jobInfo()
	default:
		return fmt.Errorf("codec: unknown binary type 0x%02x", data[0])
	}
	if err != nil {
		return fmt.Errorf("codec: binary decode into %T: %w", out, err)
	}
	return nil
}

// --- encoders (append-style, one allocation for typical records) ---

func appendObjectInfo(b []byte, o *types.ObjectInfo) []byte {
	b = append(b, o.ID[:]...)
	b = binary.AppendVarint(b, o.Size)
	b = append(b, o.Producer[:]...)
	b = binary.AppendVarint(b, int64(o.State))
	b = appendNodeIDs(b, o.Locations)
	b = binary.AppendVarint(b, o.RefCount)
	b = appendBool(b, o.EverRetained)
	b = appendU64s(b, o.RefOps)
	b = appendNodeIDs(b, o.SpilledOn)
	b = binary.AppendUvarint(b, uint64(len(o.Holders)))
	// Sorted for a deterministic wire form (snapshots diff cleanly).
	keys := make([]types.NodeID, 0, len(o.Holders))
	for k := range o.Holders {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return string(keys[i][:]) < string(keys[j][:]) })
	for _, k := range keys {
		b = append(b, k[:]...)
		b = binary.AppendVarint(b, o.Holders[k])
	}
	return b
}

func appendTaskSpec(b []byte, s *types.TaskSpec) []byte {
	b = append(b, s.ID[:]...)
	b = appendString(b, s.Function)
	b = binary.AppendUvarint(b, uint64(len(s.Args)))
	for i := range s.Args {
		a := &s.Args[i]
		b = appendBool(b, a.IsRef)
		b = append(b, a.Ref[:]...)
		b = appendBytes(b, a.Value)
	}
	b = binary.AppendVarint(b, int64(s.NumReturns))
	b = appendResources(b, s.Resources)
	b = append(b, s.Parent[:]...)
	b = binary.AppendUvarint(b, s.SubmitIndex)
	b = binary.AppendVarint(b, int64(s.MaxRetries))
	b = append(b, s.Locality[:]...)
	b = append(b, s.Group[:]...)
	b = binary.AppendVarint(b, int64(s.Bundle))
	b = binary.AppendUvarint(b, s.TraceID)
	b = append(b, s.Job[:]...)
	b = appendBool(b, s.Actor)
	return b
}

func appendJobInfo(b []byte, j *types.JobInfo) []byte {
	b = append(b, j.Spec.ID[:]...)
	b = appendString(b, j.Spec.Name)
	b = binary.AppendVarint(b, int64(j.Spec.Weight))
	b = binary.AppendVarint(b, int64(j.Spec.Quota.MaxLiveTasks))
	b = binary.AppendVarint(b, int64(j.Spec.Quota.MaxQueueDepth))
	b = binary.AppendVarint(b, j.Spec.Quota.MaxObjectBytes)
	b = binary.AppendVarint(b, int64(j.State))
	b = binary.AppendVarint(b, j.CreatedNs)
	b = binary.AppendVarint(b, j.StoppingNs)
	b = binary.AppendVarint(b, j.StoppedNs)
	b = binary.AppendVarint(b, j.LastTransitionNs)
	b = binary.AppendVarint(b, j.PurgedNs)
	b = appendU64s(b, j.MutOps)
	return b
}

func appendTaskState(b []byte, t *types.TaskState) []byte {
	b = appendTaskSpec(b, &t.Spec)
	b = binary.AppendVarint(b, int64(t.Status))
	b = append(b, t.Node[:]...)
	b = append(b, t.Worker[:]...)
	b = appendString(b, t.Error)
	b = binary.AppendVarint(b, int64(t.Retries))
	b = binary.AppendVarint(b, t.SubmittedNs)
	b = binary.AppendVarint(b, t.ScheduledNs)
	b = binary.AppendVarint(b, t.StartedNs)
	b = binary.AppendVarint(b, t.FinishedNs)
	b = binary.AppendVarint(b, t.LastTransitionNs)
	b = appendU64s(b, t.MutOps)
	b = append(b, t.Owner[:]...)
	b = binary.AppendUvarint(b, t.OwnerSeq)
	return b
}

func appendTaskStateDelta(b []byte, d *types.TaskStateDelta) []byte {
	b = append(b, d.ID[:]...)
	b = append(b, d.Owner[:]...)
	b = binary.AppendUvarint(b, d.Seq)
	b = binary.AppendVarint(b, int64(d.Status))
	b = append(b, d.Node[:]...)
	b = append(b, d.Worker[:]...)
	b = appendString(b, d.Error)
	b = binary.AppendVarint(b, int64(d.Retries))
	b = binary.AppendVarint(b, d.SubmittedNs)
	b = binary.AppendVarint(b, d.ScheduledNs)
	b = binary.AppendVarint(b, d.StartedNs)
	b = binary.AppendVarint(b, d.FinishedNs)
	b = binary.AppendVarint(b, d.LastTransitionNs)
	return b
}

func appendTaskLedgerBatch(b []byte, t *types.TaskLedgerBatch) []byte {
	b = append(b, t.Node[:]...)
	b = binary.AppendUvarint(b, uint64(len(t.Deltas)))
	for i := range t.Deltas {
		b = appendTaskStateDelta(b, &t.Deltas[i])
	}
	b = binary.AppendUvarint(b, t.Op)
	return b
}

func appendNodeInfo(b []byte, n *types.NodeInfo) []byte {
	b = append(b, n.ID[:]...)
	b = appendString(b, n.Addr)
	b = appendResources(b, n.Total)
	b = appendBool(b, n.Alive)
	b = binary.AppendVarint(b, n.LastSeen)
	b = binary.AppendVarint(b, int64(n.State))
	b = binary.AppendVarint(b, n.DrainNs)
	b = binary.AppendVarint(b, int64(n.QueueLen))
	b = appendResources(b, n.Available)
	b = binary.AppendVarint(b, n.Store.UsedBytes)
	b = binary.AppendVarint(b, n.Store.SpilledBytes)
	b = binary.AppendVarint(b, int64(n.Store.Objects))
	b = binary.AppendVarint(b, n.Store.Spills)
	b = binary.AppendVarint(b, n.Store.Restores)
	b = binary.AppendVarint(b, n.Store.Reclaimed)
	b = binary.AppendVarint(b, n.Store.TierEvicted)
	b = appendU64s(b, n.MutOps)
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendNodeIDs(b []byte, ids []types.NodeID) []byte {
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for i := range ids {
		b = append(b, ids[i][:]...)
	}
	return b
}

func appendU64s(b []byte, vs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func appendResources(b []byte, r types.Resources) []byte {
	b = binary.AppendUvarint(b, uint64(len(r)))
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = appendString(b, k)
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(r[k]))
		b = append(b, bits[:]...)
	}
	return b
}

// --- decoder ---

// binReader walks a binary payload; the first out-of-bounds read latches an
// error and every later read returns zero values, so field decoders stay
// unconditional and the error is checked once at the end.
type binReader struct {
	buf []byte
	pos int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at offset %d", r.pos)
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) bool() bool { b := r.take(1); return len(b) == 1 && b[0] != 0 }

func (r *binReader) id16() (id [16]byte) {
	copy(id[:], r.take(16))
	return id
}

// count validates a decoded element count against the bytes remaining, with
// perElem the minimum wire size of one element — a corrupt length prefix
// fails fast instead of allocating gigabytes.
func (r *binReader) count(perElem int) int {
	n := r.uvarint()
	if r.err == nil && int(n)*perElem > len(r.buf)-r.pos {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *binReader) string() string {
	n := r.count(1)
	return string(r.take(n))
}

func (r *binReader) bytes() []byte {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.take(n))
	return b
}

func (r *binReader) nodeIDs() []types.NodeID {
	n := r.count(16)
	if n == 0 {
		return nil
	}
	ids := make([]types.NodeID, n)
	for i := range ids {
		ids[i] = r.id16()
	}
	return ids
}

func (r *binReader) u64s() []uint64 {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.uvarint()
	}
	return vs
}

func (r *binReader) resources() types.Resources {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	res := make(types.Resources, n)
	for i := 0; i < n; i++ {
		k := r.string()
		bits := r.take(8)
		if r.err != nil {
			return nil
		}
		res[k] = math.Float64frombits(binary.LittleEndian.Uint64(bits))
	}
	return res
}

func (r *binReader) objectInfo() (types.ObjectInfo, error) {
	var o types.ObjectInfo
	o.ID = r.id16()
	o.Size = r.varint()
	o.Producer = r.id16()
	o.State = types.ObjectState(r.varint())
	o.Locations = r.nodeIDs()
	o.RefCount = r.varint()
	o.EverRetained = r.bool()
	o.RefOps = r.u64s()
	o.SpilledOn = r.nodeIDs()
	if n := r.count(17); n > 0 {
		o.Holders = make(map[types.NodeID]int64, n)
		for i := 0; i < n; i++ {
			k := types.NodeID(r.id16())
			o.Holders[k] = r.varint()
		}
	}
	return o, r.err
}

func (r *binReader) taskSpec() (types.TaskSpec, error) {
	var s types.TaskSpec
	s.ID = r.id16()
	s.Function = r.string()
	if n := r.count(18); n > 0 {
		s.Args = make([]types.Arg, n)
		for i := range s.Args {
			s.Args[i].IsRef = r.bool()
			s.Args[i].Ref = r.id16()
			s.Args[i].Value = r.bytes()
		}
	}
	s.NumReturns = int(r.varint())
	s.Resources = r.resources()
	s.Parent = r.id16()
	s.SubmitIndex = r.uvarint()
	s.MaxRetries = int(r.varint())
	s.Locality = r.id16()
	s.Group = r.id16()
	s.Bundle = int(r.varint())
	s.TraceID = r.uvarint()
	s.Job = r.id16()
	s.Actor = r.bool()
	return s, r.err
}

func (r *binReader) jobInfo() (types.JobInfo, error) {
	var j types.JobInfo
	j.Spec.ID = r.id16()
	j.Spec.Name = r.string()
	j.Spec.Weight = int(r.varint())
	j.Spec.Quota.MaxLiveTasks = int(r.varint())
	j.Spec.Quota.MaxQueueDepth = int(r.varint())
	j.Spec.Quota.MaxObjectBytes = r.varint()
	j.State = types.JobState(r.varint())
	j.CreatedNs = r.varint()
	j.StoppingNs = r.varint()
	j.StoppedNs = r.varint()
	j.LastTransitionNs = r.varint()
	j.PurgedNs = r.varint()
	j.MutOps = r.u64s()
	return j, r.err
}

func (r *binReader) taskState() (types.TaskState, error) {
	var t types.TaskState
	var err error
	if t.Spec, err = r.taskSpec(); err != nil {
		return t, err
	}
	t.Status = types.TaskStatus(r.varint())
	t.Node = r.id16()
	t.Worker = r.id16()
	t.Error = r.string()
	t.Retries = int(r.varint())
	t.SubmittedNs = r.varint()
	t.ScheduledNs = r.varint()
	t.StartedNs = r.varint()
	t.FinishedNs = r.varint()
	t.LastTransitionNs = r.varint()
	t.MutOps = r.u64s()
	t.Owner = r.id16()
	t.OwnerSeq = r.uvarint()
	return t, r.err
}

func (r *binReader) taskStateDelta() types.TaskStateDelta {
	var d types.TaskStateDelta
	d.ID = r.id16()
	d.Owner = r.id16()
	d.Seq = r.uvarint()
	d.Status = types.TaskStatus(r.varint())
	d.Node = r.id16()
	d.Worker = r.id16()
	d.Error = r.string()
	d.Retries = int(r.varint())
	d.SubmittedNs = r.varint()
	d.ScheduledNs = r.varint()
	d.StartedNs = r.varint()
	d.FinishedNs = r.varint()
	d.LastTransitionNs = r.varint()
	return d
}

func (r *binReader) taskLedgerBatch() (types.TaskLedgerBatch, error) {
	var t types.TaskLedgerBatch
	t.Node = r.id16()
	// A delta is at least two IDs plus a handful of varints.
	if n := r.count(32); n > 0 {
		t.Deltas = make([]types.TaskStateDelta, n)
		for i := range t.Deltas {
			t.Deltas[i] = r.taskStateDelta()
		}
	}
	t.Op = r.uvarint()
	return t, r.err
}

func (r *binReader) nodeInfo() (types.NodeInfo, error) {
	var n types.NodeInfo
	n.ID = r.id16()
	n.Addr = r.string()
	n.Total = r.resources()
	n.Alive = r.bool()
	n.LastSeen = r.varint()
	n.State = types.NodeState(r.varint())
	n.DrainNs = r.varint()
	n.QueueLen = int(r.varint())
	n.Available = r.resources()
	n.Store.UsedBytes = r.varint()
	n.Store.SpilledBytes = r.varint()
	n.Store.Objects = int(r.varint())
	n.Store.Spills = r.varint()
	n.Store.Restores = r.varint()
	n.Store.Reclaimed = r.varint()
	n.Store.TierEvicted = r.varint()
	n.MutOps = r.u64s()
	return n, r.err
}
