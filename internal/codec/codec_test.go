package codec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripScalar(t *testing.T) {
	b, err := Encode(42)
	if err != nil {
		t.Fatal(err)
	}
	var out int
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Fatalf("got %d", out)
	}
}

func TestRoundTripStruct(t *testing.T) {
	type point struct{ X, Y float64 }
	in := point{1.5, -2.25}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAs[point](b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestRawFastPath(t *testing.T) {
	in := []byte{0, 1, 2, 255}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != tagRaw {
		t.Fatalf("[]byte did not take raw path, tag=0x%02x", b[0])
	}
	out, err := DecodeAs[[]byte](b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Fatalf("raw round trip mismatch: %v vs %v", out, in)
	}
}

func TestRawIntoWrongTypeFails(t *testing.T) {
	b := MustEncode([]byte("hi"))
	var s string
	if err := Decode(b, &s); err == nil {
		t.Fatal("decoding raw payload into *string should fail")
	}
}

func TestNil(t *testing.T) {
	b, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out int = 7
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatal("null payload should leave destination untouched")
	}
}

func TestDecodeErrors(t *testing.T) {
	var out int
	if err := Decode(nil, &out); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := Decode([]byte{0x7f, 1, 2}, &out); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// Type mismatch inside gob.
	b := MustEncode("a string")
	if err := Decode(b, &out); err == nil {
		t.Fatal("gob type mismatch accepted")
	}
}

// Property: Encode/Decode round-trips arbitrary strings, int64s, and byte
// slices without corruption.
func TestQuickRoundTrip(t *testing.T) {
	fStr := func(s string) bool {
		b, err := Encode(s)
		if err != nil {
			return false
		}
		out, err := DecodeAs[string](b)
		return err == nil && out == s
	}
	fInt := func(x int64) bool {
		b, err := Encode(x)
		if err != nil {
			return false
		}
		out, err := DecodeAs[int64](b)
		return err == nil && out == x
	}
	fBytes := func(p []byte) bool {
		b, err := Encode(p)
		if err != nil {
			return false
		}
		out, err := DecodeAs[[]byte](b)
		return err == nil && bytes.Equal(out, p)
	}
	for _, f := range []any{fStr, fInt, fBytes} {
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEncodeAsMatchesEncode(t *testing.T) {
	a, err := EncodeAs(3.14)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(3.14)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeAs and Encode disagree")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode of unserializable value did not panic")
		}
	}()
	MustEncode(make(chan int)) // gob cannot encode channels
}
