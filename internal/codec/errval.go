package codec

// Error values: when a task fails, the system stores a tagged error payload
// under each of the task's return object IDs so that any Get on those
// futures surfaces the failure instead of blocking forever. This mirrors
// how the paper's prototype propagated exceptions through futures.

const tagErrVal = 0x04

// EncodeError builds an error payload carrying msg.
func EncodeError(msg string) []byte {
	out := make([]byte, 1+len(msg))
	out[0] = tagErrVal
	copy(out[1:], msg)
	return out
}

// AsError reports whether data is an error payload, and if so its message.
func AsError(data []byte) (string, bool) {
	if len(data) == 0 || data[0] != tagErrVal {
		return "", false
	}
	return string(data[1:]), true
}
