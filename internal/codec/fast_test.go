package codec

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/types"
)

func id16(b byte) (id [16]byte) {
	for i := range id {
		id[i] = b
	}
	return id
}

func sampleObjectInfo() types.ObjectInfo {
	return types.ObjectInfo{
		ID:           types.ObjectID(id16(1)),
		Size:         1 << 20,
		Producer:     types.TaskID(id16(2)),
		State:        types.ObjectReady,
		Locations:    []types.NodeID{types.NodeID(id16(3)), types.NodeID(id16(4))},
		RefCount:     7,
		EverRetained: true,
		RefOps:       []uint64{9, 1 << 63, 42},
		SpilledOn:    []types.NodeID{types.NodeID(id16(4))},
		Holders: map[types.NodeID]int64{
			types.NodeID(id16(3)): 5,
			types.NodeID(id16(4)): 2,
		},
	}
}

func sampleTaskSpec() types.TaskSpec {
	return types.TaskSpec{
		ID:       types.TaskID(id16(5)),
		Function: "train",
		Args: []types.Arg{
			{IsRef: true, Ref: types.ObjectID(id16(6))},
			{Value: []byte("inline")},
		},
		NumReturns:  2,
		Resources:   types.Resources{"CPU": 2, "GPU": 0.5},
		Parent:      types.TaskID(id16(7)),
		SubmitIndex: 12,
		MaxRetries:  3,
		Locality:    types.NodeID(id16(8)),
		Group:       types.PlacementGroupID(id16(9)),
		Bundle:      1,
		TraceID:     0xdeadbeef,
		Job:         types.JobID(id16(14)),
		Actor:       true,
	}
}

func sampleJobInfo() types.JobInfo {
	return types.JobInfo{
		Spec: types.JobSpec{
			ID:     types.JobID(id16(14)),
			Name:   "tenant-a",
			Weight: 3,
			Quota: types.JobQuota{
				MaxLiveTasks:   128,
				MaxQueueDepth:  64,
				MaxObjectBytes: 1 << 30,
			},
		},
		State:            types.JobStopping,
		CreatedNs:        100,
		StoppingNs:       900,
		StoppedNs:        0,
		LastTransitionNs: 900,
		PurgedNs:         0,
		MutOps:           []uint64{5, 1 << 61},
	}
}

func sampleTaskState() types.TaskState {
	return types.TaskState{
		Spec:             sampleTaskSpec(),
		Status:           types.TaskRunning,
		Node:             types.NodeID(id16(10)),
		Worker:           types.WorkerID(id16(11)),
		Error:            "partial failure",
		Retries:          1,
		SubmittedNs:      100,
		ScheduledNs:      200,
		StartedNs:        300,
		FinishedNs:       -1,
		LastTransitionNs: 300,
		MutOps:           []uint64{77, 78},
		Owner:            types.NodeID(id16(13)),
		OwnerSeq:         14,
	}
}

func sampleTaskLedgerBatch() types.TaskLedgerBatch {
	return types.TaskLedgerBatch{
		Node: types.NodeID(id16(13)),
		Deltas: []types.TaskStateDelta{
			{
				ID:               types.TaskID(id16(5)),
				Owner:            types.NodeID(id16(13)),
				Seq:              4,
				Status:           types.TaskFinished,
				Node:             types.NodeID(id16(13)),
				Worker:           types.WorkerID(id16(11)),
				Error:            "",
				Retries:          1,
				SubmittedNs:      100,
				ScheduledNs:      200,
				StartedNs:        300,
				FinishedNs:       400,
				LastTransitionNs: 400,
			},
			{
				ID:     types.TaskID(id16(6)),
				Owner:  types.NodeID(id16(13)),
				Seq:    1,
				Status: types.TaskQueued,
				Error:  "transient: connection reset",
			},
		},
		Op: 1 << 62,
	}
}

func sampleNodeInfo() types.NodeInfo {
	return types.NodeInfo{
		ID:        types.NodeID(id16(12)),
		Addr:      "node-12:7000",
		Total:     types.Resources{"CPU": 8},
		Alive:     true,
		LastSeen:  123456789,
		State:     types.NodeDraining,
		DrainNs:   42,
		QueueLen:  9,
		Available: types.Resources{"CPU": 3.5},
		Store: types.StoreStats{
			UsedBytes: 1, SpilledBytes: 2, Objects: 3,
			Spills: 4, Restores: 5, Reclaimed: 6, TierEvicted: 7,
		},
		MutOps: []uint64{1, 2, 3},
	}
}

func roundTrip[T any](t *testing.T, in T) {
	t.Helper()
	data, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode(%T): %v", in, err)
	}
	if data[0] != tagBin {
		t.Fatalf("Encode(%T) took tag 0x%02x, want the binary fast path", in, data[0])
	}
	out, err := DecodeAs[T](data)
	if err != nil {
		t.Fatalf("Decode(%T): %v", in, err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch for %T:\n in: %+v\nout: %+v", in, in, out)
	}
}

func TestFastRoundTrip(t *testing.T) {
	roundTrip(t, sampleObjectInfo())
	roundTrip(t, sampleTaskSpec())
	roundTrip(t, sampleTaskState())
	roundTrip(t, sampleNodeInfo())
	roundTrip(t, sampleTaskLedgerBatch())
	roundTrip(t, sampleJobInfo())
}

func TestFastRoundTripZeroValues(t *testing.T) {
	roundTrip(t, types.ObjectInfo{})
	roundTrip(t, types.TaskSpec{})
	roundTrip(t, types.TaskState{})
	roundTrip(t, types.NodeInfo{})
	roundTrip(t, types.TaskLedgerBatch{})
	roundTrip(t, types.JobInfo{})
}

// TestFastPointerEncode checks pointer and value encodings agree — callers
// pass both.
func TestFastPointerEncode(t *testing.T) {
	v := sampleObjectInfo()
	a := MustEncode(v)
	b := MustEncode(&v)
	if !bytes.Equal(a, b) {
		t.Fatalf("value and pointer encodings differ")
	}
}

// TestFastDecodesLegacyGob ensures records written by the gob path (older
// WAL entries, mixed-version stores) still decode: the tag byte selects the
// decoder.
func TestFastDecodesLegacyGob(t *testing.T) {
	in := sampleTaskState()
	var buf bytes.Buffer
	buf.WriteByte(tagGob)
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAs[types.TaskState](buf.Bytes())
	if err != nil {
		t.Fatalf("gob-tagged decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("gob fallback mismatch")
	}
}

func TestFastTruncatedPayload(t *testing.T) {
	data := MustEncode(sampleTaskState())
	for _, cut := range []int{2, 3, len(data) / 2, len(data) - 1} {
		if _, err := DecodeAs[types.TaskState](data[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(data))
		}
	}
}

func TestFastWrongTarget(t *testing.T) {
	data := MustEncode(sampleObjectInfo())
	if _, err := DecodeAs[types.TaskState](data); err == nil {
		t.Fatal("ObjectInfo payload decoded into TaskState")
	}
}

// TestFastFieldSetsCovered pins the struct shapes the fast path encodes. If
// a field is added to one of the hot types, this test fails until fast.go
// learns the field (the expected lists below are updated as part of that).
func TestFastFieldSetsCovered(t *testing.T) {
	expect := map[reflect.Type][]string{
		reflect.TypeOf(types.ObjectInfo{}): {"ID", "Size", "Producer", "State", "Locations", "RefCount", "EverRetained", "RefOps", "Holders", "SpilledOn"},
		reflect.TypeOf(types.TaskSpec{}):   {"ID", "Function", "Args", "NumReturns", "Resources", "Parent", "SubmitIndex", "MaxRetries", "Locality", "Group", "Bundle", "TraceID", "Job", "Actor"},
		reflect.TypeOf(types.TaskState{}):  {"Spec", "Status", "Node", "Worker", "Error", "Retries", "SubmittedNs", "ScheduledNs", "StartedNs", "FinishedNs", "LastTransitionNs", "MutOps", "Owner", "OwnerSeq"},
		reflect.TypeOf(types.NodeInfo{}):   {"ID", "Addr", "Total", "Alive", "LastSeen", "State", "DrainNs", "QueueLen", "Available", "Store", "MutOps"},
		reflect.TypeOf(types.Arg{}):        {"IsRef", "Ref", "Value"},
		reflect.TypeOf(types.StoreStats{}): {"UsedBytes", "SpilledBytes", "Objects", "Spills", "Restores", "Reclaimed", "TierEvicted"},
		reflect.TypeOf(types.TaskStateDelta{}): {"ID", "Owner", "Seq", "Status", "Node", "Worker", "Error", "Retries",
			"SubmittedNs", "ScheduledNs", "StartedNs", "FinishedNs", "LastTransitionNs"},
		reflect.TypeOf(types.TaskLedgerBatch{}): {"Node", "Deltas", "Op"},
		reflect.TypeOf(types.JobInfo{}): {"Spec", "State", "CreatedNs", "StoppingNs", "StoppedNs",
			"LastTransitionNs", "PurgedNs", "MutOps"},
		reflect.TypeOf(types.JobSpec{}):  {"ID", "Name", "Weight", "Quota"},
		reflect.TypeOf(types.JobQuota{}): {"MaxLiveTasks", "MaxQueueDepth", "MaxObjectBytes"},
	}
	for typ, want := range expect {
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			got = append(got, typ.Field(i).Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v fields changed: now %v, fast.go encodes %v — update fast.go and this list together", typ, got, want)
		}
	}
}

func BenchmarkEncodeTaskStateFast(b *testing.B) {
	v := sampleTaskState()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTaskStateFast(b *testing.B) {
	data := MustEncode(sampleTaskState())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAs[types.TaskState](data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTaskStateGob(b *testing.B) {
	in := sampleTaskState()
	var buf bytes.Buffer
	buf.WriteByte(tagGob)
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAs[types.TaskState](data); err != nil {
			b.Fatal(err)
		}
	}
}
