package kv

import "io"

// DB is the store surface the control-plane table layer (internal/gcs)
// builds on. Both *Store and *Logger satisfy it, so a gcs.Store can run
// over a bare in-memory store (in-process clusters, benchmarks) or over a
// write-ahead-logged store (durable GCS shard services) without knowing
// the difference.
type DB interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
	PutIfAbsent(key string, value []byte) bool
	Update(key string, fn func(cur []byte, exists bool) (next []byte, ok bool)) bool
	Delete(key string) bool
	Append(key string, value []byte)
	List(key string) [][]byte
	ListLen(key string) int
	Keys(prefix string) []string
	ListKeys(prefix string) []string

	Publish(channel string, payload []byte)
	Subscribe(channel string) *Subscription
	NumSubscribers(channel string) int

	Snapshot(w io.Writer) error
	NumShards() int
	Ops() int64
}

var (
	_ DB = (*Store)(nil)
	_ DB = (*Logger)(nil)
)
