package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	s := New(4)
	sub := s.Subscribe("ch")
	defer sub.Close()
	s.Publish("ch", []byte("hello"))
	select {
	case msg := <-sub.C():
		if string(msg) != "hello" {
			t.Fatalf("got %q", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("timed out waiting for message")
	}
}

func TestPublishOrder(t *testing.T) {
	s := New(4)
	sub := s.Subscribe("ch")
	defer sub.Close()
	const n = 500
	for i := 0; i < n; i++ {
		s.Publish("ch", []byte{byte(i), byte(i >> 8)})
	}
	for i := 0; i < n; i++ {
		select {
		case msg := <-sub.C():
			got := int(msg[0]) | int(msg[1])<<8
			if got != i {
				t.Fatalf("out of order: got %d want %d", got, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out at message %d", i)
		}
	}
}

func TestSlowSubscriberDoesNotBlockPublisher(t *testing.T) {
	s := New(1)
	sub := s.Subscribe("ch")
	defer sub.Close()
	// Publish far more than the out-channel buffer without receiving.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			s.Publish("ch", []byte("x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	// All messages must still arrive.
	for i := 0; i < 10000; i++ {
		select {
		case <-sub.C():
		case <-time.After(time.Second):
			t.Fatalf("lost message %d", i)
		}
	}
}

// TestSlowSubscriberDoesNotDelayFastPeer: per-subscriber queues must
// isolate a stalled consumer from a healthy one on the same channel — a
// wedged dashboard reader cannot be allowed to stall the dataflow
// dispatcher's object-ready notifications.
func TestSlowSubscriberDoesNotDelayFastPeer(t *testing.T) {
	s := New(1)
	slow := s.Subscribe("ch") // never read until the end
	defer slow.Close()
	fast := s.Subscribe("ch")
	defer fast.Close()

	const n = 1000
	for i := 0; i < n; i++ {
		s.Publish("ch", []byte{byte(i)})
	}
	for i := 0; i < n; i++ {
		select {
		case msg := <-fast.C():
			if msg[0] != byte(i) {
				t.Fatalf("fast subscriber got %d at position %d", msg[0], i)
			}
		case <-time.After(time.Second):
			t.Fatalf("fast subscriber starved at message %d behind slow peer", i)
		}
	}
	// The slow subscriber still gets everything, in order.
	for i := 0; i < n; i++ {
		select {
		case msg := <-slow.C():
			if msg[0] != byte(i) {
				t.Fatalf("slow subscriber got %d at position %d", msg[0], i)
			}
		case <-time.After(time.Second):
			t.Fatalf("slow subscriber lost message %d", i)
		}
	}
}

// TestSlowSubscriberOrderUnderConcurrentPublish: a consumer that drains
// with delays while the publisher keeps writing must observe the publish
// order unbroken.
func TestSlowSubscriberOrderUnderConcurrentPublish(t *testing.T) {
	s := New(2)
	sub := s.Subscribe("ch")
	defer sub.Close()
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			s.Publish("ch", []byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < n; i++ {
		if i%97 == 0 {
			time.Sleep(time.Millisecond) // consumer hiccup mid-stream
		}
		select {
		case msg := <-sub.C():
			got := int(msg[0]) | int(msg[1])<<8
			if got != i {
				t.Fatalf("message %d arrived at position %d", got, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s := New(4)
	subs := make([]*Subscription, 3)
	for i := range subs {
		subs[i] = s.Subscribe("ch")
		defer subs[i].Close()
	}
	if s.NumSubscribers("ch") != 3 {
		t.Fatalf("NumSubscribers = %d", s.NumSubscribers("ch"))
	}
	s.Publish("ch", []byte("m"))
	for i, sub := range subs {
		select {
		case <-sub.C():
		case <-time.After(time.Second):
			t.Fatalf("subscriber %d missed message", i)
		}
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	s := New(4)
	sub := s.Subscribe("ch")
	sub.Close()
	sub.Close() // idempotent
	if s.NumSubscribers("ch") != 0 {
		t.Fatal("subscriber still registered after Close")
	}
	s.Publish("ch", []byte("m")) // must not panic or deadlock
	// C() must be closed.
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Fatal("received message after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("C() not closed")
	}
}

func TestCloseWhileBlockedOnSend(t *testing.T) {
	s := New(1)
	sub := s.Subscribe("ch")
	// Fill the out buffer and the pump's in-flight send.
	for i := 0; i < 100; i++ {
		s.Publish("ch", []byte("x"))
	}
	time.Sleep(10 * time.Millisecond) // let pump block on full channel
	done := make(chan struct{})
	go func() {
		sub.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked against blocked pump")
	}
}

func TestChannelIsolation(t *testing.T) {
	s := New(8)
	a := s.Subscribe("a")
	defer a.Close()
	b := s.Subscribe("b")
	defer b.Close()
	s.Publish("a", []byte("for-a"))
	select {
	case msg := <-a.C():
		if string(msg) != "for-a" {
			t.Fatalf("got %q", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("a missed its message")
	}
	select {
	case msg := <-b.C():
		t.Fatalf("b received %q meant for a", msg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestConcurrentPublishersAllDelivered(t *testing.T) {
	s := New(8)
	sub := s.Subscribe("ch")
	defer sub.Close()
	const publishers, perP = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				s.Publish("ch", []byte(fmt.Sprintf("%d-%d", p, i)))
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[string]bool)
	for i := 0; i < publishers*perP; i++ {
		select {
		case msg := <-sub.C():
			if seen[string(msg)] {
				t.Fatalf("duplicate %q", msg)
			}
			seen[string(msg)] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d messages arrived", i, publishers*perP)
		}
	}
}

func TestPublishNoSubscribersIsNoop(t *testing.T) {
	s := New(2)
	s.Publish("nobody", []byte("m")) // must not panic
}
