// Package kv implements the control-plane database of the paper's Section
// 3.2.1: a sharded in-memory key-value store providing (1) storage for
// system control state and (2) publish-subscribe so that stateless system
// components can communicate. The paper's prototype used Redis; this is a
// from-scratch substitute exposing exactly the operations the architecture
// needs — exact-match get/put, list append, and channels — sharded by key
// hash so throughput scales with shard count (experiment E7).
package kv

import (
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
)

// Store is a sharded key-value store with pub/sub. All methods are safe for
// concurrent use. Keys route to shards by FNV-1a hash, so a key's shard is
// stable for the life of the store.
type Store struct {
	shards []*shard
	ops    atomic.Int64 // total mutating+reading operations, for benchmarks
}

type shard struct {
	mu sync.Mutex
	// kvs holds scalar values; lists holds append-only lists. They share a
	// namespace split by the caller's key conventions.
	kvs   map[string][]byte
	lists map[string][][]byte
	subs  map[string][]*Subscription // channel name -> subscribers
	// buckets indexes scalar keys by their table prefix (everything up to
	// and including the first ':'), so Keys("node:") walks the node table
	// instead of the whole keyspace. Without it every prefix scan was
	// O(total keys) — and the node-table scan sits on the global
	// scheduler's per-placement path, which made placement cost grow with
	// the number of tasks ever recorded.
	buckets map[string]map[string]struct{}
}

// bucketOf returns the prefix bucket a key belongs to: the segment up to
// and including the first ':' (the table-naming convention every
// control-plane key follows), or "" for unsegmented keys.
func bucketOf(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		return key[:i+1]
	}
	return ""
}

// index adds key to its prefix bucket. Caller holds sh.mu.
func (sh *shard) index(key string) {
	b := bucketOf(key)
	m := sh.buckets[b]
	if m == nil {
		m = make(map[string]struct{})
		sh.buckets[b] = m
	}
	m[key] = struct{}{}
}

// unindex removes key from its prefix bucket. Caller holds sh.mu.
func (sh *shard) unindex(key string) {
	if m := sh.buckets[bucketOf(key)]; m != nil {
		delete(m, key)
	}
}

// New creates a store with n shards (n < 1 is treated as 1).
func New(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{
			kvs:     make(map[string][]byte),
			lists:   make(map[string][][]byte),
			subs:    make(map[string][]*Subscription),
			buckets: make(map[string]map[string]struct{}),
		}
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Ops returns the cumulative operation count (monotonic; for benchmarks).
func (s *Store) Ops() int64 { return s.ops.Load() }

func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// ShardIndex exposes the shard routing for tests (stability property).
func (s *Store) ShardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Get returns the value stored at key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.ops.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	v, ok := sh.kvs[key]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stores value at key, replacing any previous value.
func (s *Store) Put(key string, value []byte) {
	s.ops.Add(1)
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	if _, ok := sh.kvs[key]; !ok {
		sh.index(key)
	}
	sh.kvs[key] = v
	sh.mu.Unlock()
}

// PutIfAbsent stores value only if key has no value; reports whether it
// stored. This is the primitive behind exactly-once task-table insertion.
func (s *Store) PutIfAbsent(key string, value []byte) bool {
	s.ops.Add(1)
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.kvs[key]; ok {
		return false
	}
	sh.index(key)
	sh.kvs[key] = v
	return true
}

// Update atomically applies fn to the current value (nil, false if absent)
// and stores the result. If fn returns ok=false the store is unchanged.
// This is the read-modify-write primitive used by the table layer.
func (s *Store) Update(key string, fn func(cur []byte, exists bool) (next []byte, ok bool)) bool {
	s.ops.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, exists := sh.kvs[key]
	next, ok := fn(cur, exists)
	if !ok {
		return false
	}
	v := make([]byte, len(next))
	copy(v, next)
	if !exists {
		sh.index(key)
	}
	sh.kvs[key] = v
	return true
}

// Delete removes key; reports whether it existed.
func (s *Store) Delete(key string) bool {
	s.ops.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	_, ok := sh.kvs[key]
	if ok {
		delete(sh.kvs, key)
		sh.unindex(key)
	}
	sh.mu.Unlock()
	return ok
}

// Append appends value to the list at key (creating it if needed).
func (s *Store) Append(key string, value []byte) {
	s.ops.Add(1)
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.lists[key] = append(sh.lists[key], v)
	sh.mu.Unlock()
}

// List returns a copy of the list at key.
func (s *Store) List(key string) [][]byte {
	s.ops.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	src := sh.lists[key]
	out := make([][]byte, len(src))
	for i, v := range src {
		c := make([]byte, len(v))
		copy(c, v)
		out[i] = c
	}
	sh.mu.Unlock()
	return out
}

// ListLen returns the length of the list at key without copying.
func (s *Store) ListLen(key string) int {
	s.ops.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	n := len(sh.lists[key])
	sh.mu.Unlock()
	return n
}

// Keys returns every scalar key with the given prefix, across all shards.
// A prefix naming a table (containing ':') walks only that table's bucket
// — O(matches), which is what lets scans like the node table sit on the
// scheduler's placement path. Prefixes shorter than a full table segment
// fall back to the whole-keyspace scan.
func (s *Store) Keys(prefix string) []string {
	bucket := bucketOf(prefix)
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		if bucket != "" {
			for k := range sh.buckets[bucket] {
				if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
					out = append(out, k)
				}
			}
		} else {
			for k := range sh.kvs {
				if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
					out = append(out, k)
				}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// ListKeys returns every list key with the given prefix, across all shards.
func (s *Store) ListKeys(prefix string) []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k := range sh.lists {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				out = append(out, k)
			}
		}
		sh.mu.Unlock()
	}
	return out
}
