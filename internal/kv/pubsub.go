package kv

import "sync"

// Subscription receives messages published to one channel. Delivery is
// lossless until Close: an internal unbounded queue decouples publishers
// from slow subscribers, because a dropped object-ready notification would
// wedge the dataflow dispatcher. Messages arrive in publish order.
type Subscription struct {
	channel string
	store   *Store

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool

	out  chan []byte
	stop chan struct{}
	done chan struct{}
}

// C returns the receive channel. It is closed when the subscription is
// closed and the queue has drained.
func (sub *Subscription) C() <-chan []byte { return sub.out }

// Channel returns the channel name subscribed to.
func (sub *Subscription) Channel() string { return sub.channel }

// Close detaches the subscription. Pending queued messages are discarded
// and C is closed. Close is idempotent.
func (sub *Subscription) Close() {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	sub.closed = true
	close(sub.stop)
	sub.cond.Signal()
	sub.mu.Unlock()

	sub.store.unsubscribe(sub)
	<-sub.done
}

func (sub *Subscription) push(msg []byte) {
	sub.mu.Lock()
	if !sub.closed {
		sub.queue = append(sub.queue, msg)
		sub.cond.Signal()
	}
	sub.mu.Unlock()
}

// pump moves messages from the queue to the out channel.
func (sub *Subscription) pump() {
	defer close(sub.done)
	defer close(sub.out)
	for {
		sub.mu.Lock()
		for len(sub.queue) == 0 && !sub.closed {
			sub.cond.Wait()
		}
		if sub.closed {
			sub.mu.Unlock()
			return
		}
		msg := sub.queue[0]
		sub.queue = sub.queue[1:]
		sub.mu.Unlock()
		select {
		case sub.out <- msg:
		case <-sub.stop:
			return
		}
	}
}

// Subscribe registers for messages published to channel. The caller must
// Close the subscription when done.
func (s *Store) Subscribe(channel string) *Subscription {
	sub := &Subscription{
		channel: channel,
		store:   s,
		out:     make(chan []byte, 16),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	sub.cond = sync.NewCond(&sub.mu)
	sh := s.shardFor(channel)
	sh.mu.Lock()
	sh.subs[channel] = append(sh.subs[channel], sub)
	sh.mu.Unlock()
	go sub.pump()
	return sub
}

// Publish delivers payload to every current subscriber of channel.
// Publishing to a channel with no subscribers is a no-op, as in Redis.
func (s *Store) Publish(channel string, payload []byte) {
	s.ops.Add(1)
	msg := make([]byte, len(payload))
	copy(msg, payload)
	sh := s.shardFor(channel)
	sh.mu.Lock()
	subs := sh.subs[channel]
	// Copy the slice header so pushes happen outside the shard lock's
	// critical section w.r.t. slice mutation by unsubscribe.
	snapshot := make([]*Subscription, len(subs))
	copy(snapshot, subs)
	sh.mu.Unlock()
	for _, sub := range snapshot {
		sub.push(msg)
	}
}

// NumSubscribers reports the current subscriber count for channel.
func (s *Store) NumSubscribers(channel string) int {
	sh := s.shardFor(channel)
	sh.mu.Lock()
	n := len(sh.subs[channel])
	sh.mu.Unlock()
	return n
}

func (s *Store) unsubscribe(sub *Subscription) {
	sh := s.shardFor(sub.channel)
	sh.mu.Lock()
	list := sh.subs[sub.channel]
	for i, candidate := range list {
		if candidate == sub {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(sh.subs, sub.channel)
	} else {
		sh.subs[sub.channel] = list
	}
	sh.mu.Unlock()
}
