package kv

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New(4)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Append("list", []byte("x"))
	s.Append("list", []byte("y"))

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 {
		t.Fatalf("shards = %d", r.NumShards())
	}
	v, ok := r.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	list := r.List("list")
	if len(list) != 2 || string(list[0]) != "x" || string(list[1]) != "y" {
		t.Fatalf("list = %v", list)
	}
}

func TestSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	s := New(2)
	s.Put("k", []byte("v"))
	if err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("k"); string(v) != "v" {
		t.Fatal("file round trip lost data")
	}
	if _, err := RestoreFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage restored")
	}
}

func TestWALReplayReproducesState(t *testing.T) {
	var wal bytes.Buffer
	l := NewLogger(New(4), &wal)
	l.Put("a", []byte("1"))
	l.Put("a", []byte("2")) // overwrite
	l.Put("b", []byte("3"))
	l.Delete("b")
	l.Append("events", []byte("e1"))
	l.Append("events", []byte("e2"))
	l.PutIfAbsent("c", []byte("4"))
	l.PutIfAbsent("c", []byte("5")) // no-op, must not be logged
	l.Update("a", func(cur []byte, exists bool) ([]byte, bool) {
		return append(cur, '!'), true
	})
	l.Update("a", func(cur []byte, exists bool) ([]byte, bool) {
		return nil, false // aborted, must not be logged
	})

	replayed := New(4)
	n, err := Replay(bytes.NewReader(wal.Bytes()), replayed)
	if err != nil {
		t.Fatal(err)
	}
	// Logged: put a, put a, put b, del b, append x2, putIfAbsent c,
	// committed update a = 8 records; the failed putIfAbsent and aborted
	// update must not appear.
	if n != 8 {
		t.Fatalf("replayed %d records, want 8", n)
	}
	if v, _ := replayed.Get("a"); string(v) != "2!" {
		t.Fatalf("a = %q", v)
	}
	if _, ok := replayed.Get("b"); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, _ := replayed.Get("c"); string(v) != "4" {
		t.Fatalf("c = %q", v)
	}
	if got := replayed.List("events"); len(got) != 2 || string(got[1]) != "e2" {
		t.Fatalf("events = %v", got)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	var wal bytes.Buffer
	l := NewLogger(New(1), &wal)
	l.Put("a", []byte("1"))
	l.Put("b", []byte("2"))
	full := wal.Bytes()
	// Cut the log mid-record (simulate a crash during the last write).
	torn := full[:len(full)-3]
	replayed := New(1)
	n, err := Replay(bytes.NewReader(torn), replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records from torn log, want 1", n)
	}
	if v, _ := replayed.Get("a"); string(v) != "1" {
		t.Fatal("good prefix lost")
	}
}

// TestWALTruncatedEveryPrefix is the exhaustive torn-tail property: for a
// WAL cut at EVERY byte boundary — mid-header, mid-key, mid-value, and on
// record boundaries — replay must recover exactly the longest whole-record
// prefix and never report an error. This is the crash-during-append
// contract a restarting GCS shard depends on.
func TestWALTruncatedEveryPrefix(t *testing.T) {
	var wal bytes.Buffer
	var bounds []int // wal length after each whole record
	l := NewLogger(New(2), &wal)
	l.Put("alpha", []byte("one"))
	bounds = append(bounds, wal.Len())
	l.Append("list", []byte("element-two"))
	bounds = append(bounds, wal.Len())
	l.Put("beta", []byte("three"))
	bounds = append(bounds, wal.Len())
	l.Delete("alpha")
	bounds = append(bounds, wal.Len())
	full := wal.Bytes()

	wholeRecords := func(cut int) int {
		n := 0
		for _, b := range bounds {
			if cut >= b {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(full); cut++ {
		replayed := New(2)
		n, err := Replay(bytes.NewReader(full[:cut]), replayed)
		if err != nil {
			t.Fatalf("cut at %d: replay errored: %v", cut, err)
		}
		if want := wholeRecords(cut); n != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, n, want)
		}
		// Spot-check state at the record boundaries.
		switch n {
		case 1:
			if v, _ := replayed.Get("alpha"); string(v) != "one" {
				t.Fatalf("cut at %d: alpha = %q", cut, v)
			}
		case 4:
			if _, ok := replayed.Get("alpha"); ok {
				t.Fatalf("cut at %d: deleted key survived", cut)
			}
			if v, _ := replayed.Get("beta"); string(v) != "three" {
				t.Fatalf("cut at %d: beta = %q", cut, v)
			}
		}
	}
}

// TestWALTornTailThenContinue: recovery from a torn log must leave a store
// that keeps working — the restarted shard appends new mutations and a
// second recovery sees both the salvaged prefix and the new writes.
func TestWALTornTailThenContinue(t *testing.T) {
	var wal bytes.Buffer
	l := NewLogger(New(1), &wal)
	l.Put("a", []byte("1"))
	l.Put("b", []byte("2"))
	torn := append([]byte(nil), wal.Bytes()[:wal.Len()-4]...) // crash mid-"b"

	recovered := New(1)
	if _, err := Replay(bytes.NewReader(torn), recovered); err != nil {
		t.Fatal(err)
	}
	// New incarnation logs onto a fresh WAL (the shard service checkpoints
	// at boot, truncating the torn tail away).
	var wal2 bytes.Buffer
	l2 := NewLogger(recovered, &wal2)
	l2.Put("c", []byte("3"))

	final := New(1)
	if _, err := Replay(bytes.NewReader(wal2.Bytes()), final); err != nil {
		t.Fatal(err)
	}
	if v, _ := l2.Get("a"); string(v) != "1" {
		t.Fatal("salvaged prefix lost after continue")
	}
	if v, _ := final.Get("c"); string(v) != "3" {
		t.Fatal("post-recovery write not replayable")
	}
	if _, ok := final.Get("b"); ok {
		t.Fatal("torn record resurrected")
	}
}

func TestRecoverDirLifecycle(t *testing.T) {
	dir := t.TempDir()

	// Fresh directory: empty store.
	s, n, err := RecoverDir(dir, 2)
	if err != nil || n != 0 {
		t.Fatalf("fresh recover: %d records, %v", n, err)
	}

	// Run a logged workload, checkpoint, then more work into the WAL.
	wal, err := OpenWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLogger(s, wal)
	l.Put("pre", []byte("snap"))
	if err := Checkpoint(l, dir, wal); err != nil {
		t.Fatal(err)
	}
	l.Put("post", []byte("wal"))
	l.Append("ev", []byte("e1"))
	wal.Close()

	// Crash + recover: snapshot carries "pre", WAL replay carries "post".
	r, n, err := RecoverDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d WAL records on top of snapshot, want 2", n)
	}
	for _, k := range []string{"pre", "post"} {
		if _, ok := r.Get(k); !ok {
			t.Fatalf("%s missing after dir recovery", k)
		}
	}
	if r.ListLen("ev") != 1 {
		t.Fatal("list append lost across dir recovery")
	}

	// Truncate the WAL mid-record: recovery still salvages the prefix.
	raw, err := os.ReadFile(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, WALName), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r2, n2, err := RecoverDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 1 {
		t.Fatalf("torn dir WAL replayed %d records, want 1", n2)
	}
	if _, ok := r2.Get("post"); !ok {
		t.Fatal("whole-record prefix lost from torn dir WAL")
	}
}

// TestCheckpointCrashWindowSkipsStaleWAL pins the fence semantics: a
// crash inside Checkpoint after the snapshot rename but before the WAL
// cut leaves a new snapshot paired with the OLD WAL. Recovery must skip
// that WAL (its every mutation is in the snapshot) — replaying it would
// double-apply list appends.
func TestCheckpointCrashWindowSkipsStaleWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, err := RecoverDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := OpenWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLogger(s, wal)
	if err := Checkpoint(l, dir, wal); err != nil { // fence the WAL
		t.Fatal(err)
	}
	l.Append("ev", []byte("e1"))
	l.Put("k", []byte("v"))

	// Simulate the torn checkpoint: write the NEW snapshot (different
	// token) but "crash" before the WAL is truncated and re-fenced.
	if err := l.Store.snapshotFileToken(filepath.Join(dir, SnapshotName), 0xDEAD); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	r, n, err := RecoverDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("stale WAL replayed %d records onto a snapshot that contains them", n)
	}
	if r.ListLen("ev") != 1 {
		t.Fatalf("list has %d entries, want 1 (append double-applied)", r.ListLen("ev"))
	}
	if v, _ := r.Get("k"); string(v) != "v" {
		t.Fatal("snapshot state incomplete")
	}
}

// TestCheckpointFencePairsWAL: the normal path — snapshot and WAL cut by
// the same Checkpoint — replays post-checkpoint records exactly once.
func TestCheckpointFencePairsWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, err := RecoverDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := OpenWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLogger(s, wal)
	l.Put("pre", []byte("1"))
	if err := Checkpoint(l, dir, wal); err != nil {
		t.Fatal(err)
	}
	l.Append("ev", []byte("post"))
	wal.Close()

	r, n, err := RecoverDir(dir, 2)
	if err != nil || n != 1 {
		t.Fatalf("replayed %d records, %v; want 1", n, err)
	}
	if _, ok := r.Get("pre"); !ok {
		t.Fatal("pre-checkpoint state lost")
	}
	if r.ListLen("ev") != 1 {
		t.Fatal("post-checkpoint append lost or duplicated")
	}
}

func TestWALRejectsCorruptLength(t *testing.T) {
	bad := []byte{byte(walPut), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, err := Replay(bytes.NewReader(bad), New(1)); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

// Property: snapshot+restore preserves arbitrary key/value pairs.
func TestQuickSnapshotFidelity(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		s := New(3)
		want := make(map[string][]byte) // last write wins on duplicate keys
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			s.Put("k:"+k, v)
			want["k:"+k] = v
		}
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			return false
		}
		r, err := Restore(&buf)
		if err != nil {
			return false
		}
		for k, v := range want {
			got, ok := r.Get(k)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Control-plane recovery end to end: snapshot a gcs-shaped store, "crash",
// restore, and check the replayed store serves the same data.
func TestSnapshotThenWALCombined(t *testing.T) {
	var wal bytes.Buffer
	base := New(2)
	base.Put("task:1", []byte("spec1"))
	var snap bytes.Buffer
	if err := base.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot go to the WAL.
	l := NewLogger(base, &wal)
	l.Put("task:2", []byte("spec2"))
	l.Append("events:n1", []byte("ev"))

	// Crash. Recover = restore snapshot, then replay WAL.
	recovered, err := Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(wal.Bytes()), recovered); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"task:1", "task:2"} {
		if _, ok := recovered.Get(k); !ok {
			t.Fatalf("%s missing after recovery", k)
		}
	}
	if recovered.ListLen("events:n1") != 1 {
		t.Fatal("event log lost")
	}
}

// errWriter fails every write after a threshold.
type errWriter struct{ failAfter int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.failAfter <= 0 {
		return 0, os.ErrClosed
	}
	w.failAfter--
	return len(p), nil
}

// TestLoggerLatchesWriteFailure: once a WAL write errors, the logger
// reports Failed so the service stops acknowledging mutations the log
// never recorded.
func TestLoggerLatchesWriteFailure(t *testing.T) {
	l := NewLogger(New(1), &errWriter{failAfter: 3}) // one whole record
	l.Put("a", []byte("1"))
	if l.Failed() {
		t.Fatal("healthy write reported failed")
	}
	l.Put("b", []byte("2")) // header write errors
	if !l.Failed() {
		t.Fatal("write failure not latched")
	}
}
