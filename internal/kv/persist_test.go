package kv

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New(4)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Append("list", []byte("x"))
	s.Append("list", []byte("y"))

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 {
		t.Fatalf("shards = %d", r.NumShards())
	}
	v, ok := r.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	list := r.List("list")
	if len(list) != 2 || string(list[0]) != "x" || string(list[1]) != "y" {
		t.Fatalf("list = %v", list)
	}
}

func TestSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	s := New(2)
	s.Put("k", []byte("v"))
	if err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("k"); string(v) != "v" {
		t.Fatal("file round trip lost data")
	}
	if _, err := RestoreFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage restored")
	}
}

func TestWALReplayReproducesState(t *testing.T) {
	var wal bytes.Buffer
	l := NewLogger(New(4), &wal)
	l.Put("a", []byte("1"))
	l.Put("a", []byte("2")) // overwrite
	l.Put("b", []byte("3"))
	l.Delete("b")
	l.Append("events", []byte("e1"))
	l.Append("events", []byte("e2"))
	l.PutIfAbsent("c", []byte("4"))
	l.PutIfAbsent("c", []byte("5")) // no-op, must not be logged
	l.Update("a", func(cur []byte, exists bool) ([]byte, bool) {
		return append(cur, '!'), true
	})
	l.Update("a", func(cur []byte, exists bool) ([]byte, bool) {
		return nil, false // aborted, must not be logged
	})

	replayed := New(4)
	n, err := Replay(bytes.NewReader(wal.Bytes()), replayed)
	if err != nil {
		t.Fatal(err)
	}
	// Logged: put a, put a, put b, del b, append x2, putIfAbsent c,
	// committed update a = 8 records; the failed putIfAbsent and aborted
	// update must not appear.
	if n != 8 {
		t.Fatalf("replayed %d records, want 8", n)
	}
	if v, _ := replayed.Get("a"); string(v) != "2!" {
		t.Fatalf("a = %q", v)
	}
	if _, ok := replayed.Get("b"); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, _ := replayed.Get("c"); string(v) != "4" {
		t.Fatalf("c = %q", v)
	}
	if got := replayed.List("events"); len(got) != 2 || string(got[1]) != "e2" {
		t.Fatalf("events = %v", got)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	var wal bytes.Buffer
	l := NewLogger(New(1), &wal)
	l.Put("a", []byte("1"))
	l.Put("b", []byte("2"))
	full := wal.Bytes()
	// Cut the log mid-record (simulate a crash during the last write).
	torn := full[:len(full)-3]
	replayed := New(1)
	n, err := Replay(bytes.NewReader(torn), replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records from torn log, want 1", n)
	}
	if v, _ := replayed.Get("a"); string(v) != "1" {
		t.Fatal("good prefix lost")
	}
}

func TestWALRejectsCorruptLength(t *testing.T) {
	bad := []byte{byte(walPut), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, err := Replay(bytes.NewReader(bad), New(1)); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

// Property: snapshot+restore preserves arbitrary key/value pairs.
func TestQuickSnapshotFidelity(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		s := New(3)
		want := make(map[string][]byte) // last write wins on duplicate keys
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			s.Put("k:"+k, v)
			want["k:"+k] = v
		}
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			return false
		}
		r, err := Restore(&buf)
		if err != nil {
			return false
		}
		for k, v := range want {
			got, ok := r.Get(k)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Control-plane recovery end to end: snapshot a gcs-shaped store, "crash",
// restore, and check the replayed store serves the same data.
func TestSnapshotThenWALCombined(t *testing.T) {
	var wal bytes.Buffer
	base := New(2)
	base.Put("task:1", []byte("spec1"))
	var snap bytes.Buffer
	if err := base.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot go to the WAL.
	l := NewLogger(base, &wal)
	l.Put("task:2", []byte("spec2"))
	l.Append("events:n1", []byte("ev"))

	// Crash. Recover = restore snapshot, then replay WAL.
	recovered, err := Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(wal.Bytes()), recovered); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"task:1", "task:2"} {
		if _, ok := recovered.Get(k); !ok {
			t.Fatalf("%s missing after recovery", k)
		}
	}
	if recovered.ListLen("events:n1") != 1 {
		t.Fatal("event log lost")
	}
}
