package kv

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Durability. Section 3.2.1's fault-tolerance argument assumes the control
// database itself is fault tolerant ("so long as the database is
// fault-tolerant, we can recover from component failures by simply
// restarting the failed components"). This file provides that property:
// a Store can write a point-in-time snapshot and be reconstituted from it,
// and a Logger tees every mutation to an append-only log so a crashed
// control plane replays to its last state. Pub/sub state is deliberately
// not persisted — subscribers are the stateless components, and on restart
// they resubscribe (that is the whole point of the architecture).

// snapshot is the gob-encoded durable state of one store.
type snapshot struct {
	Shards int
	KVs    map[string][]byte
	Lists  map[string][][]byte
}

// Snapshot writes a point-in-time copy of the store to w. It locks shards
// one at a time, so it is consistent per key but not across keys — the same
// guarantee a Redis BGSAVE gives, and sufficient because control-plane
// records are independently keyed.
func (s *Store) Snapshot(w io.Writer) error {
	snap := snapshot{
		Shards: len(s.shards),
		KVs:    make(map[string][]byte),
		Lists:  make(map[string][][]byte),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, v := range sh.kvs {
			c := make([]byte, len(v))
			copy(c, v)
			snap.KVs[k] = c
		}
		for k, list := range sh.lists {
			cp := make([][]byte, len(list))
			for i, v := range list {
				c := make([]byte, len(v))
				copy(c, v)
				cp[i] = c
			}
			snap.Lists[k] = cp
		}
		sh.mu.Unlock()
	}
	return gob.NewEncoder(w).Encode(snap)
}

// SnapshotFile writes a snapshot atomically (write + rename).
func (s *Store) SnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.Snapshot(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Restore reconstitutes a store from a snapshot.
func Restore(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("kv: restore: %w", err)
	}
	s := New(snap.Shards)
	for k, v := range snap.KVs {
		s.Put(k, v)
	}
	for k, list := range snap.Lists {
		for _, v := range list {
			s.Append(k, v)
		}
	}
	return s, nil
}

// RestoreFile reads a snapshot file.
func RestoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(bufio.NewReader(f))
}

// --- write-ahead log ---

// walOp tags log records.
type walOp uint8

const (
	walPut walOp = iota + 1
	walDelete
	walAppend
)

// Logger wraps a Store, teeing every mutation to an append-only log.
// Reads pass through untouched. Replay applies a log to an empty (or
// snapshot-restored) store.
type Logger struct {
	*Store
	w  io.Writer
	mu chan struct{} // binary semaphore serializing log writes
}

// NewLogger wraps store so mutations are logged to w. The caller is
// responsible for w's durability (e.g. an os.File with periodic Sync).
func NewLogger(store *Store, w io.Writer) *Logger {
	l := &Logger{Store: store, w: w, mu: make(chan struct{}, 1)}
	l.mu <- struct{}{}
	return l
}

func (l *Logger) log(op walOp, key string, value []byte) {
	<-l.mu
	defer func() { l.mu <- struct{}{} }()
	var hdr [9]byte
	hdr[0] = byte(op)
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(value)))
	// Errors are surfaced on Replay (torn tail tolerated), matching the
	// best-effort semantics of an async appendfsync log.
	l.w.Write(hdr[:])
	io.WriteString(l.w, key)
	l.w.Write(value)
}

// Put logs then applies.
func (l *Logger) Put(key string, value []byte) {
	l.log(walPut, key, value)
	l.Store.Put(key, value)
}

// PutIfAbsent logs only when the write happens.
func (l *Logger) PutIfAbsent(key string, value []byte) bool {
	ok := l.Store.PutIfAbsent(key, value)
	if ok {
		l.log(walPut, key, value)
	}
	return ok
}

// Update logs the resulting value when the update commits.
func (l *Logger) Update(key string, fn func(cur []byte, exists bool) ([]byte, bool)) bool {
	var logged []byte
	ok := l.Store.Update(key, func(cur []byte, exists bool) ([]byte, bool) {
		next, commit := fn(cur, exists)
		if commit {
			logged = make([]byte, len(next))
			copy(logged, next)
		}
		return next, commit
	})
	if ok {
		l.log(walPut, key, logged)
	}
	return ok
}

// Delete logs then applies.
func (l *Logger) Delete(key string) bool {
	l.log(walDelete, key, nil)
	return l.Store.Delete(key)
}

// Append logs then applies.
func (l *Logger) Append(key string, value []byte) {
	l.log(walAppend, key, value)
	l.Store.Append(key, value)
}

// Replay applies a mutation log to store. A truncated final record (torn
// write during a crash) ends replay without error; anything else malformed
// is reported.
func Replay(r io.Reader, store *Store) (records int, err error) {
	br := bufio.NewReader(r)
	for {
		var hdr [9]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return records, nil
			}
			return records, nil // torn header: stop at last good record
		}
		op := walOp(hdr[0])
		keyLen := binary.BigEndian.Uint32(hdr[1:5])
		valLen := binary.BigEndian.Uint32(hdr[5:9])
		if keyLen > 1<<20 || valLen > maxFrame {
			return records, fmt.Errorf("kv: corrupt wal record %d", records)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return records, nil
		}
		val := make([]byte, valLen)
		if _, err := io.ReadFull(br, val); err != nil {
			return records, nil
		}
		switch op {
		case walPut:
			store.Put(string(key), val)
		case walDelete:
			store.Delete(string(key))
		case walAppend:
			store.Append(string(key), val)
		default:
			return records, fmt.Errorf("kv: unknown wal op %d at record %d", op, records)
		}
		records++
	}
}

// maxFrame guards Replay against corrupt length prefixes.
const maxFrame = 256 << 20
