package kv

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Durability. Section 3.2.1's fault-tolerance argument assumes the control
// database itself is fault tolerant ("so long as the database is
// fault-tolerant, we can recover from component failures by simply
// restarting the failed components"). This file provides that property:
// a Store can write a point-in-time snapshot and be reconstituted from it,
// and a Logger tees every mutation to an append-only log so a crashed
// control plane replays to its last state. Pub/sub state is deliberately
// not persisted — subscribers are the stateless components, and on restart
// they resubscribe (that is the whole point of the architecture).

// snapshot is the gob-encoded durable state of one store. Token pairs a
// snapshot with the WAL incarnation that follows it (see Checkpoint): a
// WAL whose fence token differs from the snapshot's was superseded by the
// snapshot and must not be replayed on top of it.
type snapshot struct {
	Shards int
	Token  uint64
	KVs    map[string][]byte
	Lists  map[string][][]byte
}

// Snapshot writes a point-in-time copy of the store to w. It locks shards
// one at a time, so it is consistent per key but not across keys — the same
// guarantee a Redis BGSAVE gives, and sufficient because control-plane
// records are independently keyed.
func (s *Store) Snapshot(w io.Writer) error { return s.snapshotToken(w, 0) }

func (s *Store) snapshotToken(w io.Writer, token uint64) error {
	snap := snapshot{
		Shards: len(s.shards),
		Token:  token,
		KVs:    make(map[string][]byte),
		Lists:  make(map[string][][]byte),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, v := range sh.kvs {
			c := make([]byte, len(v))
			copy(c, v)
			snap.KVs[k] = c
		}
		for k, list := range sh.lists {
			cp := make([][]byte, len(list))
			for i, v := range list {
				c := make([]byte, len(v))
				copy(c, v)
				cp[i] = c
			}
			snap.Lists[k] = cp
		}
		sh.mu.Unlock()
	}
	return gob.NewEncoder(w).Encode(snap)
}

// SnapshotFile writes a snapshot atomically (write + rename).
func (s *Store) SnapshotFile(path string) error { return s.snapshotFileToken(path, 0) }

func (s *Store) snapshotFileToken(path string, token uint64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.snapshotToken(bw, token); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Restore reconstitutes a store from a snapshot.
func Restore(r io.Reader) (*Store, error) {
	s, _, err := restoreToken(r)
	return s, err
}

func restoreToken(r io.Reader) (*Store, uint64, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, 0, fmt.Errorf("kv: restore: %w", err)
	}
	s := New(snap.Shards)
	for k, v := range snap.KVs {
		s.Put(k, v)
	}
	for k, list := range snap.Lists {
		for _, v := range list {
			s.Append(k, v)
		}
	}
	return s, snap.Token, nil
}

// RestoreFile reads a snapshot file.
func RestoreFile(path string) (*Store, error) {
	s, _, err := restoreFileToken(path)
	return s, err
}

func restoreFileToken(path string) (*Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return restoreToken(bufio.NewReader(f))
}

// --- write-ahead log ---

// walOp tags log records.
type walOp uint8

const (
	walPut walOp = iota + 1
	walDelete
	walAppend
	// walFence is checkpoint metadata, not a mutation: the 8-byte value is
	// the token pairing this WAL with the snapshot written by the same
	// Checkpoint. Replay skips it; RecoverDir compares it.
	walFence
)

// Logger wraps a Store, teeing every mutation to an append-only log.
// Reads and pub/sub pass through untouched. Replay applies a log to an
// empty (or snapshot-restored) store.
//
// Each mutation holds the log lock across both the log write and the store
// apply, so the pair is atomic with respect to WithLock — which is what
// lets a checkpoint (snapshot + log truncation) cut the log without losing
// a mutation that applied on one side of the cut and logged on the other.
// Mutations therefore serialize per Logger; the control plane regains
// parallelism by running many shard services, each with its own Logger.
type Logger struct {
	*Store
	w  io.Writer
	mu chan struct{} // binary semaphore: log write + store apply are atomic
	// failed latches on the first log-write error (ENOSPC, closed fd…):
	// from that point the WAL is missing acked-looking mutations, so the
	// service wrapping this logger must stop acknowledging (and restart
	// from the durable prefix) rather than confirm non-durable commits.
	failed atomic.Bool
	// appendNs, when set, observes the latency of each WAL append (the
	// durability cost every control-plane mutation pays).
	appendNs *metrics.Histogram
}

// Failed reports whether any log write has errored. A service serving
// this logger should treat true as "crash now": every mutation since the
// first failure is absent from the WAL.
func (l *Logger) Failed() bool { return l.failed.Load() }

// SetAppendHistogram attaches a latency histogram (nanoseconds) sampled on
// every WAL append. Call before the logger serves traffic; a nil histogram
// (the default) records nothing.
func (l *Logger) SetAppendHistogram(h *metrics.Histogram) { l.appendNs = h }

// NewLogger wraps store so mutations are logged to w. The caller is
// responsible for w's durability (e.g. an os.File with periodic Sync).
func NewLogger(store *Store, w io.Writer) *Logger {
	l := &Logger{Store: store, w: w, mu: make(chan struct{}, 1)}
	l.mu <- struct{}{}
	return l
}

// WithLock runs fn while mutation logging is excluded. Checkpointing uses
// it to snapshot the store and truncate (or swap) the log as one atomic
// step. fn must not call the Logger's own mutators.
func (l *Logger) WithLock(fn func(w io.Writer) error) error {
	<-l.mu
	defer func() { l.mu <- struct{}{} }()
	return fn(l.w)
}

// SetWriter atomically redirects future log records to w (log rotation
// after a checkpoint). Callers already holding WithLock must not use it.
func (l *Logger) SetWriter(w io.Writer) {
	<-l.mu
	l.w = w
	l.mu <- struct{}{}
}

// logLocked appends one record; caller holds l.mu. A write error latches
// the failed flag — torn tails are tolerated at Replay, but continuing to
// ack mutations a broken log never recorded would be silent state loss.
func (l *Logger) logLocked(op walOp, key string, value []byte) {
	if l.appendNs != nil {
		start := time.Now()
		defer func() { l.appendNs.Observe(time.Since(start).Nanoseconds()) }()
	}
	var hdr [9]byte
	hdr[0] = byte(op)
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(value)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.failed.Store(true)
		return
	}
	if _, err := io.WriteString(l.w, key); err != nil {
		l.failed.Store(true)
		return
	}
	if _, err := l.w.Write(value); err != nil {
		l.failed.Store(true)
	}
}

// Put logs and applies atomically.
func (l *Logger) Put(key string, value []byte) {
	<-l.mu
	l.logLocked(walPut, key, value)
	l.Store.Put(key, value)
	l.mu <- struct{}{}
}

// PutIfAbsent logs only when the write happens.
func (l *Logger) PutIfAbsent(key string, value []byte) bool {
	<-l.mu
	ok := l.Store.PutIfAbsent(key, value)
	if ok {
		l.logLocked(walPut, key, value)
	}
	l.mu <- struct{}{}
	return ok
}

// Update logs the resulting value when the update commits.
func (l *Logger) Update(key string, fn func(cur []byte, exists bool) ([]byte, bool)) bool {
	<-l.mu
	var logged []byte
	ok := l.Store.Update(key, func(cur []byte, exists bool) ([]byte, bool) {
		next, commit := fn(cur, exists)
		if commit {
			logged = make([]byte, len(next))
			copy(logged, next)
		}
		return next, commit
	})
	if ok {
		l.logLocked(walPut, key, logged)
	}
	l.mu <- struct{}{}
	return ok
}

// UpdateUnlogged applies an update WITHOUT writing it to the WAL, for
// state that is deliberately non-durable (heartbeat liveness stamps). The
// store apply itself is safe against concurrent logged mutators (the
// store's shard lock serializes the read-modify-write), and checkpoint
// atomicity is not at stake: a snapshot either captured the unlogged value
// or it didn't, and neither outcome can desynchronize replay because the
// WAL never saw it. Callers accept that recovery resurrects the last
// LOGGED value of the key; use only for fields a live cluster re-stamps
// continuously.
func (l *Logger) UpdateUnlogged(key string, fn func(cur []byte, exists bool) ([]byte, bool)) bool {
	return l.Store.Update(key, fn)
}

// Delete logs and applies atomically.
func (l *Logger) Delete(key string) bool {
	<-l.mu
	l.logLocked(walDelete, key, nil)
	ok := l.Store.Delete(key)
	l.mu <- struct{}{}
	return ok
}

// Append logs and applies atomically.
func (l *Logger) Append(key string, value []byte) {
	<-l.mu
	l.logLocked(walAppend, key, value)
	l.Store.Append(key, value)
	l.mu <- struct{}{}
}

// Replay applies a mutation log to store. A truncated final record (torn
// write during a crash) ends replay without error; anything else malformed
// is reported.
func Replay(r io.Reader, store *Store) (records int, err error) {
	br := bufio.NewReader(r)
	for {
		var hdr [9]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return records, nil
			}
			return records, nil // torn header: stop at last good record
		}
		op := walOp(hdr[0])
		keyLen := binary.BigEndian.Uint32(hdr[1:5])
		valLen := binary.BigEndian.Uint32(hdr[5:9])
		if keyLen > 1<<20 || valLen > maxFrame {
			return records, fmt.Errorf("kv: corrupt wal record %d", records)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return records, nil
		}
		val := make([]byte, valLen)
		if _, err := io.ReadFull(br, val); err != nil {
			return records, nil
		}
		switch op {
		case walPut:
			store.Put(string(key), val)
		case walDelete:
			store.Delete(string(key))
		case walAppend:
			store.Append(string(key), val)
		case walFence:
			continue // checkpoint metadata, no state change, not counted
		default:
			return records, fmt.Errorf("kv: unknown wal op %d at record %d", op, records)
		}
		records++
	}
}

// maxFrame guards Replay against corrupt length prefixes.
const maxFrame = 256 << 20

// --- directory layout: one durable store per directory ---

// SnapshotName and WALName are the on-disk layout of one durable store
// (a GCS shard service keeps one directory per shard).
const (
	SnapshotName = "snapshot.gob"
	WALName      = "wal.log"
)

// RecoverDir reconstitutes a store from dir: the snapshot (if any) plus a
// replay of the write-ahead log's valid prefix (if any). A missing dir or
// empty dir yields a fresh store with the given shard count; a WAL torn
// mid-record by a crash replays up to the cut. The WAL is replayed only
// when its fence token matches the snapshot's: a mismatch means a crash
// landed inside Checkpoint after the new snapshot (which already contains
// every WAL mutation) but before the WAL was cut — replaying then would
// double-apply list appends. It returns the recovered store and how many
// WAL records were replayed on top of the snapshot.
func RecoverDir(dir string, shards int) (*Store, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("kv: recover dir: %w", err)
	}
	var store *Store
	snapToken := uint64(0)
	snapPath := filepath.Join(dir, SnapshotName)
	if _, err := os.Stat(snapPath); err == nil {
		store, snapToken, err = restoreFileToken(snapPath)
		if err != nil {
			return nil, 0, fmt.Errorf("kv: recover snapshot: %w", err)
		}
	} else {
		store = New(shards)
	}
	records := 0
	walPath := filepath.Join(dir, WALName)
	if f, err := os.Open(walPath); err == nil {
		walToken, fenced := readFence(f)
		// Replay when the fence pairs the WAL with this snapshot, or when
		// neither side is fenced (fresh dir: both zero).
		if (fenced && walToken == snapToken) || (!fenced && snapToken == 0) {
			records, err = Replay(f, store)
		} else {
			err = nil
		}
		f.Close()
		if err != nil {
			return nil, records, fmt.Errorf("kv: recover wal: %w", err)
		}
	}
	return store, records, nil
}

// readFence reads a WAL's leading fence record, leaving f positioned at
// the first record to replay. A WAL that does not start with a complete
// fence is left positioned at the start and reported unfenced.
func readFence(f *os.File) (uint64, bool) {
	var rec [17]byte // 9-byte header + 8-byte token
	if _, err := io.ReadFull(f, rec[:]); err == nil && walOp(rec[0]) == walFence &&
		binary.BigEndian.Uint32(rec[1:5]) == 0 && binary.BigEndian.Uint32(rec[5:9]) == 8 {
		return binary.BigEndian.Uint64(rec[9:17]), true
	}
	f.Seek(0, io.SeekStart)
	return 0, false
}

// OpenWALDir opens dir's write-ahead log for appending, creating it if
// absent. Pair with RecoverDir: recover first, then append new mutations.
func OpenWALDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, WALName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Checkpoint writes a snapshot of the logger's store into dir and cuts
// the WAL, atomically with respect to concurrent mutations (the logger's
// lock covers both halves, so no mutation can land in the gap between the
// snapshot and the cut). Crash-safety comes from the shared token: the
// snapshot embeds it and the cut WAL starts with a matching fence, so a
// crash anywhere inside Checkpoint leaves either the old pairing (snapshot
// not yet renamed) or a mismatched one (RecoverDir then skips the stale
// WAL, whose every mutation the new snapshot already contains). If
// Checkpoint returns an error the WAL may be unfenced; restart the store
// from the directory rather than continuing to log to it.
func Checkpoint(l *Logger, dir string, wal *os.File) error {
	var tok [8]byte
	if _, err := rand.Read(tok[:]); err != nil {
		return err
	}
	token := binary.BigEndian.Uint64(tok[:]) | 1 // non-zero: zero means unfenced
	return l.WithLock(func(io.Writer) error {
		if err := l.Store.snapshotFileToken(filepath.Join(dir, SnapshotName), token); err != nil {
			return err
		}
		if err := wal.Truncate(0); err != nil {
			return err
		}
		if _, err := wal.Seek(0, io.SeekStart); err != nil {
			return err
		}
		var fence [17]byte
		fence[0] = byte(walFence)
		binary.BigEndian.PutUint32(fence[5:9], 8)
		binary.BigEndian.PutUint64(fence[9:17], token)
		_, err := wal.Write(fence[:])
		return err
	})
}
