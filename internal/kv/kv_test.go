package kv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New(4)
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	s.Put("k", []byte("v1"))
	v, ok := s.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s.Put("k", []byte("v2"))
	v, _ = s.Get("k")
	if string(v) != "v2" {
		t.Fatal("Put did not replace")
	}
	if !s.Delete("k") {
		t.Fatal("Delete reported missing")
	}
	if s.Delete("k") {
		t.Fatal("second Delete reported present")
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := New(2)
	if !s.PutIfAbsent("k", []byte("a")) {
		t.Fatal("first PutIfAbsent failed")
	}
	if s.PutIfAbsent("k", []byte("b")) {
		t.Fatal("second PutIfAbsent succeeded")
	}
	v, _ := s.Get("k")
	if string(v) != "a" {
		t.Fatal("value overwritten")
	}
}

func TestUpdate(t *testing.T) {
	s := New(1)
	ok := s.Update("ctr", func(cur []byte, exists bool) ([]byte, bool) {
		if exists {
			t.Error("unexpected existing value")
		}
		return []byte{1}, true
	})
	if !ok {
		t.Fatal("Update returned false")
	}
	s.Update("ctr", func(cur []byte, exists bool) ([]byte, bool) {
		if !exists || cur[0] != 1 {
			t.Error("Update did not see prior value")
		}
		return []byte{cur[0] + 1}, true
	})
	v, _ := s.Get("ctr")
	if v[0] != 2 {
		t.Fatalf("counter = %d", v[0])
	}
	// Aborted update leaves value unchanged.
	s.Update("ctr", func(cur []byte, exists bool) ([]byte, bool) { return nil, false })
	v, _ = s.Get("ctr")
	if v[0] != 2 {
		t.Fatal("aborted Update mutated value")
	}
}

func TestValueIsolation(t *testing.T) {
	s := New(1)
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
	v[0] = 'Y'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get returned aliased buffer")
	}
}

func TestListAppend(t *testing.T) {
	s := New(4)
	for i := 0; i < 5; i++ {
		s.Append("l", []byte{byte(i)})
	}
	if s.ListLen("l") != 5 {
		t.Fatalf("ListLen = %d", s.ListLen("l"))
	}
	items := s.List("l")
	for i, it := range items {
		if it[0] != byte(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	if len(s.List("nope")) != 0 {
		t.Fatal("missing list non-empty")
	}
}

func TestKeysPrefixScan(t *testing.T) {
	s := New(8)
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("task:%02d", i), []byte("x"))
	}
	s.Put("obj:1", []byte("y"))
	s.Append("events:a", []byte("e"))
	if got := len(s.Keys("task:")); got != 20 {
		t.Fatalf("Keys(task:) = %d", got)
	}
	if got := len(s.Keys("obj:")); got != 1 {
		t.Fatalf("Keys(obj:) = %d", got)
	}
	if got := len(s.ListKeys("events:")); got != 1 {
		t.Fatalf("ListKeys(events:) = %d", got)
	}
}

// Property: shard routing is stable and within range for any key.
func TestShardRoutingStable(t *testing.T) {
	s := New(16)
	f := func(key string) bool {
		i := s.ShardIndex(key)
		return i >= 0 && i < 16 && i == s.ShardIndex(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Put then Get returns exactly what was put, for arbitrary keys
// and values, across shard counts.
func TestQuickPutGet(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		s := New(shards)
		f := func(key string, val []byte) bool {
			s.Put(key, val)
			got, ok := s.Get(key)
			return ok && bytes.Equal(got, val)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

func TestConcurrentCounters(t *testing.T) {
	s := New(8)
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Update("ctr", func(cur []byte, exists bool) ([]byte, bool) {
					var n uint32
					if exists {
						n = uint32(cur[0]) | uint32(cur[1])<<8 | uint32(cur[2])<<16 | uint32(cur[3])<<24
					}
					n++
					return []byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}, true
				})
			}
		}()
	}
	wg.Wait()
	v, _ := s.Get("ctr")
	n := uint32(v[0]) | uint32(v[1])<<8 | uint32(v[2])<<16 | uint32(v[3])<<24
	if n != goroutines*perG {
		t.Fatalf("lost updates: %d != %d", n, goroutines*perG)
	}
}

func TestNewClampsShards(t *testing.T) {
	if New(0).NumShards() != 1 || New(-3).NumShards() != 1 {
		t.Fatal("shard clamp broken")
	}
}

func TestOpsCounter(t *testing.T) {
	s := New(1)
	before := s.Ops()
	s.Put("a", nil)
	s.Get("a")
	if s.Ops() < before+2 {
		t.Fatal("ops counter not advancing")
	}
}
