package worker

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/lifetime"
	"repro/internal/types"
)

// stubBackend is a minimal core.Backend for executor tests.
type stubBackend struct {
	ctrl *gcs.Store
	node types.NodeID

	mu      sync.Mutex
	objects map[types.ObjectID][]byte
}

func newStub() *stubBackend {
	return &stubBackend{
		ctrl:    gcs.NewStore(2),
		node:    types.NodeID(types.DeriveTaskID(types.NilTaskID, 41000)),
		objects: make(map[types.ObjectID][]byte),
	}
}

func (s *stubBackend) SubmitTask(spec types.TaskSpec) error { return nil }
func (s *stubBackend) ResolveObject(ctx context.Context, id types.ObjectID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.objects[id]; ok {
		return d, nil
	}
	return nil, errors.New("stub: missing")
}
func (s *stubBackend) ObjectLocal(id types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[id]
	return ok
}
func (s *stubBackend) PutObject(id types.ObjectID, data []byte) error {
	s.mu.Lock()
	s.objects[id] = data
	s.mu.Unlock()
	s.ctrl.AddObjectLocation(id, s.node, int64(len(data)))
	return nil
}
func (s *stubBackend) Control() gcs.API     { return s.ctrl }
func (s *stubBackend) NodeID() types.NodeID { return s.node }

func mkSpec(i uint64, fn string, returns int) types.TaskSpec {
	return types.TaskSpec{
		ID:         types.DeriveTaskID(types.NilTaskID, i),
		Function:   fn,
		NumReturns: returns,
		Resources:  types.CPU(1),
	}
}

func setup(t *testing.T, hooks Hooks) (*Executor, *stubBackend, *core.Registry) {
	t.Helper()
	b := newStub()
	reg := core.NewRegistry()
	ex := NewExecutor(b.node, b.ctrl, reg, b, hooks)
	return ex, b, reg
}

func TestExecuteStoresReturnsAndStatus(t *testing.T) {
	ex, b, reg := setup(t, Hooks{})
	reg.Register("two", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return [][]byte{codec.MustEncode(1), codec.MustEncode(2)}, nil
	})
	spec := mkSpec(1, "two", 2)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil)

	for i := 0; i < 2; i++ {
		if !b.ObjectLocal(spec.ReturnID(i)) {
			t.Fatalf("return %d not stored", i)
		}
	}
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFinished {
		t.Fatalf("status = %v", st.Status)
	}
	if ex.Executed() != 1 || ex.Failed() != 0 {
		t.Fatal("counters wrong")
	}
}

func TestUnregisteredFunctionFails(t *testing.T) {
	ex, b, _ := setup(t, Hooks{})
	spec := mkSpec(2, "ghost", 1)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil)
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFailed {
		t.Fatalf("status = %v", st.Status)
	}
	// Error payload must be visible through the return object.
	data, _ := b.ResolveObject(context.Background(), spec.ReturnID(0))
	if msg, isErr := codec.AsError(data); !isErr || msg == "" {
		t.Fatal("no error payload stored")
	}
}

func TestWrongReturnCountFails(t *testing.T) {
	ex, b, reg := setup(t, Hooks{})
	reg.Register("liar", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return [][]byte{codec.MustEncode(1)}, nil // declares 2
	})
	spec := mkSpec(3, "liar", 2)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil)
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFailed {
		t.Fatalf("status = %v", st.Status)
	}
}

func TestPanicIsolated(t *testing.T) {
	ex, b, reg := setup(t, Hooks{})
	reg.Register("boom", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		panic("explosive")
	})
	spec := mkSpec(4, "boom", 1)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil) // must not panic the test
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFailed || st.Error == "" {
		t.Fatalf("state = %+v", st)
	}
	if ex.Failed() != 1 {
		t.Fatal("failed counter wrong")
	}
}

func TestRetryPathResubmits(t *testing.T) {
	resubmitted := make(chan types.TaskSpec, 4)
	ex, b, reg := setup(t, Hooks{
		Resubmit: func(spec types.TaskSpec) { resubmitted <- spec },
	})
	reg.Register("flaky", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return nil, errors.New("transient")
	})
	spec := mkSpec(5, "flaky", 1)
	spec.MaxRetries = 2
	b.ctrl.AddTask(types.TaskState{Spec: spec})

	ex.Execute(context.Background(), spec, nil) // attempt 1 -> retry
	select {
	case got := <-resubmitted:
		if got.ID != spec.ID {
			t.Fatal("wrong spec resubmitted")
		}
	default:
		t.Fatal("no resubmission after first failure")
	}
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskPending || st.Retries != 1 {
		t.Fatalf("after retry 1: %+v", st)
	}

	ex.Execute(context.Background(), spec, nil) // attempt 2 -> retry
	<-resubmitted
	ex.Execute(context.Background(), spec, nil) // attempt 3 -> exhausted
	select {
	case <-resubmitted:
		t.Fatal("resubmitted past MaxRetries")
	default:
	}
	st, _ = b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFailed {
		t.Fatalf("final status = %v", st.Status)
	}
}

func TestBlockHookReachesHooks(t *testing.T) {
	var events []bool
	var mu sync.Mutex
	ex, b, reg := setup(t, Hooks{
		OnBlocked: func(spec types.TaskSpec, blocked bool) {
			mu.Lock()
			events = append(events, blocked)
			mu.Unlock()
		},
	})
	// The task gets a future that is already stored remotely-invisible;
	// put it before Get so ResolveObject succeeds immediately after the
	// hook fires.
	reg.Register("getter", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		child, err := tc.Submit1(core.Call{Function: "unused"})
		if err != nil {
			return nil, err
		}
		_ = b.PutObject(child.ID, codec.MustEncode(7))
		if _, err := tc.Get(child); err != nil {
			return nil, err
		}
		return [][]byte{codec.MustEncode(0)}, nil
	})
	spec := mkSpec(6, "getter", 1)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil)
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFinished {
		t.Fatalf("status = %v err=%s", st.Status, st.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	// ObjectLocal was true at Get time, so the fast path may skip blocking;
	// either zero or a balanced [true false] sequence is acceptable.
	if len(events)%2 != 0 {
		t.Fatalf("unbalanced block events: %v", events)
	}
}

func TestActiveCounter(t *testing.T) {
	ex, b, reg := setup(t, Hooks{})
	probe := make(chan int64, 1)
	reg.Register("probe", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		probe <- ex.Active()
		return [][]byte{codec.MustEncode(0)}, nil
	})
	spec := mkSpec(7, "probe", 1)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil)
	if got := <-probe; got != 1 {
		t.Fatalf("active during exec = %d", got)
	}
	if ex.Active() != 0 {
		t.Fatal("active not restored")
	}
}

func TestNilReturnBecomesNullPayload(t *testing.T) {
	ex, b, reg := setup(t, Hooks{})
	reg.Register("nilret", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return [][]byte{nil}, nil
	})
	spec := mkSpec(8, "nilret", 1)
	b.ctrl.AddTask(types.TaskState{Spec: spec})
	ex.Execute(context.Background(), spec, nil)
	if !b.ObjectLocal(spec.ReturnID(0)) {
		t.Fatal("nil return not stored")
	}
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFinished {
		t.Fatalf("status = %v", st.Status)
	}
}

// ledgerRecorder wraps the store to observe the executor's control-plane
// traffic on the ledger path: every ModifyTaskStates batch is captured, and
// the legacy two-RPC retry surface (RecordTaskRetry + SetTaskStatus) trips
// the test — the ledger path must never fall back to it.
type ledgerRecorder struct {
	gcs.API
	t *testing.T

	mu     sync.Mutex
	deltas []types.TaskStateDelta
}

func (r *ledgerRecorder) ModifyTaskStates(node types.NodeID, deltas []types.TaskStateDelta, op uint64) []types.TaskID {
	r.mu.Lock()
	r.deltas = append(r.deltas, deltas...)
	r.mu.Unlock()
	return r.API.ModifyTaskStates(node, deltas, op)
}

func (r *ledgerRecorder) RecordTaskRetry(id types.TaskID) int {
	r.t.Errorf("ledger path used legacy RecordTaskRetry for %v", id)
	return r.API.RecordTaskRetry(id)
}

func (r *ledgerRecorder) SetTaskStatus(id types.TaskID, status types.TaskStatus, node types.NodeID, worker types.WorkerID, errMsg string) {
	r.t.Errorf("ledger path used legacy SetTaskStatus(%v, %v)", id, status)
	r.API.SetTaskStatus(id, status, node, worker, errMsg)
}

// TestRetryCrashWindowClosed is the regression test for the retry crash
// window (DESIGN.md §13): the old sequence was two control-plane RPCs —
// RecordTaskRetry bumping the count, then SetTaskStatus resetting to
// PENDING — and a node dying between them burned a retry attempt without
// ever rescheduling the task. On the ledger path both must ride ONE
// sequenced delta: every delta that carries a retry bump also carries the
// PENDING reset, so there is no instant at which the table holds the bump
// without the reset.
func TestRetryCrashWindowClosed(t *testing.T) {
	resubmitted := make(chan types.TaskSpec, 4)
	ex, b, reg := setup(t, Hooks{
		Resubmit: func(spec types.TaskSpec) { resubmitted <- spec },
	})
	rec := &ledgerRecorder{API: b.ctrl, t: t}
	led := lifetime.NewTaskLedger(rec)
	led.SetNode(b.node)
	ex.SetLedger(led) // synchronous mode: every transition flushes inline

	reg.Register("flaky", func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		return nil, errors.New("transient")
	})
	spec := mkSpec(9, "flaky", 1)
	spec.MaxRetries = 2
	b.ctrl.AddTask(types.TaskState{Spec: spec, Owner: b.node})
	led.Adopt(spec.ID, 0, types.TaskPending)

	ex.Execute(context.Background(), spec, nil) // attempt 1 -> retry
	select {
	case got := <-resubmitted:
		if got.ID != spec.ID {
			t.Fatal("wrong spec resubmitted")
		}
	default:
		t.Fatal("no resubmission after first failure")
	}
	st, _ := b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskPending || st.Retries != 1 {
		t.Fatalf("after retry 1: status=%v retries=%d", st.Status, st.Retries)
	}

	ex.Execute(context.Background(), spec, nil) // attempt 2 -> retry
	<-resubmitted
	ex.Execute(context.Background(), spec, nil) // attempt 3 -> exhausted
	select {
	case <-resubmitted:
		t.Fatal("resubmitted past MaxRetries")
	default:
	}
	st, _ = b.ctrl.GetTask(spec.ID)
	if st.Status != types.TaskFailed || st.Retries != 3 {
		t.Fatalf("final state: status=%v retries=%d", st.Status, st.Retries)
	}
	if msg, isErr := codec.AsError(mustResolve(t, b, spec.ReturnID(0))); !isErr || msg == "" {
		t.Fatal("no error payload stored for exhausted retries")
	}

	// The crash-window invariant: a delta bumping Retries must carry the
	// PENDING reset (or be terminal, where the count rides the failure) in
	// the SAME delta. Any bump-only delta reopens the window.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	bumps := 0
	for _, d := range rec.deltas {
		if d.ID != spec.ID {
			continue
		}
		if d.Retries > 0 && d.Status == types.TaskPending {
			bumps++
		}
		if d.Retries > 0 && d.Status != types.TaskPending && !d.Status.Terminal() && d.Status != types.TaskRunning {
			t.Fatalf("retry bump without reset in one delta: %+v", d)
		}
	}
	if bumps < 2 {
		t.Fatalf("expected >=2 atomic bump+reset deltas, saw %d", bumps)
	}

	// Zombie tenure: the FAILED ack dropped the record from the ledger, so
	// a straggler execution finds the task unowned and vanishes silently —
	// no resubmit, no counter bump, no table write.
	failedBefore := ex.Failed()
	ex.Execute(context.Background(), spec, nil)
	if ex.Failed() != failedBefore {
		t.Fatal("zombie execution bumped the failure counter")
	}
	select {
	case <-resubmitted:
		t.Fatal("zombie execution resubmitted")
	default:
	}
	if st2, _ := b.ctrl.GetTask(spec.ID); st2.Status != types.TaskFailed {
		t.Fatalf("zombie execution disturbed the table: %v", st2.Status)
	}
}

func mustResolve(t *testing.T, b *stubBackend, id types.ObjectID) []byte {
	t.Helper()
	data, err := b.ResolveObject(context.Background(), id)
	if err != nil {
		t.Fatalf("resolve %v: %v", id, err)
	}
	return data
}
