// Package worker executes tasks on a node. The paper's prototype ran a
// fixed pool of worker processes per node; here each task executes on a
// goroutine admitted by the local scheduler's resource accounting, and a
// task that blocks on Get lends its resources back to the scheduler — the
// same worker-lending behaviour Ray uses to keep nested tasks (R3) from
// deadlocking a node.
package worker

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/types"
)

// Hooks let the local scheduler observe execution lifecycle events.
type Hooks struct {
	// OnBlocked is called when a task enters (true) or leaves (false) a
	// blocking Get/Wait; the scheduler releases/reacquires its resources.
	OnBlocked func(spec types.TaskSpec, blocked bool)
	// Resubmit re-enqueues a task that should retry after a failure.
	Resubmit func(spec types.TaskSpec)
}

// TaskLedger is the owner-side task-state ledger (DESIGN.md §13): the
// executor stamps RUNNING and terminal transitions into it instead of
// paying a synchronous control-plane write per transition. TransitionRetry
// folds the retry count bump and the PENDING reset into one sequenced
// delta — the old two-RPC sequence (RecordTaskRetry, then SetTaskStatus)
// had a crash window between them that burned a retry attempt without
// ever rescheduling the task. lifetime.TaskLedger is the implementation.
type TaskLedger interface {
	ClockNs() int64
	Transition(id types.TaskID, status types.TaskStatus, worker types.WorkerID, errMsg string) bool
	TransitionAt(id types.TaskID, status types.TaskStatus, worker types.WorkerID, errMsg string, atNs int64) bool
	TransitionRetry(id types.TaskID, maxRetries int) (int, bool)
}

// Executor runs task specs against a function registry.
type Executor struct {
	node    types.NodeID
	ctrl    gcs.API
	reg     *core.Registry
	backend core.Backend
	hooks   Hooks
	ledger  TaskLedger

	active   atomic.Int64
	executed atomic.Int64
	failed   atomic.Int64
	inlined  atomic.Int64
}

// NewExecutor wires an executor. backend is the node's core.Backend, used
// to build TaskContexts so tasks can submit subtasks.
func NewExecutor(node types.NodeID, ctrl gcs.API, reg *core.Registry, backend core.Backend, hooks Hooks) *Executor {
	return &Executor{node: node, ctrl: ctrl, reg: reg, backend: backend, hooks: hooks}
}

// SetLedger wires the owner-side task ledger; nil keeps the legacy
// synchronous control-plane writes. Call before the first Execute.
func (e *Executor) SetLedger(l TaskLedger) { e.ledger = l }

// Active returns the number of currently executing tasks.
func (e *Executor) Active() int64 { return e.active.Load() }

// Executed returns the cumulative count of finished executions.
func (e *Executor) Executed() int64 { return e.executed.Load() }

// Failed returns the cumulative count of failed executions.
func (e *Executor) Failed() int64 { return e.failed.Load() }

// Inlined returns the cumulative count of inline executions.
func (e *Executor) Inlined() int64 { return e.inlined.Load() }

// ExecuteInline runs one task synchronously on the caller's goroutine (the
// inline dispatch path, DESIGN.md §15). Execution semantics — RUNNING and
// terminal ledger stamps, output puts, retry and failure handling, panic
// isolation, worker lending through the block hook — are exactly Execute's;
// only the calling convention differs (no dedicated goroutine, and ctx
// carries the inline depth for child submissions to trampoline on).
func (e *Executor) ExecuteInline(ctx context.Context, spec types.TaskSpec, args [][]byte) {
	e.inlined.Add(1)
	e.Execute(ctx, spec, args)
}

// workerIDFor derives a stable pseudo worker identity for profiling.
func workerIDFor(spec types.TaskSpec) types.WorkerID {
	return types.WorkerID(spec.ID)
}

// Execute runs one task to completion: invoke the function, store returns,
// and record terminal status. args holds the resolved bytes for every
// argument (references already dereferenced by the scheduler). Execute is
// called on its own goroutine by the local scheduler.
func (e *Executor) Execute(ctx context.Context, spec types.TaskSpec, args [][]byte) {
	e.active.Add(1)
	defer e.active.Add(-1)
	wid := workerIDFor(spec)
	if e.ledger != nil {
		e.ledger.Transition(spec.ID, types.TaskRunning, wid, "")
	} else {
		e.ctrl.SetTaskStatus(spec.ID, types.TaskRunning, e.node, wid, "")
	}

	rets, err := e.invoke(ctx, spec, args)
	if err != nil {
		e.fail(spec, wid, err)
		return
	}
	if len(rets) != spec.NumReturns {
		e.fail(spec, wid, fmt.Errorf("function %s returned %d values, declared %d", spec.Function, len(rets), spec.NumReturns))
		return
	}
	// Capture the finish instant before storing outputs: the first Put can
	// unblock a consumer, and a consumer's recorded start must never
	// precede its producer's recorded finish. The status transition itself
	// still publishes only after every output is durable. With a ledger
	// the instant comes off the local cluster clock — no NowNs round trip.
	var finishNs int64
	if e.ledger != nil {
		finishNs = e.ledger.ClockNs()
	} else {
		finishNs = e.ctrl.NowNs()
	}
	for i, data := range rets {
		if data == nil {
			data = codec.MustEncode(nil)
		}
		if perr := e.backend.PutObject(spec.ReturnID(i), data); perr != nil {
			e.fail(spec, wid, fmt.Errorf("storing return %d: %w", i, perr))
			return
		}
	}
	e.executed.Add(1)
	if e.ledger != nil {
		e.ledger.TransitionAt(spec.ID, types.TaskFinished, wid, "", finishNs)
	} else {
		e.ctrl.SetTaskStatusAt(spec.ID, types.TaskFinished, e.node, wid, "", finishNs)
	}
}

// invoke runs the function with panic isolation: a panicking task must not
// take down the node (R6), so panics convert to task failures.
func (e *Executor) invoke(ctx context.Context, spec types.TaskSpec, args [][]byte) (rets [][]byte, err error) {
	fn, ok := e.reg.Lookup(spec.Function)
	if !ok {
		return nil, fmt.Errorf("function %q not registered on %v", spec.Function, e.node)
	}
	defer func() {
		if r := recover(); r != nil {
			rets, err = nil, fmt.Errorf("task panicked: %v", r)
		}
	}()
	blockHook := func(blocked bool) {
		if e.hooks.OnBlocked != nil {
			e.hooks.OnBlocked(spec, blocked)
		}
	}
	tc := core.NewTaskContext(ctx, e.backend, spec, blockHook)
	return fn(tc, args)
}

// fail records a terminal failure or schedules a retry. On terminal
// failure, error payloads are stored under every return object so that
// blocked Gets observe the failure (instead of hanging).
func (e *Executor) fail(spec types.TaskSpec, wid types.WorkerID, taskErr error) {
	if e.ledger != nil {
		retries, retrying := e.ledger.TransitionRetry(spec.ID, spec.MaxRetries)
		if retries < 0 {
			// Ownership moved out from under the execution (a transfer
			// after a false-positive death verdict): the successor re-runs
			// the task, and any stamp from this tenure would be a zombie
			// write the fence consumes anyway.
			return
		}
		if retrying && e.hooks.Resubmit != nil {
			e.ctrl.LogEvent(types.Event{
				Kind: "retry", Task: spec.ID, Node: e.node, Worker: wid,
				Detail: fmt.Sprintf("attempt %d/%d: %v", retries, spec.MaxRetries, taskErr),
			})
			e.hooks.Resubmit(spec)
			return
		}
		e.failed.Add(1)
		for i := 0; i < spec.NumReturns; i++ {
			// Best effort: the store may itself be failing.
			_ = e.backend.PutObject(spec.ReturnID(i), codec.EncodeError(taskErr.Error()))
		}
		e.ledger.Transition(spec.ID, types.TaskFailed, wid, taskErr.Error())
		return
	}
	retries := e.ctrl.RecordTaskRetry(spec.ID)
	if retries <= spec.MaxRetries && e.hooks.Resubmit != nil {
		e.ctrl.LogEvent(types.Event{
			Kind: "retry", Task: spec.ID, Node: e.node, Worker: wid,
			Detail: fmt.Sprintf("attempt %d/%d: %v", retries, spec.MaxRetries, taskErr),
		})
		e.ctrl.SetTaskStatus(spec.ID, types.TaskPending, e.node, wid, taskErr.Error())
		e.hooks.Resubmit(spec)
		return
	}
	e.failed.Add(1)
	for i := 0; i < spec.NumReturns; i++ {
		// Best effort: the store may itself be failing.
		_ = e.backend.PutObject(spec.ReturnID(i), codec.EncodeError(taskErr.Error()))
	}
	e.ctrl.SetTaskStatus(spec.ID, types.TaskFailed, e.node, wid, taskErr.Error())
}
