package profile

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/types"
)

// TestChromeExportGolden pins the exact trace-event JSON for a
// hand-constructed timeline: one finished task plus one harvested
// data-plane span correlated to it. Any byte-level drift in the export
// format (field order, id shortening, args) fails here before it breaks
// Perfetto loading.
func TestChromeExportGolden(t *testing.T) {
	task := types.TaskID{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	node := types.NodeID{0x01, 0x02, 0x03, 0x04, 0x05, 0x06}
	obj := types.ObjectID{0xfe, 0xed, 0xfa, 0xce, 0xfe, 0xed}
	tl := &Timeline{
		Spans: []Span{{
			Task: task, Function: "f", Node: node, Status: types.TaskFinished,
			Trace:       0xabc,
			SubmittedNs: 1_000_000, ScheduledNs: 2_000_000,
			StartedNs: 3_000_000, FinishedNs: 5_000_000,
		}},
		Data: []metrics.SpanRecord{{
			Name: "lifetime.pull.chunk", Cat: "pull",
			Task: task.Hex(), Object: obj.Hex(), Trace: 0xabc,
			Node: node.Hex(), StartNs: 3_500_000, DurNs: 200_000,
			Detail: "chunk 0",
		}},
	}
	var buf bytes.Buffer
	if err := tl.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"f [queued]","cat":"queue","ph":"X","ts":1000,"dur":1000,"pid":"node-010203040506","tid":"task-aabbccddeeff"},` +
		`{"name":"f","cat":"exec","ph":"X","ts":3000,"dur":2000,"pid":"node-010203040506","tid":"task-aabbccddeeff","args":{"trace":"0000000000000abc"}},` +
		`{"name":"lifetime.pull.chunk","cat":"pull","ph":"X","ts":3500,"dur":200,"pid":"node-010203040506","tid":"task-aabbccddeeff","args":{"detail":"chunk 0","object":"obj-feedfacefeed","trace":"0000000000000abc"}}` +
		"]}\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestSummarizeEdgeCases checks that unfinished spans contribute nothing
// to the means and failed spans are counted without polluting them.
func TestSummarizeEdgeCases(t *testing.T) {
	tl := &Timeline{Spans: []Span{
		{Function: "f", Status: types.TaskFinished, SubmittedNs: 100, ScheduledNs: 200, StartedNs: 300, FinishedNs: 700},
		{Function: "f", Status: types.TaskFailed, SubmittedNs: 100},
		{Function: "f", Status: types.TaskRunning, SubmittedNs: 100, ScheduledNs: 150, StartedNs: 160},
	}}
	sums := tl.Summarize()
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	s := sums[0]
	if s.Count != 1 || s.Failed != 1 {
		t.Fatalf("count=%d failed=%d, want 1/1", s.Count, s.Failed)
	}
	if s.MeanExec != 400 || s.MeanQueue != 100 || s.MeanE2E != 600 {
		t.Fatalf("means exec=%v queue=%v e2e=%v", s.MeanExec, s.MeanQueue, s.MeanE2E)
	}
}

// TestCriticalPathIgnoresUnfinished checks that running and failed-
// without-finish spans do not stretch the makespan.
func TestCriticalPathIgnoresUnfinished(t *testing.T) {
	tl := &Timeline{Spans: []Span{
		{Status: types.TaskFinished, SubmittedNs: 1000, FinishedNs: 3000},
		{Status: types.TaskRunning, SubmittedNs: 1, StartedNs: 2}, // no finish: ignored
	}}
	if cp := tl.CriticalPathNs(); cp != 2000 {
		t.Fatalf("critical path = %d, want 2000", cp)
	}
	empty := &Timeline{}
	if empty.CriticalPathNs() != 0 {
		t.Fatal("empty timeline should have zero critical path")
	}
}

// TestBuildFullMergesDataPlaneSpans runs a real workload, publishes a
// data-plane span that names only an object, and checks BuildFull
// correlates it to the producing task and its trace ID via the object
// table's lineage edge.
func TestBuildFullMergesDataPlaneSpans(t *testing.T) {
	reg := core.NewRegistry()
	work := core.Register1(reg, "work", func(tc *core.TaskContext, n int) (int, error) {
		return n * 2, nil
	})
	c, err := cluster.New(cluster.Config{Nodes: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d := c.Driver()
	r, err := work.Remote(d, 21)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := d.Get(ctx, r.Untyped()); err != nil {
		t.Fatal(err)
	}

	// Lineage edges ride the owner's async ledger (DESIGN.md §13): the
	// object record can exist (from the refcount flush) before its Producer
	// edge lands, so poll until the edge is visible.
	var sink gcs.TelemetrySink = c.Ctrl
	var produced types.ObjectInfo
	settle := time.Now().Add(10 * time.Second)
	for produced.Producer.IsNil() {
		for _, o := range c.Ctrl.Objects() {
			if !o.Producer.IsNil() {
				produced = o
				break
			}
		}
		if produced.Producer.IsNil() {
			if time.Now().After(settle) {
				t.Fatal("no produced object found")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	sink.PublishTelemetry(c.Node(0).ID(), metrics.Snapshot{}, []metrics.SpanRecord{{
		Name: "test.pull.chunk", Cat: "pull",
		Object: produced.ID.Hex(), Node: c.Node(0).ID().Hex(),
		StartNs: c.Ctrl.NowNs(), DurNs: 1000,
	}})

	tl := BuildFull(c.Ctrl)
	var merged *metrics.SpanRecord
	for i := range tl.Data {
		if tl.Data[i].Name == "test.pull.chunk" {
			merged = &tl.Data[i]
			break
		}
	}
	if merged == nil {
		t.Fatal("published span missing from BuildFull timeline")
	}
	if merged.Task != produced.Producer.Hex() {
		t.Fatalf("span task = %q, want producer %q", merged.Task, produced.Producer.Hex())
	}
	var wantTrace uint64
	for _, s := range tl.Spans {
		if s.Task == produced.Producer {
			wantTrace = s.Trace
		}
	}
	if wantTrace == 0 {
		t.Fatal("producer task has no trace ID")
	}
	if merged.Trace != wantTrace {
		t.Fatalf("span trace = %x, want %x", merged.Trace, wantTrace)
	}
}
