package profile

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gcs"
	"repro/internal/types"
)

// runWorkload executes a few tasks and returns the control plane.
func runWorkload(t *testing.T) gcs.API {
	t.Helper()
	reg := core.NewRegistry()
	work := core.Register1(reg, "work", func(tc *core.TaskContext, ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	c, err := cluster.New(cluster.Config{Nodes: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	d := c.Driver()
	var refs []core.ObjectRef
	for i := 0; i < 5; i++ {
		r, err := work.Remote(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r.Untyped())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := d.Wait(ctx, refs, len(refs), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	// Owner-side futures resolve before the FINISHED deltas flush to the
	// follower table (DESIGN.md §13); profiling reads the table, so let it
	// catch up before building timelines.
	awaitFinished(t, c.Ctrl, len(refs))
	return c.Ctrl
}

// awaitFinished waits until n tasks read FINISHED from the follower table.
func awaitFinished(t *testing.T, ctrl gcs.API, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := 0
		for _, ts := range ctrl.Tasks() {
			if ts.Status == types.TaskFinished {
				done++
			}
		}
		if done >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d tasks FINISHED in the follower table", done, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBuildTimeline(t *testing.T) {
	ctrl := runWorkload(t)
	tl := Build(ctrl)
	if len(tl.Spans) != 5 {
		t.Fatalf("spans = %d", len(tl.Spans))
	}
	for _, s := range tl.Spans {
		if s.Status != types.TaskFinished {
			t.Fatalf("span %v status %v", s.Task, s.Status)
		}
		if s.ExecTime() < 2*time.Millisecond {
			t.Fatalf("exec time %v below the 2ms sleep", s.ExecTime())
		}
		if s.EndToEnd() < s.ExecTime() {
			t.Fatal("end-to-end below exec time")
		}
		if s.QueueDelay() < 0 || s.StartDelay() < 0 {
			t.Fatal("negative delay")
		}
	}
	if len(tl.Events) == 0 {
		t.Fatal("no events recorded")
	}
}

func TestSummarize(t *testing.T) {
	ctrl := runWorkload(t)
	tl := Build(ctrl)
	sums := tl.Summarize()
	if len(sums) != 1 || sums[0].Function != "work" {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Count != 5 || sums[0].Failed != 0 {
		t.Fatalf("summary = %+v", sums[0])
	}
	if sums[0].MeanExec < 2*time.Millisecond {
		t.Fatalf("mean exec %v", sums[0].MeanExec)
	}
}

func TestCriticalPath(t *testing.T) {
	ctrl := runWorkload(t)
	tl := Build(ctrl)
	cp := tl.CriticalPathNs()
	if cp < int64(2*time.Millisecond) {
		t.Fatalf("critical path %v", time.Duration(cp))
	}
}

func TestChromeTraceExport(t *testing.T) {
	ctrl := runWorkload(t)
	tl := Build(ctrl)
	var buf bytes.Buffer
	if err := tl.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) < 5 {
		t.Fatalf("trace events = %d", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
}

func TestRenderText(t *testing.T) {
	ctrl := runWorkload(t)
	tl := Build(ctrl)
	var buf bytes.Buffer
	tl.RenderText(&buf)
	out := buf.String()
	for _, want := range []string{"tasks: 5", "work", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyTimeline(t *testing.T) {
	ctrl := gcs.NewStore(1)
	tl := Build(ctrl)
	if tl.CriticalPathNs() != 0 || len(tl.Summarize()) != 0 {
		t.Fatal("empty control plane should yield empty timeline")
	}
	var buf bytes.Buffer
	if err := tl.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
