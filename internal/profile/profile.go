// Package profile implements the debugging and profiling requirement (R7):
// because all execution state lives in the centralized control plane, a
// task timeline can be reconstructed after the fact from the task table and
// event log alone — no instrumentation of user code. The package computes
// per-task span breakdowns, aggregate statistics, and exports Chrome
// trace-event JSON for visual inspection.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/types"
)

// Span is one task's reconstructed lifecycle.
type Span struct {
	Task     types.TaskID
	Function string
	Node     types.NodeID
	Status   types.TaskStatus
	// Trace is the driver session's trace ID (TaskSpec.TraceID); zero for
	// untraced submissions.
	Trace uint64

	SubmittedNs int64
	ScheduledNs int64
	StartedNs   int64
	FinishedNs  int64
}

// QueueDelay is submit -> scheduled (time spent waiting for deps+resources).
func (s *Span) QueueDelay() time.Duration {
	if s.ScheduledNs == 0 {
		return 0
	}
	return time.Duration(s.ScheduledNs - s.SubmittedNs)
}

// StartDelay is scheduled -> running (dispatch overhead).
func (s *Span) StartDelay() time.Duration {
	if s.StartedNs == 0 || s.ScheduledNs == 0 {
		return 0
	}
	return time.Duration(s.StartedNs - s.ScheduledNs)
}

// ExecTime is running -> finished.
func (s *Span) ExecTime() time.Duration {
	if s.FinishedNs == 0 || s.StartedNs == 0 {
		return 0
	}
	return time.Duration(s.FinishedNs - s.StartedNs)
}

// EndToEnd is submit -> finished.
func (s *Span) EndToEnd() time.Duration {
	if s.FinishedNs == 0 {
		return 0
	}
	return time.Duration(s.FinishedNs - s.SubmittedNs)
}

// Timeline is the reconstructed execution history of a cluster.
type Timeline struct {
	Spans  []Span
	Events []types.Event
	// Data holds harvested data-plane spans (spill, restore, pull chunks,
	// drain migration, exec) the task table cannot see — shipped to the GCS
	// by node heartbeats and merged in by BuildFull.
	Data []metrics.SpanRecord
}

// Build reconstructs the timeline from the control plane.
func Build(ctrl gcs.API) *Timeline {
	tasks := ctrl.Tasks()
	tl := &Timeline{Events: ctrl.Events()}
	for _, t := range tasks {
		tl.Spans = append(tl.Spans, Span{
			Task:        t.Spec.ID,
			Function:    t.Spec.Function,
			Node:        t.Node,
			Status:      t.Status,
			Trace:       t.Spec.TraceID,
			SubmittedNs: t.SubmittedNs,
			ScheduledNs: t.ScheduledNs,
			StartedNs:   t.StartedNs,
			FinishedNs:  t.FinishedNs,
		})
	}
	sort.Slice(tl.Spans, func(i, j int) bool { return tl.Spans[i].SubmittedNs < tl.Spans[j].SubmittedNs })
	return tl
}

// BuildFull reconstructs the timeline and, when the control plane stores
// telemetry (gcs.TelemetrySink), merges the harvested data-plane spans:
// spills, restores, pull chunks, drain migrations, executions. Spans that
// carry only an object ID are correlated to the task that produced the
// object via the object table's lineage edge, so one task's whole
// submit→park→prefetch→schedule→exec→put chain — including I/O the task
// table cannot see — stitches into a single trace.
func BuildFull(ctrl gcs.API) *Timeline {
	tl := Build(ctrl)
	sink, ok := ctrl.(gcs.TelemetrySink)
	if !ok {
		return tl
	}
	spans := sink.Spans()
	if len(spans) == 0 {
		return tl
	}
	// Object hex -> (producer task hex, trace) from the object table.
	type lineage struct {
		task  string
		trace uint64
	}
	traces := make(map[string]uint64, len(tl.Spans))
	for _, s := range tl.Spans {
		traces[s.Task.Hex()] = s.Trace
	}
	byObject := make(map[string]lineage)
	for _, o := range ctrl.Objects() {
		if o.Producer.IsNil() {
			continue
		}
		t := o.Producer.Hex()
		byObject[o.ID.Hex()] = lineage{task: t, trace: traces[t]}
	}
	for i := range spans {
		sp := &spans[i]
		if sp.Task == "" && sp.Object != "" {
			if l, ok := byObject[sp.Object]; ok {
				sp.Task = l.task
				if sp.Trace == 0 {
					sp.Trace = l.trace
				}
			}
		}
		if sp.Trace == 0 && sp.Task != "" {
			sp.Trace = traces[sp.Task]
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartNs < spans[j].StartNs })
	tl.Data = spans
	return tl
}

// Summary aggregates per-function statistics.
type Summary struct {
	Function  string
	Count     int
	Failed    int
	MeanExec  time.Duration
	MeanE2E   time.Duration
	MeanQueue time.Duration
}

// Summarize groups finished spans by function.
func (tl *Timeline) Summarize() []Summary {
	agg := make(map[string]*Summary)
	sums := make(map[string][3]time.Duration)
	for _, s := range tl.Spans {
		a, ok := agg[s.Function]
		if !ok {
			a = &Summary{Function: s.Function}
			agg[s.Function] = a
		}
		if s.Status == types.TaskFailed {
			a.Failed++
		}
		if s.Status != types.TaskFinished {
			continue
		}
		a.Count++
		acc := sums[s.Function]
		acc[0] += s.ExecTime()
		acc[1] += s.EndToEnd()
		acc[2] += s.QueueDelay()
		sums[s.Function] = acc
	}
	var out []Summary
	for name, a := range agg {
		if a.Count > 0 {
			acc := sums[name]
			a.MeanExec = acc[0] / time.Duration(a.Count)
			a.MeanE2E = acc[1] / time.Duration(a.Count)
			a.MeanQueue = acc[2] / time.Duration(a.Count)
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Function < out[j].Function })
	return out
}

// CriticalPathNs estimates the makespan: max finish - min submit over
// finished spans.
func (tl *Timeline) CriticalPathNs() int64 {
	var minSubmit, maxFinish int64
	first := true
	for _, s := range tl.Spans {
		if s.FinishedNs == 0 {
			continue
		}
		if first || s.SubmittedNs < minSubmit {
			minSubmit = s.SubmittedNs
		}
		if s.FinishedNs > maxFinish {
			maxFinish = s.FinishedNs
		}
		first = false
	}
	if first {
		return 0
	}
	return maxFinish - minSubmit
}

// chromeEvent is one Chrome trace-event record ("X" complete events).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	Pid  string         `json:"pid"`
	Tid  string         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// shortID compresses a full hex ID to the same 12-char prefix the types
// package uses for String(), so data-plane spans land on the same Perfetto
// track as the task-table spans they correlate with.
func shortID(prefix, hexID string) string {
	if len(hexID) > 12 {
		hexID = hexID[:12]
	}
	return prefix + "-" + hexID
}

// ExportChromeTrace writes the timeline in Chrome's trace-event JSON format
// (load via chrome://tracing or Perfetto). Each node is a "process"; each
// task renders its queue and exec phases.
func (tl *Timeline) ExportChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	for _, s := range tl.Spans {
		if s.FinishedNs == 0 {
			continue
		}
		pid := s.Node.String()
		tid := s.Task.String()
		if s.ScheduledNs > s.SubmittedNs {
			evs = append(evs, chromeEvent{
				Name: s.Function + " [queued]", Cat: "queue", Ph: "X",
				Ts: s.SubmittedNs / 1e3, Dur: (s.ScheduledNs - s.SubmittedNs) / 1e3,
				Pid: pid, Tid: tid,
			})
		}
		if s.StartedNs > 0 {
			ev := chromeEvent{
				Name: s.Function, Cat: "exec", Ph: "X",
				Ts: s.StartedNs / 1e3, Dur: (s.FinishedNs - s.StartedNs) / 1e3,
				Pid: pid, Tid: tid,
			}
			if s.Trace != 0 {
				ev.Args = map[string]any{"trace": fmt.Sprintf("%016x", s.Trace)}
			}
			evs = append(evs, ev)
		}
	}
	// Harvested data-plane spans (BuildFull): grouped per source node, on
	// the owning task's track when lineage correlation found one, else on
	// a per-object track.
	for _, d := range tl.Data {
		tid := "dataplane"
		switch {
		case d.Task != "":
			tid = shortID("task", d.Task)
		case d.Object != "":
			tid = shortID("obj", d.Object)
		}
		args := make(map[string]any)
		if d.Trace != 0 {
			args["trace"] = fmt.Sprintf("%016x", d.Trace)
		}
		if d.Object != "" {
			args["object"] = shortID("obj", d.Object)
		}
		if d.Detail != "" {
			args["detail"] = d.Detail
		}
		if len(args) == 0 {
			args = nil
		}
		evs = append(evs, chromeEvent{
			Name: d.Name, Cat: d.Cat, Ph: "X",
			Ts: d.StartNs / 1e3, Dur: d.DurNs / 1e3,
			Pid: shortID("node", d.Node), Tid: tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs})
}

// RenderText writes a human-readable profile report.
func (tl *Timeline) RenderText(w io.Writer) {
	fmt.Fprintf(w, "tasks: %d, events: %d, makespan: %v\n",
		len(tl.Spans), len(tl.Events), time.Duration(tl.CriticalPathNs()))
	for _, s := range tl.Summarize() {
		fmt.Fprintf(w, "  %-24s n=%-6d failed=%-4d exec=%-12v queue=%-12v e2e=%v\n",
			s.Function, s.Count, s.Failed, s.MeanExec, s.MeanQueue, s.MeanE2E)
	}
}
