// Package objectstore implements the per-node in-memory object store from
// the paper's Figure 3 ("Shared Memory / Object Store"). Workers on a node
// share one store; objects are immutable byte blobs keyed by ObjectID.
// Because workers here are goroutines in one address space, an in-process
// store is the faithful analogue of the paper's shared-memory store; the
// inter-node pull protocol lives in transfer.go.
package objectstore

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gcs"
	"repro/internal/types"
)

// ErrStoreFull is returned when a Put cannot fit even after evicting every
// unpinned object.
var ErrStoreFull = errors.New("objectstore: store full")

type entry struct {
	data   []byte
	pinned int
	seq    uint64 // LRU clock: last access sequence number
}

// Store holds this node's objects. All methods are safe for concurrent use.
type Store struct {
	node types.NodeID
	ctrl gcs.API

	mu       sync.Mutex
	objects  map[types.ObjectID]*entry
	waiters  map[types.ObjectID][]chan struct{}
	capacity int64 // bytes; 0 = unlimited
	used     int64
	clock    uint64
	failed   bool
}

// ErrFailed is returned by Put after the store has crashed (Fail).
var ErrFailed = errors.New("objectstore: store failed")

// New creates a store for node, registering locations with ctrl. capacity
// of 0 means unlimited.
func New(node types.NodeID, ctrl gcs.API, capacity int64) *Store {
	return &Store{
		node:     node,
		ctrl:     ctrl,
		objects:  make(map[types.ObjectID]*entry),
		waiters:  make(map[types.ObjectID][]chan struct{}),
		capacity: capacity,
	}
}

// Node returns the owning node's ID.
func (s *Store) Node() types.NodeID { return s.node }

// Put stores data under id, records the location in the control plane, and
// wakes local waiters. Storing an already-present object is a no-op (objects
// are immutable, so the bytes are identical by construction).
func (s *Store) Put(id types.ObjectID, data []byte) error {
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return ErrFailed
	}
	if _, exists := s.objects[id]; exists {
		s.mu.Unlock()
		return nil
	}
	size := int64(len(data))
	if s.capacity > 0 && s.used+size > s.capacity {
		if !s.evictLocked(s.used + size - s.capacity) {
			s.mu.Unlock()
			return fmt.Errorf("%w: need %d bytes, capacity %d", ErrStoreFull, size, s.capacity)
		}
	}
	s.clock++
	s.objects[id] = &entry{data: data, seq: s.clock}
	s.used += size
	ws := s.waiters[id]
	delete(s.waiters, id)
	s.mu.Unlock()

	s.ctrl.AddObjectLocation(id, s.node, size)
	for _, w := range ws {
		close(w)
	}
	return nil
}

// evictLocked frees at least need bytes of unpinned objects, LRU-first.
// It reports whether enough space was reclaimed. Caller holds s.mu.
func (s *Store) evictLocked(need int64) bool {
	for need > 0 {
		var victim types.ObjectID
		var victimEntry *entry
		for id, e := range s.objects {
			if e.pinned > 0 {
				continue
			}
			if victimEntry == nil || e.seq < victimEntry.seq {
				victim, victimEntry = id, e
			}
		}
		if victimEntry == nil {
			return false
		}
		size := int64(len(victimEntry.data))
		delete(s.objects, victim)
		s.used -= size
		need -= size
		// Control-plane update outside the lock would be cleaner but Put
		// holds the lock across eviction; the control plane is lock-free
		// with respect to this mutex, so this is deadlock-safe.
		s.ctrl.RemoveObjectLocation(victim, s.node)
	}
	return true
}

// Get returns the object's bytes if locally present.
func (s *Store) Get(id types.ObjectID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	s.clock++
	e.seq = s.clock
	return e.data, true
}

// Contains reports local presence without touching LRU state.
func (s *Store) Contains(id types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[id]
	return ok
}

// Pin prevents eviction of id while a worker uses its buffer.
func (s *Store) Pin(id types.ObjectID) {
	s.mu.Lock()
	if e, ok := s.objects[id]; ok {
		e.pinned++
	}
	s.mu.Unlock()
}

// Unpin releases a Pin.
func (s *Store) Unpin(id types.ObjectID) {
	s.mu.Lock()
	if e, ok := s.objects[id]; ok && e.pinned > 0 {
		e.pinned--
	}
	s.mu.Unlock()
}

// WaitChan returns a channel closed when id becomes locally present. If the
// object is already present the returned channel is closed immediately.
func (s *Store) WaitChan(id types.ObjectID) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{})
	if _, ok := s.objects[id]; ok {
		close(ch)
		return ch
	}
	s.waiters[id] = append(s.waiters[id], ch)
	return ch
}

// Delete removes id locally and deregisters the location.
func (s *Store) Delete(id types.ObjectID) bool {
	s.mu.Lock()
	e, ok := s.objects[id]
	if ok {
		delete(s.objects, id)
		s.used -= int64(len(e.data))
	}
	s.mu.Unlock()
	if ok {
		s.ctrl.RemoveObjectLocation(id, s.node)
	}
	return ok
}

// Fail simulates the node's memory vanishing in a crash: every object is
// dropped and all future Puts fail, so in-flight tasks on a killed node
// cannot resurrect locations for a store that no longer exists (R6 failure
// injection).
func (s *Store) Fail() {
	s.mu.Lock()
	s.failed = true
	s.mu.Unlock()
	s.DropAll()
}

// DropAll removes every object, as when a node's memory is lost in a crash
// (failure injection, R6). Locations are deregistered so the control plane
// marks sole copies Lost.
func (s *Store) DropAll() {
	s.mu.Lock()
	ids := make([]types.ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	s.objects = make(map[types.ObjectID]*entry)
	s.used = 0
	s.mu.Unlock()
	for _, id := range ids {
		s.ctrl.RemoveObjectLocation(id, s.node)
	}
}

// Used returns resident bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Count returns the number of resident objects.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}
