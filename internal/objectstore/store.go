// Package objectstore implements the per-node in-memory object store from
// the paper's Figure 3 ("Shared Memory / Object Store"). Workers on a node
// share one store; objects are immutable byte blobs keyed by ObjectID.
// Because workers here are goroutines in one address space, an in-process
// store is the faithful analogue of the paper's shared-memory store; the
// inter-node pull protocol lives in transfer.go.
//
// Under memory pressure the store cooperates with the lifetime subsystem
// (internal/lifetime): referenced-but-cold objects spill to a disk tier
// instead of being dropped, and Get transparently restores them, so a
// working set larger than memory degrades gracefully instead of failing
// with ErrStoreFull.
//
// Concurrency model (DESIGN.md §8): every entry carries a small state
// machine (resident / spilling / spilled / restoring / dropping), and the
// store mutex protects only state transitions and accounting — never tier
// I/O, never the refcount oracle, never control-plane RPCs. A disk write,
// a restore read, or a GCS call that blocks for seconds (a shard mid-
// failover) therefore stalls only the operation that needs it; Get and
// Contains of every other object stay at memory speed. Control-plane
// location updates flow through a per-object publish pipeline that keeps
// them ordered without ever being issued under the lock, and tier-file
// removals are fenced against in-flight tier writes of the same object.
package objectstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/types"
)

// ErrStoreFull is returned when a Put cannot fit even after evicting or
// spilling every unpinned object.
var ErrStoreFull = errors.New("objectstore: store full")

// SpillTier is the disk tier the store spills cold objects to.
// lifetime.DiskSpiller is the production implementation; tests may fake it.
// Implementations must tolerate Remove of an absent object and overwriting
// Spill of a present one, and must be safe for concurrent use: the store
// calls them outside its mutex.
type SpillTier interface {
	Spill(id types.ObjectID, data []byte) error
	Restore(id types.ObjectID) ([]byte, error)
	Remove(id types.ObjectID) error
}

// RangeReader is optionally implemented by spill tiers that can serve a
// byte range without reading the whole object (DiskSpiller can). GetRange
// uses it so a peer chunk-pulling a large spilled object costs O(range)
// disk reads per chunk instead of O(object).
type RangeReader interface {
	RestoreRange(id types.ObjectID, offset, length int64) ([]byte, error)
}

// BoundedSpiller is optionally implemented by spill tiers whose Spill may
// consult a control-plane oracle (DiskSpiller's budget eviction probes the
// refcount oracle before reclaiming files). SpillBounded must never issue
// such probes: it writes the object only if it fits the tier's budget
// as-is and fails fast otherwise. The restore re-admission path uses it so
// a Get's latency stays "disk, never control plane" even when the disk
// budget is exhausted during a failover.
type BoundedSpiller interface {
	SpillBounded(id types.ObjectID, data []byte) error
}

// entryState is one node of the per-entry state machine. Transitions
// happen only under Store.mu; the I/O that separates paired states
// (spilling→spilled, restoring→resident) runs outside the lock.
type entryState uint8

const (
	// stateResident: bytes in memory, entry linked on the LRU list.
	stateResident entryState = iota
	// stateSpilling: claimed by an evictor; the refcount-oracle verdict
	// and the tier write (or the drop) are in flight. Bytes are still in
	// memory and still count toward used; Get serves them.
	stateSpilling
	// stateSpilled: bytes live on the spill tier only.
	stateSpilled
	// stateRestoring: a single-flight tier read is in flight; concurrent
	// Gets wait on the flight instead of each re-reading the file.
	stateRestoring
	// stateDropping: removed from the objects map; in-flight transitions
	// that still hold the entry pointer see this (or fail the map identity
	// check) and finalize as no-ops.
	stateDropping
)

// restoreFlight is the single-flight handle for one in-flight restore.
// done is closed as soon as data/err are set — before any re-admission
// bookkeeping — so waiters unblock at disk-read latency, not disk-read
// plus eviction latency.
type restoreFlight struct {
	done chan struct{}
	data []byte
	err  error
}

type entry struct {
	id     types.ObjectID
	data   []byte
	size   int64 // == len(data) when resident; survives data=nil on spill
	pinned int
	state  entryState

	// restore is non-nil exactly while state == stateRestoring.
	restore *restoreFlight

	// Intrusive LRU linkage, valid while the entry is on the list
	// (state == stateResident). Most recently used at front.
	prev, next *entry
}

// lruList is an intrusive doubly-linked list over resident entries with a
// sentinel head; maintaining it on touch makes victim selection O(1) per
// victim instead of the old O(n) coldest-scan (O(n²) eviction storms).
type lruList struct {
	head entry // sentinel: head.next = MRU, head.prev = LRU
	len  int
}

func (l *lruList) init() {
	l.head.prev, l.head.next = &l.head, &l.head
	l.len = 0
}

func (l *lruList) pushFront(e *entry) {
	e.prev, e.next = &l.head, l.head.next
	l.head.next.prev = e
	l.head.next = e
	l.len++
}

func (l *lruList) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.len--
}

func (l *lruList) moveFront(e *entry) {
	l.remove(e)
	l.pushFront(e)
}

// coldestUnpinned returns the least recently used unpinned entry, or nil.
// Pinned entries stay linked (they will be unpinned soon) and are skipped.
func (l *lruList) coldestUnpinned() *entry {
	for e := l.head.prev; e != &l.head; e = e.prev {
		if e.pinned == 0 {
			return e
		}
	}
	return nil
}

// pubOp is one queued control-plane call about an object.
type pubOp func(ctrl gcs.API)

// Store holds this node's objects. All methods are safe for concurrent use.
type Store struct {
	node types.NodeID
	ctrl gcs.API

	mu       sync.Mutex
	objects  map[types.ObjectID]*entry
	waiters  map[types.ObjectID][]chan struct{}
	lru      lruList
	capacity int64 // bytes; 0 = unlimited
	used     int64 // memory-resident bytes (includes stateSpilling entries)
	spilled  int64 // bytes on the spill tier (includes stateRestoring entries)
	failed   bool
	// dropGen counts DropAll generations: a goroutine holding a memory
	// reservation across an unlocked section must not give it back after a
	// wholesale counter reset has already discarded it.
	dropGen uint64

	// evictDone is signalled whenever an in-flight spill/drop finalizes or
	// an entry is removed, so an evictor that found no victim but knows
	// transitions are in flight can wait for freed bytes instead of
	// failing spuriously.
	evictDone *sync.Cond
	inflight  int // entries in stateSpilling

	// tierWrites counts in-flight tier writes per object; tierRemoveWant
	// marks objects whose file should be removed once the last write
	// lands; tierRemovals counts removal verdicts issued but not yet
	// executed, and the eviction claim path refuses to start a new spill
	// write of an id while one is pending. Together they fence Remove
	// against Spill of the same id in both directions (see
	// shouldRemoveTierLocked and makeRoomLocked).
	tierWrites     map[types.ObjectID]int
	tierRemoveWant map[types.ObjectID]bool
	tierRemovals   map[types.ObjectID]int

	// Per-object publish pipeline: control-plane calls are enqueued under
	// mu (so their order matches transition commit order) and executed
	// outside it by whichever goroutine holds the object's drain flag.
	pubq      map[types.ObjectID][]pubOp
	pubActive map[types.ObjectID]bool

	// tier, when non-nil, enables the disk spill path.
	tier SpillTier
	// referenced reports whether an object still has live references; nil
	// means unknown. With a spill tier attached, referenced objects spill
	// under pressure while garbage is dropped outright. It is a control-
	// plane RPC and is only ever called outside mu.
	referenced func(types.ObjectID) bool

	spills   int64
	restores int64

	// guard is the build-tag-gated pinned-buffer mutation detector: a no-op
	// in release builds, a checksum-at-Pin / verify-at-Unpin tripwire under
	// -tags storedebug (see store_guard_debug.go). Its hooks run under mu.
	guard pinGuard

	// obs holds pre-resolved instruments (SetObservability). All fields
	// are nil-safe: an un-instrumented store pays one nil check per site.
	obs storeObs
}

// storeObs bundles the store's instruments and tracer so hot paths touch
// pre-resolved pointers, never the registry.
type storeObs struct {
	puts, gets, misses *metrics.Counter
	drops              *metrics.Counter
	spillBytes         *metrics.Counter
	restoreBytes       *metrics.Counter
	spillNs            *metrics.Histogram
	restoreNs          *metrics.Histogram
	tracer             *metrics.Tracer
}

// ErrFailed is returned by Put after the store has crashed (Fail).
var ErrFailed = errors.New("objectstore: store failed")

// New creates a store for node, registering locations with ctrl. capacity
// of 0 means unlimited.
func New(node types.NodeID, ctrl gcs.API, capacity int64) *Store {
	s := &Store{
		node:           node,
		ctrl:           ctrl,
		objects:        make(map[types.ObjectID]*entry),
		waiters:        make(map[types.ObjectID][]chan struct{}),
		capacity:       capacity,
		tierWrites:     make(map[types.ObjectID]int),
		tierRemoveWant: make(map[types.ObjectID]bool),
		tierRemovals:   make(map[types.ObjectID]int),
		pubq:           make(map[types.ObjectID][]pubOp),
		pubActive:      make(map[types.ObjectID]bool),
	}
	s.lru.init()
	s.evictDone = sync.NewCond(&s.mu)
	return s
}

// SetObservability attaches a metrics registry and span tracer (either may
// be nil). Call before the store serves traffic. Gauges for residency are
// sampled at snapshot time via GaugeFunc — the store already tracks them
// and mirroring on every mutation would be wasted work.
func (s *Store) SetObservability(reg *metrics.Registry, tracer *metrics.Tracer) {
	s.obs = storeObs{
		puts:         reg.Counter("objectstore.puts"),
		gets:         reg.Counter("objectstore.gets"),
		misses:       reg.Counter("objectstore.get.misses"),
		drops:        reg.Counter("objectstore.drops"),
		spillBytes:   reg.Counter("objectstore.spill.bytes"),
		restoreBytes: reg.Counter("objectstore.restore.bytes"),
		spillNs:      reg.Histogram("objectstore.spill.ns"),
		restoreNs:    reg.Histogram("objectstore.restore.ns"),
		tracer:       tracer,
	}
	if reg != nil {
		reg.GaugeFunc("objectstore.used.bytes", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.used
		})
		reg.GaugeFunc("objectstore.spilled.bytes", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.spilled
		})
		reg.GaugeFunc("objectstore.objects", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.objects))
		})
		reg.GaugeFunc("objectstore.spills", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.spills
		})
		reg.GaugeFunc("objectstore.restores", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.restores
		})
	}
}

// Node returns the owning node's ID.
func (s *Store) Node() types.NodeID { return s.node }

// SetSpillTier attaches the disk spill tier. Call before the store is
// shared; typically at node construction.
func (s *Store) SetSpillTier(t SpillTier) {
	s.mu.Lock()
	s.tier = t
	s.mu.Unlock()
}

// SetRefChecker installs the liveness oracle consulted during eviction
// (typically a lookup of the object table's refcount). Call before the
// store is shared.
func (s *Store) SetRefChecker(fn func(types.ObjectID) bool) {
	s.mu.Lock()
	s.referenced = fn
	s.mu.Unlock()
}

// --- publish pipeline ---

// enqueuePublishLocked queues a control-plane call about id in transition
// commit order. Caller holds s.mu and must call drainPublishes(id) after
// releasing it iff the return value is true (it became the drainer).
func (s *Store) enqueuePublishLocked(id types.ObjectID, op pubOp) bool {
	s.pubq[id] = append(s.pubq[id], op)
	if s.pubActive[id] {
		return false
	}
	s.pubActive[id] = true
	return true
}

// drainPublishes executes id's queued control-plane calls FIFO, outside
// the lock. Exactly one drainer runs per object at a time, so calls about
// one object stay ordered even when the transitions that queued them
// raced; uncontended callers drain their own op synchronously, so Put and
// Delete keep their publish-before-return behaviour.
func (s *Store) drainPublishes(id types.ObjectID) {
	s.mu.Lock()
	for len(s.pubq[id]) > 0 {
		q := s.pubq[id]
		op := q[0]
		s.pubq[id] = q[1:]
		s.mu.Unlock()
		op(s.ctrl)
		s.mu.Lock()
	}
	delete(s.pubq, id)
	delete(s.pubActive, id)
	s.mu.Unlock()
}

// --- tier-file fencing ---

// shouldRemoveTierLocked reports whether the caller may remove id's spill
// file right now. It may not when a tier write of id is in flight (the
// removal is recorded and performed by the last write's finalizer) or when
// a live entry other than except still depends on the file. except is the
// caller's own entry during restore re-admission, which removes the file
// it is about to stop depending on. Caller holds s.mu.
func (s *Store) shouldRemoveTierLocked(id types.ObjectID, except *entry) bool {
	if s.tierWrites[id] > 0 {
		s.tierRemoveWant[id] = true
		return false
	}
	if e, ok := s.objects[id]; ok && e != except && e.state != stateResident {
		return false
	}
	return true
}

// finishTierWriteLocked retires one in-flight tier write of id and reports
// whether a deferred removal fell to this caller. Caller holds s.mu.
func (s *Store) finishTierWriteLocked(id types.ObjectID) (removeFile bool) {
	if n := s.tierWrites[id] - 1; n > 0 {
		s.tierWrites[id] = n
		return false
	}
	delete(s.tierWrites, id)
	if !s.tierRemoveWant[id] {
		return false
	}
	delete(s.tierRemoveWant, id)
	return s.shouldRemoveTierLocked(id, nil)
}

// noteRemovalLocked registers a removal verdict that the caller will
// execute after releasing s.mu; makeRoomLocked will not start a new spill
// write of id until it lands. Caller holds s.mu and must pair with
// execRemoval.
func (s *Store) noteRemovalLocked(id types.ObjectID) { s.tierRemovals[id]++ }

// execRemoval performs a removal registered with noteRemovalLocked.
// Called without s.mu.
func (s *Store) execRemoval(tier SpillTier, id types.ObjectID) {
	_ = tier.Remove(id)
	s.mu.Lock()
	if n := s.tierRemovals[id] - 1; n > 0 {
		s.tierRemovals[id] = n
	} else {
		delete(s.tierRemovals, id)
	}
	s.evictDone.Broadcast()
	s.mu.Unlock()
}

// --- core API ---

// Put stores data under id, wakes local waiters, and then records the
// location in the control plane — in that order, so an unreachable control
// plane never delays local consumers of already-resident bytes. Storing an
// already-present object is a no-op (objects are immutable, so the bytes
// are identical by construction).
func (s *Store) Put(id types.ObjectID, data []byte) error {
	size := int64(len(data))
	s.obs.puts.Inc()
	s.mu.Lock()
	for {
		if s.failed {
			s.mu.Unlock()
			return ErrFailed
		}
		if _, exists := s.objects[id]; exists {
			s.mu.Unlock()
			return nil
		}
		if s.capacity <= 0 || s.used+size <= s.capacity {
			break
		}
		if !s.makeRoomLocked(size, false) {
			s.mu.Unlock()
			return fmt.Errorf("%w: need %d bytes, capacity %d", ErrStoreFull, size, s.capacity)
		}
		// makeRoomLocked dropped and reacquired the lock: re-check failed,
		// duplicate-Put, and capacity from scratch.
	}
	e := &entry{id: id, data: data, size: size, state: stateResident}
	s.objects[id] = e
	s.used += size
	s.lru.pushFront(e)
	ws := s.waiters[id]
	delete(s.waiters, id)
	drain := s.enqueuePublishLocked(id, func(ctrl gcs.API) {
		ctrl.AddObjectLocation(id, s.node, size)
	})
	s.mu.Unlock()

	// Waiters first: they are local consumers of bytes that are already
	// here; the control-plane publish can block on a failover and must not
	// gate them.
	for _, w := range ws {
		close(w)
	}
	if drain {
		s.drainPublishes(id)
	}
	return nil
}

// makeRoomLocked evicts LRU-first over unpinned resident objects until
// size more bytes fit under capacity, re-evaluating the live counters on
// every iteration (so bytes freed by other goroutines' in-flight spills
// are credited, never re-evicted, and never spuriously reported as
// unavailable). Victims transition to stateSpilling under the lock; the
// refcount-oracle verdict, the tier write (or the drop), and the
// control-plane update all run unlocked in spillOrDrop. Caller holds
// s.mu; the lock is dropped and reacquired around every victim, so
// callers must re-validate everything they read before calling.
//
// forRestore marks the restore re-admission path, whose latency budget is
// "disk, never control plane": it skips the refcount oracle and spills
// every victim (spilling garbage is safe — GC deletes it later — whereas
// consulting a failover-blocked oracle would hang the Get), and it gives
// up instead of waiting behind another goroutine's in-flight spill, which
// may itself be wedged on the oracle for a whole failover (the caller
// then serves the bytes without re-admission).
func (s *Store) makeRoomLocked(size int64, forRestore bool) bool {
	for s.capacity > 0 && s.used+size > s.capacity {
		victim := s.lru.coldestUnpinned()
		if victim == nil {
			if s.inflight > 0 && !forRestore {
				// Another goroutine's spill is mid-flight: its bytes will
				// free when it finalizes. Wait for one transition instead
				// of failing spuriously.
				s.evictDone.Wait()
				continue
			}
			return false
		}
		if s.tierRemovals[victim.id] > 0 {
			// A removal of this id's tier file is in flight (a Delete or
			// DropAll that just unmapped an earlier generation): starting
			// a new write now could have its fresh file eaten by the
			// pending unlink. Removals are bare syscalls — wait them out.
			s.evictDone.Wait()
			continue
		}
		victim.state = stateSpilling
		s.lru.remove(victim)
		s.inflight++
		s.tierWrites[victim.id]++
		tier, referenced := s.tier, s.referenced
		if forRestore && tier != nil {
			referenced = nil // nil oracle = spill everything
		}
		s.mu.Unlock()
		ok := s.spillOrDrop(victim, tier, referenced, forRestore)
		s.mu.Lock()
		if !ok {
			return false
		}
	}
	return true
}

// spillOrDrop moves a claimed victim (stateSpilling) out of memory:
// still-referenced objects spill to the tier, garbage is dropped outright.
// Called WITHOUT s.mu held — the refcount oracle is a control-plane RPC
// that can block for seconds during a shard failover, and the tier write
// is disk I/O; neither may stall the data plane. noProbes additionally
// keeps the tier itself from probing the control plane (budget eviction);
// the restore path sets it. Returns false to abort the caller's eviction
// loop (tier write failed or was refused: dropping a referenced object
// would be unsafe, so give up rather than corrupt).
func (s *Store) spillOrDrop(e *entry, tier SpillTier, referenced func(types.ObjectID) bool, noProbes bool) bool {
	id := e.id
	wantSpill := tier != nil && (referenced == nil || referenced(id))

	var wrote bool
	var spillErr error
	if wantSpill {
		sp := s.obs.tracer.Begin("spill", "objectstore.spill")
		start := time.Now()
		if bs, bounded := tier.(BoundedSpiller); bounded && noProbes {
			spillErr = bs.SpillBounded(id, e.data)
		} else {
			spillErr = tier.Spill(id, e.data)
		}
		wrote = spillErr == nil
		s.obs.spillNs.Observe(time.Since(start).Nanoseconds())
		if wrote {
			s.obs.spillBytes.Add(e.size)
			sp.Object = id.Hex()
			sp.Detail = fmt.Sprintf("%d bytes", e.size)
			sp.End()
		}
	}

	s.mu.Lock()
	s.inflight--
	removeFile := s.finishTierWriteLocked(id)
	ok, drain := true, false
	switch {
	case s.objects[id] != e || e.state != stateSpilling:
		// Deleted (or DropAll) mid-flight: the deleter settled the entry's
		// accounting; our only job is not to leak the file we wrote.
		removeFile = removeFile || (wrote && s.shouldRemoveTierLocked(id, nil))
	case !wantSpill:
		// Drop path: no tier, or the oracle says nothing references it.
		if e.pinned > 0 {
			// A pin landed mid-flight: skip this victim, try the next.
			e.state = stateResident
			s.lru.pushFront(e)
		} else {
			e.state = stateDropping
			delete(s.objects, id)
			s.used -= e.size
			s.obs.drops.Inc()
			drain = s.enqueuePublishLocked(id, func(ctrl gcs.API) {
				ctrl.RemoveObjectLocation(id, s.node)
			})
		}
	case spillErr != nil || e.pinned > 0:
		// Rollback: re-admit. A tier failure aborts the whole eviction
		// loop (dropping a referenced object would be unsafe — and a
		// budget-refusing tier must surface as ErrStoreFull, not data
		// loss); a pin that landed mid-flight just skips this victim.
		e.state = stateResident
		s.lru.pushFront(e)
		removeFile = removeFile || (wrote && s.shouldRemoveTierLocked(id, nil))
		ok = spillErr == nil
	default:
		s.used -= e.size
		s.spilled += e.size
		s.spills++
		e.data = nil
		e.state = stateSpilled
		drain = s.enqueuePublishLocked(id, func(ctrl gcs.API) {
			ctrl.MarkObjectSpilled(id, s.node, true)
		})
	}
	if removeFile {
		s.noteRemovalLocked(id)
	}
	s.evictDone.Broadcast()
	s.mu.Unlock()
	if removeFile {
		s.execRemoval(tier, id)
	}
	if drain {
		s.drainPublishes(id)
	}
	return ok
}

// Get returns the object's bytes if locally present, transparently
// restoring spilled objects from the disk tier. Restores are single-flight:
// concurrent Gets of a restoring object wait on the in-flight read instead
// of each re-reading the file. A Get of a memory-resident object never
// performs or waits for I/O, no matter what other entries are doing.
func (s *Store) Get(id types.ObjectID) ([]byte, bool) {
	s.obs.gets.Inc()
	s.mu.Lock()
	e, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		s.obs.misses.Inc()
		return nil, false
	}
	switch e.state {
	case stateResident:
		s.lru.moveFront(e)
		data := e.data
		s.mu.Unlock()
		return data, true
	case stateSpilling:
		// The tier write is in flight but the bytes are still in memory
		// (immutable; the spiller only clears them at finalize, under mu).
		data := e.data
		s.mu.Unlock()
		return data, true
	case stateRestoring:
		f := e.restore
		s.mu.Unlock()
		<-f.done
		return f.data, f.err == nil
	case stateSpilled:
		return s.restore(e) // releases s.mu
	default: // stateDropping — cannot be in the map, but be safe
		s.mu.Unlock()
		return nil, false
	}
}

// restore performs the single-flight tier read for a spilled entry. Called
// with s.mu held and e.state == stateSpilled; releases the lock around the
// disk read. On failure the disk copy is gone or corrupt — the local copy
// is lost, so the entry is dropped and the control plane can mark the
// object Lost for lineage replay. On success the object is re-admitted to
// memory if it fits (possibly spilling colder objects); otherwise the
// bytes are served while the entry stays on disk, so a single oversized
// read cannot wedge the store.
func (s *Store) restore(e *entry) ([]byte, bool) {
	id := e.id
	f := &restoreFlight{done: make(chan struct{})}
	e.state = stateRestoring
	e.restore = f
	tier := s.tier
	s.mu.Unlock()

	sp := s.obs.tracer.Begin("restore", "objectstore.restore")
	start := time.Now()
	data, err := tier.Restore(id)
	if err == nil && int64(len(data)) != e.size {
		err = fmt.Errorf("objectstore: restore %v: got %d bytes, want %d", id, len(data), e.size)
	}
	s.obs.restoreNs.Observe(time.Since(start).Nanoseconds())
	if err == nil {
		s.obs.restoreBytes.Add(int64(len(data)))
		sp.Object = id.Hex()
		sp.Detail = fmt.Sprintf("%d bytes", len(data))
		sp.End()
	}

	s.mu.Lock()
	if err != nil {
		f.err = err
		close(f.done)
		if s.objects[id] == e {
			s.removeEntryLocked(e)
			// A corrupt (size-mismatched) file may still exist: clean it up
			// along with the entry.
			removeFile := s.shouldRemoveTierLocked(id, nil)
			if removeFile {
				s.noteRemovalLocked(id)
			}
			drain := s.enqueuePublishLocked(id, func(ctrl gcs.API) {
				ctrl.RemoveObjectLocation(id, s.node)
			})
			s.mu.Unlock()
			if removeFile {
				s.execRemoval(tier, id)
			}
			if drain {
				s.drainPublishes(id)
			}
			return nil, false
		}
		s.mu.Unlock()
		return nil, false
	}
	f.data = data
	s.restores++
	close(f.done) // waiters unblock now; re-admission is our problem alone

	serveWithoutReadmit := func() ([]byte, bool) {
		// Deleted while restoring (the deleter settled accounting and the
		// control plane — serving the already-read bytes to our waiters is
		// the valid serialization "Get before Delete"), or memory cannot
		// fit it: hand out the bytes, leave the tier copy authoritative.
		if s.objects[id] == e && e.state == stateRestoring {
			e.state = stateSpilled
			e.restore = nil
		}
		s.mu.Unlock()
		return data, true
	}
	for {
		if s.objects[id] != e || e.state != stateRestoring {
			return serveWithoutReadmit()
		}
		if s.capacity <= 0 || s.used+e.size <= s.capacity {
			break
		}
		if !s.makeRoomLocked(e.size, true) {
			return serveWithoutReadmit()
		}
		// makeRoomLocked dropped the lock: re-validate entry and capacity.
	}
	// Reserve the memory, then clear the tier copy while the entry is still
	// stateRestoring — it is off the LRU list, so no evictor can claim it
	// and race a fresh spill file against this removal.
	s.used += e.size
	gen := s.dropGen
	if s.shouldRemoveTierLocked(id, e) {
		// Fence the unlink like every other removal: this entry cannot be
		// re-claimed (off the LRU list), but a Delete + re-Put racing this
		// window creates a successor generation whose fresh spill must not
		// start until the unlink lands.
		s.noteRemovalLocked(id)
		s.mu.Unlock()
		s.execRemoval(tier, id)
		s.mu.Lock()
		if s.objects[id] != e {
			// Deleted during the tier remove: un-reserve — unless a DropAll
			// already reset the counters wholesale, discarding the
			// reservation along with everything else.
			if s.dropGen == gen {
				s.used -= e.size
			}
			s.mu.Unlock()
			return data, true
		}
	}
	e.data = data
	e.state = stateResident
	e.restore = nil
	s.spilled -= e.size
	s.lru.pushFront(e)
	drain := s.enqueuePublishLocked(id, func(ctrl gcs.API) {
		ctrl.MarkObjectSpilled(id, s.node, false)
	})
	s.mu.Unlock()
	if drain {
		s.drainPublishes(id)
	}
	return data, true
}

// removeEntryLocked unmaps an entry and settles its share of the
// accounting according to the state it was removed in. In-flight
// transitions that still hold the pointer observe stateDropping (or fail
// the map identity check) and finalize as no-ops. Caller holds s.mu.
func (s *Store) removeEntryLocked(e *entry) {
	switch e.state {
	case stateResident:
		s.used -= e.size
		s.lru.remove(e)
	case stateSpilling:
		// Bytes still counted as memory until the spill finalizes — and it
		// now never will (identity check): settle the memory side here. The
		// spiller cleans up any file it wrote.
		s.used -= e.size
	case stateSpilled, stateRestoring:
		s.spilled -= e.size
	}
	e.state = stateDropping
	delete(s.objects, e.id)
	s.evictDone.Broadcast()
}

// GetRange returns up to length bytes of the object at offset. Memory
// entries serve a slice; spilled entries are served straight from the
// tier's range reader without re-admission, so chunked transfers of a
// spilled object neither thrash the memory tier nor re-read the whole
// file per chunk. Returns false when the object is absent or offset is
// out of range.
func (s *Store) GetRange(id types.ObjectID, offset, length int64) ([]byte, bool) {
	// The tier read runs outside the lock, so a concurrent restore or
	// delete can remove the file mid-read; on failure, retry against the
	// entry's new state (a restored object serves from memory) and only
	// report absent when the entry is truly gone.
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		e, ok := s.objects[id]
		if !ok || offset < 0 || length <= 0 || (offset > 0 && offset >= e.size) {
			s.mu.Unlock()
			return nil, false
		}
		if e.size == 0 {
			// Zero-byte object: a (0, n) read is valid and yields the empty
			// payload, matching Get — without this, empty objects were
			// range-readable nowhere (offset >= size held for every offset)
			// even though whole-object reads served them fine.
			s.mu.Unlock()
			return []byte{}, true
		}
		want := length
		if offset+want > e.size {
			want = e.size - offset
		}
		switch e.state {
		case stateResident, stateSpilling:
			if e.state == stateResident {
				s.lru.moveFront(e)
			}
			data := e.data[offset : offset+want]
			s.mu.Unlock()
			return data, true
		case stateRestoring:
			f := e.restore
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, false
			}
			return f.data[offset : offset+want], true
		case stateSpilled:
			rr, canRange := s.tier.(RangeReader)
			if !canRange {
				s.mu.Unlock()
				// Tier without range support: full restore via Get (which
				// may re-admit the object to memory).
				data, ok := s.Get(id)
				if !ok || offset >= int64(len(data)) {
					return nil, false
				}
				end := offset + length
				if end > int64(len(data)) {
					end = int64(len(data))
				}
				return data[offset:end], true
			}
			s.mu.Unlock()
			data, err := rr.RestoreRange(id, offset, want)
			if err == nil && int64(len(data)) == want {
				return data, true
			}
			if attempt >= 3 {
				return nil, false
			}
			// File vanished mid-read (concurrent restore or delete): loop
			// and re-resolve the entry's state.
		default:
			s.mu.Unlock()
			return nil, false
		}
	}
}

// Contains reports local presence (memory or spill tier) without touching
// LRU state. It never waits on tier I/O or control-plane calls.
func (s *Store) Contains(id types.ObjectID) bool {
	s.mu.Lock()
	_, ok := s.objects[id]
	s.mu.Unlock()
	return ok
}

// Pin prevents eviction of id while a worker uses its buffer.
func (s *Store) Pin(id types.ObjectID) {
	s.mu.Lock()
	if e, ok := s.objects[id]; ok {
		e.pinned++
		s.guard.onPin(id, e.data)
	}
	s.mu.Unlock()
}

// Unpin releases a Pin.
func (s *Store) Unpin(id types.ObjectID) {
	s.mu.Lock()
	if e, ok := s.objects[id]; ok && e.pinned > 0 {
		e.pinned--
		s.guard.onUnpin(id, e.data, e.pinned)
	}
	s.mu.Unlock()
}

// PinCount reports id's current pin count (test hook: pin-balance
// assertions for the gather/unwind paths).
func (s *Store) PinCount(id types.ObjectID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.objects[id]; ok {
		return e.pinned
	}
	return 0
}

// WaitChan returns a channel closed when id becomes locally present. If the
// object is already present the returned channel is closed immediately.
func (s *Store) WaitChan(id types.ObjectID) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{})
	if _, ok := s.objects[id]; ok {
		close(ch)
		return ch
	}
	s.waiters[id] = append(s.waiters[id], ch)
	return ch
}

// Delete removes id locally (memory and spill tier) and deregisters the
// location. An in-flight spill or restore of the entry observes the
// removal at finalize time and settles to a no-op; the entry's accounting
// share is settled here, exactly once.
func (s *Store) Delete(id types.ObjectID) bool {
	s.mu.Lock()
	e, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	tier := s.tier
	// Only spilled/restoring entries (or one with a write in flight, whose
	// cleanup shouldRemoveTierLocked defers to the writer) can have a tier
	// file; never-spilled residents skip the unlink and its fencing.
	mayHaveFile := e.state == stateSpilled || e.state == stateRestoring || s.tierWrites[id] > 0
	s.removeEntryLocked(e)
	removeFile := tier != nil && mayHaveFile && s.shouldRemoveTierLocked(id, nil)
	if removeFile {
		s.noteRemovalLocked(id)
	}
	drain := s.enqueuePublishLocked(id, func(ctrl gcs.API) {
		ctrl.RemoveObjectLocation(id, s.node)
	})
	s.mu.Unlock()
	if removeFile {
		s.execRemoval(tier, id)
	}
	if drain {
		s.drainPublishes(id)
	}
	return true
}

// Fail simulates the node's memory vanishing in a crash: every object is
// dropped and all future Puts fail, so in-flight tasks on a killed node
// cannot resurrect locations for a store that no longer exists (R6 failure
// injection).
func (s *Store) Fail() {
	s.mu.Lock()
	s.failed = true
	s.mu.Unlock()
	s.DropAll()
}

// DropAll removes every object, as when a node's memory is lost in a crash
// (failure injection, R6). Spill files die with the node too. Locations are
// deregistered so the control plane marks sole copies Lost.
func (s *Store) DropAll() {
	s.mu.Lock()
	tier := s.tier
	type victim struct {
		id         types.ObjectID
		removeFile bool
		drainer    bool
	}
	victims := make([]victim, 0, len(s.objects))
	for id, e := range s.objects {
		mayHaveFile := e.state == stateSpilled || e.state == stateRestoring ||
			e.state == stateSpilling || s.tierWrites[id] > 0
		e.state = stateDropping
		delete(s.objects, id)
		v := victim{id: id, removeFile: tier != nil && mayHaveFile && s.shouldRemoveTierLocked(id, nil)}
		if v.removeFile {
			s.noteRemovalLocked(id)
		}
		v.drainer = s.enqueuePublishLocked(id, func(ctrl gcs.API) {
			ctrl.RemoveObjectLocation(id, s.node)
		})
		victims = append(victims, v)
	}
	s.lru.init()
	s.used = 0
	s.spilled = 0
	s.dropGen++
	s.evictDone.Broadcast()
	s.mu.Unlock()
	for _, v := range victims {
		if v.removeFile {
			s.execRemoval(tier, v.id)
		}
	}
	for _, v := range victims {
		if v.drainer {
			s.drainPublishes(v.id)
		}
	}
}

// Used returns memory-resident bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// SpilledBytes returns bytes currently on the spill tier.
func (s *Store) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// Count returns the number of resident objects (memory + spilled).
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// Resident snapshots the IDs of every locally-held object (memory and
// spill tier). The drain migration driver iterates it; the snapshot is
// advisory — objects may arrive or vanish after it is taken, which the
// driver handles by re-listing until the store is empty.
func (s *Store) Resident() []types.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]types.ObjectID, 0, len(s.objects))
	for id := range s.objects {
		out = append(out, id)
	}
	return out
}

// Stats snapshots usage for heartbeats and dashboards. Reclaimed and
// TierEvictions are owned by the lifetime subsystem and filled in by the
// node.
func (s *Store) Stats() types.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return types.StoreStats{
		UsedBytes:    s.used,
		SpilledBytes: s.spilled,
		Objects:      len(s.objects),
		Spills:       s.spills,
		Restores:     s.restores,
	}
}
