// Package objectstore implements the per-node in-memory object store from
// the paper's Figure 3 ("Shared Memory / Object Store"). Workers on a node
// share one store; objects are immutable byte blobs keyed by ObjectID.
// Because workers here are goroutines in one address space, an in-process
// store is the faithful analogue of the paper's shared-memory store; the
// inter-node pull protocol lives in transfer.go.
//
// Under memory pressure the store cooperates with the lifetime subsystem
// (internal/lifetime): referenced-but-cold objects spill to a disk tier
// instead of being dropped, and Get transparently restores them, so a
// working set larger than memory degrades gracefully instead of failing
// with ErrStoreFull.
package objectstore

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gcs"
	"repro/internal/types"
)

// ErrStoreFull is returned when a Put cannot fit even after evicting or
// spilling every unpinned object.
var ErrStoreFull = errors.New("objectstore: store full")

// SpillTier is the disk tier the store spills cold objects to.
// lifetime.DiskSpiller is the production implementation; tests may fake it.
// Implementations must tolerate Remove of an absent object.
type SpillTier interface {
	Spill(id types.ObjectID, data []byte) error
	Restore(id types.ObjectID) ([]byte, error)
	Remove(id types.ObjectID) error
}

// RangeReader is optionally implemented by spill tiers that can serve a
// byte range without reading the whole object (DiskSpiller can). GetRange
// uses it so a peer chunk-pulling a large spilled object costs O(range)
// disk reads per chunk instead of O(object).
type RangeReader interface {
	RestoreRange(id types.ObjectID, offset, length int64) ([]byte, error)
}

type entry struct {
	data    []byte
	size    int64 // == len(data) when resident; survives data=nil on spill
	pinned  int
	seq     uint64 // LRU clock: last access sequence number
	spilled bool   // true when the bytes live on the spill tier, not in data
}

// Store holds this node's objects. All methods are safe for concurrent use.
type Store struct {
	node types.NodeID
	ctrl gcs.API

	mu       sync.Mutex
	objects  map[types.ObjectID]*entry
	waiters  map[types.ObjectID][]chan struct{}
	capacity int64 // bytes; 0 = unlimited
	used     int64 // memory-resident bytes
	spilled  int64 // bytes on the spill tier
	clock    uint64
	failed   bool

	// tier, when non-nil, enables the disk spill path.
	tier SpillTier
	// referenced reports whether an object still has live references; nil
	// means unknown. With a spill tier attached, referenced objects spill
	// under pressure while garbage is dropped outright.
	referenced func(types.ObjectID) bool

	spills   int64
	restores int64
}

// ErrFailed is returned by Put after the store has crashed (Fail).
var ErrFailed = errors.New("objectstore: store failed")

// New creates a store for node, registering locations with ctrl. capacity
// of 0 means unlimited.
func New(node types.NodeID, ctrl gcs.API, capacity int64) *Store {
	return &Store{
		node:     node,
		ctrl:     ctrl,
		objects:  make(map[types.ObjectID]*entry),
		waiters:  make(map[types.ObjectID][]chan struct{}),
		capacity: capacity,
	}
}

// Node returns the owning node's ID.
func (s *Store) Node() types.NodeID { return s.node }

// SetSpillTier attaches the disk spill tier. Call before the store is
// shared; typically at node construction.
func (s *Store) SetSpillTier(t SpillTier) {
	s.mu.Lock()
	s.tier = t
	s.mu.Unlock()
}

// SetRefChecker installs the liveness oracle consulted during eviction
// (typically a lookup of the object table's refcount). Call before the
// store is shared.
func (s *Store) SetRefChecker(fn func(types.ObjectID) bool) {
	s.mu.Lock()
	s.referenced = fn
	s.mu.Unlock()
}

// Put stores data under id, records the location in the control plane, and
// wakes local waiters. Storing an already-present object is a no-op (objects
// are immutable, so the bytes are identical by construction).
func (s *Store) Put(id types.ObjectID, data []byte) error {
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return ErrFailed
	}
	if _, exists := s.objects[id]; exists {
		s.mu.Unlock()
		return nil
	}
	size := int64(len(data))
	if s.capacity > 0 && s.used+size > s.capacity {
		if !s.freeLocked(s.used + size - s.capacity) {
			s.mu.Unlock()
			return fmt.Errorf("%w: need %d bytes, capacity %d", ErrStoreFull, size, s.capacity)
		}
	}
	s.clock++
	s.objects[id] = &entry{data: data, size: size, seq: s.clock}
	s.used += size
	ws := s.waiters[id]
	delete(s.waiters, id)
	s.mu.Unlock()

	s.ctrl.AddObjectLocation(id, s.node, size)
	for _, w := range ws {
		close(w)
	}
	return nil
}

// freeLocked makes at least need bytes of memory available, LRU-first over
// unpinned resident objects. With a spill tier attached, victims that still
// have live references move to disk (the copy survives, cheap to restore);
// garbage — and, without a liveness oracle, nothing — is dropped outright.
// Without a tier the original drop-only LRU eviction applies. It reports
// whether enough memory was reclaimed. Caller holds s.mu.
//
// Control-plane updates and tier I/O happen under the lock; the control
// plane is lock-free with respect to this mutex (same invariant the
// original eviction relied on), so this is deadlock-safe.
func (s *Store) freeLocked(need int64) bool {
	for need > 0 {
		victim, e := s.coldestLocked()
		if e == nil {
			return false
		}
		size := e.size
		if s.tier != nil && (s.referenced == nil || s.referenced(victim)) {
			if !s.spillLocked(victim, e) {
				// Tier write failed (e.g. disk full): dropping a referenced
				// object would be unsafe, so give up rather than corrupt.
				return false
			}
		} else {
			s.dropLocked(victim, e)
		}
		need -= size
	}
	return true
}

// coldestLocked returns the LRU unpinned memory-resident entry, or nil.
func (s *Store) coldestLocked() (types.ObjectID, *entry) {
	var victim types.ObjectID
	var victimEntry *entry
	for id, e := range s.objects {
		if e.pinned > 0 || e.spilled {
			continue
		}
		if victimEntry == nil || e.seq < victimEntry.seq {
			victim, victimEntry = id, e
		}
	}
	return victim, victimEntry
}

// spillLocked moves a resident entry to the disk tier. Caller holds s.mu.
func (s *Store) spillLocked(id types.ObjectID, e *entry) bool {
	if err := s.tier.Spill(id, e.data); err != nil {
		return false
	}
	s.used -= e.size
	s.spilled += e.size
	s.spills++
	e.data = nil
	e.spilled = true
	s.ctrl.MarkObjectSpilled(id, s.node, true)
	return true
}

// dropLocked removes an entry entirely and deregisters the location.
// Caller holds s.mu.
func (s *Store) dropLocked(id types.ObjectID, e *entry) {
	delete(s.objects, id)
	if e.spilled {
		s.spilled -= e.size
		if s.tier != nil {
			_ = s.tier.Remove(id)
		}
	} else {
		s.used -= e.size
	}
	s.ctrl.RemoveObjectLocation(id, s.node)
}

// Get returns the object's bytes if locally present, transparently
// restoring spilled objects from the disk tier.
func (s *Store) Get(id types.ObjectID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	s.clock++
	e.seq = s.clock
	if !e.spilled {
		return e.data, true
	}
	data, err := s.tier.Restore(id)
	if err != nil || int64(len(data)) != e.size {
		// The disk copy is gone or corrupt: the local copy is lost. Drop it
		// so the control plane can mark the object Lost and lineage replay
		// can take over.
		s.dropLocked(id, e)
		return nil, false
	}
	s.restores++
	// Re-admit to memory only if it fits (possibly spilling colder objects);
	// otherwise serve the bytes while the entry stays on disk, so a single
	// oversized read cannot wedge the store.
	if s.capacity > 0 && s.used+e.size > s.capacity {
		if !s.freeLocked(s.used + e.size - s.capacity) {
			return data, true
		}
	}
	e.data = data
	e.spilled = false
	s.used += e.size
	s.spilled -= e.size
	_ = s.tier.Remove(id)
	s.ctrl.MarkObjectSpilled(id, s.node, false)
	return data, true
}

// GetRange returns up to length bytes of the object at offset. Memory
// entries serve a slice; spilled entries are served straight from the
// tier's range reader without re-admission, so chunked transfers of a
// spilled object neither thrash the memory tier nor re-read the whole
// file per chunk. Returns false when the object is absent or offset is
// out of range.
func (s *Store) GetRange(id types.ObjectID, offset, length int64) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.objects[id]
	if !ok || offset < 0 || length <= 0 || offset >= e.size {
		s.mu.Unlock()
		return nil, false
	}
	if offset+length > e.size {
		length = e.size - offset
	}
	if !e.spilled {
		s.clock++
		e.seq = s.clock
		data := e.data[offset : offset+length]
		s.mu.Unlock()
		return data, true
	}
	if rr, canRange := s.tier.(RangeReader); canRange {
		// Read under the lock so a concurrent Delete cannot remove the
		// tier file mid-read; the read is range-sized, not object-sized.
		data, err := rr.RestoreRange(id, offset, length)
		s.mu.Unlock()
		if err != nil || int64(len(data)) != length {
			return nil, false
		}
		return data, true
	}
	s.mu.Unlock()
	// Tier without range support: fall back to a full restore via Get
	// (which may re-admit the object to memory).
	data, ok := s.Get(id)
	if !ok || offset >= int64(len(data)) {
		return nil, false
	}
	end := offset + length
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[offset:end], true
}

// Contains reports local presence (memory or spill tier) without touching
// LRU state.
func (s *Store) Contains(id types.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[id]
	return ok
}

// Pin prevents eviction of id while a worker uses its buffer.
func (s *Store) Pin(id types.ObjectID) {
	s.mu.Lock()
	if e, ok := s.objects[id]; ok {
		e.pinned++
	}
	s.mu.Unlock()
}

// Unpin releases a Pin.
func (s *Store) Unpin(id types.ObjectID) {
	s.mu.Lock()
	if e, ok := s.objects[id]; ok && e.pinned > 0 {
		e.pinned--
	}
	s.mu.Unlock()
}

// WaitChan returns a channel closed when id becomes locally present. If the
// object is already present the returned channel is closed immediately.
func (s *Store) WaitChan(id types.ObjectID) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{})
	if _, ok := s.objects[id]; ok {
		close(ch)
		return ch
	}
	s.waiters[id] = append(s.waiters[id], ch)
	return ch
}

// Delete removes id locally (memory and spill tier) and deregisters the
// location.
func (s *Store) Delete(id types.ObjectID) bool {
	s.mu.Lock()
	e, ok := s.objects[id]
	if ok {
		s.dropLocked(id, e)
	}
	s.mu.Unlock()
	return ok
}

// Fail simulates the node's memory vanishing in a crash: every object is
// dropped and all future Puts fail, so in-flight tasks on a killed node
// cannot resurrect locations for a store that no longer exists (R6 failure
// injection).
func (s *Store) Fail() {
	s.mu.Lock()
	s.failed = true
	s.mu.Unlock()
	s.DropAll()
}

// DropAll removes every object, as when a node's memory is lost in a crash
// (failure injection, R6). Spill files die with the node too. Locations are
// deregistered so the control plane marks sole copies Lost.
func (s *Store) DropAll() {
	s.mu.Lock()
	ids := make([]types.ObjectID, 0, len(s.objects))
	for id, e := range s.objects {
		ids = append(ids, id)
		if e.spilled && s.tier != nil {
			_ = s.tier.Remove(id)
		}
	}
	s.objects = make(map[types.ObjectID]*entry)
	s.used = 0
	s.spilled = 0
	s.mu.Unlock()
	for _, id := range ids {
		s.ctrl.RemoveObjectLocation(id, s.node)
	}
}

// Used returns memory-resident bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// SpilledBytes returns bytes currently on the spill tier.
func (s *Store) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// Count returns the number of resident objects (memory + spilled).
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// Stats snapshots usage for heartbeats and dashboards. Reclaimed is owned
// by the lifetime manager and filled in by the node.
func (s *Store) Stats() types.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return types.StoreStats{
		UsedBytes:    s.used,
		SpilledBytes: s.spilled,
		Objects:      len(s.objects),
		Spills:       s.spills,
		Restores:     s.restores,
	}
}
