//go:build storedebug

package objectstore

import (
	"fmt"
	"hash/crc64"

	"repro/internal/types"
)

// pinGuard (storedebug builds) enforces the data-plane immutability
// contract dynamically: Get/GetRange return the store's internal buffer,
// which borrowers must treat as read-only. The guard checksums an object's
// resident bytes when its pin count leaves zero and verifies the checksum
// on every Unpin — a worker that scribbled on an argument buffer panics at
// unpin time with the object ID, naming the corruption at its source
// instead of letting it surface as garbled bytes in some later consumer
// (or in the spill file). Hooks are called with the store mutex held, so
// no further locking is needed; the cost (a CRC per pin cycle) is why this
// lives behind the build tag.
type pinGuard struct {
	sums map[types.ObjectID]uint64
}

var pinGuardTable = crc64.MakeTable(crc64.ECMA)

// onPin captures the buffer checksum when the object becomes pinned. A
// spilled entry has no resident buffer (data == nil) and is skipped; if it
// is restored and re-pinned later, that pin captures the checksum then.
func (g *pinGuard) onPin(id types.ObjectID, data []byte) {
	if data == nil {
		return
	}
	if g.sums == nil {
		g.sums = make(map[types.ObjectID]uint64)
	}
	if _, ok := g.sums[id]; !ok {
		g.sums[id] = crc64.Checksum(data, pinGuardTable)
	}
}

// onUnpin verifies the buffer against the checksum captured at pin time,
// dropping the record when the last pin is released.
func (g *pinGuard) onUnpin(id types.ObjectID, data []byte, pinned int) {
	want, ok := g.sums[id]
	if pinned == 0 {
		delete(g.sums, id)
	}
	if !ok || data == nil {
		return
	}
	if got := crc64.Checksum(data, pinGuardTable); got != want {
		panic(fmt.Sprintf("objectstore: pinned buffer of object %v mutated while borrowed (storedebug guard)", id))
	}
}
