package objectstore

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// slowTier injects per-operation latency into a mapTier, modelling a real
// disk. It is the E18 instrument: with tier I/O this slow, any store that
// holds its mutex across Spill/Restore serializes the whole data plane
// behind it, and the hot-path percentiles below make that visible.
type slowTier struct {
	*mapTier
	delay time.Duration
}

func (t slowTier) Spill(id types.ObjectID, data []byte) error {
	time.Sleep(t.delay)
	return t.mapTier.Spill(id, data)
}

func (t slowTier) Restore(id types.ObjectID) ([]byte, error) {
	time.Sleep(t.delay)
	return t.mapTier.Restore(id)
}

func reportPercentiles(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds()) / 1e3
	}
	b.ReportMetric(p(0.50), "p50-µs")
	b.ReportMetric(p(0.99), "p99-µs")
}

// BenchmarkSpillThroughput is experiment E18: hot-path latency under memory
// pressure with a slow disk tier (500 µs per spill/restore).
//
// HotGet measures Get of a pinned, memory-resident object while a background
// writer forces a continuous eviction storm: the paper's R1 requirement says
// this read must stay at memory speed no matter what the spill tier is doing.
// PutPressure measures Put latency with 4 concurrent writers, every Put
// evicting: each writer pays for its own victim's disk write, but must not
// queue behind the other writers' I/O.
func BenchmarkSpillThroughput(b *testing.B) {
	const objSize = 64 << 10
	const tierDelay = 500 * time.Microsecond

	newPressuredStore := func() *Store {
		s := New(testNode(1), gcs.NewStore(4), 32*objSize)
		s.SetSpillTier(slowTier{newMapTier(), tierDelay})
		s.SetRefChecker(func(types.ObjectID) bool { return true })
		return s
	}

	b.Run("HotGet", func(b *testing.B) {
		s := newPressuredStore()
		hot := testObj(999_999)
		s.Put(hot, make([]byte, objSize))
		s.Pin(hot)

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Put(testObj(1_000_000+i), make([]byte, objSize))
			}
		}()

		// Only measure once the storm is actually spilling: before the store
		// reaches capacity, Puts are I/O-free and the Gets see no pressure.
		for s.SpilledBytes() == 0 {
			time.Sleep(time.Millisecond)
		}

		// Gets arrive paced, as independent workers would issue them — a
		// tight loop from one goroutine would monopolize the mutex between
		// the writer's holds and hide any serialization.
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			time.Sleep(20 * time.Microsecond)
			t0 := time.Now()
			if _, ok := s.Get(hot); !ok {
				b.Fatal("hot object evicted while pinned")
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		reportPercentiles(b, lat)
	})

	b.Run("PutPressure", func(b *testing.B) {
		s := newPressuredStore()
		const writers = 4
		var mu sync.Mutex
		lat := make([]time.Duration, 0, b.N)
		var next uint64
		var wg sync.WaitGroup
		b.ResetTimer()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := make([]time.Duration, 0, b.N/writers+1)
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= uint64(b.N) {
						break
					}
					t0 := time.Now()
					_ = s.Put(testObj(2_000_000+i), make([]byte, objSize))
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		reportPercentiles(b, lat)
	})
}
