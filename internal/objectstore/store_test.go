package objectstore

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

func testNode(i uint64) types.NodeID {
	return types.NodeID(types.DeriveTaskID(types.NilTaskID, 5000+i))
}

func testObj(i uint64) types.ObjectID {
	return types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, i), 0)
}

func TestPutGet(t *testing.T) {
	ctrl := gcs.NewStore(2)
	s := New(testNode(1), ctrl, 0)
	id := testObj(1)
	if err := s.Put(id, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(id)
	if !ok || string(got) != "data" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if !s.Contains(id) || s.Count() != 1 || s.Used() != 4 {
		t.Fatal("bookkeeping wrong")
	}
	// Control plane must know the location.
	info, ok := ctrl.GetObject(id)
	if !ok || !info.HasLocation(s.Node()) || info.Size != 4 {
		t.Fatalf("control plane: %+v, %v", info, ok)
	}
}

func TestPutIdempotent(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(2)
	s.Put(id, []byte("aaaa"))
	s.Put(id, []byte("aaaa"))
	if s.Used() != 4 || s.Count() != 1 {
		t.Fatal("duplicate Put double-counted")
	}
}

func TestWaitChan(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(3)
	ch := s.WaitChan(id)
	select {
	case <-ch:
		t.Fatal("waiter fired before Put")
	case <-time.After(10 * time.Millisecond):
	}
	go s.Put(id, []byte("x"))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("waiter never fired")
	}
	// Already-present object: channel closed immediately.
	select {
	case <-s.WaitChan(id):
	case <-time.After(time.Second):
		t.Fatal("present-object wait did not fire")
	}
}

func TestDeleteDeregisters(t *testing.T) {
	ctrl := gcs.NewStore(1)
	s := New(testNode(1), ctrl, 0)
	id := testObj(4)
	s.Put(id, []byte("x"))
	if !s.Delete(id) {
		t.Fatal("Delete missed present object")
	}
	if s.Delete(id) {
		t.Fatal("second Delete succeeded")
	}
	info, _ := ctrl.GetObject(id)
	if info.State != types.ObjectLost {
		t.Fatalf("sole copy deleted but state = %v", info.State)
	}
}

func TestEvictionLRU(t *testing.T) {
	ctrl := gcs.NewStore(1)
	s := New(testNode(1), ctrl, 30)
	a, b, c := testObj(10), testObj(11), testObj(12)
	s.Put(a, make([]byte, 10))
	s.Put(b, make([]byte, 10))
	s.Get(a) // a becomes most recently used; b is the LRU victim
	if err := s.Put(c, make([]byte, 15)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(b) {
		t.Fatal("LRU victim survived")
	}
	if !s.Contains(a) || !s.Contains(c) {
		t.Fatal("wrong object evicted")
	}
	if s.Used() > 30 {
		t.Fatalf("used %d exceeds capacity", s.Used())
	}
}

func TestPinnedObjectsSurviveEviction(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 20)
	a, b := testObj(13), testObj(14)
	s.Put(a, make([]byte, 15))
	s.Pin(a)
	if err := s.Put(b, make([]byte, 15)); err == nil {
		t.Fatal("Put succeeded with only pinned objects to evict")
	}
	s.Unpin(a)
	if err := s.Put(b, make([]byte, 15)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(a) {
		t.Fatal("unpinned LRU object survived")
	}
}

func TestDropAllMarksLost(t *testing.T) {
	ctrl := gcs.NewStore(2)
	s := New(testNode(1), ctrl, 0)
	ids := []types.ObjectID{testObj(20), testObj(21)}
	for _, id := range ids {
		s.Put(id, []byte("x"))
	}
	s.DropAll()
	if s.Count() != 0 || s.Used() != 0 {
		t.Fatal("DropAll left residue")
	}
	for _, id := range ids {
		info, _ := ctrl.GetObject(id)
		if info.State != types.ObjectLost {
			t.Fatalf("object %v state = %v", id, info.State)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(8), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := testObj(uint64(g*100 + i))
				s.Put(id, []byte{byte(g)})
				if v, ok := s.Get(id); !ok || v[0] != byte(g) {
					t.Errorf("lost object %v", id)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != 800 {
		t.Fatalf("Count = %d", s.Count())
	}
}

// --- lifetime-era edge cases ---

// mapTier is an in-memory SpillTier for tests (no disk, no lifetime import).
type mapTier struct {
	mu   sync.Mutex
	data map[types.ObjectID][]byte
}

func newMapTier() *mapTier { return &mapTier{data: make(map[types.ObjectID][]byte)} }

func (m *mapTier) Spill(id types.ObjectID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.data[id] = cp
	return nil
}

func (m *mapTier) Restore(id types.ObjectID) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.data[id]; ok {
		return d, nil
	}
	return nil, ErrNotFound
}

func (m *mapTier) Remove(id types.ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, id)
	return nil
}

// TestPutAllResidentsPinnedIsFull: when every resident object is pinned,
// neither eviction nor spilling can make room — Put must fail with
// ErrStoreFull rather than corrupt a pinned buffer, spill tier or not.
func TestPutAllResidentsPinnedIsFull(t *testing.T) {
	for _, withTier := range []bool{false, true} {
		s := New(testNode(1), gcs.NewStore(1), 20)
		if withTier {
			s.SetSpillTier(newMapTier())
			s.SetRefChecker(func(types.ObjectID) bool { return true })
		}
		a, b := testObj(100), testObj(101)
		s.Put(a, make([]byte, 10))
		s.Put(b, make([]byte, 10))
		s.Pin(a)
		s.Pin(b)
		err := s.Put(testObj(102), make([]byte, 10))
		if !errors.Is(err, ErrStoreFull) {
			t.Fatalf("tier=%v: Put with all residents pinned = %v, want ErrStoreFull", withTier, err)
		}
		s.Unpin(a)
		if err := s.Put(testObj(102), make([]byte, 10)); err != nil {
			t.Fatalf("tier=%v: Put after Unpin: %v", withTier, err)
		}
	}
}

// TestRestoreFailureDropsObject: a spilled object whose tier copy has
// vanished (disk wiped) must read as absent and transition to Lost, so
// lineage reconstruction can repair it — not return corrupt data.
func TestRestoreFailureDropsObject(t *testing.T) {
	ctrl := gcs.NewStore(1)
	tier := newMapTier()
	s := New(testNode(1), ctrl, 20)
	s.SetSpillTier(tier)
	s.SetRefChecker(func(types.ObjectID) bool { return true })
	a := testObj(105)
	s.Put(a, make([]byte, 15))
	s.Put(testObj(106), make([]byte, 15)) // pressure: spills a
	if _, ok := tier.data[a]; !ok {
		t.Fatal("setup: a not spilled")
	}
	tier.mu.Lock()
	delete(tier.data, a) // simulate losing the disk
	tier.mu.Unlock()
	if _, ok := s.Get(a); ok {
		t.Fatal("Get returned data for a lost spill copy")
	}
	if s.Contains(a) {
		t.Fatal("lost spill copy still resident")
	}
	if info, _ := ctrl.GetObject(a); info.State != types.ObjectLost {
		t.Fatalf("state = %v, want LOST", info.State)
	}
}

// rangeTier extends mapTier with range reads, like the disk spiller.
type rangeTier struct{ *mapTier }

func (r rangeTier) RestoreRange(id types.ObjectID, offset, length int64) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.data[id]
	if !ok || offset >= int64(len(d)) {
		return nil, ErrNotFound
	}
	end := offset + length
	if end > int64(len(d)) {
		end = int64(len(d))
	}
	return d[offset:end], nil
}

// TestGetRange: memory entries serve slices; spilled entries are served
// from the tier's range reader without re-admission; tiers without range
// support fall back to a full restore.
func TestGetRange(t *testing.T) {
	for _, ranged := range []bool{true, false} {
		ctrl := gcs.NewStore(1)
		base := newMapTier()
		s := New(testNode(1), ctrl, 20)
		if ranged {
			s.SetSpillTier(rangeTier{base})
		} else {
			s.SetSpillTier(base)
		}
		s.SetRefChecker(func(types.ObjectID) bool { return true })
		a := testObj(120)
		payload := []byte("0123456789abcde")
		s.Put(a, payload)

		// Memory-resident range.
		if got, ok := s.GetRange(a, 3, 4); !ok || string(got) != "3456" {
			t.Fatalf("ranged=%v: memory range = %q, %v", ranged, got, ok)
		}
		// Out-of-range and degenerate requests.
		if _, ok := s.GetRange(a, 15, 1); ok {
			t.Fatalf("ranged=%v: offset at end served", ranged)
		}
		if _, ok := s.GetRange(a, -1, 4); ok {
			t.Fatalf("ranged=%v: negative offset served", ranged)
		}
		if got, ok := s.GetRange(a, 10, 99); !ok || string(got) != "abcde" {
			t.Fatalf("ranged=%v: clamped tail = %q, %v", ranged, got, ok)
		}

		// Spill a, then range-read it.
		s.Put(testObj(121), make([]byte, 15))
		if _, ok := base.data[a]; !ok {
			t.Fatalf("ranged=%v: setup: a not spilled", ranged)
		}
		got, ok := s.GetRange(a, 5, 5)
		if !ok || string(got) != "56789" {
			t.Fatalf("ranged=%v: spilled range = %q, %v", ranged, got, ok)
		}
		if ranged {
			// Range path must not re-admit (no memory churn on the source).
			if _, still := base.data[a]; !still {
				t.Fatal("range read re-admitted the object")
			}
		}
	}
}

// TestPinRacesEviction hammers Pin/Unpin against capacity-pressure Puts:
// the store must never evict an object while it is pinned, and accounting
// must stay consistent.
func TestPinRacesEviction(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(4), 64)
	hot := testObj(110)
	s.Put(hot, make([]byte, 32))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Pinner: holds the pin briefly, checks presence while pinned.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Pin(hot)
			if s.Contains(hot) {
				if _, ok := s.Get(hot); !ok {
					// Present at Pin time yet gone under the pin: only legal
					// if the Pin landed after an eviction (no-op pin).
					s.Unpin(hot)
					s.Put(hot, make([]byte, 32))
					continue
				}
			}
			s.Unpin(hot)
		}
	}()
	// Evictor: keeps the store saturated so every Put forces eviction.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put(testObj(uint64(200+g*200+i)), make([]byte, 16))
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if used := s.Used(); used > 64 {
		t.Fatalf("used %d exceeds capacity after race", used)
	}
}
