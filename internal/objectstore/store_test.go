package objectstore

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/transport"
	"repro/internal/types"
)

func testNode(i uint64) types.NodeID {
	return types.NodeID(types.DeriveTaskID(types.NilTaskID, 5000+i))
}

func testObj(i uint64) types.ObjectID {
	return types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, i), 0)
}

func TestPutGet(t *testing.T) {
	ctrl := gcs.NewStore(2)
	s := New(testNode(1), ctrl, 0)
	id := testObj(1)
	if err := s.Put(id, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(id)
	if !ok || string(got) != "data" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if !s.Contains(id) || s.Count() != 1 || s.Used() != 4 {
		t.Fatal("bookkeeping wrong")
	}
	// Control plane must know the location.
	info, ok := ctrl.GetObject(id)
	if !ok || !info.HasLocation(s.Node()) || info.Size != 4 {
		t.Fatalf("control plane: %+v, %v", info, ok)
	}
}

func TestPutIdempotent(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(2)
	s.Put(id, []byte("aaaa"))
	s.Put(id, []byte("aaaa"))
	if s.Used() != 4 || s.Count() != 1 {
		t.Fatal("duplicate Put double-counted")
	}
}

func TestWaitChan(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(3)
	ch := s.WaitChan(id)
	select {
	case <-ch:
		t.Fatal("waiter fired before Put")
	case <-time.After(10 * time.Millisecond):
	}
	go s.Put(id, []byte("x"))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("waiter never fired")
	}
	// Already-present object: channel closed immediately.
	select {
	case <-s.WaitChan(id):
	case <-time.After(time.Second):
		t.Fatal("present-object wait did not fire")
	}
}

func TestDeleteDeregisters(t *testing.T) {
	ctrl := gcs.NewStore(1)
	s := New(testNode(1), ctrl, 0)
	id := testObj(4)
	s.Put(id, []byte("x"))
	if !s.Delete(id) {
		t.Fatal("Delete missed present object")
	}
	if s.Delete(id) {
		t.Fatal("second Delete succeeded")
	}
	info, _ := ctrl.GetObject(id)
	if info.State != types.ObjectLost {
		t.Fatalf("sole copy deleted but state = %v", info.State)
	}
}

func TestEvictionLRU(t *testing.T) {
	ctrl := gcs.NewStore(1)
	s := New(testNode(1), ctrl, 30)
	a, b, c := testObj(10), testObj(11), testObj(12)
	s.Put(a, make([]byte, 10))
	s.Put(b, make([]byte, 10))
	s.Get(a) // a becomes most recently used; b is the LRU victim
	if err := s.Put(c, make([]byte, 15)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(b) {
		t.Fatal("LRU victim survived")
	}
	if !s.Contains(a) || !s.Contains(c) {
		t.Fatal("wrong object evicted")
	}
	if s.Used() > 30 {
		t.Fatalf("used %d exceeds capacity", s.Used())
	}
}

func TestPinnedObjectsSurviveEviction(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 20)
	a, b := testObj(13), testObj(14)
	s.Put(a, make([]byte, 15))
	s.Pin(a)
	if err := s.Put(b, make([]byte, 15)); err == nil {
		t.Fatal("Put succeeded with only pinned objects to evict")
	}
	s.Unpin(a)
	if err := s.Put(b, make([]byte, 15)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(a) {
		t.Fatal("unpinned LRU object survived")
	}
}

func TestDropAllMarksLost(t *testing.T) {
	ctrl := gcs.NewStore(2)
	s := New(testNode(1), ctrl, 0)
	ids := []types.ObjectID{testObj(20), testObj(21)}
	for _, id := range ids {
		s.Put(id, []byte("x"))
	}
	s.DropAll()
	if s.Count() != 0 || s.Used() != 0 {
		t.Fatal("DropAll left residue")
	}
	for _, id := range ids {
		info, _ := ctrl.GetObject(id)
		if info.State != types.ObjectLost {
			t.Fatalf("object %v state = %v", id, info.State)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(8), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := testObj(uint64(g*100 + i))
				s.Put(id, []byte{byte(g)})
				if v, ok := s.Get(id); !ok || v[0] != byte(g) {
					t.Errorf("lost object %v", id)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != 800 {
		t.Fatalf("Count = %d", s.Count())
	}
}

// --- transfer tests ---

func twoStores(t *testing.T, nw transport.Network) (src, dst *Store, ctrl *gcs.Store, fetcher *Fetcher) {
	t.Helper()
	ctrl = gcs.NewStore(4)
	src = New(testNode(1), ctrl, 0)
	dst = New(testNode(2), ctrl, 0)
	srv := transport.NewServer()
	RegisterPullHandler(srv, src)
	if _, err := nw.Listen("src", srv); err != nil {
		t.Fatal(err)
	}
	addrs := map[types.NodeID]string{testNode(1): "src"}
	fetcher = NewFetcher(dst, nw, func(n types.NodeID) (string, bool) {
		a, ok := addrs[n]
		return a, ok
	})
	t.Cleanup(fetcher.Close)
	return src, dst, ctrl, fetcher
}

func TestFetchPullsRemoteObject(t *testing.T) {
	src, dst, ctrl, fetcher := twoStores(t, transport.NewInproc(0))
	id := testObj(30)
	src.Put(id, []byte("remote-bytes"))
	if err := fetcher.Fetch(context.Background(), id, []types.NodeID{testNode(1)}); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Get(id)
	if !ok || !bytes.Equal(got, []byte("remote-bytes")) {
		t.Fatalf("fetched = %q, %v", got, ok)
	}
	// Both locations registered.
	info, _ := ctrl.GetObject(id)
	if len(info.Locations) != 2 {
		t.Fatalf("locations = %v", info.Locations)
	}
}

func TestFetchAlreadyLocalIsNoop(t *testing.T) {
	_, dst, _, fetcher := twoStores(t, transport.NewInproc(0))
	id := testObj(31)
	dst.Put(id, []byte("here"))
	if err := fetcher.Fetch(context.Background(), id, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFetchNoLocationsFails(t *testing.T) {
	_, _, _, fetcher := twoStores(t, transport.NewInproc(0))
	if err := fetcher.Fetch(context.Background(), testObj(32), nil); err == nil {
		t.Fatal("fetch with no locations succeeded")
	}
}

func TestFetchSkipsDeadPeerAndFails(t *testing.T) {
	_, _, _, fetcher := twoStores(t, transport.NewInproc(0))
	// Location points at a node with no registered address.
	err := fetcher.Fetch(context.Background(), testObj(33), []types.NodeID{testNode(9)})
	if err == nil {
		t.Fatal("fetch from unknown peer succeeded")
	}
}

func TestFetchMissingObjectOnPeer(t *testing.T) {
	_, _, _, fetcher := twoStores(t, transport.NewInproc(0))
	err := fetcher.Fetch(context.Background(), testObj(34), []types.NodeID{testNode(1)})
	if err == nil {
		t.Fatal("fetch of object absent on peer succeeded")
	}
}

func TestConcurrentFetchesCollapse(t *testing.T) {
	src, dst, _, fetcher := twoStores(t, transport.NewInproc(time.Millisecond))
	id := testObj(35)
	src.Put(id, make([]byte, 1024))
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fetcher.Fetch(context.Background(), id, []types.NodeID{testNode(1)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if !dst.Contains(id) {
		t.Fatal("object not resident after concurrent fetches")
	}
}

func TestFetchOverTCP(t *testing.T) {
	ctrl := gcs.NewStore(2)
	src := New(testNode(1), ctrl, 0)
	dst := New(testNode(2), ctrl, 0)
	srv := transport.NewServer()
	RegisterPullHandler(srv, src)
	l, err := transport.TCP{}.Listen("127.0.0.1:39281", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fetcher := NewFetcher(dst, transport.TCP{}, func(n types.NodeID) (string, bool) {
		return "127.0.0.1:39281", n == testNode(1)
	})
	defer fetcher.Close()
	id := testObj(36)
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	src.Put(id, payload)
	if err := fetcher.Fetch(context.Background(), id, []types.NodeID{testNode(1)}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Get(id)
	if !bytes.Equal(got, payload) {
		t.Fatal("TCP transfer corrupted payload")
	}
}
