//go:build !storedebug

package objectstore

import "repro/internal/types"

// pinGuard is the release-build no-op of the pinned-buffer mutation
// detector. Get and GetRange hand out the store's internal byte slice with
// zero copies (see the contract in DESIGN.md), so a task that writes into
// an argument buffer silently corrupts the object for every later reader.
// Building with -tags storedebug swaps in the checking implementation
// (store_guard_debug.go), which checksums a buffer when it first becomes
// pinned and panics at Unpin if the bytes changed while borrowed.
type pinGuard struct{}

func (pinGuard) onPin(types.ObjectID, []byte)        {}
func (pinGuard) onUnpin(types.ObjectID, []byte, int) {}
