package objectstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/transport"
	"repro/internal/types"
)

// Transport method names for the inter-node object pull protocol. The
// serving side lives here next to the store; the pulling side is the
// chunked pull manager in internal/lifetime, which replaced the original
// single-shot fetcher.
const (
	// PullMethod returns a whole object: request payload is the raw
	// ObjectID, response is the object bytes. Small objects use it — one
	// round trip beats chunk bookkeeping below the chunk size.
	PullMethod = "objectstore.pull"
	// PullChunkMethod returns one byte range of an object: request payload
	// is EncodeChunkRequest, response is the requested slice. Large objects
	// are pulled as bounded-concurrency chunk streams.
	PullChunkMethod = "objectstore.pullChunk"
)

// ErrNotFound is returned by the pull handlers for objects not resident.
var ErrNotFound = errors.New("objectstore: object not found")

// ErrBadChunk is returned for malformed or out-of-range chunk requests.
var ErrBadChunk = errors.New("objectstore: bad chunk request")

// chunkReqSize is the fixed wire size of a chunk request.
const chunkReqSize = types.IDSize + 8 + 8

// EncodeChunkRequest builds the wire form of a chunk request:
// ObjectID | uint64 offset | uint64 length, big-endian.
func EncodeChunkRequest(id types.ObjectID, offset, length int64) []byte {
	buf := make([]byte, chunkReqSize)
	copy(buf, id[:])
	binary.BigEndian.PutUint64(buf[types.IDSize:], uint64(offset))
	binary.BigEndian.PutUint64(buf[types.IDSize+8:], uint64(length))
	return buf
}

// DecodeChunkRequest parses EncodeChunkRequest's output.
func DecodeChunkRequest(payload []byte) (id types.ObjectID, offset, length int64, err error) {
	if len(payload) != chunkReqSize {
		return id, 0, 0, fmt.Errorf("%w: %d bytes", ErrBadChunk, len(payload))
	}
	copy(id[:], payload)
	offset = int64(binary.BigEndian.Uint64(payload[types.IDSize:]))
	length = int64(binary.BigEndian.Uint64(payload[types.IDSize+8:]))
	if offset < 0 || length <= 0 {
		return id, 0, 0, fmt.Errorf("%w: offset %d length %d", ErrBadChunk, offset, length)
	}
	return id, offset, length, nil
}

// RegisterPullHandler exposes the store's objects to peers, both whole
// (PullMethod) and as byte ranges (PullChunkMethod). Spilled objects are
// served too: the store's Get restores them transparently.
func RegisterPullHandler(srv *transport.Server, store *Store) {
	srv.Handle(PullMethod, func(payload []byte) ([]byte, error) {
		if len(payload) != types.IDSize {
			return nil, fmt.Errorf("objectstore: bad pull request of %d bytes", len(payload))
		}
		var id types.ObjectID
		copy(id[:], payload)
		data, ok := store.Get(id)
		if !ok {
			return nil, fmt.Errorf("%w: %v on %v", ErrNotFound, id, store.node)
		}
		return data, nil
	})
	srv.Handle(PullChunkMethod, func(payload []byte) ([]byte, error) {
		id, offset, length, err := DecodeChunkRequest(payload)
		if err != nil {
			return nil, err
		}
		data, ok := store.GetRange(id, offset, length)
		if !ok {
			if !store.Contains(id) {
				return nil, fmt.Errorf("%w: %v on %v", ErrNotFound, id, store.node)
			}
			return nil, fmt.Errorf("%w: offset %d out of range for %v", ErrBadChunk, offset, id)
		}
		return data, nil
	})
}
