package objectstore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/types"
)

// PullMethod is the transport method name for the object pull protocol.
const PullMethod = "objectstore.pull"

// ErrNotFound is returned by the pull handler for objects not resident.
var ErrNotFound = errors.New("objectstore: object not found")

// RegisterPullHandler exposes the store's objects to peers: request payload
// is the raw ObjectID, response is the object bytes.
func RegisterPullHandler(srv *transport.Server, store *Store) {
	srv.Handle(PullMethod, func(payload []byte) ([]byte, error) {
		if len(payload) != types.IDSize {
			return nil, fmt.Errorf("objectstore: bad pull request of %d bytes", len(payload))
		}
		var id types.ObjectID
		copy(id[:], payload)
		data, ok := store.Get(id)
		if !ok {
			return nil, fmt.Errorf("%w: %v on %v", ErrNotFound, id, store.node)
		}
		return data, nil
	})
}

// Fetcher pulls remote objects into the local store. It deduplicates
// concurrent fetches of the same object and caches peer connections.
type Fetcher struct {
	store *Store
	net   transport.Network
	// resolveAddr maps a node to its transport address (node-table lookup).
	resolveAddr func(types.NodeID) (string, bool)

	mu       sync.Mutex
	inflight map[types.ObjectID]chan error
	conns    map[string]transport.Client
}

// NewFetcher wires a fetcher to the local store and cluster network.
func NewFetcher(store *Store, net transport.Network, resolveAddr func(types.NodeID) (string, bool)) *Fetcher {
	return &Fetcher{
		store:       store,
		net:         net,
		resolveAddr: resolveAddr,
		inflight:    make(map[types.ObjectID]chan error),
		conns:       make(map[string]transport.Client),
	}
}

// Fetch ensures id is locally resident, pulling from one of the given
// candidate locations. Concurrent fetches of one object collapse into a
// single pull.
func (f *Fetcher) Fetch(ctx context.Context, id types.ObjectID, locations []types.NodeID) error {
	if f.store.Contains(id) {
		return nil
	}
	f.mu.Lock()
	if ch, ok := f.inflight[id]; ok {
		f.mu.Unlock()
		select {
		case err := <-ch:
			// Propagate and re-arm for any other waiters.
			ch <- err
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ch := make(chan error, 1)
	f.inflight[id] = ch
	f.mu.Unlock()

	err := f.pull(ctx, id, locations)
	f.mu.Lock()
	delete(f.inflight, id)
	f.mu.Unlock()
	ch <- err
	return err
}

func (f *Fetcher) pull(ctx context.Context, id types.ObjectID, locations []types.NodeID) error {
	var lastErr error = fmt.Errorf("objectstore: no locations for %v", id)
	for _, loc := range locations {
		if loc == f.store.node {
			continue // stale self-location; the object is gone locally
		}
		addr, ok := f.resolveAddr(loc)
		if !ok {
			lastErr = fmt.Errorf("objectstore: no address for %v", loc)
			continue
		}
		client, err := f.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := client.Call(PullMethod, id[:])
		if err != nil {
			lastErr = err
			f.dropConn(addr) // peer may be dead; redial next time
			continue
		}
		if err := f.store.Put(id, data); err != nil {
			return err
		}
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return lastErr
}

func (f *Fetcher) conn(addr string) (transport.Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.conns[addr]; ok {
		return c, nil
	}
	c, err := f.net.Dial(addr)
	if err != nil {
		return nil, err
	}
	f.conns[addr] = c
	return c, nil
}

func (f *Fetcher) dropConn(addr string) {
	f.mu.Lock()
	if c, ok := f.conns[addr]; ok {
		delete(f.conns, addr)
		c.Close()
	}
	f.mu.Unlock()
}

// Close releases cached connections.
func (f *Fetcher) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for addr, c := range f.conns {
		c.Close()
		delete(f.conns, addr)
	}
}
