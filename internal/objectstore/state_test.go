package objectstore

// Tests for the per-entry state machine (DESIGN.md §8): spill/restore I/O
// and control-plane RPCs run outside the store mutex, so a blocked refcount
// oracle (a GCS shard mid-failover) or a slow disk must never stall Get or
// Contains of other objects; accounting must survive arbitrary races
// between Put/Get/GetRange/Delete and in-flight spills/restores.

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/types"
)

// blockableOracle is a refcount oracle that always answers "referenced"
// but can be blocked to simulate a control-plane shard failover.
type blockableOracle struct {
	mu   sync.Mutex
	gate chan struct{}
}

func (o *blockableOracle) referenced(types.ObjectID) bool {
	o.mu.Lock()
	gate := o.gate
	o.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return true
}

// block makes subsequent oracle calls hang until unblock.
func (o *blockableOracle) block() {
	o.mu.Lock()
	o.gate = make(chan struct{})
	o.mu.Unlock()
}

func (o *blockableOracle) unblock() {
	o.mu.Lock()
	if o.gate != nil {
		close(o.gate)
		o.gate = nil
	}
	o.mu.Unlock()
}

// gateTier blocks each Spill between enter and release, so tests can hold
// a tier write in flight deterministically.
type gateTier struct {
	*mapTier
	enter   chan struct{}
	release chan struct{}
}

func newGateTier() *gateTier {
	return &gateTier{mapTier: newMapTier(), enter: make(chan struct{}, 8), release: make(chan struct{})}
}

func (g *gateTier) Spill(id types.ObjectID, data []byte) error {
	g.enter <- struct{}{}
	<-g.release
	return g.mapTier.Spill(id, data)
}

// gateRestoreTier blocks each Restore between enter and release.
type gateRestoreTier struct {
	*mapTier
	enter   chan struct{}
	release chan struct{}
}

func newGateRestoreTier() *gateRestoreTier {
	return &gateRestoreTier{mapTier: newMapTier(), enter: make(chan struct{}, 8), release: make(chan struct{})}
}

func (g *gateRestoreTier) Restore(id types.ObjectID) ([]byte, error) {
	g.enter <- struct{}{}
	<-g.release
	return g.mapTier.Restore(id)
}

// countTier counts Restore calls and makes them slow, for the
// single-flight assertion.
type countTier struct {
	*mapTier
	restoreCalls atomic.Int32
}

func (c *countTier) Restore(id types.ObjectID) ([]byte, error) {
	c.restoreCalls.Add(1)
	time.Sleep(30 * time.Millisecond)
	return c.mapTier.Restore(id)
}

// failSpillTier refuses every spill, like a full or budget-refusing disk.
type failSpillTier struct{ *mapTier }

func (failSpillTier) Spill(types.ObjectID, []byte) error {
	return errors.New("tier: refused")
}

// TestEvictionOrderLRU pins the intrusive LRU list's behaviour: victims
// leave in least-recently-touched order, and a Get re-heats its object.
func TestEvictionOrderLRU(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 40)
	a, b, c, d := testObj(300), testObj(301), testObj(302), testObj(303)
	for _, id := range []types.ObjectID{a, b, c, d} {
		if err := s.Put(id, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch order: b then a. MRU→LRU is now a, b, d, c.
	s.Get(b)
	s.Get(a)
	wantOrder := []types.ObjectID{c, d, b, a}
	for i, victim := range wantOrder {
		if err := s.Put(testObj(uint64(310+i)), make([]byte, 10)); err != nil {
			t.Fatalf("filler put %d: %v", i, err)
		}
		if s.Contains(victim) {
			t.Fatalf("eviction %d: expected victim %v still present", i, victim)
		}
		for _, later := range wantOrder[i+1:] {
			if !s.Contains(later) {
				t.Fatalf("eviction %d: %v evicted out of order", i, later)
			}
		}
	}
}

// TestBlockedOracleDoesNotStallDataPlane is the regression test for the
// whole-node stall bug: with the refcount oracle hung (a GCS shard mid-
// failover) while an eviction is in flight, Get of a resident object, Get
// of the victim itself (its bytes are still in memory), and Contains must
// all return promptly. Under the old design every one of these waited on
// the store mutex held across the oracle RPC.
func TestBlockedOracleDoesNotStallDataPlane(t *testing.T) {
	oracle := &blockableOracle{}
	s := New(testNode(1), gcs.NewStore(1), 30)
	s.SetSpillTier(newMapTier())
	s.SetRefChecker(oracle.referenced)

	victim, hot := testObj(320), testObj(321)
	s.Put(victim, make([]byte, 10))
	s.Put(hot, make([]byte, 10))
	s.Get(hot) // victim is now the LRU entry

	oracle.block()
	defer oracle.unblock()
	putDone := make(chan error, 1)
	go func() {
		// Needs 10 bytes: claims victim, then hangs on the oracle.
		putDone <- s.Put(testObj(322), make([]byte, 20))
	}()

	// Wait until the eviction is actually in flight (claimed under the
	// lock, blocked in the oracle outside it).
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		inflight := s.inflight
		s.mu.Unlock()
		if inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction never started")
		}
		time.Sleep(time.Millisecond)
	}

	type result struct {
		what string
		ok   bool
	}
	results := make(chan result, 3)
	go func() {
		_, ok := s.Get(hot)
		results <- result{"Get(hot)", ok}
	}()
	go func() {
		_, ok := s.Get(victim)
		results <- result{"Get(victim)", ok}
	}()
	go func() {
		results <- result{"Contains", s.Contains(victim)}
	}()
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if !r.ok {
				t.Fatalf("%s = false during blocked-oracle eviction", r.what)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("data-plane call blocked behind the hung refcount oracle")
		}
	}

	select {
	case err := <-putDone:
		t.Fatalf("Put finished while oracle blocked: %v", err)
	default:
	}
	oracle.unblock()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("Put after oracle unblocked: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Put never completed after oracle unblocked")
	}
}

// TestRestoringGetSkipsOracle: a Get of a spilled object whose re-admission
// must evict colder residents presumes those victims are referenced and
// spills them without consulting the refcount oracle — a failover-blocked
// oracle must not hang a Get that already has its bytes (spilling garbage
// is safe; GC deletes it later).
func TestRestoringGetSkipsOracle(t *testing.T) {
	oracle := &blockableOracle{}
	s := New(testNode(1), gcs.NewStore(1), 30)
	tier := newMapTier()
	s.SetSpillTier(tier)
	s.SetRefChecker(oracle.referenced)

	x := testObj(380)
	payload := []byte("restored-x")
	s.Put(x, payload)
	for i := 0; i < 3; i++ { // pressure: x becomes the spilled one
		s.Put(testObj(uint64(381+i)), make([]byte, 10))
	}
	tier.mu.Lock()
	_, spilledX := tier.data[x]
	tier.mu.Unlock()
	if !spilledX {
		t.Fatal("setup: x not spilled")
	}

	oracle.block()
	defer oracle.unblock()
	type result struct {
		data []byte
		ok   bool
	}
	got := make(chan result, 1)
	go func() {
		data, ok := s.Get(x)
		got <- result{data, ok}
	}()
	select {
	case r := <-got:
		if !r.ok || string(r.data) != string(payload) {
			t.Fatalf("Get(x) = %q, %v", r.data, r.ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("restoring Get blocked on the refcount oracle during re-admission")
	}
	// Re-admission happened (the victim spilled without an oracle verdict).
	if s.Used() != 30 || s.SpilledBytes() != 10 {
		t.Fatalf("after readmit: used %d spilled %d, want 30/10", s.Used(), s.SpilledBytes())
	}
}

// blockingCtrl wraps a control plane so AddObjectLocation hangs until the
// gate opens — an unreachable GCS head mid-failover.
type blockingCtrl struct {
	gcs.API
	gate chan struct{}
}

func (c *blockingCtrl) AddObjectLocation(id types.ObjectID, node types.NodeID, size int64) {
	<-c.gate
	c.API.AddObjectLocation(id, node, size)
}

// TestPutWakesWaitersBeforePublish: local waiters consume bytes that are
// already resident; an unreachable control plane must not delay them. The
// publish still lands (in order) once the control plane recovers.
func TestPutWakesWaitersBeforePublish(t *testing.T) {
	inner := gcs.NewStore(1)
	ctrl := &blockingCtrl{API: inner, gate: make(chan struct{})}
	s := New(testNode(1), ctrl, 0)
	id := testObj(370)
	w := s.WaitChan(id)
	putDone := make(chan error, 1)
	go func() { putDone <- s.Put(id, []byte("x")) }()
	select {
	case <-w:
		// Woken while AddObjectLocation is still hung: correct order.
	case <-time.After(2 * time.Second):
		t.Fatal("local waiter blocked behind the control-plane publish")
	}
	if _, ok := s.Get(id); !ok {
		t.Fatal("object not readable after waiter woke")
	}
	close(ctrl.gate)
	if err := <-putDone; err != nil {
		t.Fatal(err)
	}
	if info, ok := inner.GetObject(id); !ok || !info.HasLocation(s.Node()) {
		t.Fatal("location never published after control plane recovered")
	}
}

// TestRestoreSingleFlight: concurrent Gets of one spilled object must
// collapse into a single tier read.
func TestRestoreSingleFlight(t *testing.T) {
	tier := &countTier{mapTier: newMapTier()}
	s := New(testNode(1), gcs.NewStore(1), 20)
	s.SetSpillTier(tier)
	s.SetRefChecker(func(types.ObjectID) bool { return true })
	a := testObj(330)
	payload := []byte("fifteen-bytes!!")
	s.Put(a, payload)
	s.Put(testObj(331), make([]byte, 15)) // pressure: spills a
	if tier.restoreCalls.Load() != 0 {
		t.Fatal("setup: restore before any Get")
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan string, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			data, ok := s.Get(a)
			if !ok || string(data) != string(payload) {
				errs <- "bad data from concurrent restore"
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if n := tier.restoreCalls.Load(); n != 1 {
		t.Fatalf("restore called %d times, want 1 (single-flight)", n)
	}
}

// TestSpillRollbackOnTierFailure: a failed tier write must re-admit the
// victim (no data loss, accounting intact) and surface ErrStoreFull to the
// Put that needed the room.
func TestSpillRollbackOnTierFailure(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 20)
	s.SetSpillTier(failSpillTier{newMapTier()})
	s.SetRefChecker(func(types.ObjectID) bool { return true })
	a := testObj(340)
	payload := []byte("survives-the-failed-spill")[:15]
	s.Put(a, payload)
	err := s.Put(testObj(341), make([]byte, 10))
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("Put with refused spill = %v, want ErrStoreFull", err)
	}
	data, ok := s.Get(a)
	if !ok || string(data) != string(payload) {
		t.Fatal("victim lost after failed spill")
	}
	if s.Used() != 15 || s.SpilledBytes() != 0 {
		t.Fatalf("accounting after rollback: used %d spilled %d", s.Used(), s.SpilledBytes())
	}
}

// TestDeleteDuringSpill: deleting the victim while its tier write is in
// flight must settle accounting exactly once, leave no tier file behind,
// and let the evicting Put complete.
func TestDeleteDuringSpill(t *testing.T) {
	tier := newGateTier()
	s := New(testNode(1), gcs.NewStore(1), 20)
	s.SetSpillTier(tier)
	s.SetRefChecker(func(types.ObjectID) bool { return true })
	a, b := testObj(350), testObj(351)
	s.Put(a, make([]byte, 15))
	putDone := make(chan error, 1)
	go func() { putDone <- s.Put(b, make([]byte, 10)) }()
	<-tier.enter // spill of a is mid-write
	if !s.Delete(a) {
		t.Fatal("Delete of spilling entry returned false")
	}
	close(tier.release)
	if err := <-putDone; err != nil {
		t.Fatalf("evicting Put: %v", err)
	}
	if s.Contains(a) {
		t.Fatal("deleted entry still present")
	}
	// The spiller's finalize must have cleaned up the file it wrote.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tier.mu.Lock()
		_, fileLeft := tier.data[a]
		tier.mu.Unlock()
		if !fileLeft {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tier file leaked after Delete raced an in-flight spill")
		}
		time.Sleep(time.Millisecond)
	}
	if s.Used() != 10 || s.SpilledBytes() != 0 {
		t.Fatalf("accounting: used %d spilled %d, want 10/0", s.Used(), s.SpilledBytes())
	}
}

// TestDeleteDuringRestore: a Delete racing an in-flight restore must not
// corrupt accounting; the concurrent Get may serialize before the Delete
// (serving the bytes) or after it (reporting absent) — both are legal.
func TestDeleteDuringRestore(t *testing.T) {
	tier := newGateRestoreTier()
	s := New(testNode(1), gcs.NewStore(1), 20)
	s.SetSpillTier(tier)
	s.SetRefChecker(func(types.ObjectID) bool { return true })
	a, b := testObj(360), testObj(361)
	payload := []byte("restored-bytes!")[:15]
	s.Put(a, payload)
	s.Put(b, make([]byte, 15)) // spills a
	type res struct {
		data []byte
		ok   bool
	}
	getDone := make(chan res, 1)
	go func() {
		data, ok := s.Get(a)
		getDone <- res{data, ok}
	}()
	<-tier.enter // restore of a is mid-read
	if !s.Delete(a) {
		t.Fatal("Delete of restoring entry returned false")
	}
	close(tier.release)
	r := <-getDone
	if r.ok && string(r.data) != string(payload) {
		t.Fatal("Get served corrupt bytes across a racing Delete")
	}
	if s.Contains(a) {
		t.Fatal("deleted entry still present")
	}
	if s.Used() != 15 || s.SpilledBytes() != 0 {
		t.Fatalf("accounting: used %d spilled %d, want 15/0", s.Used(), s.SpilledBytes())
	}
}

// TestStateMachineStressRace hammers Put/Get/GetRange/Delete against
// spill/restore with a deliberately slow tier and a refcount oracle that
// blocks mid-run (simulated shard failover). Run under -race. Asserts no
// lost bytes (every surviving object reads back exactly), no double-freed
// accounting (recomputed from the entry table), and a drained publish
// pipeline that matches the control plane.
func TestStateMachineStressRace(t *testing.T) {
	const (
		workers   = 8
		perWorker = 24
		objSize   = 1 << 10
		capacity  = 48 << 10 // working set is 4x memory
	)
	ctrl := gcs.NewStore(8)
	oracle := &blockableOracle{}
	tier := slowTier{newMapTier(), 200 * time.Microsecond}
	s := New(testNode(1), ctrl, capacity)
	s.SetSpillTier(tier)
	s.SetRefChecker(oracle.referenced)

	payload := func(i int) []byte {
		buf := make([]byte, objSize)
		for j := range buf {
			buf[j] = byte(i * (j + 1))
		}
		return buf
	}
	obj := func(i int) types.ObjectID { return testObj(uint64(400 + i)) }

	// present[i] is owned by worker i/perWorker: true after Put, false
	// after Delete. Readers of any object only verify content, never
	// presence (presence races are the point).
	var present [workers * perWorker]atomic.Bool

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			base := w * perWorker
			for step := 0; ; step++ {
				select {
				case <-stop:
					return
				default:
				}
				i := base + rnd.Intn(perWorker)
				switch rnd.Intn(10) {
				case 0: // delete own object
					if s.Delete(obj(i)) {
						present[i].Store(false)
					}
				case 1, 2: // (re-)put own object
					if err := s.Put(obj(i), payload(i)); err != nil {
						fail <- "Put: " + err.Error()
						return
					}
					present[i].Store(true)
				case 3, 4: // range-read any object
					j := rnd.Intn(workers * perWorker)
					off := int64(rnd.Intn(objSize))
					if data, ok := s.GetRange(obj(j), off, 128); ok {
						want := payload(j)[off:min(off+128, objSize)]
						if string(data) != string(want) {
							fail <- "GetRange returned wrong bytes"
							return
						}
					}
				default: // read any object
					j := rnd.Intn(workers * perWorker)
					if data, ok := s.Get(obj(j)); ok {
						if len(data) != objSize || data[1] != byte(j*2) {
							fail <- "Get returned wrong bytes"
							return
						}
					}
				}
			}
		}(w)
	}

	// Shake the failover window twice: oracle hangs, in-flight evictions
	// park outside the lock, then resume.
	for round := 0; round < 2; round++ {
		time.Sleep(50 * time.Millisecond)
		oracle.block()
		time.Sleep(20 * time.Millisecond)
		oracle.unblock()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// Quiesce: wait out in-flight transitions and the publish pipeline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		idle := s.inflight == 0 && len(s.pubActive) == 0
		s.mu.Unlock()
		if idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never quiesced")
		}
		time.Sleep(time.Millisecond)
	}

	// Accounting invariant: used/spilled recomputed from the entry table
	// must match the maintained counters — a double-free or lost update
	// diverges here.
	s.mu.Lock()
	var used, spilled int64
	for _, e := range s.objects {
		switch e.state {
		case stateResident, stateSpilling:
			used += e.size
		case stateSpilled, stateRestoring:
			spilled += e.size
		}
	}
	gotUsed, gotSpilled := s.used, s.spilled
	lruLen := s.lru.len
	s.mu.Unlock()
	if used != gotUsed || spilled != gotSpilled {
		t.Fatalf("accounting drift: counters used=%d spilled=%d, entries used=%d spilled=%d",
			gotUsed, gotSpilled, used, spilled)
	}
	if gotUsed > capacity {
		t.Fatalf("used %d exceeds capacity %d after quiesce", gotUsed, capacity)
	}
	if lruLen > len(s.objects) {
		t.Fatalf("LRU list (%d) larger than object table (%d)", lruLen, len(s.objects))
	}

	// No lost bytes: every object whose owner last Put it must read back
	// exactly (resident or restored from the tier).
	for i := 0; i < workers*perWorker; i++ {
		if !present[i].Load() {
			continue
		}
		data, ok := s.Get(obj(i))
		if !ok {
			t.Fatalf("object %d lost: last owner op was Put", i)
		}
		want := payload(i)
		if string(data) != string(want) {
			t.Fatalf("object %d corrupt after stress", i)
		}
		// The publish pipeline has drained: the control plane must agree.
		if info, ok := ctrl.GetObject(obj(i)); !ok || !info.HasLocation(s.Node()) {
			t.Fatalf("object %d present locally but location not published", i)
		}
	}
}
