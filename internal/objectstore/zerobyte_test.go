package objectstore

import (
	"testing"

	"repro/internal/gcs"
	"repro/internal/transport"
)

// TestGetRangeZeroByteObject: a (0, n) range read of an empty object is
// valid and yields the empty payload, matching Get. Before the fix the
// offset >= size rejection held for every offset, so empty objects were
// range-readable nowhere even though whole-object reads served them fine.
func TestGetRangeZeroByteObject(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(130)
	if err := s.Put(id, []byte{}); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetRange(id, 0, 16)
	if !ok {
		t.Fatal("(0, n) range of an empty object reported absent")
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("range = %v, want empty non-nil slice", got)
	}
	// Any positive offset is past the end of an empty object.
	if _, ok := s.GetRange(id, 1, 1); ok {
		t.Fatal("offset past the end of an empty object was served")
	}
	// Degenerate requests stay rejected regardless of size.
	if _, ok := s.GetRange(id, -1, 4); ok {
		t.Fatal("negative offset served")
	}
	if _, ok := s.GetRange(id, 0, 0); ok {
		t.Fatal("zero-length request served")
	}
	if _, ok := s.GetRange(id, 0, -3); ok {
		t.Fatal("negative length served")
	}
}

// TestPullChunkZeroByteObject drives the same fix through the wire path:
// the chunk handler rides GetRange, so a peer's (0, n) chunk request for
// an empty object must answer with an empty payload, not ErrBadChunk.
func TestPullChunkZeroByteObject(t *testing.T) {
	s := New(testNode(2), gcs.NewStore(1), 0)
	id := testObj(131)
	if err := s.Put(id, []byte{}); err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer()
	RegisterPullHandler(srv, s)
	nw := transport.NewInproc(0)
	closer, err := nw.Listen("src", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	cl, err := nw.Dial("src")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Call(PullChunkMethod, EncodeChunkRequest(id, 0, 4096))
	if err != nil {
		t.Fatalf("chunk pull of empty object: %v", err)
	}
	if len(resp) != 0 {
		t.Fatalf("chunk pull returned %d bytes from an empty object", len(resp))
	}
	// A positive offset into an empty object is a bad chunk, not absence.
	if _, err := cl.Call(PullChunkMethod, EncodeChunkRequest(id, 1, 1)); err == nil {
		t.Fatal("out-of-range chunk request on an empty object succeeded")
	}
}
