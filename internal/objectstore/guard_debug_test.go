//go:build storedebug

package objectstore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/gcs"
)

func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	msg := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f()
	}()
	return msg
}

// TestZeroCopyMutationGuard: Get hands out the store's internal buffer
// under the read-only borrow contract (DESIGN.md); a task that writes into
// it corrupts the object for every later reader. Under -tags storedebug
// the pin guard must catch the mutation at Unpin and name the object.
func TestZeroCopyMutationGuard(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(140)
	if err := s.Put(id, []byte("immutable")); err != nil {
		t.Fatal(err)
	}
	s.Pin(id)
	buf, ok := s.Get(id)
	if !ok {
		t.Fatal("Get missed a resident object")
	}
	buf[0] = 'X' // the bug under test: a task scribbling on its borrowed arg
	msg := mustPanic(t, func() { s.Unpin(id) })
	if msg == "" {
		t.Fatal("mutating a pinned borrowed buffer went undetected at Unpin")
	}
	if !strings.Contains(msg, "mutated while borrowed") {
		t.Fatalf("guard panic = %q", msg)
	}
	if !strings.Contains(msg, fmt.Sprintf("%v", id)) {
		t.Fatalf("guard panic does not name the object: %q", msg)
	}
}

// TestZeroCopyGuardAllowsReaders: well-behaved borrowers — including
// nested pins of the same object, the aliased-argument shape — pass the
// guard, and the checksum record is dropped with the last pin so a later
// legitimate rewrite of the buffer (e.g. restore after spill) starts a
// fresh pin cycle cleanly.
func TestZeroCopyGuardAllowsReaders(t *testing.T) {
	s := New(testNode(1), gcs.NewStore(1), 0)
	id := testObj(141)
	if err := s.Put(id, []byte("read-only")); err != nil {
		t.Fatal(err)
	}
	s.Pin(id)
	s.Pin(id) // aliased arg: second pin of the same buffer
	if _, ok := s.Get(id); !ok {
		t.Fatal("Get missed a resident object")
	}
	s.Unpin(id)
	s.Unpin(id)
	// A fresh pin cycle re-checksums from scratch.
	s.Pin(id)
	s.Unpin(id)
	if got := s.PinCount(id); got != 0 {
		t.Fatalf("PinCount = %d after balanced pin cycles", got)
	}
}
