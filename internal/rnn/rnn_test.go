package rnn

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/types"
)

func fastConfig(seed uint64) Config {
	cfg := Default(seed)
	cfg.BaseCost = 200 * time.Microsecond
	return cfg
}

func vecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func rnnCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	reg := core.NewRegistry()
	RegisterFuncs(reg)
	c, err := cluster.New(cluster.Config{Nodes: 1, NodeResources: types.CPU(8), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestLayerCostHeterogeneity(t *testing.T) {
	cfg := Default(1)
	if cfg.LayerCost(0) >= cfg.LayerCost(3) {
		t.Fatal("layer costs not increasing — heterogeneity (R4) missing")
	}
}

func TestSerialDeterministic(t *testing.T) {
	cfg := fastConfig(11)
	a, b := RunSerial(cfg), RunSerial(cfg)
	if !vecEqual(a.Output, b.Output) {
		t.Fatal("serial runs diverge for one seed")
	}
	if a.Tasks != cfg.Layers*cfg.Timesteps {
		t.Fatalf("tasks = %d", a.Tasks)
	}
	// Output must be non-trivial (tanh saturating to same value everywhere
	// would indicate dead weights).
	allSame := true
	for i := 1; i < len(a.Output); i++ {
		if a.Output[i] != a.Output[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("degenerate output")
	}
}

func TestDataflowMatchesSerial(t *testing.T) {
	cfg := fastConfig(12)
	serial := RunSerial(cfg)
	c := rnnCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunDataflow(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(rep.Output, serial.Output) {
		t.Fatalf("dataflow output diverges from serial")
	}
	if rep.Tasks != serial.Tasks {
		t.Fatalf("task counts differ: %d vs %d", rep.Tasks, serial.Tasks)
	}
}

func TestBarrieredMatchesSerial(t *testing.T) {
	cfg := fastConfig(13)
	serial := RunSerial(cfg)
	c := rnnCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunBarriered(ctx, c.Driver(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(rep.Output, serial.Output) {
		t.Fatal("barriered output diverges from serial")
	}
}

func TestDifferentSeedsDifferentOutputs(t *testing.T) {
	a := RunSerial(fastConfig(1))
	b := RunSerial(fastConfig(2))
	if vecEqual(a.Output, b.Output) {
		t.Fatal("different seeds produced identical outputs")
	}
}
