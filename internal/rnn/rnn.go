// Package rnn implements the paper's Figure 2c workload: a recurrent
// neural network unrolled over time as a task graph. Cell (l, t) — layer l
// at timestep t — depends on its own layer's previous state (l, t-1) and on
// the layer below's output (l-1, t), and "the RNN consists of different
// functions for each layer, each of which may require different amounts of
// computation" (R4). The resulting diagonal-wavefront dependencies are
// exactly the "arbitrary dataflow" of R5 that BSP staging cannot express
// without inserting barriers.
//
// Two drivers run the identical network: RunDataflow submits all L×T cell
// tasks up front with fine-grained dependencies (wavefront parallelism
// emerges from the dataflow), and RunBarriered inserts a driver-side
// barrier after every timestep (the BSP rendition). Experiment E11
// compares their makespans.
package rnn

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// FuncCell is the remote cell function's registry name.
const FuncCell = "rnn.cell"

// Config shapes the unrolled network.
type Config struct {
	// Layers is the network depth (L).
	Layers int
	// Timesteps is the unroll length (T).
	Timesteps int
	// Hidden is the state vector width.
	Hidden int
	// BaseCost is layer 0's compute; layer l costs BaseCost*(1 + l*CostSkew)
	// — the heterogeneity of Fig 2c.
	BaseCost time.Duration
	CostSkew float64
	// Seed derives deterministic weights and inputs.
	Seed uint64
}

// Default returns a small heterogeneous network.
func Default(seed uint64) Config {
	return Config{Layers: 4, Timesteps: 8, Hidden: 16, BaseCost: 2 * time.Millisecond, CostSkew: 0.75, Seed: seed}
}

// LayerCost is layer l's kernel duration.
func (c Config) LayerCost(l int) time.Duration {
	return time.Duration(float64(c.BaseCost) * (1 + float64(l)*c.CostSkew))
}

// cellArg is the wire argument of FuncCell.
type cellArg struct {
	Layer  int
	Step   int
	Hidden int
	CostNs int64
	Seed   uint64
}

// cellCompute is the shared cell body: h' = tanh(mix(h, x)) with weights
// derived from (seed, layer), after burning the layer's kernel cost.
func cellCompute(arg cellArg, h, x []float64) []float64 {
	sim.Compute(time.Duration(arg.CostNs))
	out := make([]float64, arg.Hidden)
	// Deterministic pseudo-weights from (seed, layer).
	w := func(i, j int) float64 {
		v := arg.Seed ^ uint64(arg.Layer)<<32 ^ uint64(i)<<16 ^ uint64(j)
		v ^= v >> 12
		v ^= v << 25
		v ^= v >> 27
		return (float64((v*0x2545f4914f6cdd1d)>>11)/float64(1<<53))*2 - 1
	}
	for i := 0; i < arg.Hidden; i++ {
		s := 0.0
		for j := 0; j < arg.Hidden; j++ {
			var hv, xv float64
			if j < len(h) {
				hv = h[j]
			}
			if j < len(x) {
				xv = x[j]
			}
			s += w(i, j)*hv + w(i, j+arg.Hidden)*xv
		}
		out[i] = math.Tanh(s / float64(arg.Hidden))
	}
	return out
}

// RegisterFuncs installs the cell function.
func RegisterFuncs(reg *core.Registry) {
	// FuncCell: args = [gob(cellArg), gob([]float64 h_prev),
	// gob([]float64 x_below)] -> gob([]float64 h).
	reg.Register(FuncCell, func(tc *core.TaskContext, args [][]byte) ([][]byte, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("rnn.cell expects 3 args, got %d", len(args))
		}
		arg, err := codec.DecodeAs[cellArg](args[0])
		if err != nil {
			return nil, err
		}
		h, err := codec.DecodeAs[[]float64](args[1])
		if err != nil {
			return nil, err
		}
		x, err := codec.DecodeAs[[]float64](args[2])
		if err != nil {
			return nil, err
		}
		out := cellCompute(arg, h, x)
		enc, err := codec.Encode(out)
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	})
}

// inputs derives the deterministic input sequence.
func (c Config) inputs() [][]float64 {
	xs := make([][]float64, c.Timesteps)
	for t := range xs {
		x := make([]float64, c.Hidden)
		for i := range x {
			v := c.Seed ^ uint64(t)<<20 ^ uint64(i)
			v ^= v >> 12
			v ^= v << 25
			v ^= v >> 27
			x[i] = (float64((v*0x2545f4914f6cdd1d)>>11)/float64(1<<53))*2 - 1
		}
		xs[t] = x
	}
	return xs
}

func (c Config) cellArgFor(l, t int) cellArg {
	return cellArg{Layer: l, Step: t, Hidden: c.Hidden, CostNs: int64(c.LayerCost(l)), Seed: c.Seed}
}

// Report is a completed run.
type Report struct {
	Impl    string
	Elapsed time.Duration
	Tasks   int
	// Output is the top layer's final hidden state: identical across
	// drivers for one seed (the equivalence check).
	Output []float64
}

// RunSerial computes the network single-threaded (ground truth).
func RunSerial(cfg Config) Report {
	start := time.Now()
	xs := cfg.inputs()
	h := make([][]float64, cfg.Layers) // h[l] = layer l's last state
	tasks := 0
	for t := 0; t < cfg.Timesteps; t++ {
		below := xs[t]
		for l := 0; l < cfg.Layers; l++ {
			h[l] = cellCompute(cfg.cellArgFor(l, t), h[l], below)
			below = h[l]
			tasks++
		}
	}
	return Report{Impl: "serial", Elapsed: time.Since(start), Tasks: tasks, Output: h[cfg.Layers-1]}
}

func submitCell(driver *core.Client, cfg Config, l, t int, hPrev, xBelow types.Arg) (core.ObjectRef, error) {
	return driver.Submit1(core.Call{
		Function:  FuncCell,
		Args:      []types.Arg{core.Val(cfg.cellArgFor(l, t)), hPrev, xBelow},
		Resources: types.CPU(1),
	})
}

// RunDataflow submits every cell task up front; the wavefront parallelism
// of Fig 2c emerges purely from the dependency structure (R5).
func RunDataflow(ctx context.Context, driver *core.Client, cfg Config) (Report, error) {
	start := time.Now()
	xs := cfg.inputs()
	zero := core.Val([]float64(nil))
	hRef := make([]core.ObjectRef, cfg.Layers) // last state ref per layer
	tasks := 0
	for t := 0; t < cfg.Timesteps; t++ {
		belowArg := core.Val(xs[t])
		for l := 0; l < cfg.Layers; l++ {
			hArg := zero
			if t > 0 {
				hArg = core.RefOf(hRef[l])
			}
			ref, err := submitCell(driver, cfg, l, t, hArg, belowArg)
			if err != nil {
				return Report{}, err
			}
			hRef[l] = ref
			belowArg = core.RefOf(ref)
			tasks++
		}
	}
	raw, err := driver.Get(ctx, hRef[cfg.Layers-1])
	if err != nil {
		return Report{}, err
	}
	out, err := codec.DecodeAs[[]float64](raw)
	if err != nil {
		return Report{}, err
	}
	return Report{Impl: "dataflow", Elapsed: time.Since(start), Tasks: tasks, Output: out}, nil
}

// RunBarriered is the BSP rendition: the driver blocks on every timestep's
// outputs before submitting the next — the barrier Fig 2c's shape makes
// wasteful, since layer 0 of step t+1 needs nothing from layer L of step t.
func RunBarriered(ctx context.Context, driver *core.Client, cfg Config) (Report, error) {
	start := time.Now()
	xs := cfg.inputs()
	zero := core.Val([]float64(nil))
	hRef := make([]core.ObjectRef, cfg.Layers)
	tasks := 0
	for t := 0; t < cfg.Timesteps; t++ {
		belowArg := core.Val(xs[t])
		for l := 0; l < cfg.Layers; l++ {
			hArg := zero
			if t > 0 {
				hArg = core.RefOf(hRef[l])
			}
			ref, err := submitCell(driver, cfg, l, t, hArg, belowArg)
			if err != nil {
				return Report{}, err
			}
			hRef[l] = ref
			belowArg = core.RefOf(ref)
			tasks++
		}
		// The barrier: wait for the whole timestep before continuing.
		refs := make([]core.ObjectRef, cfg.Layers)
		copy(refs, hRef)
		if _, _, err := driver.Wait(ctx, refs, cfg.Layers, -1); err != nil {
			return Report{}, err
		}
	}
	raw, err := driver.Get(ctx, hRef[cfg.Layers-1])
	if err != nil {
		return Report{}, err
	}
	out, err := codec.DecodeAs[[]float64](raw)
	if err != nil {
		return Report{}, err
	}
	return Report{Impl: "barriered", Elapsed: time.Since(start), Tasks: tasks, Output: out}, nil
}
