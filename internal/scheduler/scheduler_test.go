package scheduler

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

func tNode(i uint64) types.NodeID {
	return types.NodeID(types.DeriveTaskID(types.NilTaskID, 9000+i))
}

func tSpec(i uint64, res types.Resources, deps ...types.ObjectID) types.TaskSpec {
	args := make([]types.Arg, 0, len(deps))
	for _, d := range deps {
		args = append(args, types.RefArg(d))
	}
	if res == nil {
		res = types.CPU(1)
	}
	return types.TaskSpec{
		ID:         types.DeriveTaskID(types.NilTaskID, i),
		Function:   "f",
		NumReturns: 1,
		Resources:  res,
		Args:       args,
	}
}

// testLocal builds a local scheduler whose Exec records executions.
type execLog struct {
	mu    sync.Mutex
	order []types.TaskID
	seen  map[types.TaskID]bool
	ch    chan types.TaskID
}

func newExecLog() *execLog {
	return &execLog{seen: make(map[types.TaskID]bool), ch: make(chan types.TaskID, 256)}
}

func (e *execLog) exec(ctrl gcs.API, node types.NodeID, store *objectstore.Store) ExecFunc {
	return func(ctx context.Context, spec types.TaskSpec, args [][]byte) {
		e.mu.Lock()
		e.order = append(e.order, spec.ID)
		e.seen[spec.ID] = true
		e.mu.Unlock()
		// Emulate the worker: store returns, mark finished.
		for i := 0; i < spec.NumReturns; i++ {
			_ = store.Put(spec.ReturnID(i), []byte("r"))
		}
		ctrl.SetTaskStatus(spec.ID, types.TaskFinished, node, types.NilWorkerID, "")
		e.ch <- spec.ID
	}
}

func buildLocal(t *testing.T, total types.Resources, spillThreshold int) (*Local, *execLog, *gcs.Store, *objectstore.Store) {
	t.Helper()
	ctrl := gcs.NewStore(4)
	nid := tNode(1)
	ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "x", Total: total})
	store := objectstore.New(nid, ctrl, 0)
	log := newExecLog()
	l := NewLocal(LocalConfig{
		Node:            nid,
		Total:           total,
		Ctrl:            ctrl,
		Store:           store,
		SpillThreshold:  spillThreshold,
		DepPollInterval: 5 * time.Millisecond,
	})
	l.SetExec(log.exec(ctrl, nid, store))
	l.Start()
	t.Cleanup(l.Stop)
	return l, log, ctrl, store
}

func waitExec(t *testing.T, log *execLog, want types.TaskID) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case id := <-log.ch:
			if id == want {
				return
			}
		case <-deadline:
			t.Fatalf("task %v never executed", want)
		}
	}
}

func TestImmediateDispatch(t *testing.T) {
	l, log, _, _ := buildLocal(t, types.CPU(2), SpillNever)
	spec := tSpec(1, nil)
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
}

func TestDependencyGatesDispatch(t *testing.T) {
	l, log, ctrl, store := buildLocal(t, types.CPU(2), SpillNever)
	dep := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 777), 0)
	ctrl.EnsureObject(dep, types.DeriveTaskID(types.NilTaskID, 777))
	spec := tSpec(2, nil, dep)
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-log.ch:
		t.Fatal("task ran before its dependency existed")
	case <-time.After(50 * time.Millisecond):
	}
	if l.WaitingLen() != 1 {
		t.Fatalf("waiting = %d", l.WaitingLen())
	}
	// Satisfy the dependency locally.
	if err := store.Put(dep, []byte("d")); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
}

func TestInfeasibleTaskSpills(t *testing.T) {
	l, _, ctrl, _ := buildLocal(t, types.CPU(2), SpillNever)
	sub := ctrl.SubscribeSpill()
	defer sub.Close()
	spec := tSpec(3, types.GPU(1, 1)) // no GPU on this node
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	select {
	case raw := <-sub.C():
		got, err := gcs.DecodeSpillSpec(raw)
		if err != nil || got.ID != spec.ID {
			t.Fatalf("bad spill payload: %v %v", got.ID, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("infeasible task did not spill")
	}
	_, spilled, _ := l.Stats()
	if spilled != 1 {
		t.Fatalf("spilled = %d", spilled)
	}
}

func TestSpillAlwaysForwardsEverything(t *testing.T) {
	l, _, ctrl, _ := buildLocal(t, types.CPU(2), SpillAlways)
	sub := ctrl.SubscribeSpill()
	defer sub.Close()
	for i := uint64(10); i < 14; i++ {
		if err := l.Submit(tSpec(i, nil), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-sub.C():
		case <-time.After(2 * time.Second):
			t.Fatalf("spill %d missing", i)
		}
	}
}

func TestPlacedTaskNeverSpills(t *testing.T) {
	l, log, _, _ := buildLocal(t, types.CPU(2), SpillAlways)
	spec := tSpec(20, nil)
	if err := l.Submit(spec, true); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
}

func TestResourceBoundedConcurrency(t *testing.T) {
	ctrl := gcs.NewStore(4)
	nid := tNode(2)
	ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "x", Total: types.CPU(2)})
	store := objectstore.New(nid, ctrl, 0)
	var running, peak atomic.Int32
	done := make(chan struct{}, 64)
	l := NewLocal(LocalConfig{Node: nid, Total: types.CPU(2), Ctrl: ctrl, Store: store, SpillThreshold: SpillNever})
	l.SetExec(func(ctx context.Context, spec types.TaskSpec, args [][]byte) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		running.Add(-1)
		ctrl.SetTaskStatus(spec.ID, types.TaskFinished, nid, types.NilWorkerID, "")
		done <- struct{}{}
	})
	l.Start()
	defer l.Stop()
	for i := uint64(30); i < 42; i++ {
		if err := l.Submit(tSpec(i, types.CPU(1)), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d tasks finished", i)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("resource accounting violated: %d concurrent tasks on 2 CPUs", p)
	}
}

func TestDuplicateSubmissionDropped(t *testing.T) {
	l, log, _, _ := buildLocal(t, types.CPU(2), SpillNever)
	spec := tSpec(50, nil)
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
	// Outputs intact: duplicate must not re-execute.
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-log.ch:
		t.Fatalf("duplicate execution of %v", id)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestReplayAfterOutputLoss(t *testing.T) {
	l, log, _, store := buildLocal(t, types.CPU(2), SpillNever)
	spec := tSpec(51, nil)
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
	// Lose the output; resubmission must re-execute (lineage replay).
	store.DropAll()
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
}

func TestStopRejectsSubmissions(t *testing.T) {
	l, _, _, _ := buildLocal(t, types.CPU(1), SpillNever)
	l.Stop()
	if err := l.Submit(tSpec(60, nil), false); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
}

// --- resource pool ---

func TestResourcePoolAcquireRelease(t *testing.T) {
	p := newResourcePool(types.CPU(2))
	if !p.tryAcquire(types.CPU(2)) {
		t.Fatal("acquire failed")
	}
	if p.tryAcquire(types.CPU(1)) {
		t.Fatal("overcommitted")
	}
	p.release(types.CPU(2))
	if !p.tryAcquire(types.CPU(1)) {
		t.Fatal("release lost capacity")
	}
}

func TestResourcePoolBlockingAcquire(t *testing.T) {
	p := newResourcePool(types.CPU(1))
	p.tryAcquire(types.CPU(1))
	stop := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- p.acquireBlocking(types.CPU(1), stop, 0) }()
	time.Sleep(20 * time.Millisecond)
	p.release(types.CPU(1))
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("blocking acquire failed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking acquire hung")
	}
}

func TestResourcePoolAcquireAbort(t *testing.T) {
	p := newResourcePool(types.CPU(1))
	p.tryAcquire(types.CPU(1))
	stop := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- p.acquireBlocking(types.CPU(1), stop, 0) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case ok := <-got:
		if ok {
			t.Fatal("acquire succeeded after stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aborted acquire hung")
	}
	// Capacity must be intact.
	p.release(types.CPU(1))
	_, avail := p.snapshot()
	if avail[types.ResCPU] != 1 {
		t.Fatalf("capacity leaked: %v", avail)
	}
}

// Property: any sequence of acquire/release pairs leaves availability equal
// to total.
func TestResourcePoolBalance(t *testing.T) {
	f := func(ops []uint8) bool {
		p := newResourcePool(types.CPU(8))
		held := 0
		for _, op := range ops {
			if op%2 == 0 && held < 8 {
				if p.tryAcquire(types.CPU(1)) {
					held++
				}
			} else if held > 0 {
				p.release(types.CPU(1))
				held--
			}
		}
		for ; held > 0; held-- {
			p.release(types.CPU(1))
		}
		_, avail := p.snapshot()
		return avail[types.ResCPU] == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- policies ---

func snap(i uint64, cpu float64, queue int, locality int64) NodeSnapshot {
	return NodeSnapshot{
		Info:          types.NodeInfo{ID: tNode(i), Alive: true, Available: types.CPU(cpu), QueueLen: queue},
		LocalityBytes: locality,
	}
}

func TestLocalityPolicyPrefersData(t *testing.T) {
	p := LocalityPolicy{}
	nodes := []NodeSnapshot{snap(1, 8, 0, 0), snap(2, 1, 9, 1<<20)}
	id, ok := p.Pick(types.TaskSpec{}, nodes)
	if !ok || id != tNode(2) {
		t.Fatalf("picked %v", id)
	}
}

func TestLocalityPolicyTieBreaksByCPU(t *testing.T) {
	p := LocalityPolicy{}
	nodes := []NodeSnapshot{snap(1, 2, 0, 0), snap(2, 6, 0, 0)}
	id, _ := p.Pick(types.TaskSpec{}, nodes)
	if id != tNode(2) {
		t.Fatalf("picked %v", id)
	}
}

// TestLocalityPolicySpreadsFullTies: when every candidate looks identical
// (the stale-heartbeat burst case), repeated picks must not herd onto a
// single node.
func TestLocalityPolicySpreadsFullTies(t *testing.T) {
	p := LocalityPolicy{}
	nodes := []NodeSnapshot{snap(1, 2, 0, 0), snap(2, 2, 0, 0), snap(3, 2, 0, 0), snap(4, 2, 0, 0)}
	picked := map[types.NodeID]bool{}
	for i := 0; i < 200; i++ {
		id, ok := p.Pick(types.TaskSpec{}, nodes)
		if !ok {
			t.Fatal("no pick")
		}
		picked[id] = true
	}
	if len(picked) < 2 {
		t.Fatalf("200 tied picks all landed on one node: %v", picked)
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	p := LeastLoadedPolicy{}
	nodes := []NodeSnapshot{snap(1, 8, 5, 0), snap(2, 1, 1, 0)}
	id, _ := p.Pick(types.TaskSpec{}, nodes)
	if id != tNode(2) {
		t.Fatalf("picked %v", id)
	}
}

func TestRoundRobinPolicyRotates(t *testing.T) {
	p := &RoundRobinPolicy{}
	nodes := []NodeSnapshot{snap(1, 1, 0, 0), snap(2, 1, 0, 0)}
	a, _ := p.Pick(types.TaskSpec{}, nodes)
	b, _ := p.Pick(types.TaskSpec{}, nodes)
	if a == b {
		t.Fatal("round robin did not rotate")
	}
}

func TestPoliciesRejectEmpty(t *testing.T) {
	if _, ok := (LocalityPolicy{}).Pick(types.TaskSpec{}, nil); ok {
		t.Fatal("locality picked from nothing")
	}
	if _, ok := (LeastLoadedPolicy{}).Pick(types.TaskSpec{}, nil); ok {
		t.Fatal("least-loaded picked from nothing")
	}
	if _, ok := (&RoundRobinPolicy{}).Pick(types.TaskSpec{}, nil); ok {
		t.Fatal("round-robin picked from nothing")
	}
}

// TestGlobalSweepRescuesUnclaimedPending models a spill publish lost to a
// control-plane shard crash: the task is durably PENDING but no global
// scheduler ever saw it on the spill channel. The pending-task sweep must
// find and place it; a task already claimed (QUEUED) must not be swept.
func TestGlobalSweepRescuesUnclaimedPending(t *testing.T) {
	ctrl := gcs.NewStore(2)
	nid := tNode(60)
	ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "x", Total: types.CPU(4)})

	lost := tSpec(61, nil)
	ctrl.AddTask(types.TaskState{Spec: lost, Status: types.TaskPending, Node: nid})
	claimed := tSpec(62, nil)
	ctrl.AddTask(types.TaskState{Spec: claimed, Status: types.TaskPending, Node: nid})
	ctrl.SetTaskStatus(claimed.ID, types.TaskQueued, nid, types.NilWorkerID, "")

	placed := make(chan types.TaskID, 8)
	g := NewGlobal(GlobalConfig{
		Ctrl: ctrl,
		Assign: func(id types.NodeID, addr string, spec types.TaskSpec) error {
			placed <- spec.ID
			return nil
		},
		RetryInterval: 10 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
		SweepAge:      time.Nanosecond,
	})
	g.Start()
	defer g.Stop()

	select {
	case id := <-placed:
		if id != lost.ID {
			t.Fatalf("sweep placed %v, want the unclaimed pending task %v", id, lost.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unclaimed PENDING task never rescued by the sweep")
	}
	// Give the sweep a few more ticks: the claimed task must stay unswept.
	select {
	case id := <-placed:
		if id == claimed.ID {
			t.Fatal("sweep re-placed a task already claimed QUEUED")
		}
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDuplicateSubmitRestoresLineageEdge: a re-submitted task (e.g. an
// AddTask retry whose original ack died between the task write and the
// object writes on a crashing control-plane shard) must still ensure its
// return objects' Producer edges — without them a later loss of the
// output would be unrecoverable (ErrNotReconstructable).
func TestDuplicateSubmitRestoresLineageEdge(t *testing.T) {
	l, log, ctrl, _ := buildLocal(t, types.CPU(2), SpillNever)
	spec := tSpec(70, nil)
	// Simulate the crash window: the task record exists but EnsureObject
	// never ran for its returns.
	ctrl.AddTask(types.TaskState{Spec: spec, Status: types.TaskPending})
	if _, ok := ctrl.GetObject(spec.ReturnID(0)); ok {
		t.Fatal("setup: object record must not exist yet")
	}
	if err := l.Submit(spec, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, spec.ID)
	info, ok := ctrl.GetObject(spec.ReturnID(0))
	if !ok {
		t.Fatal("return object never recorded")
	}
	if info.Producer != spec.ID {
		t.Fatalf("lineage edge lost: producer = %v", info.Producer)
	}
}
