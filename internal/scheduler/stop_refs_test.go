package scheduler

import (
	"testing"
	"time"

	"repro/internal/chaostest"
	"repro/internal/gcs"
	"repro/internal/lifetime"
	"repro/internal/objectstore"
	"repro/internal/types"
)

// TestStopReturnsQueuedBorrows is the regression test for the abrupt-Stop
// leak: Stop used to abandon the runnable and waiting queues without
// returning their enqueue-time argument borrows, so every dependency of a
// task still queued at shutdown stayed referenced forever. With the
// ledger-backed Stop the chaostest invariants must settle: all refcounts
// drain to zero and the ledger/table conservation law holds.
func TestStopReturnsQueuedBorrows(t *testing.T) {
	ctrl := gcs.NewStore(4)
	nid := tNode(1)
	ctrl.RegisterNode(types.NodeInfo{ID: nid, Addr: "x", Total: types.CPU(4), Alive: true})
	store := objectstore.New(nid, ctrl, 0)

	tracker := lifetime.NewTracker(ctrl)
	tracker.SetNode(nid)
	tracker.Start()
	defer tracker.Stop()

	// The dispatch loop is deliberately NOT started: submitted tasks park
	// in runnable/waiting, which is exactly the state an abrupt Stop
	// abandons.
	l := NewLocal(LocalConfig{
		Node:            nid,
		Total:           types.CPU(4),
		Ctrl:            ctrl,
		Store:           store,
		Refs:            tracker,
		SpillThreshold:  SpillNever,
		DepPollInterval: 5 * time.Millisecond,
	})

	// A runnable task: its dependency is locally resident.
	readyDep := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 500), 0)
	if err := store.Put(readyDep, []byte("dep")); err != nil {
		t.Fatal(err)
	}
	if err := l.Submit(tSpec(1, types.CPU(1), readyDep), false); err != nil {
		t.Fatal(err)
	}
	// A waiting task: its dependency exists in the table but has no copy
	// anywhere yet, so the task parks with resolvers attached.
	pendingDep := types.ObjectIDForReturn(types.DeriveTaskID(types.NilTaskID, 501), 0)
	ctrl.EnsureObject(pendingDep, types.DeriveTaskID(types.NilTaskID, 502))
	if err := l.Submit(tSpec(2, types.CPU(1), pendingDep), false); err != nil {
		t.Fatal(err)
	}

	// Both enqueues flushed their borrows before stamping QUEUED, so the
	// control plane's counts are already positive.
	for _, dep := range []types.ObjectID{readyDep, pendingDep} {
		info, ok := ctrl.GetObject(dep)
		if !ok || info.RefCount != 1 {
			t.Fatalf("dep %v refcount before Stop = %d (ok=%v), want 1", dep, info.RefCount, ok)
		}
	}

	l.Stop()
	l.Stop() // idempotent

	chk := chaostest.New(ctrl)
	chk.AwaitZeroRefcounts(t, 5*time.Second)
	chk.AwaitRefConservation(t, 5*time.Second, map[string]chaostest.Ledger{"n1": tracker})
}
