// Package scheduler implements the paper's hybrid scheduling scheme
// (Section 3.2.2): a per-node Local scheduler that assigns locally-born
// work to local workers when possible, and a Global scheduler that places
// spilled-over tasks using cluster-wide information (resource availability,
// object locality, queue depth).
package scheduler

import (
	"sync"

	"repro/internal/types"
)

// resourcePool tracks a node's resource capacity with blocking acquisition.
// The invariant checked by tests: available never exceeds total and never
// goes negative (types.Resources.Sub panics on underflow).
type resourcePool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total types.Resources
	avail types.Resources
}

func newResourcePool(total types.Resources) *resourcePool {
	p := &resourcePool{total: total.Clone(), avail: total.Clone()}
	if p.total == nil {
		p.total = types.Resources{}
		p.avail = types.Resources{}
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// tryAcquire takes r if currently available.
func (p *resourcePool) tryAcquire(r types.Resources) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !r.Fits(p.avail) {
		return false
	}
	p.avail.Sub(r)
	return true
}

// acquireBlocking waits until r is available or stop closes; reports
// whether the acquisition happened. Used when a blocked task reclaims its
// lent resources.
func (p *resourcePool) acquireBlocking(r types.Resources, stop <-chan struct{}) bool {
	done := make(chan struct{})
	var ok bool
	go func() {
		defer close(done)
		p.mu.Lock()
		defer p.mu.Unlock()
		for !r.Fits(p.avail) {
			select {
			case <-stop:
				return
			default:
			}
			p.cond.Wait()
		}
		p.avail.Sub(r)
		ok = true
	}()
	select {
	case <-done:
		return ok
	case <-stop:
		// Wake the waiter so its goroutine exits; it may still succeed in a
		// race, in which case the resources are immediately returned.
		p.cond.Broadcast()
		<-done
		if ok {
			p.release(r)
		}
		return false
	}
}

// release returns r to the pool and wakes waiters.
func (p *resourcePool) release(r types.Resources) {
	p.mu.Lock()
	p.avail.Add(r)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// snapshot returns copies of (total, available).
func (p *resourcePool) snapshot() (types.Resources, types.Resources) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total.Clone(), p.avail.Clone()
}
