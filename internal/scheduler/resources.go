// Package scheduler implements the paper's hybrid scheduling scheme
// (Section 3.2.2): a per-node Local scheduler that assigns locally-born
// work to local workers when possible, and a Global scheduler that places
// spilled-over tasks using cluster-wide information (resource availability,
// object locality, queue depth).
package scheduler

import (
	"sync"
	"time"

	"repro/internal/types"
)

// resourcePool tracks a node's resource capacity with blocking acquisition.
// The invariant checked by tests: available never exceeds total and never
// goes negative (types.Resources.Sub panics on underflow).
type resourcePool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total types.Resources
	avail types.Resources
	// closed marks a detached bundle pool: blocked acquirers return false
	// and re-resolve their pool (the bundle's capacity moved back to the
	// node's general pool when its reservation was released), acquisitions
	// fail, and releases forward to fwd so a member task finishing after
	// its bundle's release returns capacity to the general pool instead of
	// stranding it in the orphaned bundle.
	closed bool
	fwd    *resourcePool
}

func newResourcePool(total types.Resources) *resourcePool {
	p := &resourcePool{total: total.Clone(), avail: total.Clone()}
	if p.total == nil {
		p.total = types.Resources{}
		p.avail = types.Resources{}
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// tryAcquire takes r if currently available.
func (p *resourcePool) tryAcquire(r types.Resources) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || !r.Fits(p.avail) {
		return false
	}
	p.avail.Sub(r)
	return true
}

// acquireBlocking waits until r is available, stop closes, or the
// optional timeout elapses (0 = wait forever); reports whether the
// acquisition happened. Used when a blocked task reclaims its lent
// resources; the timeout lets ReacquireFor periodically re-resolve which
// pool it should be waiting on (a member's bundle can leave and later
// return to the node while the task is parked here).
func (p *resourcePool) acquireBlocking(r types.Resources, stop <-chan struct{}, timeout time.Duration) bool {
	done := make(chan struct{})
	abandoned := make(chan struct{})
	var ok bool
	go func() {
		defer close(done)
		p.mu.Lock()
		defer p.mu.Unlock()
		for !r.Fits(p.avail) {
			if p.closed {
				return
			}
			select {
			case <-stop:
				return
			case <-abandoned:
				return
			default:
			}
			p.cond.Wait()
		}
		p.avail.Sub(r)
		ok = true
	}()
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	abandon := func() bool {
		// Wake the waiter so its goroutine exits; it may still succeed in
		// a race, in which case the resources are immediately returned.
		// The close+broadcast happens under the pool lock: an unlocked
		// broadcast can land between the waiter's abandoned-check and its
		// cond.Wait and be lost, stranding both goroutines until some
		// unrelated release broadcasts (forever, on a quiescent pool).
		p.mu.Lock()
		close(abandoned)
		p.cond.Broadcast()
		p.mu.Unlock()
		<-done
		if ok {
			p.release(r)
		}
		return false
	}
	select {
	case <-done:
		return ok
	case <-stop:
		return abandon()
	case <-expire:
		return abandon()
	}
}

// release returns r to the pool and wakes waiters. Releases into a
// detached pool forward to its successor.
func (p *resourcePool) release(r types.Resources) {
	p.mu.Lock()
	if p.closed && p.fwd != nil {
		fwd := p.fwd
		p.mu.Unlock()
		fwd.release(r)
		return
	}
	p.avail.Add(r)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// snapshot returns copies of (total, available).
func (p *resourcePool) snapshot() (types.Resources, types.Resources) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total.Clone(), p.avail.Clone()
}

// detach marks the pool closed and returns its remaining availability: the
// caller moves that capacity into fwd (the node's general pool). Releases
// by tasks still holding this pool's resources forward to fwd from here
// on, so avail + forwarded releases together equal the pool's total, and
// anyone blocked inside acquireBlocking wakes to re-resolve.
func (p *resourcePool) detach(fwd *resourcePool) types.Resources {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.fwd = fwd
	avail := p.avail.Clone()
	p.avail = types.Resources{}
	p.cond.Broadcast()
	return avail
}
