package scheduler

import (
	"errors"
	"testing"
	"time"

	"repro/internal/types"
)

// TestDrainingAdmissionFence pins the local half of the drain protocol
// (DESIGN.md §10): a draining node refuses global placements with
// ErrDraining (leaving the task unowned for re-placement), routes
// locally-born tasks to the spill queue instead of running them, and
// resumes normal admission when the fence drops.
func TestDrainingAdmissionFence(t *testing.T) {
	l, log, ctrl, _ := buildLocal(t, types.CPU(4), SpillNever)
	sub := ctrl.SubscribeSpill()
	defer sub.Close()

	l.SetDraining(true)

	// Global assignment: refused before any ownership claim.
	placed := tSpec(300, types.CPU(1))
	if err := l.Submit(placed, true); !errors.Is(err, ErrDraining) {
		t.Fatalf("placed submit on draining node: err=%v, want ErrDraining", err)
	}
	if st, ok := ctrl.GetTask(placed.ID); !ok || st.Status != types.TaskPending {
		t.Fatalf("refused task must stay PENDING and unowned: %+v ok=%v", st, ok)
	}

	// Locally-born task: spills to the global queue, never runs here.
	local := tSpec(301, types.CPU(1))
	if err := l.Submit(local, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("locally-born task did not spill off the draining node")
	}
	select {
	case id := <-log.ch:
		t.Fatalf("task %v ran on a draining node", id)
	case <-time.After(50 * time.Millisecond):
	}

	// Fence down: admission resumes.
	l.SetDraining(false)
	resumed := tSpec(302, types.CPU(1))
	if err := l.Submit(resumed, false); err != nil {
		t.Fatal(err)
	}
	waitExec(t, log, resumed.ID)
}

// TestDrainBacklogRespills pins the backlog hand-off: DrainBacklog evicts
// waiting tasks (cancelling their resolvers), publishes them to the spill
// queue with their claim released (status back to PENDING), and leaves the
// scheduler quiescent.
func TestDrainBacklogRespills(t *testing.T) {
	l, log, ctrl, _ := buildLocal(t, types.CPU(2), SpillNever)
	sub := ctrl.SubscribeSpill()
	defer sub.Close()

	// A task parked on a dependency that never arrives.
	var dep types.ObjectID
	dep[0] = 88
	ctrl.EnsureObject(dep, types.NilTaskID)
	blocked := tSpec(310, types.CPU(1), dep)
	if err := l.Submit(blocked, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.WaitingLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("task never parked")
		}
		time.Sleep(time.Millisecond)
	}

	l.SetDraining(true)
	if n := l.DrainBacklog(); n != 1 {
		t.Fatalf("DrainBacklog evicted %d tasks, want 1", n)
	}
	select {
	case <-sub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("evicted task was not respilled")
	}
	if st, ok := ctrl.GetTask(blocked.ID); !ok || st.Status != types.TaskPending {
		t.Fatalf("respilled task must be PENDING for its next owner: %+v ok=%v", st, ok)
	}
	if busy := l.Busy(); busy != 0 {
		t.Fatalf("scheduler not quiescent after drain: busy=%d", busy)
	}
	select {
	case id := <-log.ch:
		t.Fatalf("task %v ran after eviction", id)
	case <-time.After(50 * time.Millisecond):
	}

	// The retry re-enqueue path also diverts while draining.
	retry := tSpec(311, types.CPU(1))
	ctrl.AddTask(types.TaskState{Spec: retry, Status: types.TaskPending})
	if err := l.Enqueue(retry); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C():
	case <-time.After(2 * time.Second):
		t.Fatal("retry enqueue on draining node was not respilled")
	}
}
