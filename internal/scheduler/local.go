package scheduler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gcs"
	"repro/internal/objectstore"
	"repro/internal/types"
)

// ExecFunc runs one task whose dependencies have all been resolved to local
// bytes. The local scheduler invokes it on a dedicated goroutine after
// acquiring the task's resources.
type ExecFunc func(ctx context.Context, spec types.TaskSpec, args [][]byte)

// ReconFunc asks the fault-tolerance layer to make a lost object
// reconstructable again (lineage replay). May be nil when fault tolerance
// is disabled.
type ReconFunc func(id types.ObjectID)

// Fetcher pulls a remote object into the local store. lifetime.PullManager
// is the production implementation (chunked, with per-peer backpressure).
type Fetcher interface {
	Fetch(ctx context.Context, id types.ObjectID, locations []types.NodeID) error
}

// RefLedger records task-argument borrows: while a task is queued or
// running here, its dependency objects hold an extra reference so the
// lifetime GC cannot reclaim them out from under the dispatcher.
// lifetime.Tracker is the production implementation.
type RefLedger interface {
	Retain(ids ...types.ObjectID)
	Release(ids ...types.ObjectID)
}

// ErrStopped is returned for submissions to a stopped scheduler.
var ErrStopped = errors.New("scheduler: stopped")

// Spill thresholds (LocalConfig.SpillThreshold).
const (
	// SpillNever disables spilling: single-node clusters.
	SpillNever = -1
	// SpillAlways forwards every locally-born task to the global scheduler:
	// the "central-only" ablation of experiment E8.
	SpillAlways = 0
)

// LocalConfig configures a Local scheduler.
type LocalConfig struct {
	Node  types.NodeID
	Total types.Resources
	Ctrl  gcs.API
	Store *objectstore.Store
	// Fetcher pulls remote dependencies; nil disables cross-node fetch.
	Fetcher Fetcher
	// Refs records argument borrows for the lifetime subsystem; nil
	// disables borrow tracking.
	Refs RefLedger
	// Exec runs ready tasks (assigned after construction by the node).
	Exec ExecFunc
	// Recon triggers lineage reconstruction of lost dependencies.
	Recon ReconFunc
	// SpillThreshold: locally-born tasks spill to the global scheduler when
	// the runnable backlog reaches this length. SpillNever / SpillAlways
	// select the extremes.
	SpillThreshold int
	// DepPollInterval bounds how stale a missed object-ready edge can be;
	// the pub/sub fast path makes it rarely matter. Zero selects a default.
	DepPollInterval time.Duration
}

// queuedTask is a task whose dependencies are all local, awaiting
// resources.
type queuedTask struct {
	spec types.TaskSpec
}

// waitingTask is a task with unresolved dependencies.
type waitingTask struct {
	spec    types.TaskSpec
	missing map[types.ObjectID]bool
}

// Local is the per-node scheduler: the first stop for every task born on
// this node (bottom-up scheduling). Tasks become runnable when their
// dependency objects are resident in the node's object store, are admitted
// when their resource demand fits, and spill to the global scheduler when
// the node is overloaded or the task is locally infeasible.
type Local struct {
	cfg  LocalConfig
	res  *resourcePool
	stop chan struct{}
	kick chan struct{}

	mu       sync.Mutex
	runnable []*queuedTask
	waiting  map[types.TaskID]*waitingTask
	stopped  bool

	wg sync.WaitGroup

	// Counters for heartbeats, dashboards, and benchmarks.
	submitted  atomic.Int64
	spilled    atomic.Int64
	dispatched atomic.Int64
}

// NewLocal builds a local scheduler; call Start before submitting.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.DepPollInterval <= 0 {
		cfg.DepPollInterval = 20 * time.Millisecond
	}
	return &Local{
		cfg:     cfg,
		res:     newResourcePool(cfg.Total),
		stop:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
		waiting: make(map[types.TaskID]*waitingTask),
	}
}

// Start launches the dispatch loop.
func (l *Local) Start() {
	l.wg.Add(1)
	go l.dispatchLoop()
}

// Stop halts dispatching and abandons queued work (node crash or
// shutdown). Abandoned tasks' argument borrows are not individually
// released here; a graceful Node.Shutdown settles them wholesale via the
// tracker's ReleaseAll, while a crash leaves them held — conservative for
// the data, reconciled by a future node monitor.
func (l *Local) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	l.runnable = nil
	l.waiting = make(map[types.TaskID]*waitingTask)
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
}

// QueueLen reports the runnable backlog (heartbeat load signal).
func (l *Local) QueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runnable)
}

// WaitingLen reports tasks blocked on dependencies.
func (l *Local) WaitingLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiting)
}

// Stats returns (submitted, spilled, dispatched) counters.
func (l *Local) Stats() (int64, int64, int64) {
	return l.submitted.Load(), l.spilled.Load(), l.dispatched.Load()
}

// Available snapshots the resource pool (heartbeat load signal).
func (l *Local) Available() types.Resources {
	_, avail := l.res.snapshot()
	return avail
}

// ReleaseFor lends a blocked task's resources back to the pool (worker
// lending; see worker.Executor).
func (l *Local) ReleaseFor(spec types.TaskSpec) {
	l.res.release(spec.Resources)
	l.kickDispatch()
}

// ReacquireFor blocks until the lent resources are regained.
func (l *Local) ReacquireFor(spec types.TaskSpec) {
	l.res.acquireBlocking(spec.Resources, l.stop)
}

// Submit is the entry point for tasks born on this node (placed=false) and
// for tasks assigned by the global scheduler (placed=true). It implements
// the spillover decision of Section 3.2.2.
func (l *Local) Submit(spec types.TaskSpec, placed bool) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return ErrStopped
	}
	backlog := len(l.runnable)
	l.mu.Unlock()
	l.submitted.Add(1)

	fresh := l.record(spec)
	if placed {
		// A global-scheduler assignment. Several global schedulers may each
		// place the same spilled task ("one or more global schedulers",
		// Section 3.2); the QUEUED claim below makes exactly one
		// destination own it.
		if !l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{types.TaskPending}, types.TaskQueued) {
			return nil
		}
		l.enqueue(spec)
		return nil
	}
	if !fresh && !l.shouldRerun(spec) {
		// Already known to the control plane: either in flight elsewhere or
		// finished with intact outputs (replayed submission, results
		// reusable outright). Only the CAS winner re-runs.
		return nil
	}

	infeasible := !spec.Resources.FeasibleOn(l.cfg.Total)
	overloaded := l.cfg.SpillThreshold >= 0 && backlog >= l.cfg.SpillThreshold
	if infeasible || overloaded {
		l.spilled.Add(1)
		l.bridgeSpill(spec)
		l.cfg.Ctrl.PublishSpill(spec)
		return nil
	}
	l.enqueue(spec)
	return nil
}

// bridgeSpill holds a borrow on a spilled task's dependencies while the
// task travels through the global spill queue: without it there is a
// window — publish until the destination node's enqueue — in which the
// task holds no references and a driver Release could let the GC reclaim
// its arguments. The bridge drops once the task reaches SCHEDULED (the
// destination's enqueue-time borrow is in place strictly before that
// transition) or a terminal state; an unplaceable task keeps its bridge,
// which is the conservative direction (leak, never lose a live argument).
func (l *Local) bridgeSpill(spec types.TaskSpec) {
	if l.cfg.Refs == nil {
		return
	}
	deps := spec.Deps()
	if len(deps) == 0 {
		return
	}
	l.cfg.Refs.Retain(deps...)
	l.wg.Add(1)
	go l.releaseBridge(spec.ID, deps)
}

func (l *Local) releaseBridge(task types.TaskID, deps []types.ObjectID) {
	defer l.wg.Done()
	sub := l.cfg.Ctrl.SubscribeTaskStatus(task)
	defer sub.Close()
	for {
		if st, ok := l.cfg.Ctrl.GetTask(task); ok {
			switch st.Status {
			case types.TaskScheduled, types.TaskRunning, types.TaskFinished, types.TaskLost, types.TaskFailed:
				l.cfg.Refs.Release(deps...)
				return
			}
		}
		select {
		case <-sub.C():
		case <-time.After(l.cfg.DepPollInterval):
		case <-l.stop:
			// Node stopping mid-bridge: keep the borrow rather than expose
			// a task still parked in the queue. Node.Shutdown's tracker
			// ReleaseAll settles the count.
			return
		}
	}
}

// Enqueue bypasses the duplicate-submission check and spill decision; the
// executor's retry path uses it (the task's status was already reset to
// PENDING by the retry bookkeeping, so the dedupe logic would drop it).
func (l *Local) Enqueue(spec types.TaskSpec) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return ErrStopped
	}
	l.mu.Unlock()
	l.enqueue(spec)
	return nil
}

// SetExec assigns the execution callback; must be called before Start.
// (The node wires this after constructing the executor, which needs the
// node itself as the tasks' API backend.)
func (l *Local) SetExec(fn ExecFunc) { l.cfg.Exec = fn }

// SetRecon assigns the lost-object reconstruction trigger.
func (l *Local) SetRecon(fn ReconFunc) { l.cfg.Recon = fn }

// record writes the lineage record; reports whether the task is new.
// EnsureObject runs unconditionally (it is create-if-absent): a duplicate
// AddTask can be a retry whose original ack died with a control-plane
// shard between the task write and the object writes, and skipping the
// ensure would leave return objects without their Producer edge — losing
// lineage reconstructability for anything this task outputs.
func (l *Local) record(spec types.TaskSpec) bool {
	added := l.cfg.Ctrl.AddTask(types.TaskState{Spec: spec, Status: types.TaskPending, Node: l.cfg.Node})
	for i := 0; i < spec.NumReturns; i++ {
		l.cfg.Ctrl.EnsureObject(spec.ReturnID(i), spec.ID)
	}
	return added
}

// shouldRerun decides whether a duplicate submission must actually
// re-execute (lineage replay after loss) or can be dropped.
func (l *Local) shouldRerun(spec types.TaskSpec) bool {
	st, ok := l.cfg.Ctrl.GetTask(spec.ID)
	if !ok {
		return true
	}
	switch st.Status {
	case types.TaskPending, types.TaskQueued, types.TaskScheduled, types.TaskRunning:
		// In flight somewhere. If that somewhere is a dead node, steal it.
		if node, alive := l.nodeAlive(st.Node); node && alive {
			return false
		}
		return l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{st.Status}, types.TaskPending)
	case types.TaskFinished:
		if l.outputsIntact(spec) {
			return false
		}
		return l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{types.TaskFinished}, types.TaskPending)
	case types.TaskLost, types.TaskFailed:
		return l.cfg.Ctrl.CASTaskStatus(spec.ID, []types.TaskStatus{st.Status}, types.TaskPending)
	}
	return false
}

func (l *Local) nodeAlive(id types.NodeID) (known, alive bool) {
	if id.IsNil() {
		return false, false
	}
	info, ok := l.cfg.Ctrl.GetNode(id)
	return ok, ok && info.Alive
}

func (l *Local) outputsIntact(spec types.TaskSpec) bool {
	for i := 0; i < spec.NumReturns; i++ {
		info, ok := l.cfg.Ctrl.GetObject(spec.ReturnID(i))
		if !ok || info.State != types.ObjectReady {
			return false
		}
	}
	return true
}

// enqueue moves a task into runnable or waiting depending on dependency
// residency, starting a resolver per missing dependency (dataflow trigger).
func (l *Local) enqueue(spec types.TaskSpec) {
	// Stamp this node as the task's current holder. If this node dies with
	// the task still queued, the task table points at a dead node and any
	// consumer's reconstruction check will re-own the task (R6); without
	// the stamp, a task queued-but-not-dispatched on a dead node would be
	// invisible.
	l.cfg.Ctrl.SetTaskStatus(spec.ID, types.TaskQueued, l.cfg.Node, types.NilWorkerID, "")
	// Borrow the dependencies for the lifetime of this enqueue: the matching
	// release happens at the end of runTask. A task re-enqueued from
	// runTask's evicted-args path borrows again before that release fires,
	// so the count never dips to zero while the task is anywhere in the
	// pipeline.
	if l.cfg.Refs != nil {
		l.cfg.Refs.Retain(spec.Deps()...)
	}
	missing := make(map[types.ObjectID]bool)
	var missingList []types.ObjectID
	for _, dep := range spec.Deps() {
		if !missing[dep] && !l.cfg.Store.Contains(dep) {
			missing[dep] = true
			missingList = append(missingList, dep)
		}
	}
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		// The task will never run here; return its fresh borrows.
		if l.cfg.Refs != nil {
			l.cfg.Refs.Release(spec.Deps()...)
		}
		return
	}
	if len(missing) == 0 {
		l.runnable = append(l.runnable, &queuedTask{spec: spec})
		l.mu.Unlock()
		l.kickDispatch()
		return
	}
	l.waiting[spec.ID] = &waitingTask{spec: spec, missing: missing}
	l.mu.Unlock()
	// Spawn resolvers from the snapshot slice, not the map: once the
	// waiting entry is published, resolvers may delete from the map
	// concurrently (depSatisfied holds the lock; this loop does not).
	for _, dep := range missingList {
		l.wg.Add(1)
		go l.resolveDep(spec.ID, dep)
	}
}

// resolveDep drives one missing dependency to local residency: wait for it
// to become ready (pub/sub with a poll safety net), fetch it from a peer,
// or request reconstruction if it was lost.
func (l *Local) resolveDep(task types.TaskID, obj types.ObjectID) {
	defer l.wg.Done()
	sub := l.cfg.Ctrl.SubscribeObjectReady(obj)
	defer sub.Close()
	// Stranded-producer checks are throttled: they exist to detect the rare
	// case of a producer dying with the task still queued, so probing every
	// ~25 wakeups (~0.5s at the default poll interval) detects failures
	// promptly without taxing the control plane on healthy pending-heavy
	// graphs.
	const strandedCheckPeriod = 25
	wakeups := 0
	for {
		if l.cfg.Store.Contains(obj) {
			l.depSatisfied(task, obj)
			return
		}
		if info, ok := l.cfg.Ctrl.GetObject(obj); ok {
			switch info.State {
			case types.ObjectReady:
				if l.cfg.Fetcher != nil && len(info.Locations) > 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := l.cfg.Fetcher.Fetch(ctx, obj, info.Locations)
					cancel()
					if err == nil {
						continue
					}
				}
			case types.ObjectLost:
				if l.cfg.Recon != nil {
					l.cfg.Recon(obj)
				}
			case types.ObjectPending:
				// Possibly a producer stranded on a dead node (queued or
				// running there when it died). The reconstructor no-ops for
				// healthy producers.
				if l.cfg.Recon != nil && wakeups%strandedCheckPeriod == 0 {
					l.cfg.Recon(obj)
				}
			}
		}
		wakeups++
		localArrival := l.cfg.Store.WaitChan(obj)
		select {
		case <-localArrival:
		case <-sub.C():
		case <-time.After(l.cfg.DepPollInterval):
		case <-l.stop:
			return
		}
	}
}

// depSatisfied clears one dependency; the task becomes runnable when its
// missing set empties.
func (l *Local) depSatisfied(task types.TaskID, obj types.ObjectID) {
	l.mu.Lock()
	w, ok := l.waiting[task]
	if !ok {
		l.mu.Unlock()
		return
	}
	delete(w.missing, obj)
	if len(w.missing) > 0 {
		l.mu.Unlock()
		return
	}
	delete(l.waiting, task)
	l.runnable = append(l.runnable, &queuedTask{spec: w.spec})
	l.mu.Unlock()
	l.kickDispatch()
}

func (l *Local) kickDispatch() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// dispatchLoop admits runnable tasks whenever resources allow. Admission
// scans past a head-of-line task whose demand does not currently fit, so a
// large task cannot starve small ones (R4 heterogeneity).
func (l *Local) dispatchLoop() {
	defer l.wg.Done()
	for {
		l.dispatchReady()
		select {
		case <-l.kick:
		case <-l.stop:
			return
		}
	}
}

func (l *Local) dispatchReady() {
	for {
		task, ok := l.admitOne()
		if !ok {
			return
		}
		l.cfg.Ctrl.SetTaskStatus(task.spec.ID, types.TaskScheduled, l.cfg.Node, types.NilWorkerID, "")
		l.dispatched.Add(1)
		l.wg.Add(1)
		go l.runTask(task.spec)
	}
}

// admitOne pops the first runnable task whose resources are available.
func (l *Local) admitOne() (*queuedTask, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, t := range l.runnable {
		if l.res.tryAcquire(t.spec.Resources) {
			l.runnable = append(l.runnable[:i], l.runnable[i+1:]...)
			return t, true
		}
	}
	return nil, false
}

// runTask resolves argument bytes and executes. Dependencies were local at
// enqueue time but may have been evicted since; in that case the task goes
// back to waiting.
func (l *Local) runTask(spec types.TaskSpec) {
	defer l.wg.Done()
	defer l.kickDispatch()
	// Return the enqueue-time borrows last (LIFO): the evicted-args path
	// below re-enqueues — and re-borrows — before this defer runs.
	if l.cfg.Refs != nil {
		defer l.cfg.Refs.Release(spec.Deps()...)
	}
	args, missing := l.gatherArgs(spec)
	if missing {
		l.res.release(spec.Resources)
		l.enqueue(spec)
		return
	}
	defer l.res.release(spec.Resources)
	defer l.unpinArgs(spec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-l.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	l.cfg.Exec(ctx, spec, args)
}

// gatherArgs pins and reads reference arguments from the local store.
func (l *Local) gatherArgs(spec types.TaskSpec) ([][]byte, bool) {
	args := make([][]byte, len(spec.Args))
	for i, a := range spec.Args {
		if !a.IsRef {
			args[i] = a.Value
			continue
		}
		l.cfg.Store.Pin(a.Ref)
		data, ok := l.cfg.Store.Get(a.Ref)
		if !ok {
			// Evicted between readiness and admission; retry via waiting.
			for j := 0; j <= i; j++ {
				if spec.Args[j].IsRef {
					l.cfg.Store.Unpin(spec.Args[j].Ref)
				}
			}
			return nil, true
		}
		args[i] = data
	}
	return args, false
}

// unpinArgs releases the pins taken by gatherArgs once execution ends.
func (l *Local) unpinArgs(spec types.TaskSpec) {
	for _, a := range spec.Args {
		if a.IsRef {
			l.cfg.Store.Unpin(a.Ref)
		}
	}
}
